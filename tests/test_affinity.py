"""Tests for IPC affinity graphs and their controller integration."""

import numpy as np
import pytest

from repro.core import WillowConfig, WillowController
from repro.power import constant_supply
from repro.sim import RandomStreams
from repro.topology import build_paper_simulation
from repro.workload import (
    SIMULATION_APPS,
    random_placement,
    scale_for_target_utilization,
)
from repro.workload.affinity import (
    AffinityGraph,
    clustered_affinity,
    ring_affinity,
)
from repro.workload.vm import VM
from repro.workload.applications import AppType


def make_vms(n, host=1):
    app = AppType("a", 1.0)
    return [VM(vm_id=i, app=app, host_id=host) for i in range(n)]


class TestAffinityGraph:
    def test_edges_symmetric(self):
        graph = AffinityGraph()
        graph.add_edge(1, 2, 5.0)
        assert graph.rate(1, 2) == 5.0
        assert graph.rate(2, 1) == 5.0

    def test_self_edge_rejected(self):
        with pytest.raises(ValueError):
            AffinityGraph().add_edge(1, 1, 5.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            AffinityGraph().add_edge(1, 2, -1.0)

    def test_zero_rate_removes_edge(self):
        graph = AffinityGraph()
        graph.add_edge(1, 2, 5.0)
        graph.add_edge(1, 2, 0.0)
        assert len(graph) == 0

    def test_neighbours(self):
        graph = AffinityGraph()
        graph.add_edge(1, 2, 5.0)
        graph.add_edge(1, 3, 2.0)
        assert graph.neighbours(1) == [(2, 5.0), (3, 2.0)]

    def test_remote_rate_and_colocated_fraction(self):
        vms = make_vms(3, host=1)
        vms[2].host_id = 2
        graph = AffinityGraph()
        graph.add_edge(0, 1, 4.0)  # same host
        graph.add_edge(1, 2, 6.0)  # cross host
        assert graph.remote_rate(vms) == 6.0
        assert graph.colocated_fraction(vms) == pytest.approx(0.4)

    def test_empty_graph_is_fully_colocated(self):
        assert AffinityGraph().colocated_fraction(make_vms(2)) == 1.0


class TestBuilders:
    def test_clustered_clique_rates(self):
        vms = make_vms(6)
        graph = clustered_affinity(vms, cluster_size=3, in_rate=2.0)
        # Two cliques of 3 -> 3 edges each.
        assert len(graph) == 6
        assert graph.rate(0, 1) == 2.0
        assert graph.rate(0, 3) == 0.0  # across clusters, no out_rate

    def test_clustered_chain(self):
        vms = make_vms(6)
        graph = clustered_affinity(
            vms, cluster_size=3, in_rate=2.0, out_rate=1.0
        )
        assert graph.rate(0, 3) == 1.0

    def test_cluster_size_validated(self):
        with pytest.raises(ValueError):
            clustered_affinity(make_vms(4), cluster_size=1, in_rate=1.0)

    def test_ring(self):
        vms = make_vms(4)
        graph = ring_affinity(vms, rate=3.0)
        assert len(graph) == 4
        assert graph.rate(0, 1) == 3.0
        assert graph.rate(3, 0) == 3.0

    def test_tiny_ring(self):
        assert len(ring_affinity(make_vms(1), 1.0)) == 0


class TestControllerIntegration:
    def _run(self, ipc_graph_factory=None, seed=9):
        tree = build_paper_simulation()
        config = WillowConfig(consolidation_enabled=False)
        streams = RandomStreams(seed)
        placement = random_placement(
            [s.node_id for s in tree.servers()],
            SIMULATION_APPS,
            streams["placement"],
        )
        scale_for_target_utilization(placement, config.server_model.slope, 0.4)
        graph = ipc_graph_factory(placement.vms) if ipc_graph_factory else None
        controller = WillowController(
            tree,
            config,
            constant_supply(18 * 450.0),
            placement,
            seed=seed,
            ipc_graph=graph,
        )
        return controller, controller.run(30)

    def test_cross_host_ipc_loads_switches(self):
        _, without = self._run(None)
        _, with_ipc = self._run(
            lambda vms: clustered_affinity(vms, cluster_size=4, in_rate=10.0)
        )
        base_without = sum(s.base_traffic for s in without.switch_samples)
        base_with = sum(s.base_traffic for s in with_ipc.switch_samples)
        # Initial placement puts each 4-VM cluster on one server, so the
        # clique traffic stays on-box; the chain-less graph adds nothing
        # until migrations split clusters.  Use a ring to force remote.
        _, ring = self._run(lambda vms: ring_affinity(vms, rate=10.0))
        base_ring = sum(s.base_traffic for s in ring.switch_samples)
        assert base_ring > base_without
        assert base_with >= base_without  # never reduces traffic

    def test_colocated_clusters_add_no_network_traffic_until_split(self):
        controller, collector = self._run(
            lambda vms: clustered_affinity(vms, cluster_size=4, in_rate=10.0)
        )
        graph = controller.ipc_graph
        # Whatever migrations did, remote rate equals what the final
        # placement implies.
        expected_remote = graph.remote_rate(controller.vms)
        assert expected_remote >= 0.0

    def test_ring_remote_fraction_reported(self):
        controller, _ = self._run(lambda vms: ring_affinity(vms, rate=5.0))
        graph = controller.ipc_graph
        # VM ids are dense per server (4 per host), so a ring crosses a
        # host boundary roughly once per server: some remote traffic,
        # but most edges stay on-box.
        assert graph.remote_rate(controller.vms) > 0
        assert 0.4 < graph.colocated_fraction(controller.vms) < 1.0


class TestAffinityAwarePlanner:
    def _run(self, affinity_aware: bool, seed=37):
        from repro.power import step_supply
        from repro.workload.affinity import clustered_affinity

        tree = build_paper_simulation()
        config = WillowConfig(affinity_aware=affinity_aware)
        streams = RandomStreams(seed)
        placement = random_placement(
            [s.node_id for s in tree.servers()],
            SIMULATION_APPS,
            streams["placement"],
        )
        scale_for_target_utilization(placement, config.server_model.slope, 0.6)
        graph = clustered_affinity(placement.vms, cluster_size=4, in_rate=8.0)
        supply = step_supply([(0.0, 18 * 450.0), (25.0, 0.75 * 18 * 450.0)])
        controller = WillowController(
            tree, config, supply, placement, seed=seed, ipc_graph=graph
        )
        collector = controller.run(70)
        return controller, collector, graph

    def test_affinity_awareness_keeps_clusters_together(self):
        _, _, _ = self._run(False)  # warm path; ensures both variants run
        ctrl_off, col_off, graph_off = self._run(False)
        ctrl_on, col_on, graph_on = self._run(True)
        frac_off = graph_off.colocated_fraction(ctrl_off.vms)
        frac_on = graph_on.colocated_fraction(ctrl_on.vms)
        assert frac_on > frac_off

    def test_affinity_awareness_respects_capacity(self):
        ctrl, collector, _graph = self._run(True)
        # Invariants still hold: no thermal violations, VMs conserved.
        assert (
            sum(s.thermal.violations for s in ctrl.servers.values()) == 0
        )
        hosted = sorted(
            vm.vm_id for s in ctrl.servers.values() for vm in s.vms.values()
        )
        assert hosted == sorted(vm.vm_id for vm in ctrl.vms)

    def test_affinity_flag_without_graph_is_noop(self):
        tree = build_paper_simulation()
        config = WillowConfig(affinity_aware=True)
        streams = RandomStreams(3)
        placement = random_placement(
            [s.node_id for s in tree.servers()],
            SIMULATION_APPS,
            streams["placement"],
        )
        scale_for_target_utilization(placement, config.server_model.slope, 0.5)
        controller = WillowController(
            tree, config, constant_supply(18 * 450.0), placement, seed=3
        )
        controller.run(10)  # must not raise
