"""Tests for per-component power/thermal modelling (repro.devices)."""

import pytest

from repro.core import WillowConfig, run_willow
from repro.devices import DeviceClass, DeviceSet, STANDARD_DEVICES
from repro.thermal import ThermalParams


class TestDeviceClass:
    def test_standard_shares_sum_to_one(self):
        assert sum(d.power_share for d in STANDARD_DEVICES) == pytest.approx(1.0)

    def test_validation(self):
        thermal = ThermalParams()
        with pytest.raises(ValueError):
            DeviceClass("x", power_share=0.0, thermal=thermal, rated_power=10.0)
        with pytest.raises(ValueError):
            DeviceClass("x", power_share=0.5, thermal=thermal, rated_power=0.0)


class TestDeviceSet:
    def test_share_sum_enforced(self):
        thermal = ThermalParams()
        broken = (
            DeviceClass("a", 0.5, thermal, 100.0),
            DeviceClass("b", 0.4, thermal, 100.0),
        )
        with pytest.raises(ValueError):
            DeviceSet(broken)

    def test_duplicate_names_rejected(self):
        thermal = ThermalParams()
        broken = (
            DeviceClass("a", 0.5, thermal, 100.0),
            DeviceClass("a", 0.5, thermal, 100.0),
        )
        with pytest.raises(ValueError):
            DeviceSet(broken)

    def test_power_split(self):
        devices = DeviceSet()
        split = devices.device_power(400.0)
        assert split["cpu"] == pytest.approx(0.55 * 400.0)
        assert sum(split.values()) == pytest.approx(400.0)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            DeviceSet().device_power(-1.0)

    def test_baseline_server_cap_is_450(self):
        # Every component is calibrated so its cap equals its share of
        # the 450 W envelope at the 25 C baseline.
        devices = DeviceSet()
        assert devices.server_cap() == pytest.approx(450.0, rel=1e-6)

    def test_hot_zone_binding_component_is_disk(self):
        # In a 40 C aisle the disk's 60 C limit has the least relative
        # headroom: (60-40)/(60-25) < (70-40)/(70-25) etc.
        devices = DeviceSet(t_ambient=40.0)
        assert devices.binding_device() == "disk"
        # And the induced cap is tighter than the CPU-only 300 W.
        assert devices.server_cap() < 300.0

    def test_temperatures_track_power(self):
        devices = DeviceSet()
        cold = devices.update(100.0)
        hot = devices.update(400.0)
        for name in cold:
            assert hot[name] > cold[name]

    def test_no_violations_at_or_below_cap(self):
        devices = DeviceSet(t_ambient=40.0)
        devices.update(devices.server_cap())
        assert all(v == 0 for v in devices.violations.values())

    def test_violation_counted_beyond_cap(self):
        devices = DeviceSet(t_ambient=40.0)
        devices.update(devices.server_cap() * 1.3)
        assert devices.violations["disk"] >= 1

    def test_hottest_margin_names_binding_component_at_cap(self):
        devices = DeviceSet(t_ambient=40.0)
        devices.update(devices.server_cap())
        name, margin = devices.hottest_margin()
        assert name == "disk"
        assert margin == pytest.approx(0.0, abs=1e-6)


class TestControllerIntegration:
    def test_device_aware_run_keeps_every_component_safe(self):
        config = WillowConfig(device_classes=STANDARD_DEVICES)
        hot = {f"server-{i}": 40.0 for i in range(15, 19)}
        controller, collector = run_willow(
            config=config,
            target_utilization=0.7,
            n_ticks=40,
            seed=6,
            ambient_overrides=hot,
        )
        for server in controller.servers.values():
            assert server.devices is not None
            assert all(v == 0 for v in server.devices.violations.values())

    def test_device_cap_tightens_hot_zone_budget(self):
        config = WillowConfig(device_classes=STANDARD_DEVICES)
        hot = {f"server-{i}": 40.0 for i in range(15, 19)}
        controller, _ = run_willow(
            config=config,
            target_utilization=0.7,
            n_ticks=10,
            seed=6,
            ambient_overrides=hot,
        )
        hot_server = controller.server_by_name("server-15")
        cold_server = controller.server_by_name("server-1")
        assert hot_server.hard_cap() < 300.0  # tighter than CPU-only
        assert cold_server.hard_cap() == pytest.approx(450.0, rel=1e-6)

    def test_default_config_has_no_devices(self):
        controller, _ = run_willow(n_ticks=2, seed=0)
        assert all(s.devices is None for s in controller.servers.values())
