"""Tests for Resource / Container / Store primitives."""

import pytest

from repro.sim import Container, Environment, Resource, Store


class TestResource:
    def test_grants_up_to_capacity(self):
        env = Environment()
        resource = Resource(env, capacity=2)
        r1, r2, r3 = resource.request(), resource.request(), resource.request()
        env.run()
        assert r1.processed and r2.processed
        assert not r3.triggered
        assert resource.count == 2
        assert resource.queue_length == 1

    def test_release_grants_next_fifo(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        r1 = resource.request()
        r2 = resource.request()
        r3 = resource.request()
        env.run()
        r1.release()
        env.run()
        assert r2.processed and not r3.triggered
        r2.release()
        env.run()
        assert r3.processed

    def test_release_idempotent(self):
        env = Environment()
        resource = Resource(env)
        request = resource.request()
        env.run()
        request.release()
        request.release()
        assert resource.count == 0

    def test_cancelling_queued_request(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        _held = resource.request()
        queued = resource.request()
        env.run()
        queued.release()  # withdraw from the queue
        assert resource.queue_length == 0

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Resource(Environment(), capacity=0)

    def test_process_queueing_behaviour(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        log = []

        def worker(env, name, hold):
            request = resource.request()
            yield request
            log.append((env.now, name, "start"))
            yield env.timeout(hold)
            request.release()
            log.append((env.now, name, "done"))

        env.process(worker(env, "a", 2.0))
        env.process(worker(env, "b", 1.0))
        env.run()
        assert log == [
            (0.0, "a", "start"),
            (2.0, "a", "done"),
            (2.0, "b", "start"),
            (3.0, "b", "done"),
        ]

    def test_context_manager_releases(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        log = []

        def worker(env, name):
            with resource.request() as request:
                yield request
                log.append((env.now, name))
                yield env.timeout(1.0)

        env.process(worker(env, "a"))
        env.process(worker(env, "b"))
        env.run()
        assert log == [(0.0, "a"), (1.0, "b")]


class TestContainer:
    def test_initial_level_and_get(self):
        env = Environment()
        container = Container(env, capacity=10.0, initial=5.0)
        got = container.get(3.0)
        env.run()
        assert got.processed and container.level == 2.0

    def test_get_blocks_until_put(self):
        env = Environment()
        container = Container(env, capacity=10.0)
        got = container.get(4.0)
        env.run()
        assert not got.triggered
        container.put(5.0)
        env.run()
        assert got.processed and container.level == pytest.approx(1.0)

    def test_put_blocks_at_capacity(self):
        env = Environment()
        container = Container(env, capacity=5.0, initial=5.0)
        put = container.put(1.0)
        env.run()
        assert not put.triggered
        container.get(2.0)
        env.run()
        assert put.processed and container.level == pytest.approx(4.0)

    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            Container(env, capacity=0.0)
        with pytest.raises(ValueError):
            Container(env, capacity=1.0, initial=2.0)
        container = Container(env, capacity=1.0)
        with pytest.raises(ValueError):
            container.put(0.0)
        with pytest.raises(ValueError):
            container.get(-1.0)

    def test_battery_process(self):
        # A UPS-style battery: solar charges, the load drains.
        env = Environment()
        battery = Container(env, capacity=100.0, initial=20.0)
        drained = []

        def load(env):
            for _ in range(3):
                yield battery.get(15.0)
                drained.append(env.now)
                yield env.timeout(1.0)

        def solar(env):
            while True:
                yield env.timeout(0.5)
                yield battery.put(10.0)

        env.process(load(env))
        env.process(solar(env))
        env.run(until=10.0)
        assert len(drained) == 3


class TestStore:
    def test_fifo_order(self):
        env = Environment()
        store = Store(env)
        store.put("a")
        store.put("b")
        g1, g2 = store.get(), store.get()
        env.run()
        assert g1.value == "a" and g2.value == "b"

    def test_get_blocks_until_item(self):
        env = Environment()
        store = Store(env)
        got = store.get()
        env.run()
        assert not got.triggered
        store.put("x")
        env.run()
        assert got.value == "x"

    def test_bounded_store_blocks_put(self):
        env = Environment()
        store = Store(env, capacity=1)
        store.put("a")
        blocked = store.put("b")
        env.run()
        assert not blocked.triggered
        store.get()
        env.run()
        assert blocked.processed
        assert list(store.items) == ["b"]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Store(Environment(), capacity=0)

    def test_producer_consumer(self):
        env = Environment()
        store = Store(env, capacity=2)
        consumed = []

        def producer(env):
            for i in range(5):
                yield store.put(i)
                yield env.timeout(0.1)

        def consumer(env):
            while len(consumed) < 5:
                item = yield store.get()
                consumed.append((env.now, item))
                yield env.timeout(0.3)

        env.process(producer(env))
        env.process(consumer(env))
        env.run(until=5.0)
        assert [item for _t, item in consumed] == [0, 1, 2, 3, 4]
