"""Tests for the switch fabric (paper Fig. 8)."""

import pytest

from repro.topology import SwitchFabric, build_paper_simulation, build_testbed


@pytest.fixture
def paper():
    tree = build_paper_simulation()
    return tree, SwitchFabric(tree)


def test_one_switch_per_internal_node(paper):
    tree, fabric = paper
    internal = [n for n in tree if not n.is_leaf]
    assert len(fabric.switches) == len(internal)


def test_switch_levels_mirror_hierarchy(paper):
    tree, fabric = paper
    assert len(fabric.at_level(1)) == 6  # enclosures
    assert len(fabric.at_level(2)) == 2  # racks
    assert len(fabric.at_level(3)) == 1  # root


def test_serving_switch_is_parents(paper):
    tree, fabric = paper
    server = tree.servers()[0]
    (switch,) = fabric.serving(server)
    assert switch.site is server.parent


def test_local_path_single_site(paper):
    tree, fabric = paper
    s = tree.servers()
    path = fabric.path(s[0], s[1])  # same enclosure
    assert len(path) == 1
    assert path[0][0].site is s[0].parent
    assert path[0][1] == 1.0


def test_cross_rack_path_traverses_root(paper):
    tree, fabric = paper
    s = tree.servers()
    path = fabric.path(s[0], s[17])  # different racks
    levels = [switch.level for switch, _share in path]
    assert levels == [1, 2, 3, 2, 1]


def test_same_rack_cross_enclosure_path(paper):
    tree, fabric = paper
    s = tree.servers()
    path = fabric.path(s[0], s[3])  # enclosures 0 and 1 of rack 0
    levels = [switch.level for switch, _share in path]
    assert levels == [1, 2, 1]


def test_path_to_self_empty(paper):
    tree, fabric = paper
    server = tree.servers()[0]
    assert fabric.path(server, server) == []


def test_hop_count(paper):
    tree, fabric = paper
    s = tree.servers()
    assert fabric.hop_count(s[0], s[1]) == 1
    assert fabric.hop_count(s[0], s[3]) == 3
    assert fabric.hop_count(s[0], s[17]) == 5


def test_path_is_direction_symmetric_in_sites(paper):
    tree, fabric = paper
    s = tree.servers()
    forward = {sw.site.node_id for sw, _ in fabric.path(s[0], s[17])}
    backward = {sw.site.node_id for sw, _ in fabric.path(s[17], s[0])}
    assert forward == backward


def test_redundant_fabric_splits_load():
    tree = build_testbed()
    fabric = SwitchFabric(tree, redundancy=2)
    a = tree.by_name("server-A")
    c = tree.by_name("server-C")
    path = fabric.path(a, c)
    # Every site contributes 2 switches with share 0.5 each.
    shares = [share for _switch, share in path]
    assert all(share == 0.5 for share in shares)
    # Total share per site sums to 1.
    per_site = {}
    for switch, share in path:
        per_site[switch.site.node_id] = per_site.get(switch.site.node_id, 0.0) + share
    assert all(abs(total - 1.0) < 1e-9 for total in per_site.values())


def test_redundancy_validated():
    with pytest.raises(ValueError):
        SwitchFabric(build_testbed(), redundancy=0)


def test_root_has_no_serving_switch(paper):
    tree, fabric = paper
    with pytest.raises(ValueError):
        fabric.serving(tree.root)


def test_switch_names_unique(paper):
    _tree, fabric = paper
    names = [s.name for s in fabric.switches]
    assert len(names) == len(set(names))
