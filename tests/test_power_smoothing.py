"""Tests for exponential smoothing (paper Eq. 4)."""

import numpy as np
import pytest

from repro.power import ExponentialSmoother, HoltSmoother, smooth_series


class TestExponentialSmoother:
    def test_first_observation_seeds_state(self):
        smoother = ExponentialSmoother(0.5)
        assert not smoother.primed
        assert smoother.update(10.0) == 10.0
        assert smoother.primed

    def test_eq4_recurrence(self):
        smoother = ExponentialSmoother(0.3, initial=100.0)
        assert smoother.update(50.0) == pytest.approx(0.3 * 50 + 0.7 * 100)

    def test_alpha_one_disables_smoothing(self):
        smoother = ExponentialSmoother(1.0, initial=0.0)
        assert smoother.update(42.0) == 42.0

    def test_value_before_priming_raises(self):
        with pytest.raises(RuntimeError):
            _ = ExponentialSmoother(0.5).value

    @pytest.mark.parametrize("alpha", [0.0, -0.5, 1.5])
    def test_alpha_validated(self, alpha):
        with pytest.raises(ValueError):
            ExponentialSmoother(alpha)

    def test_reset(self):
        smoother = ExponentialSmoother(0.5, initial=5.0)
        smoother.reset()
        assert not smoother.primed
        smoother.reset(initial=9.0)
        assert smoother.value == 9.0

    def test_converges_to_constant_signal(self):
        smoother = ExponentialSmoother(0.4, initial=0.0)
        for _ in range(100):
            smoother.update(77.0)
        assert smoother.value == pytest.approx(77.0, abs=1e-6)

    def test_smooths_variance(self):
        rng = np.random.default_rng(0)
        signal = 100.0 + rng.normal(0, 10, 500)
        smoother = ExponentialSmoother(0.2)
        smoothed = np.array([smoother.update(x) for x in signal])
        assert smoothed[50:].std() < signal[50:].std()


class TestHoltSmoother:
    def test_first_observation_seeds_level(self):
        holt = HoltSmoother(0.5, 0.3)
        assert not holt.primed
        assert holt.update(10.0) == 10.0
        assert holt.primed

    def test_anticipates_a_ramp(self):
        # On a steady ramp, Holt's forecast overtakes plain smoothing,
        # which always lags.
        holt = HoltSmoother(0.5, 0.5)
        plain = ExponentialSmoother(0.5)
        signal = list(range(1, 30))
        for x in signal:
            holt.update(float(x))
            plain.update(float(x))
        assert holt.value > plain.value
        assert holt.value == pytest.approx(signal[-1] + 1, abs=1.0)

    def test_converges_on_constant_signal(self):
        holt = HoltSmoother(0.4, 0.4)
        for _ in range(200):
            holt.update(50.0)
        assert holt.value == pytest.approx(50.0, abs=1e-6)

    def test_value_before_priming_raises(self):
        with pytest.raises(RuntimeError):
            _ = HoltSmoother(0.5, 0.5).value

    @pytest.mark.parametrize("alpha,beta", [(0.0, 0.5), (0.5, 0.0), (1.5, 0.5)])
    def test_weights_validated(self, alpha, beta):
        with pytest.raises(ValueError):
            HoltSmoother(alpha, beta)

    def test_reset(self):
        holt = HoltSmoother(0.5, 0.5)
        holt.update(10.0)
        holt.update(20.0)
        holt.reset(initial=5.0)
        assert holt.value == 5.0  # trend cleared


class TestSmoothSeries:
    def test_matches_stateful_smoother(self):
        values = [3.0, 7.0, 1.0, 9.0, 4.0]
        vectorised = smooth_series(values, 0.6)
        smoother = ExponentialSmoother(0.6)
        stateful = [smoother.update(v) for v in values]
        assert np.allclose(vectorised, stateful)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            smooth_series([], 0.5)

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            smooth_series([1.0], 0.0)
