"""Tests for the bursty (Markov-modulated) demand generator."""

import numpy as np
import pytest

from repro.core import WillowConfig, WillowController
from repro.power import constant_supply
from repro.sim import RandomStreams
from repro.topology import build_paper_simulation
from repro.workload import (
    BurstyDemandGenerator,
    DemandGenerator,
    SIMULATION_APPS,
    random_placement,
    scale_for_target_utilization,
)


def make_plan(seed=0, n_servers=6):
    streams = RandomStreams(seed)
    plan = random_placement(
        list(range(1, n_servers + 1)), SIMULATION_APPS, streams["placement"]
    )
    plan.scale = 10.0
    return plan, streams


class TestBurstyGenerator:
    def test_validation(self):
        plan, streams = make_plan()
        with pytest.raises(ValueError):
            BurstyDemandGenerator(plan, streams, calm_level=0.0)
        with pytest.raises(ValueError):
            BurstyDemandGenerator(plan, streams, calm_level=2.0, burst_level=1.0)
        with pytest.raises(ValueError):
            BurstyDemandGenerator(plan, streams, p_enter_burst=0.0)

    def test_long_run_mean_matches_rated_demand(self):
        plan, streams = make_plan(seed=3)
        generator = BurstyDemandGenerator(plan, streams)
        totals = [sum(generator.sample_tick().values()) for _ in range(4000)]
        expected = sum(vm.app.mean_power for vm in plan.vms) * plan.scale
        assert np.mean(totals) == pytest.approx(expected, rel=0.05)

    def test_burstier_than_plain_poisson(self):
        plan_a, streams_a = make_plan(seed=4)
        plan_b, streams_b = make_plan(seed=4)
        bursty = BurstyDemandGenerator(plan_a, streams_a)
        plain = DemandGenerator(plan_b, streams_b)
        bursty_totals = [
            sum(bursty.sample_tick().values()) for _ in range(2000)
        ]
        plain_totals = [sum(plain.sample_tick().values()) for _ in range(2000)]
        assert np.std(bursty_totals) > 1.5 * np.std(plain_totals)

    def test_regimes_actually_flip(self):
        plan, streams = make_plan(seed=5)
        generator = BurstyDemandGenerator(plan, streams)
        fractions = []
        for _ in range(500):
            generator.sample_tick()
            fractions.append(generator.burst_fraction())
        assert max(fractions) > 0.0
        assert min(fractions) < max(fractions)
        # Stationary burst probability ~ p_enter/(p_enter+p_exit) = 1/6.
        assert np.mean(fractions) == pytest.approx(1.0 / 6.0, abs=0.08)

    def test_deterministic_under_seed(self):
        plan_a, streams_a = make_plan(seed=6)
        plan_b, streams_b = make_plan(seed=6)
        g1 = BurstyDemandGenerator(plan_a, streams_a)
        g2 = BurstyDemandGenerator(plan_b, streams_b)
        for _ in range(20):
            assert g1.sample_tick() == g2.sample_tick()


class TestControllerWithBurstyDemand:
    def test_invariants_survive_bursts(self):
        tree = build_paper_simulation()
        config = WillowConfig()
        streams = RandomStreams(9)
        placement = random_placement(
            [s.node_id for s in tree.servers()],
            SIMULATION_APPS,
            streams["placement"],
        )
        scale_for_target_utilization(placement, config.server_model.slope, 0.5)
        generator = BurstyDemandGenerator(placement, streams)
        controller = WillowController(
            tree,
            config,
            constant_supply(18 * 450.0),
            placement,
            demand_source=generator,
            seed=9,
        )
        collector = controller.run(40)
        assert (
            sum(s.thermal.violations for s in controller.servers.values()) == 0
        )
        hosted = sorted(
            vm.vm_id for s in controller.servers.values() for vm in s.vms.values()
        )
        assert hosted == sorted(vm.vm_id for vm in controller.vms)

    def test_bursty_demand_causes_more_migrations_than_steady(self):
        def run(bursty: bool, seed=9):
            tree = build_paper_simulation()
            config = WillowConfig()
            streams = RandomStreams(seed)
            placement = random_placement(
                [s.node_id for s in tree.servers()],
                SIMULATION_APPS,
                streams["placement"],
            )
            scale_for_target_utilization(
                placement, config.server_model.slope, 0.6
            )
            source = (
                BurstyDemandGenerator(placement, streams)
                if bursty
                else DemandGenerator(placement, streams)
            )
            controller = WillowController(
                tree,
                config,
                constant_supply(18 * 450.0),
                placement,
                demand_source=source,
                seed=seed,
            )
            return controller.run(50)

        bursty_metrics = run(True)
        steady_metrics = run(False)
        assert (
            bursty_metrics.total_dropped_power()
            > steady_metrics.total_dropped_power()
        )
