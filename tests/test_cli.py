"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


def test_default_run(capsys):
    assert main(["--ticks", "5"]) == 0
    out = capsys.readouterr().out
    assert "18 servers" in out
    assert "fleet power" in out


def test_hot_zone_flag(capsys):
    assert main(["--ticks", "5", "--hot", "4"]) == 0
    assert "hot zone on last 4" in capsys.readouterr().out


def test_custom_branching(capsys):
    assert main(["--ticks", "3", "--branching", "3,3"]) == 0
    assert "9 servers" in capsys.readouterr().out


def test_supply_dip_runs(capsys):
    assert main(
        ["--ticks", "12", "--supply-dip", "0.4", "--dip-at", "6"]
    ) == 0


def test_export_json(tmp_path, capsys):
    target = tmp_path / "run.json"
    assert main(["--ticks", "4", "--export-json", str(target)]) == 0
    document = json.loads(target.read_text())
    assert len(document["servers"]) == 4 * 18


def test_export_csv(tmp_path, capsys):
    assert main(["--ticks", "4", "--export-csv", str(tmp_path)]) == 0
    assert (tmp_path / "servers.csv").exists()


@pytest.mark.parametrize(
    "argv",
    [
        ["--utilization", "0"],
        ["--utilization", "1.5"],
        ["--ticks", "0"],
        ["--supply-dip", "1.0"],
        ["--branching", "3,x"],
        ["--hot", "99"],
    ],
)
def test_invalid_arguments_rejected(argv, capsys):
    assert main(argv) == 2


def test_degraded_subcommand(capsys):
    assert main(
        ["degraded", "--ticks", "8", "--drop", "0.1", "--latency", "1",
         "--crashes", "1"]
    ) == 0
    out = capsys.readouterr().out
    assert "transport stats" in out
    assert "divergence vs ideal controller" in out
    assert "thermal safety" in out
    assert "VIOLATED" not in out


@pytest.mark.parametrize(
    "argv",
    [
        ["degraded", "--drop", "1.5"],
        ["degraded", "--ticks", "0"],
        ["degraded", "--utilization", "0"],
        ["degraded", "--latency", "-1"],
    ],
)
def test_degraded_invalid_arguments_rejected(argv, capsys):
    assert main(argv) == 2


def test_thermal_time_to_limit_exposed():
    # The CLI story relies on the calibrated window; sanity-check the
    # new thermal utility agrees with it end to end.
    from repro.core import WillowConfig
    from repro.thermal import ThermalParams, time_to_limit

    config = WillowConfig()
    window = config.resolved_thermal_window()
    t = time_to_limit(ThermalParams(), 25.0, 450.0)
    assert t == pytest.approx(window, rel=1e-9)


def test_time_to_limit_properties():
    import numpy as np

    from repro.thermal import ThermalParams, temperature_after, time_to_limit

    params = ThermalParams()
    # Monotone: more power, less time.
    times = time_to_limit(params, 30.0, np.array([100.0, 200.0, 400.0]))
    finite = times[np.isfinite(times)]
    assert np.all(np.diff(finite) < 0)
    # Inversion: T(time_to_limit) == T_limit when finite.
    t = time_to_limit(params, 30.0, 400.0)
    assert temperature_after(params, 30.0, 400.0, t) == pytest.approx(70.0)
    # Sustainable power never reaches the limit.
    assert time_to_limit(params, 30.0, 10.0) == float("inf")
    # Already over the limit.
    assert time_to_limit(params, 75.0, 100.0) == 0.0
    with pytest.raises(ValueError):
        time_to_limit(params, 25.0, -1.0)


def test_supply_csv_option(tmp_path, capsys):
    csv_path = tmp_path / "supply.csv"
    csv_path.write_text("time,budget\n0,8100\n5,4000\n")
    assert main(["--ticks", "10", "--supply-csv", str(csv_path)]) == 0


def test_supply_csv_missing_file(tmp_path, capsys):
    assert main(["--ticks", "3", "--supply-csv", str(tmp_path / "nope.csv")]) == 2


def test_version_flag(capsys):
    import re

    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert re.match(r"repro \d+\.\d+\.\d+", out)


def test_battery_flag_runs(capsys):
    assert main(["--ticks", "8", "--battery", "500:100"]) == 0
    assert "fleet power" in capsys.readouterr().out


@pytest.mark.parametrize(
    "spec", ["", "abc", "10:-1", "-5", "1:2:3", "0"]
)
def test_battery_flag_rejects_bad_specs(spec, capsys):
    assert main(["--ticks", "5", "--battery", spec]) == 2
    assert "battery" in capsys.readouterr().err.lower()
