"""Property-based tests for the DES kernel (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment


@given(
    delays=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=30)
)
def test_events_always_fire_in_nondecreasing_time_order(delays):
    env = Environment()
    fired = []
    for delay in delays:
        env.timeout(delay).add_callback(lambda e: fired.append(env.now))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    delays=st.lists(st.floats(0.0, 50.0), min_size=1, max_size=20),
    until=st.floats(0.0, 60.0),
)
def test_run_until_fires_exactly_the_due_events(delays, until):
    env = Environment()
    fired = []
    for i, delay in enumerate(delays):
        env.timeout(delay, value=i).add_callback(
            lambda e: fired.append(e.value)
        )
    env.run(until=until)
    due = {i for i, d in enumerate(delays) if d <= until}
    assert set(fired) == due
    assert env.now == until


@given(
    schedule=st.lists(
        st.tuples(st.floats(0.1, 20.0), st.integers(1, 5)),
        min_size=1,
        max_size=8,
    )
)
@settings(max_examples=50)
def test_interleaved_processes_conserve_work(schedule):
    """N processes each doing K steps: all steps complete, in order."""
    env = Environment()
    log = []

    def worker(env, tag, delay, steps):
        for step in range(steps):
            yield env.timeout(delay)
            log.append((tag, step))

    for tag, (delay, steps) in enumerate(schedule):
        env.process(worker(env, tag, delay, steps))
    env.run()
    # Every step of every worker ran exactly once...
    expected = {(tag, s) for tag, (_d, steps) in enumerate(schedule) for s in range(steps)}
    assert set(log) == expected and len(log) == len(expected)
    # ...and each worker's steps appear in order.
    for tag in range(len(schedule)):
        steps = [s for t, s in log if t == tag]
        assert steps == sorted(steps)


@given(seed_delays=st.lists(st.floats(0.0, 10.0), min_size=2, max_size=15))
def test_replayed_schedule_is_bit_identical(seed_delays):
    def run_once():
        env = Environment()
        trace = []
        for i, delay in enumerate(seed_delays):
            env.timeout(delay, value=i).add_callback(
                lambda e: trace.append((env.now, e.value))
            )
        env.run()
        return trace

    assert run_once() == run_once()
