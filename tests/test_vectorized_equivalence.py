"""Scalar vs. vectorized controller equivalence (the formal contract).

The vectorized tick path promises: identical *decisions* (migrations,
drops, unmatched deficits, control messages, sleep states) and floats
within ``rtol=1e-12`` of the scalar controller.  Power sums are
bit-identical until the first migration re-orders a per-host demand
sum; after that residual ulp differences remain, hence the relative
tolerance.  docs/performance.md documents the contract; this file
enforces it, together with unit tests for the individual vectorized
kernels (batched demand sampling, grouped budget allocation) and the
topology/bin caches the hot path relies on.
"""

import numpy as np
import pytest

from repro.binpack.items import Bin, Item
from repro.core.config import WillowConfig
from repro.core.controller import run_willow
from repro.core.vectorized import VectorizedWillowController
from repro.experiments.common import hot_zone_overrides
from repro.power.budget import LevelIndex, allocate_level, allocate_proportional
from repro.sim import RandomStreams
from repro.topology.tree import NodeKind, Tree
from repro.workload import DemandGenerator, SIMULATION_APPS, random_placement

RTOL = 1e-12


def _run_pair(**kwargs):
    _, scalar = run_willow(**kwargs)
    _, vector = run_willow(vectorized=True, **kwargs)
    return scalar, vector


def _server_series(collector, attr):
    return np.array([getattr(s, attr) for s in collector.server_samples])


class TestFullRunEquivalence:
    """One stressed paper-scale run compared sample by sample.

    Hot zone + utilization 0.95 exercises every branch: thermal caps,
    budget deficits, demand migrations, drops, unmatched deficits,
    consolidation sleeps and wakes.
    """

    KW = dict(
        target_utilization=0.95,
        n_ticks=150,
        seed=7,
        ambient_overrides=hot_zone_overrides(),
    )

    @pytest.fixture(scope="class")
    def pair(self):
        return _run_pair(**self.KW)

    @pytest.mark.parametrize(
        "attr", ["power", "temperature", "utilization", "demand", "budget"]
    )
    def test_server_series_match(self, pair, attr):
        scalar, vector = pair
        a, b = _server_series(scalar, attr), _server_series(vector, attr)
        assert a.shape == b.shape
        np.testing.assert_allclose(a, b, rtol=RTOL, atol=0)

    def test_sleep_states_identical(self, pair):
        scalar, vector = pair
        assert [s.asleep for s in scalar.server_samples] == [
            s.asleep for s in vector.server_samples
        ]

    def test_migrations_identical(self, pair):
        scalar, vector = pair
        key = lambda m: (m.time, m.vm_id, m.src_id, m.dst_id, m.cause)
        assert [key(m) for m in scalar.migrations] == [
            key(m) for m in vector.migrations
        ]
        assert len(scalar.migrations) > 0  # the run must exercise the path

    def test_drops_identical(self, pair):
        scalar, vector = pair
        key = lambda d: (d.time, d.node_id, d.vm_id)
        assert [key(d) for d in scalar.drops] == [key(d) for d in vector.drops]
        assert len(scalar.drops) > 0
        np.testing.assert_allclose(
            [d.power for d in scalar.drops],
            [d.power for d in vector.drops],
            rtol=RTOL,
            atol=0,
        )

    def test_unmatched_deficits_identical(self, pair):
        scalar, vector = pair
        key = lambda d: (d.time, d.node_id, d.vm_id)
        assert [key(d) for d in scalar.unmatched_deficits] == [
            key(d) for d in vector.unmatched_deficits
        ]
        np.testing.assert_allclose(
            [d.power for d in scalar.unmatched_deficits],
            [d.power for d in vector.unmatched_deficits],
            rtol=RTOL,
            atol=0,
        )

    def test_control_messages_identical(self, pair):
        scalar, vector = pair
        key = lambda m: (m.time, m.link, m.upward)
        assert [key(m) for m in scalar.messages] == [
            key(m) for m in vector.messages
        ]

    def test_switch_samples_match(self, pair):
        scalar, vector = pair
        for attr in ("base_traffic", "migration_traffic", "power"):
            np.testing.assert_allclose(
                [getattr(s, attr) for s in scalar.switch_samples],
                [getattr(s, attr) for s in vector.switch_samples],
                rtol=RTOL,
                atol=0,
            )


class TestCalmRunBitExact:
    """Without migrations nothing re-orders a sum: bit-for-bit equality."""

    def test_no_migration_run_is_bit_identical(self):
        scalar, vector = _run_pair(
            config=WillowConfig(consolidation_enabled=False),
            target_utilization=0.3,
            n_ticks=80,
            seed=3,
        )
        assert not scalar.migrations and not vector.migrations
        for attr in ("power", "temperature", "utilization", "demand", "budget"):
            a, b = _server_series(scalar, attr), _server_series(vector, attr)
            assert np.array_equal(a, b), f"{attr} differs bit-wise"


class TestVectorizedControllerGuards:
    def test_device_classes_rejected(self):
        from repro.devices import STANDARD_DEVICES

        with pytest.raises(ValueError, match="device_classes"):
            run_willow(
                config=WillowConfig(device_classes=STANDARD_DEVICES),
                n_ticks=1,
                vectorized=True,
            )

    def test_run_willow_vectorized_flag_selects_subclass(self):
        controller, _ = run_willow(n_ticks=1, vectorized=True)
        assert isinstance(controller, VectorizedWillowController)


class TestBatchedDemandSampling:
    """Block-prefetched Poisson draws are bit-identical to unbatched."""

    def _generator(self, seed, block_size):
        streams = RandomStreams(seed)
        plan = random_placement(
            [1, 2, 3], SIMULATION_APPS, streams["placement"], vms_per_server=4
        )
        plan.scale = 1.7
        return DemandGenerator(plan, streams, block_size=block_size), plan

    def test_block_size_does_not_change_draws(self):
        g1, _ = self._generator(seed=5, block_size=1)
        g2, _ = self._generator(seed=5, block_size=64)
        for _ in range(150):  # crosses several small-block refills
            np.testing.assert_array_equal(
                g1.sample_tick_array(), g2.sample_tick_array()
            )

    def test_array_and_dict_sampling_agree(self):
        g1, plan1 = self._generator(seed=8, block_size=16)
        g2, plan2 = self._generator(seed=8, block_size=16)
        for _ in range(40):
            demands = g1.sample_tick_array()
            per_host = g2.sample_tick()
            assert demands.tolist() == [vm.current_demand for vm in plan1.vms]
            expected = {}
            for vm, demand in zip(plan2.vms, demands.tolist()):
                expected[vm.host_id] = expected.get(vm.host_id, 0.0) + demand
            assert per_host == expected


class TestGroupedBudgetAllocation:
    """allocate_level == allocate_proportional per group, bit for bit."""

    def test_fuzz_matches_scalar_allocator(self):
        rng = np.random.default_rng(42)
        for _ in range(60):
            sizes = rng.integers(1, 8, size=rng.integers(1, 6))
            offsets = np.concatenate(([0], np.cumsum(sizes)[:-1]))
            n = int(sizes.sum())
            weights = np.round(rng.uniform(0, 300, n), 3)
            weights[rng.random(n) < 0.15] = 0.0  # idle children
            caps = np.round(rng.uniform(0, 420, n), 3)
            totals = np.round(rng.uniform(0, 900, len(sizes)), 3)

            alloc, unalloc = allocate_level(totals, weights, caps, offsets)

            for g, start in enumerate(offsets):
                end = start + sizes[g]
                ref_alloc, ref_unalloc = allocate_proportional(
                    float(totals[g]), weights[start:end], caps[start:end]
                )
                np.testing.assert_array_equal(
                    alloc[start:end],
                    ref_alloc,
                    err_msg=f"group {g} allocations differ",
                )
                assert unalloc[g] == ref_unalloc

    def test_level_index_reuse_matches_fresh(self):
        offsets = np.array([0, 3, 5])
        weights = np.array([10.0, 0.0, 5.0, 7.0, 7.0, 1.0, 2.0])
        caps = np.full(7, 6.0)
        totals = np.array([12.0, 20.0, 1.0])
        index = LevelIndex(offsets, 7)
        a1, u1 = allocate_level(totals, weights, caps, offsets)
        a2, u2 = allocate_level(totals, weights, caps, index=index)
        np.testing.assert_array_equal(a1, a2)
        np.testing.assert_array_equal(u1, u2)

    def test_level_index_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            LevelIndex(np.array([], dtype=np.intp), 0)
        with pytest.raises(ValueError, match="start at 0"):
            LevelIndex(np.array([1, 3]), 5)
        with pytest.raises(ValueError, match="at least one child"):
            LevelIndex(np.array([0, 2, 2]), 4)
        with pytest.raises(ValueError, match="offsets or index"):
            allocate_level(np.ones(1), np.ones(2), np.ones(2))
        with pytest.raises(ValueError, match="does not match"):
            allocate_level(
                np.ones(2), np.ones(3), np.ones(3), index=LevelIndex([0], 3)
            )

    def test_segment_sums_fold_matches_python_sum(self):
        index = LevelIndex(np.array([0, 2, 6]), 7)
        values = np.array([0.1, 0.2, 1.5, 2.5, 3.5, 4.5, 9.0])
        expected = [
            sum([0.1, 0.2]),
            sum([1.5, 2.5, 3.5, 4.5]),
            sum([9.0]),
        ]
        np.testing.assert_array_equal(index.segment_sums(values), expected)


class TestTopologyCaches:
    def test_tree_caches_invalidate_on_add_child(self):
        tree = Tree(root_level=2)
        rack = tree.add_child(tree.root, "rack", NodeKind.RACK)
        tree.add_child(rack, "s1", NodeKind.SERVER)
        assert [n.name for n in tree.servers()] == ["s1"]
        assert [n.name for n in tree.nodes_at_level(0)] == ["s1"]
        assert [n.name for n in tree.subtree_leaves(rack)] == ["s1"]
        tree.add_child(rack, "s2", NodeKind.SERVER)
        assert [n.name for n in tree.servers()] == ["s1", "s2"]
        assert [n.name for n in tree.nodes_at_level(0)] == ["s1", "s2"]
        assert [n.name for n in tree.subtree_leaves(rack)] == ["s1", "s2"]

    def test_tree_cache_returns_copies(self):
        tree = Tree(root_level=1)
        tree.add_child(tree.root, "s1", NodeKind.SERVER)
        servers = tree.servers()
        servers.clear()  # caller mutation must not poison the cache
        assert [n.name for n in tree.servers()] == ["s1"]

    def test_fabric_path_memoized(self):
        from repro.topology.builders import build_testbed
        from repro.topology.switches import SwitchFabric

        tree = build_testbed()
        fabric = SwitchFabric(tree)
        servers = tree.servers()
        src, dst = servers[0], servers[-1]
        first = fabric.path(src, dst)
        assert (src.node_id, dst.node_id) in fabric._path_cache
        second = fabric.path(src, dst)
        assert first == second
        assert len(first) > 0
        # Returned lists are copies; caller mutation must not poison it.
        second.clear()
        assert fabric.path(src, dst) == first


class TestBinLoadCache:
    def test_load_tracks_contents(self):
        b = Bin(key=1, capacity=10.0)
        assert b.load == 0.0
        b.add(Item(key="a", size=2.5))
        b.add(Item(key="b", size=1.5))
        assert b.load == pytest.approx(4.0)

    def test_load_recomputes_after_direct_mutation(self):
        # Planners mutate .contents directly; the cache keys on length.
        b = Bin(key=1, capacity=10.0)
        b.add(Item(key="a", size=2.5))
        assert b.load == pytest.approx(2.5)
        b.contents.append(Item(key="b", size=3.0))
        assert b.load == pytest.approx(5.5)
        b.contents.clear()
        assert b.load == 0.0
