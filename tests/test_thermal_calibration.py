"""Tests for thermal-constant calibration (Figs. 4 and 14 workflows)."""

import numpy as np
import pytest

from repro.thermal import (
    ThermalParams,
    fit_constants,
    generate_heating_trace,
    power_cap_curve,
)

TESTBED = ThermalParams(c1=0.2, c2=0.008, t_ambient=25.0, t_limit=70.0)


class TestGenerateHeatingTrace:
    def test_lengths(self):
        powers, temps = generate_heating_trace(TESTBED, [100.0] * 10, 0.5)
        assert len(powers) == 10
        assert len(temps) == 11

    def test_starts_at_ambient(self):
        _, temps = generate_heating_trace(TESTBED, [50.0] * 3, 1.0)
        assert temps[0] == 25.0

    def test_custom_start(self):
        _, temps = generate_heating_trace(TESTBED, [50.0] * 3, 1.0, t0=40.0)
        assert temps[0] == 40.0

    def test_heating_monotone_under_constant_power(self):
        _, temps = generate_heating_trace(TESTBED, [200.0] * 20, 1.0)
        assert np.all(np.diff(temps) > 0)

    def test_noise_reproducible_with_rng(self):
        rng1 = np.random.default_rng(5)
        rng2 = np.random.default_rng(5)
        _, a = generate_heating_trace(TESTBED, [100.0] * 5, 1.0, noise_std=0.1, rng=rng1)
        _, b = generate_heating_trace(TESTBED, [100.0] * 5, 1.0, noise_std=0.1, rng=rng2)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("bad", [[], [-5.0]])
    def test_invalid_powers_rejected(self, bad):
        with pytest.raises(ValueError):
            generate_heating_trace(TESTBED, bad, 1.0)

    def test_invalid_dt_rejected(self):
        with pytest.raises(ValueError):
            generate_heating_trace(TESTBED, [1.0], 0.0)


class TestFitConstants:
    def test_exact_recovery_without_noise(self):
        rng = np.random.default_rng(0)
        powers = rng.uniform(50.0, 232.0, size=200)
        powers, temps = generate_heating_trace(TESTBED, powers, 0.5)
        fit = fit_constants(powers, temps, 0.5, t_ambient=25.0)
        assert fit.c1 == pytest.approx(TESTBED.c1, rel=1e-2)
        assert fit.c2 == pytest.approx(TESTBED.c2, rel=5e-2)

    def test_recovery_under_measurement_noise(self):
        rng = np.random.default_rng(3)
        powers = rng.uniform(50.0, 232.0, size=2000)
        powers, temps = generate_heating_trace(
            TESTBED, powers, 0.5, noise_std=0.05, rng=rng
        )
        fit = fit_constants(powers, temps, 0.5, t_ambient=25.0)
        assert fit.c1 == pytest.approx(TESTBED.c1, rel=0.1)
        assert fit.c2 == pytest.approx(TESTBED.c2, rel=0.5)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            fit_constants([1.0, 2.0], [25.0, 26.0], 1.0, 25.0)

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            fit_constants([1.0], [25.0, 26.0], 1.0, 25.0)

    def test_as_params(self):
        powers, temps = generate_heating_trace(TESTBED, [100.0, 150.0, 200.0], 1.0)
        fit = fit_constants(powers, temps, 1.0, 25.0)
        params = fit.as_params(t_ambient=25.0, t_limit=70.0)
        assert isinstance(params, ThermalParams)
        assert params.c1 == fit.c1


class TestPowerCapCurve:
    def test_curve_decreasing_in_temperature(self):
        temps = np.arange(25.0, 71.0, 5.0)
        curve = power_cap_curve(TESTBED, temps, delta_s=1.0)
        assert np.all(np.diff(curve) < 0)

    def test_curve_linear_in_temperature(self):
        # Eq. 3 is affine in T0; second differences vanish.
        temps = np.arange(25.0, 71.0, 5.0)
        curve = power_cap_curve(TESTBED, temps, delta_s=1.0)
        second = np.diff(curve, n=2)
        assert np.allclose(second, 0.0, atol=1e-9)
