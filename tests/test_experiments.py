"""Shape tests for every reproduced figure/table.

These assert the *qualitative* claims of the paper's evaluation -- who
wins, what rises and falls, where the hot zone sits -- using reduced
tick counts so the suite stays fast.  The benchmarks run the full
configurations.
"""

import numpy as np
import pytest

from repro.experiments import (
    fig04_thermal,
    fig05_power,
    fig06_temperature,
    fig07_consolidation,
    fig09_migration_mix,
    fig10_traffic,
    fig11_switch_power,
    fig12_switch_cost,
    fig14_calibration,
    fig15_16_deficit,
    fig17_18_temps,
    fig19_table3,
    properties,
    table1_power_model,
    table2_app_profiles,
)
from repro.experiments.common import PAPER_UTILIZATIONS
from repro.experiments.runner import REGISTRY

SWEEP_KW = dict(n_ticks=60, seed=11)


class TestFig04:
    def test_chosen_constants_hit_paper_checkpoints(self):
        data = fig04_thermal.run().data
        assert data["cap_idle_cool"] == pytest.approx(450.0)
        assert data["cap_at_limit_hot"] < 25.0

    def test_curves_decrease_with_temperature(self):
        data = fig04_thermal.run().data
        for curve in data["curves"].values():
            assert np.all(np.diff(curve) < 0)


class TestFig05:
    def test_hot_zone_below_cold_at_every_utilization(self):
        data = fig05_power.run(**SWEEP_KW).data
        for cold, hot in zip(data["cold"], data["hot"]):
            assert hot < cold or cold < 150.0  # hot may match at very low U

    def test_cold_power_rises_with_utilization(self):
        data = fig05_power.run(**SWEEP_KW).data
        cold = data["cold"]
        assert cold[-1] > cold[0]
        # Broadly monotone: each point above the running max of 3 back.
        assert cold[-1] > 2.0 * cold[1]

    def test_hot_power_saturates_near_thermal_cap(self):
        data = fig05_power.run(**SWEEP_KW).data
        assert max(data["hot"]) < 310.0  # 300 W zone cap + fuzz


class TestFig06:
    def test_gap_shrinks_with_utilization(self):
        data = fig06_temperature.run(**SWEEP_KW).data
        gaps = data["gap"]
        assert np.mean(gaps[:3]) > np.mean(gaps[-3:])

    def test_hot_zone_pinned_near_ambient_at_low_utilization(self):
        data = fig06_temperature.run(**SWEEP_KW).data
        assert data["hot"][0] >= 39.0
        assert data["cold"][0] < 35.0

    def test_never_exceeds_limit(self):
        data = fig06_temperature.run(**SWEEP_KW).data
        for temps in data["per_server"]:
            assert max(temps) <= 70.0 + 1e-6


class TestFig07:
    def test_consolidation_saves_power_overall(self):
        data = fig07_consolidation.run(n_ticks=60, seed=11).data
        assert sum(data["savings"]) > 0

    def test_hot_zone_saves_most(self):
        data = fig07_consolidation.run(n_ticks=60, seed=11).data
        assert data["hot_mean_saving"] > data["cold_mean_saving"]

    def test_hot_zone_sleeps_more(self):
        data = fig07_consolidation.run(n_ticks=60, seed=11).data
        asleep = data["asleep_fraction"]
        assert np.mean(asleep[14:]) > np.mean(asleep[:14])


class TestFig09:
    def test_consolidation_dominates_low_utilization(self):
        data = fig09_migration_mix.run(**SWEEP_KW).data
        assert data["consolidation"][0] > data["demand"][0]

    def test_demand_dominates_high_utilization(self):
        data = fig09_migration_mix.run(**SWEEP_KW).data
        assert data["demand"][-2] > data["consolidation"][-2]

    def test_consolidation_declines_with_utilization(self):
        data = fig09_migration_mix.run(**SWEEP_KW).data
        consolidation = data["consolidation"]
        assert np.mean(consolidation[:3]) > np.mean(consolidation[-3:])


class TestFig10:
    def test_traffic_rises_then_falls(self):
        data = fig10_traffic.run(**SWEEP_KW).data
        fractions = data["fractions"]
        peak = int(np.argmax(fractions))
        assert 0 < peak < len(fractions) - 1  # interior peak
        assert fractions[peak] > fractions[-1]

    def test_fractions_are_small(self):
        # Migration traffic is an overhead, not the dominant traffic.
        data = fig10_traffic.run(**SWEEP_KW).data
        assert max(data["fractions"]) < 0.25


class TestFig11:
    def test_power_spread_across_switches_is_even(self):
        data = fig11_switch_power.run(**SWEEP_KW).data
        # Coefficient of variation stays modest at moderate+ load.
        for u, cv in zip(data["utilizations"], data["cv"]):
            if u >= 0.4:
                assert cv < 0.45

    def test_switch_power_rises_with_utilization(self):
        data = fig11_switch_power.run(**SWEEP_KW).data
        mean_power = [float(np.mean(row)) for row in data["per_switch"]]
        assert mean_power[-1] > mean_power[0]


class TestFig12:
    def test_cost_tracks_traffic_trend(self):
        traffic = fig10_traffic.run(**SWEEP_KW).data["fractions"]
        costs = fig12_switch_cost.run(**SWEEP_KW).data["totals"]
        # Same interior-peak shape.
        assert int(np.argmax(costs)) not in (0,)
        # Correlated series.
        assert np.corrcoef(traffic, costs)[0, 1] > 0.8


class TestTable1:
    def test_anchor_values(self):
        data = table1_power_model.run().data
        powers = dict(zip(data["utilizations"], data["powers"]))
        assert powers[0.0] == pytest.approx(159.5)
        assert powers[1.0] == pytest.approx(232.0)

    def test_sec_vc5_arithmetic(self):
        data = table1_power_model.run().data
        p = dict(zip(data["utilizations"], data["powers"]))
        assert p[0.8] + p[0.4] + p[0.2] == pytest.approx(580.0)


class TestFig14:
    def test_constants_recovered(self):
        data = fig14_calibration.run().data
        assert data["fit_c1"] == pytest.approx(data["true_c1"], rel=0.05)
        assert data["fit_c2"] == pytest.approx(data["true_c2"], rel=0.25)

    def test_cap_linear_in_headroom(self):
        data = fig14_calibration.run().data
        caps = np.asarray(data["caps"], dtype=float)
        assert np.allclose(np.diff(caps, n=2), 0.0, atol=1e-6)
        assert caps[-1] == pytest.approx(232.0)


class TestFig15_16:
    @pytest.fixture(scope="class")
    def data(self):
        return fig15_16_deficit.run().data

    def test_burst_at_every_plunge(self, data):
        for start, count in data["bursts"].items():
            assert count >= 1, f"no migration burst at plunge unit {start}"

    def test_quiet_during_plunge_persistence(self, data):
        assert data["migrations_during_persistence"] == 0

    def test_quiet_at_recovery(self, data):
        assert data["migrations_at_recovery"] == 0

    def test_off_plunge_activity_bounded(self, data):
        assert data["off_plunge_migrations"] <= 4


class TestFig17_18:
    @pytest.fixture(scope="class")
    def data(self):
        return fig17_18_temps.run().data

    def test_server_a_hottest_on_average(self, data):
        means = data["mean_temperature"]
        assert means["server-A"] >= means["server-B"] >= means["server-C"] - 1.0

    def test_all_below_limit(self, data):
        for series in data["series"].values():
            assert np.max(series) <= data["t_limit"] + 1e-6

    def test_temperature_dips_during_first_plunge(self, data):
        a = data["a_per_unit"]
        assert np.mean(a[7:10]) < np.mean(a[4:7])


class TestFig19Table3:
    @pytest.fixture(scope="class")
    def data(self):
        return fig19_table3.run().data

    def test_server_c_drained_to_zero(self, data):
        assert data["c_final"] == pytest.approx(0.0, abs=1e-6)

    def test_savings_near_paper_27_5_percent(self, data):
        assert 0.15 <= data["savings"] <= 0.35

    def test_baseline_power_near_580(self, data):
        assert data["baseline_power"] == pytest.approx(580.0, abs=30.0)

    def test_survivors_absorb_c_load(self, data):
        absorbed = (
            data["final"]["server-A"]
            + data["final"]["server-B"]
            - data["initial"]["server-A"]
            - data["initial"]["server-B"]
        )
        assert absorbed > 0.1  # C's ~20 % moved onto A/B


class TestTable2:
    def test_measured_matches_rated(self):
        data = table2_app_profiles.run().data
        assert data["measured"]["A1"] == pytest.approx(8.0, abs=0.5)
        assert data["measured"]["A2"] == pytest.approx(10.0, abs=0.5)
        assert data["measured"]["A3"] == pytest.approx(15.0, abs=0.5)


class TestProperties:
    @pytest.fixture(scope="class")
    def data(self):
        return properties.run(n_ticks=40).data

    def test_message_bound_holds(self, data):
        assert data["message_bound_ok"]
        assert data["worst_messages"] <= 2

    def test_residence_and_ping_pong_reported(self, data):
        assert data["min_residence"] > 0
        assert data["ping_pongs"] >= 0


class TestExtensions:
    def test_extension_summary_headlines(self):
        from repro.experiments import extensions

        data = extensions.run().data
        # The QoS ladder, the disk-bound hot zone, and the UPS lift.
        assert data["qos_loss"]["gold"] <= data["qos_loss"]["bronze"]
        assert data["hot_binding"] == "disk"
        assert data["hot_server_cap"] < 300.0
        assert data["buffered_min_supply"] > data["raw_min_supply"]
        assert data["colocated_aware"] > data["colocated_plain"]


class TestRunner:
    def test_registry_complete(self):
        expected = {
            "fig04", "fig05", "fig06", "fig07", "fig09", "fig10", "fig11",
            "fig12", "table1", "fig14", "fig15_16", "fig17_18",
            "fig19_table3", "table2", "properties", "extensions",
            "imbalance", "degraded", "resilience", "federation",
            "predictive", "forecast-error", "gym",
        }
        assert set(REGISTRY) == expected

    def test_main_rejects_unknown(self):
        from repro.experiments.runner import main

        assert main(["nope"]) == 2

    def test_main_lists_without_args(self, capsys):
        from repro.experiments.runner import main

        assert main([]) == 0
        assert "fig05" in capsys.readouterr().out

    def test_main_runs_single(self, capsys):
        from repro.experiments.runner import main

        assert main(["table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_result_format_renders_table(self):
        result = table1_power_model.run()
        text = result.format()
        assert "Utilization" in text
        assert "159.50" in text


class TestReport:
    def test_generate_report_subset(self, tmp_path):
        from repro.experiments.report import generate_report

        path = generate_report(tmp_path / "report.md", ["table1", "fig04"])
        text = path.read_text()
        assert "Table I" in text
        assert "Fig. 4" in text
        assert text.startswith("# Willow")

    def test_generate_report_rejects_unknown(self, tmp_path):
        from repro.experiments.report import generate_report

        with pytest.raises(KeyError):
            generate_report(tmp_path / "r.md", ["bogus"])


class TestRunnerBatteryFlag:
    def test_rejects_battery_with_parallel_workers(self, capsys):
        from repro.experiments.runner import main

        assert main(["federation", "--workers", "2", "--battery", "500"]) == 2
        assert "serial run" in capsys.readouterr().err

    def test_rejects_malformed_battery_spec(self, capsys):
        from repro.experiments.runner import main

        assert main(["federation", "--battery", "nope"]) == 2
        assert "battery" in capsys.readouterr().err

    def test_battery_override_scopes_to_the_run(self):
        from repro.experiments.common import (
            battery_override,
            set_battery_override,
        )
        from repro.power import BatterySpec

        assert battery_override() is None
        set_battery_override(BatterySpec(500.0, 100.0))
        try:
            assert battery_override().capacity == 500.0
        finally:
            set_battery_override(None)
        assert battery_override() is None
