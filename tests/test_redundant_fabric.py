"""Controller runs over a redundant switch fabric (Fig. 8's
"redundant paths with two switches, the load is balanced evenly")."""

import numpy as np
import pytest

from repro.core import WillowConfig, WillowController
from repro.power import constant_supply
from repro.sim import RandomStreams
from repro.topology import SwitchFabric, build_paper_simulation
from repro.workload import (
    SIMULATION_APPS,
    random_placement,
    scale_for_target_utilization,
)


@pytest.fixture(scope="module")
def redundant_run():
    tree = build_paper_simulation()
    config = WillowConfig()
    fabric = SwitchFabric(tree, redundancy=2)
    streams = RandomStreams(13)
    placement = random_placement(
        [s.node_id for s in tree.servers()], SIMULATION_APPS, streams["placement"]
    )
    scale_for_target_utilization(placement, config.server_model.slope, 0.5)
    controller = WillowController(
        tree,
        config,
        constant_supply(18 * 450.0),
        placement,
        fabric=fabric,
        seed=13,
    )
    return controller, controller.run(30)


def test_twice_the_switches_sampled(redundant_run):
    controller, collector = redundant_run
    internal_nodes = sum(1 for n in controller.tree if not n.is_leaf)
    assert len(collector.switch_ids()) == 2 * internal_nodes


def test_load_split_evenly_across_pairs(redundant_run):
    controller, collector = redundant_run
    for node in controller.tree:
        if node.is_leaf:
            continue
        pair = controller.fabric.at_site(node)
        assert len(pair) == 2
        a = collector.mean_switch(pair[0].switch_id, "base_traffic")
        b = collector.mean_switch(pair[1].switch_id, "base_traffic")
        assert a == pytest.approx(b, rel=1e-9)


def test_redundant_pair_carries_half_each(redundant_run):
    controller, collector = redundant_run
    # A pair's combined base traffic equals what a single switch would
    # carry: each member carries exactly half the served power below.
    for node in controller.tree:
        if node.is_leaf:
            continue
        pair = controller.fabric.at_site(node)
        combined = sum(
            collector.mean_switch(s.switch_id, "base_traffic") for s in pair
        )
        served = []
        for t in collector.times():
            tick_power = sum(
                sample.power
                for sample in collector.server_samples
                if sample.time == t
                and controller.tree.node(sample.server_id) in node.leaves()
            )
            served.append(tick_power)
        # base traffic is *dynamic served* power; wall power includes
        # static floors, so only check the half-split relation instead.
        half_each = [
            collector.mean_switch(s.switch_id, "base_traffic") for s in pair
        ]
        assert half_each[0] == pytest.approx(combined / 2, rel=1e-9)


def test_migration_traffic_split_between_pair(redundant_run):
    controller, collector = redundant_run
    if not collector.migrations:
        pytest.skip("no migrations in this run")
    # Summed migration traffic on a pair's members is equal.
    for node in controller.tree:
        if node.is_leaf:
            continue
        pair = controller.fabric.at_site(node)
        totals = [
            collector.switch_series(s.switch_id, "migration_traffic").sum()
            for s in pair
        ]
        assert totals[0] == pytest.approx(totals[1], rel=1e-9)
