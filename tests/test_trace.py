"""Tests for the structured tick-trace observability layer.

The two contracts that matter:

1. tracing disabled (the default) is decision-bit-exact with tracing
   enabled, for all four controllers -- the tracer only *reads*;
2. an enabled trace is faithful: the budget path reconstructed from
   allocation records matches the budgets the controllers actually set.
"""

import json

import pytest

from repro.control_plane import ControlPlaneConfig, LinkProfile, run_distributed
from repro.core import run_willow
from repro.plant_faults import random_plant_schedule, run_resilient
from repro.topology import build_paper_simulation
from repro.trace import (
    NULL_TRACER,
    JsonlTraceWriter,
    MemoryTraceWriter,
    TraceReader,
    Tracer,
    classify_constraint,
    trace_segments,
    tracing,
)

TICKS = 30
SEED = 11


def _decisions(collector):
    """Everything a run decided, as plain comparable values."""
    return (
        [
            (s.time, s.server_id, s.power, s.temperature, s.budget, s.asleep)
            for s in collector.server_samples
        ],
        [
            (m.time, m.vm_id, m.src_id, m.dst_id, m.demand, m.cause)
            for m in collector.migrations
        ],
        [(d.time, d.node_id, d.vm_id, d.power) for d in collector.drops],
        [
            (d.time, d.node_id, d.vm_id, d.power)
            for d in collector.unmatched_deficits
        ],
        list(collector.imbalance),
    )


def _lossy_control_plane():
    return ControlPlaneConfig(
        default_link=LinkProfile(latency_ticks=1, drop_prob=0.2)
    )


def _fault_schedule(tree):
    return random_plant_schedule(
        tree,
        seed=SEED,
        horizon_ticks=TICKS,
        n_crashes=1,
        n_sensor_faults=1,
        n_circuit_trips=1,
    )


# ------------------------------------------------------------ bit-exactness
class TestTracingIsBitExact:
    """Enabled vs disabled tracing must not change a single decision."""

    def test_scalar(self):
        _, off = run_willow(n_ticks=TICKS, seed=SEED)
        _, on = run_willow(
            n_ticks=TICKS, seed=SEED, tracer=Tracer(MemoryTraceWriter())
        )
        assert _decisions(off) == _decisions(on)

    def test_vectorized(self):
        _, off = run_willow(n_ticks=TICKS, seed=SEED, vectorized=True)
        _, on = run_willow(
            n_ticks=TICKS,
            seed=SEED,
            vectorized=True,
            tracer=Tracer(MemoryTraceWriter()),
        )
        assert _decisions(off) == _decisions(on)

    def test_distributed_lossy(self):
        _, off = run_distributed(
            n_ticks=TICKS, seed=SEED, control_plane=_lossy_control_plane()
        )
        _, on = run_distributed(
            n_ticks=TICKS,
            seed=SEED,
            control_plane=_lossy_control_plane(),
            tracer=Tracer(MemoryTraceWriter()),
        )
        assert _decisions(off) == _decisions(on)

    def test_fault_tolerant(self):
        tree = build_paper_simulation()
        _, off = run_resilient(
            tree=tree,
            plant_faults=_fault_schedule(tree),
            n_ticks=TICKS,
            seed=SEED,
        )
        tree2 = build_paper_simulation()
        _, on = run_resilient(
            tree=tree2,
            plant_faults=_fault_schedule(tree2),
            n_ticks=TICKS,
            seed=SEED,
            tracer=Tracer(MemoryTraceWriter()),
        )
        assert _decisions(off) == _decisions(on)


# ------------------------------------------------------------- faithfulness
@pytest.fixture(scope="module", params=["scalar", "vectorized"])
def traced_run(request, tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / f"{request.param}.jsonl"
    tracer = Tracer(JsonlTraceWriter(path))
    controller, collector = run_willow(
        n_ticks=TICKS,
        seed=SEED,
        vectorized=request.param == "vectorized",
        tracer=tracer,
    )
    tracer.close()
    return controller, collector, TraceReader(path)


def test_budget_path_matches_allocated_budgets(traced_run):
    """The leaf record of every budget path equals the budget the
    controller actually set, at every tick, for every server."""
    _, collector, reader = traced_run
    samples = {
        (s.time, s.server_id): s.budget for s in collector.server_samples
    }
    for tick in range(0, TICKS, 5):
        for server_id in reader.run.leaf_ids():
            path = reader.budget_path(server_id, tick)
            assert path, f"no budget path for {server_id}@{tick}"
            leaf = path[-1]
            assert leaf["node"] == server_id
            assert leaf["budget"] == pytest.approx(
                samples[(float(tick), server_id)], abs=1e-9
            )
            # The chain is parent-linked from the root grant down.
            for above, below in zip(path[1:], path[2:]):
                assert below["parent"] == above["node"]


def test_budget_path_sums_respect_parent_budget(traced_run):
    """Sibling allocations in any frame never exceed the divisible
    parent budget they were cut from."""
    _, _, reader = traced_run
    checked = 0
    for frame in reader.run.frames:
        by_parent = {}
        for record in frame.get("alloc", ()):
            by_parent.setdefault(record["parent"], []).append(record)
        for records in by_parent.values():
            total = sum(r["budget"] for r in records)
            assert total <= records[0]["parent_budget"] + 1e-6
            checked += 1
    assert checked > 0


def test_trace_frames_have_expected_sections(traced_run):
    _, collector, reader = traced_run
    frames = reader.run.frames
    assert len(frames) == TICKS
    assert all(f["type"] == "tick" for f in frames)
    # Demand is recorded every tick for every server.
    n_servers = len(reader.run.leaf_ids())
    assert all(len(f["demand"]) == n_servers for f in frames)
    # Allocations happen on the eta1 cadence (tick 0, eta1, 2*eta1...).
    alloc_ticks = [f["tick"] for f in frames if "alloc" in f]
    assert alloc_ticks[0] == 0
    assert len(alloc_ticks) >= TICKS // 8
    # Every tick carries the Eq. 9 imbalance mirror of the collector.
    assert [f["imbalance"] for f in frames] == pytest.approx(
        [w for _, w in collector.imbalance]
    )


def test_constraint_histogram_counts_every_alloc_record(traced_run):
    _, _, reader = traced_run
    counts = reader.constraint_histogram()
    total = sum(
        len(f.get("alloc", ())) for f in reader.run.frames
    )
    assert sum(counts.values()) == total > 0
    leaf_only = reader.constraint_histogram(level=0)
    assert sum(leaf_only.values()) < total


def test_fault_run_trace_records_event_edges(tmp_path):
    tree = build_paper_simulation()
    path = tmp_path / "faulty.jsonl"
    tracer = Tracer(JsonlTraceWriter(path))
    _, collector = run_resilient(
        tree=tree,
        plant_faults=_fault_schedule(tree),
        n_ticks=TICKS,
        seed=SEED,
        tracer=tracer,
    )
    tracer.close()
    reader = TraceReader(path)
    events = reader.events()
    assert len(events) == len(collector.plant_events)
    assert {e["kind"] for e in events} == {
        e.kind for e in collector.plant_events
    }
    # Each event frame matches the collector's recorded time.
    for trace_event, plant_event in zip(events, collector.plant_events):
        assert trace_event["t"] == plant_event.time
        assert trace_event["node"] == plant_event.node_id


def test_distributed_trace_marks_stale_directives(tmp_path):
    path = tmp_path / "lossy.jsonl"
    tracer = Tracer(JsonlTraceWriter(path))
    run_distributed(
        n_ticks=60,
        seed=SEED,
        control_plane=_lossy_control_plane(),
        tracer=tracer,
    )
    tracer.close()
    reader = TraceReader(path)
    allocs = [
        r for f in reader.run.frames for r in f.get("alloc", ())
    ]
    assert allocs
    # Under latency-1 links, directives cascade across tick boundaries:
    # some records carry the older tick their budget was computed at.
    assert any("source_tick" in r for r in allocs)
    # budget_path still resolves for every server.
    for server_id in reader.run.leaf_ids():
        assert reader.budget_path(server_id, reader.last_tick())


# ------------------------------------------------------------------ writers
def test_jsonl_writer_rotates_and_reader_spans_segments(tmp_path):
    path = tmp_path / "rot.jsonl"
    tracer = Tracer(JsonlTraceWriter(path, max_bytes=64 * 1024))
    run_willow(n_ticks=40, seed=SEED, tracer=tracer)
    tracer.close()
    segments = trace_segments(path)
    assert len(segments) > 1
    assert segments[-1] == path
    reader = TraceReader(path)
    assert len(reader.run.frames) == 40
    assert [f["tick"] for f in reader.run.frames] == list(range(40))
    assert reader.budget_path(reader.run.leaf_ids()[0], 39)


def test_jsonl_writer_is_line_delimited_json(tmp_path):
    path = tmp_path / "plain.jsonl"
    tracer = Tracer(JsonlTraceWriter(path, max_bytes=None))
    run_willow(n_ticks=5, seed=SEED, tracer=tracer)
    tracer.close()
    lines = path.read_text().splitlines()
    assert len(lines) == 6  # meta + 5 ticks
    meta = json.loads(lines[0])
    assert meta["type"] == "meta"
    assert {n["id"] for n in meta["nodes"] if n["leaf"]} == {
        s.node_id for s in build_paper_simulation().servers()
    }
    assert json.loads(lines[-1])["type"] == "tick"


def test_trace_segments_missing_file(tmp_path):
    with pytest.raises(FileNotFoundError):
        trace_segments(tmp_path / "absent.jsonl")


# ------------------------------------------------------------------- tracer
def test_null_tracer_is_disabled_and_inert():
    assert NULL_TRACER.enabled is False
    NULL_TRACER.write_meta(None, None)  # must not touch its arguments
    assert NULL_TRACER._frame is None


def test_records_outside_a_frame_are_dropped():
    writer = MemoryTraceWriter()
    tracer = Tracer(writer)
    tracer.record_drop(1, 2, 3.0)
    tracer.record_event("x", 1)
    tracer.flush()
    assert writer.frames == []


def test_classify_constraint():
    kw = dict(leaf=True, circuit_limit=450.0)
    assert classify_constraint(0.0, 10.0, 0.0, **kw) == "zero_cap"
    assert classify_constraint(450.0, 500.0, 450.0, **kw) == "circuit_rating"
    assert classify_constraint(300.0, 500.0, 300.0, **kw) == "thermal_cap"
    assert classify_constraint(300.0, 500.0, 300.0, leaf=False) == (
        "aggregate_cap"
    )
    assert classify_constraint(120.0, 100.0, 450.0, **kw) == "surplus_share"
    assert classify_constraint(100.0, 100.0, 450.0, **kw) == "demand_met"
    assert classify_constraint(80.0, 100.0, 450.0, **kw) == "sibling_share"


def test_collector_forwards_into_open_frame():
    from repro.core.events import Drop, PlantEvent
    from repro.metrics import MetricsCollector

    writer = MemoryTraceWriter()
    tracer = Tracer(writer)
    tracer._run = 0
    collector = MetricsCollector(tracer=tracer)
    tracer.begin_tick(0, 0.0)
    collector.record_drop(Drop(0.0, 5, 9, 12.0))
    collector.record_unmatched(Drop(0.0, 6, 10, 7.0))
    collector.record_plant_event(PlantEvent(0.0, "server_crash", 5))
    collector.record_imbalance(0.0, 4.5)
    tracer.flush()
    (frame,) = writer.frames
    assert frame["drops"] == [[5, 9, 12.0]]
    assert frame["unmatched"] == [[6, 10, 7.0]]
    assert frame["events"] == [
        {"kind": "server_crash", "node": 5, "detail": ""}
    ]
    assert frame["imbalance"] == 4.5


def test_ambient_tracing_context_manager(tmp_path):
    path = tmp_path / "ambient.jsonl"
    with tracing(path) as tracer:
        assert tracer.enabled
        run_willow(n_ticks=5, seed=SEED)  # no tracer kwarg: adopts ambient
    reader = TraceReader(path)
    assert len(reader.run.frames) == 5
    # Outside the block the ambient tracer is NULL again.
    _, collector = run_willow(n_ticks=2, seed=SEED)
    assert collector.tracer is NULL_TRACER


# ---------------------------------------------------------------------- CLI
def test_cli_trace_round_trip(tmp_path, capsys):
    from repro import cli

    trace_path = tmp_path / "run.trace"
    assert (
        cli.main(
            [
                "resilience",
                "--ticks", "40",
                "--seed", "7",
                "--crashes", "2",
                "--trips", "1",
                "--trace", str(trace_path),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert f"wrote trace to {trace_path}" in out

    # Overview mode.
    assert cli.main(["trace", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "FaultTolerantWillowController" in out
    assert "binding constraints" in out

    # Per-server causal explanation.
    reader = TraceReader(trace_path)
    server = reader.run.leaf_ids()[0]
    assert (
        cli.main(
            ["trace", str(trace_path), "--server", str(server), "--tick", "20"]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "budget path (root -> server)" in out
    assert "datacenter" in out

    # Histogram and fault edges.
    assert cli.main(["trace", str(trace_path), "--histogram", "--events"]) == 0
    out = capsys.readouterr().out
    assert "fault edge(s):" in out
    assert "server_crash" in out


def test_cli_trace_rejects_missing_file(tmp_path, capsys):
    from repro import cli

    assert cli.main(["trace", str(tmp_path / "nope.jsonl")]) == 2
    assert "trace:" in capsys.readouterr().err


# ------------------------------------------------------- batched federation
def _traced_federation(batched):
    """A 2-site solar federation over vectorized site controllers,
    traced at both the coordinator and site levels.

    ``batched=False`` drives the same vectorized controllers through
    the scalar site-major :class:`FederationCoordinator` -- the frame
    reference the batched coordinator must reproduce exactly.
    """
    from dataclasses import replace

    from repro.experiments.fig_federation import build_specs
    from repro.federation import build_federation

    specs = [replace(s, vectorized=True) for s in build_specs(2, seed=SEED)]
    fed_writer = MemoryTraceWriter()
    site_writer = MemoryTraceWriter()
    coordinator = build_federation(
        specs,
        n_ticks=TICKS,
        policy="proportional",
        vectorized=batched,
        tracer=Tracer(fed_writer),
        site_tracer=Tracer(site_writer),
    )
    coordinator.run(TICKS)
    return coordinator, fed_writer.frames, site_writer.frames


def test_batched_federation_frames_match_scalar_coordinator():
    """With site tracing on, the batched coordinator's frames -- both
    the coordinator-level grant/migration frames and every site's
    per-tick budget frames -- must be byte-identical to the scalar
    site-major coordinator over the same vectorized controllers."""
    _, fed_scalar, site_scalar = _traced_federation(batched=False)
    _, fed_batched, site_batched = _traced_federation(batched=True)
    assert fed_scalar == fed_batched
    assert site_scalar == site_batched


def test_batched_federation_fused_tick_coordinator_frames_match():
    """Coordinator-level tracing alone leaves the fused array tick
    active; its rebalance decisions (grants, cross-site migrations)
    must still trace identically to the scalar coordinator."""
    from dataclasses import replace

    from repro.experiments.fig_federation import build_specs
    from repro.federation import build_federation

    frames = []
    for batched in (False, True):
        specs = [
            replace(s, vectorized=True) for s in build_specs(2, seed=SEED)
        ]
        writer = MemoryTraceWriter()
        coordinator = build_federation(
            specs,
            n_ticks=TICKS,
            policy="proportional",
            vectorized=batched,
            tracer=Tracer(writer),
        )
        coordinator.run(TICKS)
        frames.append(writer.frames)
    assert frames[0] == frames[1]


def test_federated_site_frames_are_faithful_to_budgets():
    """Budget-path faithfulness, federated: every leaf allocation
    record in a batched site's tick frame must carry the budget that
    site's controller actually set (cross-checked against the
    collector's per-tick server samples)."""
    coordinator, _, site_frames = _traced_federation(batched=True)
    tick_frames = [f for f in site_frames if f.get("type") == "tick"]
    n_sites = len(coordinator.sites)
    assert tick_frames, "site tracer recorded no tick frames"
    # Sites tick in order, so frames interleave site0, site1, ... per tick.
    checked = 0
    for position, frame in enumerate(tick_frames):
        site = coordinator.sites[position % n_sites]
        recorded = {
            s.server_id: s.budget
            for s in site.controller.collector.server_samples
            if s.time == frame["t"]
        }
        leaf_ids = set(site.controller.servers.keys())
        for record in frame.get("alloc", ()):
            if record["node"] not in leaf_ids:
                continue
            assert record["node"] in recorded
            assert record["budget"] == recorded[record["node"]]
            checked += 1
    assert checked > 0, "no leaf allocation records to check"
