"""Tests for the geo-federation layer (:mod:`repro.federation`).

The load-bearing contract is bit-exactness: a single-site federation
under the ``neutral`` policy must reproduce the scalar
``WillowController`` exactly -- same decisions, same float trajectories
-- because the coordinator then adds nothing but an alternative driver
loop.  Everything else (policies, WAN cost charging, the experiment's
headline claims) builds on that foundation.
"""

import dataclasses

import pytest

from repro.core import WillowConfig
from repro.core.controller import WillowController, run_willow
from repro.federation import (
    FederationConfig,
    FederationCoordinator,
    POLICIES,
    SiteSpec,
    SiteStatus,
    Transfer,
    build_site,
    greedy_greenest,
    neutral,
    price_aware,
    proportional,
    run_federation,
)
from repro.metrics.federation import summarize_federation
from repro.power import constant_supply, renewable_supply


def collector_series(collector):
    """All list-typed record series of a collector, keyed by name."""
    return {
        f.name: getattr(collector, f.name)
        for f in dataclasses.fields(collector)
        if isinstance(getattr(collector, f.name), list)
    }


# --------------------------------------------------------------- contract
class TestBitExactness:
    def test_single_site_neutral_matches_scalar(self):
        """The acceptance contract: decisions AND float trajectories."""
        _, scalar = run_willow(n_ticks=60, seed=3, target_utilization=0.5)
        coordinator = run_federation(
            [SiteSpec(name="solo", seed=3, target_utilization=0.5)],
            n_ticks=60,
            policy="neutral",
        )
        federated = coordinator.sites[0].collector

        scalar_series = collector_series(scalar)
        federated_series = collector_series(federated)
        assert scalar_series.keys() == federated_series.keys()
        for name in scalar_series:
            # Dataclass equality compares every float field exactly;
            # rtol=1e-12 is the ceiling, bit-equality is the target.
            assert scalar_series[name] == federated_series[name], name
        assert not coordinator.cross_migrations

    def test_single_site_neutral_matches_scalar_under_deficit(self):
        """Bit-exactness must also hold when budgets actually bind."""
        supply = renewable_supply(4000.0, cloud_noise=0.0)
        _, scalar = run_willow(
            n_ticks=96, seed=7, target_utilization=0.5, supply=supply
        )
        coordinator = run_federation(
            [
                SiteSpec(
                    name="solo", seed=7, target_utilization=0.5,
                    supply=supply,
                )
            ],
            n_ticks=96,
            policy="neutral",
        )
        federated = coordinator.sites[0].collector
        for name, series in collector_series(scalar).items():
            assert series == collector_series(federated)[name], name

    def test_neutral_sites_do_not_interact(self):
        """Under ``neutral``, changing one site leaves the others'
        trajectories untouched -- sites are genuinely isolated."""
        base = dict(seed=5, target_utilization=0.4)
        a = run_federation(
            [
                SiteSpec(name="x", **base),
                SiteSpec(name="y", seed=9, target_utilization=0.3),
            ],
            n_ticks=40,
            policy="neutral",
        )
        b = run_federation(
            [
                SiteSpec(name="x", **base),
                SiteSpec(name="y", seed=11, target_utilization=0.7),
            ],
            n_ticks=40,
            policy="neutral",
        )
        for name, series in collector_series(a.sites[0].collector).items():
            assert series == collector_series(b.sites[0].collector)[name]

    def test_vm_ids_are_unique_across_sites(self):
        coordinator = run_federation(
            [SiteSpec(name="a", seed=1), SiteSpec(name="b", seed=2)],
            n_ticks=4,
            policy="neutral",
        )
        ids = [
            vm.vm_id
            for site in coordinator.sites
            for vm in site.controller.placement.vms
        ]
        assert len(ids) == len(set(ids))


# --------------------------------------------------------------- policies
def status(name, supply, demand, carbon=1.0, price=1.0):
    return SiteStatus(
        name=name,
        supply=supply,
        smoothed_demand=demand,
        carbon=carbon,
        price=price,
    )


class TestPolicies:
    def test_registry_contents(self):
        assert set(POLICIES) == {
            "neutral", "proportional", "greedy-greenest", "price-aware",
            "predictive",
        }

    def test_neutral_never_shifts(self):
        statuses = [status("a", 0.0, 500.0), status("b", 900.0, 100.0)]
        assert neutral(statuses, margin=0.0) == []

    def test_proportional_splits_by_headroom(self):
        statuses = [
            status("needy", 100.0, 400.0),  # deficit 300
            status("big", 700.0, 100.0),  # headroom 600
            status("small", 400.0, 100.0),  # headroom 300
        ]
        transfers = proportional(statuses, margin=0.0)
        shares = {t.dst: t.watts for t in transfers}
        assert all(t.src == "needy" for t in transfers)
        assert shares["big"] == pytest.approx(200.0)
        assert shares["small"] == pytest.approx(100.0)

    def test_proportional_respects_margin(self):
        statuses = [
            status("needy", 0.0, 1000.0),
            status("donor", 500.0, 100.0),  # headroom 400
        ]
        transfers = proportional(statuses, margin=150.0)
        assert sum(t.watts for t in transfers) == pytest.approx(250.0)

    def test_greedy_greenest_prefers_low_carbon(self):
        statuses = [
            status("needy", 0.0, 100.0),
            status("coal", 800.0, 100.0, carbon=900.0),
            status("wind", 300.0, 100.0, carbon=10.0),
        ]
        transfers = greedy_greenest(statuses, margin=0.0)
        assert transfers[0].dst == "wind"
        assert transfers[0].watts == pytest.approx(100.0)
        assert len(transfers) == 1  # deficit fully met by the green site

    def test_price_aware_refuses_pricier_donors(self):
        statuses = [
            status("needy", 0.0, 200.0, price=50.0),
            status("cheap", 400.0, 100.0, price=20.0),
            status("pricey", 900.0, 100.0, price=80.0),
        ]
        transfers = price_aware(statuses, margin=0.0)
        assert {t.dst for t in transfers} == {"cheap"}

    def test_transfer_validation(self):
        with pytest.raises(ValueError):
            Transfer(src="a", dst="a", watts=10.0)
        with pytest.raises(ValueError):
            Transfer(src="a", dst="b", watts=0.0)

    def test_status_headroom_and_deficit(self):
        surplus = status("a", 500.0, 100.0)
        assert surplus.headroom == 400.0
        assert surplus.deficit == 0.0
        starved = status("b", 100.0, 500.0)
        assert starved.headroom == -400.0
        assert starved.deficit == 400.0


# ----------------------------------------------------------- coordinator
class TestCoordinatorValidation:
    def test_rejects_empty_federation(self):
        with pytest.raises(ValueError, match="at least one site"):
            FederationCoordinator([])

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="unique"):
            run_federation(
                [SiteSpec(name="dup", seed=1), SiteSpec(name="dup", seed=2)],
                n_ticks=2,
            )

    def test_rejects_mismatched_cadence(self):
        specs = [
            SiteSpec(name="a", config=WillowConfig(eta1=4)),
            SiteSpec(name="b", config=WillowConfig(eta1=5)),
        ]
        with pytest.raises(ValueError, match="eta1"):
            run_federation(specs, n_ticks=2)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown federation policy"):
            run_federation(
                [SiteSpec(name="a")], n_ticks=2, policy="teleport"
            )

    def test_rejects_nonpositive_ticks(self):
        with pytest.raises(ValueError, match="n_ticks"):
            run_federation([SiteSpec(name="a")], n_ticks=0)

    def test_site_spec_validation(self):
        with pytest.raises(ValueError, match="name"):
            SiteSpec(name="")
        with pytest.raises(ValueError, match="target_utilization"):
            SiteSpec(name="a", target_utilization=0.0)

    def test_callable_policy_accepted(self):
        coordinator = run_federation(
            [SiteSpec(name="a")], n_ticks=8, policy=neutral
        )
        assert coordinator.cross_migrations == []


def anti_correlated_specs(n_ticks=96, utilization=0.4):
    return [
        SiteSpec(
            name="west", seed=1, target_utilization=utilization,
            supply=renewable_supply(5200.0, base_fraction=0.3,
                                    cloud_noise=0.0),
        ),
        SiteSpec(
            name="east", seed=2, target_utilization=utilization,
            supply=renewable_supply(5200.0, base_fraction=0.3,
                                    cloud_noise=0.0, phase=0.5),
        ),
    ]


class TestCrossSiteShifting:
    def test_shifting_happens_and_is_recorded(self):
        coordinator = run_federation(
            anti_correlated_specs(), n_ticks=96, policy="proportional"
        )
        assert coordinator.cross_migrations
        sites = {site.name for site in coordinator.sites}
        for migration in coordinator.cross_migrations:
            assert migration.src_site in sites
            assert migration.dst_site in sites
            assert migration.src_site != migration.dst_site
            assert migration.demand > 0
            # The Eq. 5-9 inputs that justified the move.
            assert migration.src_deficit > 0
            assert migration.dst_surplus >= 0
        sent = sum(site.vms_sent for site in coordinator.sites)
        received = sum(site.vms_received for site in coordinator.sites)
        assert sent == received == len(coordinator.cross_migrations)

    def test_moved_vms_keep_their_demand_stream(self):
        """A shifted VM's home placement never mutates, so the per-VM
        demand sequence is unaffected by hosting decisions."""
        iso = run_federation(
            anti_correlated_specs(), n_ticks=96, policy="neutral"
        )
        fed = run_federation(
            anti_correlated_specs(), n_ticks=96, policy="proportional"
        )
        assert fed.cross_migrations
        for iso_site, fed_site in zip(iso.sites, fed.sites):
            iso_total = sum(
                vm.app.mean_power for vm in iso_site.controller.placement.vms
            )
            fed_total = sum(
                vm.app.mean_power for vm in fed_site.controller.placement.vms
            )
            assert iso_total == fed_total
            assert (
                [vm.vm_id for vm in iso_site.controller.placement.vms]
                == [vm.vm_id for vm in fed_site.controller.placement.vms]
            )

    def test_wan_cost_charged_on_both_ends(self):
        specs = anti_correlated_specs()
        sites = []
        offset = 0
        for spec in specs:
            site = build_site(spec, n_ticks=16, vm_id_offset=offset)
            offset += len(site.controller.placement.vms)
            sites.append(site)
        coordinator = FederationCoordinator(
            sites,
            federation=FederationConfig(
                policy="neutral", wan_cost_power=33.0, wan_cost_ticks=3
            ),
        )
        coordinator.run(8)  # settle smoothed demand

        src_site, dst_site = coordinator.sites
        src = next(
            s for s in src_site.controller.servers.values() if s.vms
        )
        vm = next(iter(src.vms.values()))
        vm.current_demand = max(vm.current_demand, 1.0)
        dst = dst_site.controller.servers[src.node.node_id]
        before_src = src.migration_cost_demand
        before_dst = dst.migration_cost_demand
        coordinator._move_vm(
            vm,
            src_site,
            src.node.node_id,
            dst_site,
            dst.node.node_id,
            8.0,
            src_deficit=1.0,
            dst_surplus=vm.current_demand,
        )
        assert src.migration_cost_demand == before_src + 33.0
        assert dst.migration_cost_demand == before_dst + 33.0
        assert vm.vm_id in dst.vms and vm.vm_id not in src.vms
        [migration] = coordinator.cross_migrations
        assert migration.wan_cost_power == 33.0
        assert migration.src_site == "west"
        assert migration.dst_site == "east"

    def test_wan_cost_defaults_scale_intra_site_cost(self):
        coordinator = run_federation(
            anti_correlated_specs(), n_ticks=40, policy="proportional"
        )
        config = coordinator.sites[0].config
        assert coordinator.cross_migrations
        for migration in coordinator.cross_migrations:
            assert migration.wan_cost_power == pytest.approx(
                4.0 * config.migration_cost_power
            )


# -------------------------------------------------------------- summary
class TestFederationSummary:
    def test_totals_are_site_sums(self):
        coordinator = run_federation(
            anti_correlated_specs(), n_ticks=48, policy="proportional"
        )
        summary = summarize_federation(coordinator)
        assert set(summary.sites) == {"west", "east"}
        assert summary.total_dropped_power == pytest.approx(
            sum(s.dropped_power for s in summary.sites.values())
        )
        assert summary.peak_temperature == max(
            s.peak_temperature for s in summary.sites.values()
        )
        assert summary.cross_migrations == len(coordinator.cross_migrations)
        formatted = summary.format()
        assert "west" in formatted and "east" in formatted
        assert "cross-site migrations" in formatted


# ------------------------------------------------------------ experiment
class TestFederationExperiment:
    def test_shifting_strictly_reduces_drops_with_thermal_safety(self):
        """The acceptance criterion: every sweep cell shows a strict
        dropped-demand reduction and zero thermal-limit violations."""
        from repro.experiments.fig_federation import run

        result = run()  # shipped defaults: 2 sites, 192 ticks, 4 cells
        assert result.data["sweep"]
        for cell in result.data["sweep"].values():
            assert (
                cell["federated_dropped"] < cell["isolated_dropped"]
            ), cell
            assert cell["violations"] == 0
            assert cell["worst_temp"] <= result.data["t_limit"] + 1e-6
            assert cell["cross_migrations"] > 0

    def test_registered_in_runner(self):
        from repro.experiments.runner import REGISTRY

        assert "federation" in REGISTRY


# ------------------------------------------------------------------ trace
class TestFederationTrace:
    def test_trace_has_meta_grants_and_migrations(self, tmp_path):
        from repro.trace import JsonlTraceWriter, Tracer, TraceReader

        path = tmp_path / "fed.trace"
        tracer = Tracer(JsonlTraceWriter(path))
        run_federation(
            anti_correlated_specs(),
            n_ticks=48,
            policy="proportional",
            tracer=tracer,
        )
        tracer.close()

        reader = TraceReader(path)
        run = reader.run
        assert run.controller == "FederationCoordinator"
        assert run.meta["federation"]["sites"] == ["west", "east"]
        assert run.meta["federation"]["policy"] == "proportional"
        grants = [
            grant
            for frame in run.frames
            for grant in frame.get("site_grants", [])
        ]
        assert grants
        assert {g["site"] for g in grants} == {"west", "east"}
        for grant in grants:
            assert grant["headroom"] == pytest.approx(
                grant["supply"] - grant["smoothed_demand"]
            )
        migrations = [
            m
            for frame in run.frames
            for m in frame.get("fed_migrations", [])
        ]
        assert migrations
        for migration in migrations:
            assert migration["src_site"] != migration["dst_site"]
            assert migration["wan_cost"] > 0

    def test_disabled_tracer_records_nothing(self):
        coordinator = run_federation(
            anti_correlated_specs(), n_ticks=24, policy="proportional"
        )
        assert coordinator.tracer.enabled is False


# ------------------------------------------------------------------- CLI
class TestFederationCli:
    def test_federation_subcommand(self, capsys):
        from repro.cli import main

        assert main(["federation", "--sites", "2", "--ticks", "12"]) == 0
        out = capsys.readouterr().out
        assert "Federated Willow run" in out
        assert "thermal safety" in out

    def test_federation_neutral_single_site(self, capsys):
        from repro.cli import main

        assert main(
            [
                "federation", "--sites", "1", "--ticks", "8",
                "--policy", "neutral",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "cross-site migrations   : 0" in out

    @pytest.mark.parametrize(
        "argv",
        [
            ["federation", "--sites", "0"],
            ["federation", "--ticks", "0"],
            ["federation", "--utilization", "0"],
            ["federation", "--policy", "teleport"],
            ["federation", "--battery", "nope"],
            ["federation", "--battery", "-5"],
        ],
    )
    def test_federation_invalid_arguments(self, argv, capsys):
        from repro.cli import main

        assert main(argv) == 2


# ------------------------------------------------- supporting machinery
class TestSupportingPieces:
    def test_environment_advance(self):
        from repro.sim.core import Environment, SimulationError

        env = Environment()
        env.advance(2.5)
        assert env.now == 2.5
        with pytest.raises(SimulationError):
            env.advance(-1.0)
        env.timeout(1.0)
        with pytest.raises(SimulationError, match="scheduled"):
            env.advance(1.0)

    def test_renewable_supply_phase_shifts_the_day(self):
        base = renewable_supply(1000.0, cloud_noise=0.0)
        shifted = renewable_supply(1000.0, cloud_noise=0.0, phase=0.5)
        # Half a day of phase: noon of one is midnight of the other.
        assert shifted.at(0.0) == pytest.approx(base.at(48.0))
        assert shifted.at(48.0) == pytest.approx(base.at(0.0), rel=1e-6)
        # phase=0 is the documented default behaviour, bit-exact.
        assert renewable_supply(1000.0, cloud_noise=0.0, phase=0.0) == base

    def test_build_site_selects_fault_tolerant_controller(self):
        from repro.plant_faults import random_plant_schedule
        from repro.plant_faults.controller import (
            FaultTolerantWillowController,
        )
        from repro.topology import build_paper_simulation

        tree = build_paper_simulation()
        schedule = random_plant_schedule(
            tree, seed=1, horizon_ticks=20, n_crashes=1
        )
        site = build_site(
            SiteSpec(name="faulty", plant_faults=schedule), n_ticks=20
        )
        assert isinstance(
            site.controller, FaultTolerantWillowController
        )
        plain = build_site(SiteSpec(name="clean"), n_ticks=20)
        assert type(plain.controller) is WillowController

    def test_site_headroom_uses_delivered_supply(self):
        site = build_site(
            SiteSpec(name="a", supply=constant_supply(3000.0)), n_ticks=8
        )
        site.controller._tick()
        assert site.supply_at(0.0) == 3000.0
        assert site.headroom(0.0) == pytest.approx(
            3000.0 - site.smoothed_demand()
        )
