"""Tests for the canonical paper topologies."""

import pytest

from repro.topology import (
    NodeKind,
    build_balanced,
    build_paper_simulation,
    build_testbed,
)


class TestPaperSimulation:
    def test_four_levels(self):
        tree = build_paper_simulation()
        assert tree.height == 4

    def test_eighteen_servers(self):
        tree = build_paper_simulation()
        assert len(tree.servers()) == 18

    def test_server_names_one_based(self):
        tree = build_paper_simulation()
        names = [s.name for s in tree.servers()]
        assert names == [f"server-{i}" for i in range(1, 19)]

    def test_structure_2_racks_3_enclosures_3_servers(self):
        tree = build_paper_simulation()
        racks = tree.nodes_at_level(2)
        assert len(racks) == 2
        for rack in racks:
            assert rack.kind is NodeKind.RACK
            assert len(rack.children) == 3
            for enclosure in rack.children:
                assert enclosure.kind is NodeKind.ENCLOSURE
                assert len(enclosure.children) == 3

    def test_validates(self):
        build_paper_simulation().validate()


class TestTestbed:
    def test_three_servers_named_a_b_c(self):
        tree = build_testbed()
        assert [s.name for s in tree.servers()] == [
            "server-A",
            "server-B",
            "server-C",
        ]

    def test_two_level_hierarchy(self):
        tree = build_testbed()
        assert tree.height == 3
        assert len(tree.nodes_at_level(1)) == 2

    def test_ab_share_group_c_alone(self):
        tree = build_testbed()
        a = tree.by_name("server-A")
        b = tree.by_name("server-B")
        c = tree.by_name("server-C")
        assert a.parent is b.parent
        assert c.parent is not a.parent


class TestBalanced:
    @pytest.mark.parametrize(
        "branching,expected",
        [([2], 2), ([2, 3], 6), ([2, 3, 3], 18), ([4, 4, 4], 64)],
    )
    def test_server_count_is_product(self, branching, expected):
        assert len(build_balanced(branching).servers()) == expected

    def test_height_matches_depth(self):
        assert build_balanced([2, 2, 2, 2]).height == 5

    def test_leaves_are_servers(self):
        tree = build_balanced([3, 2])
        for server in tree.servers():
            assert server.kind is NodeKind.SERVER
            assert server.level == 0

    def test_empty_branching_rejected(self):
        with pytest.raises(ValueError):
            build_balanced([])

    def test_zero_fanout_rejected(self):
        with pytest.raises(ValueError):
            build_balanced([2, 0])
