"""Tests for Eqs. 5-9 (deficit / surplus / imbalance)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import power_deficit, power_imbalance, power_surplus
from repro.core.deficits import (
    deficits_and_surpluses,
    level_deficit,
    level_surplus,
)


def test_deficit_positive_part():
    assert power_deficit(100.0, 80.0) == 20.0
    assert power_deficit(80.0, 100.0) == 0.0


def test_surplus_positive_part():
    assert power_surplus(80.0, 100.0) == 20.0
    assert power_surplus(100.0, 80.0) == 0.0


def test_vectorised_matches_scalar():
    demands = [100.0, 50.0, 75.0]
    budgets = [80.0, 60.0, 75.0]
    deficits, surpluses = deficits_and_surpluses(demands, budgets)
    assert deficits.tolist() == [20.0, 0.0, 0.0]
    assert surpluses.tolist() == [0.0, 10.0, 0.0]


def test_level_aggregates_are_maxima():
    demands = [100.0, 50.0]
    budgets = [80.0, 90.0]
    assert level_deficit(demands, budgets) == 20.0
    assert level_surplus(demands, budgets) == 40.0


def test_imbalance_eq9():
    # P_imb = P_def + min(P_def, P_sur)
    demands = [100.0, 50.0]
    budgets = [80.0, 90.0]
    assert power_imbalance(demands, budgets) == 20.0 + min(20.0, 40.0)


def test_imbalance_zero_when_balanced():
    assert power_imbalance([50.0, 50.0], [50.0, 50.0]) == 0.0


def test_imbalance_pure_deficit():
    # No surplus anywhere: imbalance equals the worst deficit.
    assert power_imbalance([100.0, 100.0], [80.0, 90.0]) == 20.0


def test_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        deficits_and_surpluses([1.0], [1.0, 2.0])


@given(
    values=st.lists(
        st.tuples(st.floats(0, 1000), st.floats(0, 1000)),
        min_size=1,
        max_size=10,
    )
)
def test_deficit_surplus_exclusive_per_node(values):
    demands = [d for d, _ in values]
    budgets = [b for _, b in values]
    deficits, surpluses = deficits_and_surpluses(demands, budgets)
    # A node never has both a deficit and a surplus.
    assert np.all((deficits == 0) | (surpluses == 0))
    # And their difference reconstructs demand - budget.
    assert np.allclose(
        deficits - surpluses, np.array(demands) - np.array(budgets)
    )
