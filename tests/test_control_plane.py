"""Distributed control-plane tests (transport, agents, faults, contract).

Two pillars, mirroring ``tests/test_vectorized_equivalence.py``:

* **Equivalence** -- with a perfect transport and no faults the
  :class:`DistributedWillowController` reproduces the scalar controller
  *exactly*: every budget, power and temperature sample, every
  migration, and the control-message multiset.
* **Safety under degradation** -- under any injected fault schedule
  (loss, latency, duplication, reordering, crashes, partitions) no
  server temperature exceeds ``T_limit`` and no budget goes negative,
  asserted both on hand-picked scenarios and property-style over random
  drop rates and seeds.
"""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control_plane import (
    ControlPlaneConfig,
    CrashWindow,
    DistributedWillowController,
    FaultSchedule,
    LinkPartition,
    LinkProfile,
    RetryPolicy,
    StalenessPolicy,
    divergence_summary,
    random_fault_schedule,
    run_distributed,
)
from repro.core.config import WillowConfig
from repro.core.controller import run_willow
from repro.experiments.common import hot_zone_overrides
from repro.network import verify_message_bound
from repro.network.messages import messages_per_direction
from repro.topology.builders import build_balanced, build_paper_simulation

T_LIMIT = WillowConfig().thermal.t_limit


def _server_series(collector, attr):
    return np.array([getattr(s, attr) for s in collector.server_samples])


def _assert_safe(collector):
    """The two invariants every degraded run must keep."""
    temps = _server_series(collector, "temperature")
    budgets = _server_series(collector, "budget")
    assert temps.max() <= T_LIMIT + 1e-6
    assert budgets.min() >= 0.0


class TestPerfectTransportEquivalence:
    """The formal contract: a perfect transport is the scalar controller.

    Hot zone + utilization 0.95 exercises thermal caps, deficits,
    migrations, drops and consolidation -- the same stressed regime the
    vectorized contract uses.
    """

    KW = dict(
        target_utilization=0.95,
        n_ticks=60,
        seed=7,
        ambient_overrides=hot_zone_overrides(),
    )

    @pytest.fixture(scope="class")
    def pair(self):
        _, ideal = run_willow(**self.KW)
        controller, distributed = run_distributed(**self.KW)
        return ideal, distributed, controller

    def test_default_config_is_perfect(self, pair):
        *_, controller = pair
        assert isinstance(controller, DistributedWillowController)
        assert controller.control_plane.is_perfect
        assert controller.faults.empty

    @pytest.mark.parametrize(
        "attr", ["budget", "power", "temperature", "demand", "utilization"]
    )
    def test_server_series_bit_identical(self, pair, attr):
        ideal, distributed, _ = pair
        a, b = _server_series(ideal, attr), _server_series(distributed, attr)
        assert a.shape == b.shape
        assert np.array_equal(a, b), f"{attr} differs bit-wise"

    def test_sleep_states_identical(self, pair):
        ideal, distributed, _ = pair
        assert [s.asleep for s in ideal.server_samples] == [
            s.asleep for s in distributed.server_samples
        ]

    def test_migrations_identical(self, pair):
        ideal, distributed, _ = pair
        key = lambda m: (m.time, m.vm_id, m.src_id, m.dst_id, m.cause)
        assert [key(m) for m in ideal.migrations] == [
            key(m) for m in distributed.migrations
        ]
        assert len(ideal.migrations) > 0  # the run must exercise the path

    def test_message_multiset_identical(self, pair):
        # Ordering within a tick differs (agents send depth-first, the
        # scalar loop level-order) but the (link, time, direction)
        # multiset -- what Property 3 counts -- must match exactly.
        ideal, distributed, _ = pair
        key = lambda m: (m.link, m.time, m.upward)
        assert Counter(map(key, ideal.messages)) == Counter(
            map(key, distributed.messages)
        )

    def test_divergence_summary_all_zero(self, pair):
        ideal, distributed, _ = pair
        assert all(v == 0.0 for v in divergence_summary(ideal, distributed).values())

    def test_no_retransmissions_or_leaks(self, pair):
        *_, controller = pair
        stats = controller.transport_stats()
        assert stats.retransmits == 0
        assert stats.delivered == stats.sent
        assert stats.dropped_loss == stats.expired == 0
        assert controller.transport.in_flight() == 0
        assert controller.stale_discards() == 0


class TestMessageAccounting:
    """Per-link accounting: delivered vs dropped vs duplicated, and the
    Property-3 bound on *sent* messages under a healthy network."""

    def test_perfect_transport_direction_totals(self):
        n_ticks, eta1 = 20, WillowConfig().eta1
        tree = build_balanced([3, 3])
        controller, collector = run_distributed(
            tree=tree, target_utilization=0.5, n_ticks=n_ticks, seed=1
        )
        n_links = sum(1 for n in tree if not n.is_root)
        split = messages_per_direction(collector)
        # One report per link per tick; one directive per link per
        # supply period (ticks 0, eta1, 2*eta1, ...).
        assert split["upward"] == n_links * n_ticks
        assert split["downward"] == n_links * ((n_ticks + eta1 - 1) // eta1)
        assert verify_message_bound(collector, bound=2)

    def test_healthy_latency_respects_bound(self):
        # Latency alone (no loss) must not spawn retransmissions as long
        # as the retry timeout covers the round trip -- so the paper's
        # <= 2 sends per link per Delta_D survives the reliable layer.
        cp = ControlPlaneConfig(
            default_link=LinkProfile(latency_ticks=2),
            retry=RetryPolicy(timeout_ticks=6),
        )
        controller, collector = run_distributed(
            tree=build_balanced([3, 3]),
            control_plane=cp,
            target_utilization=0.5,
            n_ticks=24,
            seed=2,
        )
        assert controller.transport_stats().retransmits == 0
        assert verify_message_bound(collector, bound=2)

    def test_lossy_link_accounting_balances(self):
        # Fire-and-forget: every transmission either delivers once or is
        # counted against exactly one drop bucket; duplicates are extras.
        cp = ControlPlaneConfig(
            default_link=LinkProfile(
                latency_ticks=1, drop_prob=0.3, dup_prob=0.2
            ),
            reliable=False,
        )
        controller, collector = run_distributed(
            tree=build_balanced([3, 3]),
            control_plane=cp,
            target_utilization=0.5,
            n_ticks=40,
            seed=3,
        )
        stats = controller.transport_stats()
        assert stats.retransmits == 0  # unreliable: no ARQ
        assert stats.sent == stats.delivered + stats.dropped_loss
        assert stats.dropped_loss > 0
        assert stats.duplicates_delivered > 0
        assert stats.duplicates_delivered <= stats.delivered
        # Every payload transmission -- and nothing else -- was recorded
        # as a control message, per link.
        per_link = Counter(m.link for m in collector.messages)
        for link, link_stats in controller.transport.stats.items():
            assert per_link[link] == link_stats.sent + link_stats.retransmits

    def test_retransmissions_are_recorded_as_sends(self):
        cp = ControlPlaneConfig(
            default_link=LinkProfile(drop_prob=0.4)
        )
        controller, collector = run_distributed(
            tree=build_balanced([3, 3]),
            control_plane=cp,
            target_utilization=0.5,
            n_ticks=30,
            seed=4,
        )
        stats = controller.transport_stats()
        assert stats.retransmits > 0
        assert len(collector.messages) == stats.sent + stats.retransmits


class TestStalenessDecay:
    def test_orphaned_server_decays_to_thermal_floor(self):
        # Cut one leaf's link right after the first allocation: past the
        # TTL its budget must decay to floor_fraction x its hard cap.
        tree = build_balanced([3, 3])
        orphan = tree.servers()[0].node_id
        faults = FaultSchedule(
            partitions=(LinkPartition(orphan, start_tick=1, end_tick=10_000),)
        )
        controller, collector = run_distributed(
            tree=tree,
            faults=faults,
            target_utilization=0.7,
            n_ticks=60,
            seed=5,
        )
        server = controller.servers[orphan]
        floor_fraction = controller.control_plane.staleness.floor_fraction
        assert server.budget == pytest.approx(
            floor_fraction * server.hard_cap(), rel=0.05
        )
        # Unaffected servers keep hearing fresh directives.
        for leaf in tree.servers():
            if leaf.node_id == orphan:
                continue
            agent = controller.leaf_agents[leaf.node_id]
            ttl = controller.control_plane.staleness.resolve_ttl(
                controller.config.eta1
            )
            assert agent.ticks_since_budget <= controller.config.eta1 < ttl
        _assert_safe(collector)

    def test_budget_holds_within_ttl(self):
        # A partition shorter than the TTL never triggers decay: the
        # last directive is simply held.
        tree = build_balanced([3, 3])
        orphan = tree.servers()[0].node_id
        ttl = 3 * WillowConfig().eta1
        faults = FaultSchedule(
            partitions=(
                LinkPartition(orphan, start_tick=9, end_tick=9 + ttl - 2),
            )
        )
        perfect, _ = run_distributed(
            tree=build_balanced([3, 3]),
            target_utilization=0.5,
            n_ticks=9 + ttl,
            seed=6,
        )
        partitioned, _ = run_distributed(
            tree=tree,
            faults=faults,
            target_utilization=0.5,
            n_ticks=9 + ttl,
            seed=6,
        )
        # Same budget the healthy run last granted, still in force.
        assert partitioned.servers[orphan].budget == pytest.approx(
            perfect.servers[tree.servers()[0].node_id].budget
        )


class TestCrashRestart:
    def test_crashed_pmu_drops_traffic_and_recovers(self):
        tree = build_balanced([3, 3])
        rack = tree.root.children[0]
        faults = FaultSchedule(
            crashes=(CrashWindow(rack.node_id, start_tick=10, end_tick=20),)
        )
        controller, collector = run_distributed(
            tree=tree,
            faults=faults,
            target_utilization=0.6,
            n_ticks=40,
            seed=7,
        )
        stats = controller.transport_stats()
        assert stats.dropped_crash > 0  # traffic addressed to the dead PMU
        agent = controller.internal_agents[rack.node_id]
        assert not agent.crashed  # window ended; the PMU is back
        # Recovered: the subtree hears directives again after restart.
        ttl = controller.control_plane.staleness.resolve_ttl(
            controller.config.eta1
        )
        for child in rack.children:
            assert (
                controller.leaf_agents[child.node_id].ticks_since_budget < ttl
            )
        _assert_safe(collector)

    def test_restart_rearms_at_floor(self):
        # Crash a rack PMU until after the horizon: it restarts never,
        # and its children decay on their own; the frozen PMU must not
        # hand out budgets while down.
        tree = build_balanced([3, 3])
        rack = tree.root.children[1]
        faults = FaultSchedule(
            crashes=(CrashWindow(rack.node_id, start_tick=4, end_tick=10_000),)
        )
        controller, collector = run_distributed(
            tree=tree,
            faults=faults,
            target_utilization=0.6,
            n_ticks=50,
            seed=8,
        )
        assert controller.internal_agents[rack.node_id].crashed
        floor_fraction = controller.control_plane.staleness.floor_fraction
        for child in rack.children:
            server = controller.servers[child.node_id]
            assert server.budget == pytest.approx(
                floor_fraction * server.hard_cap(), rel=0.05
            )
        _assert_safe(collector)


class TestFaultedRunSafety:
    """The kitchen sink: loss + jitter + dup + reorder + crashes +
    partitions on the paper topology, and the invariants still hold."""

    def test_paper_fleet_survives_everything(self):
        tree = build_paper_simulation()
        faults = random_fault_schedule(
            tree, seed=3, horizon_ticks=60, n_crashes=2, n_partitions=2
        )
        assert not faults.empty
        cp = ControlPlaneConfig(
            default_link=LinkProfile(
                latency_ticks=1,
                jitter_ticks=1,
                drop_prob=0.3,
                dup_prob=0.1,
                reorder_prob=0.1,
            )
        )
        controller, collector = run_distributed(
            tree=tree,
            control_plane=cp,
            faults=faults,
            target_utilization=0.6,
            n_ticks=60,
            seed=3,
        )
        _assert_safe(collector)
        stats = controller.transport_stats()
        assert stats.dropped_loss > 0
        assert stats.retransmits > 0
        assert controller.transport.in_flight() == 0  # no leaked timers


class TestSafetyProperties:
    """Property-style: thermal safety and non-negative budgets hold for
    random drop rates, latencies and fault schedules."""

    @settings(max_examples=10, deadline=None)
    @given(
        drop=st.floats(min_value=0.0, max_value=0.45),
        latency=st.integers(min_value=0, max_value=2),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_lossy_runs_stay_safe(self, drop, latency, seed):
        cp = ControlPlaneConfig(
            default_link=LinkProfile(
                latency_ticks=latency,
                jitter_ticks=min(latency, 1),
                drop_prob=drop,
            )
        )
        _, collector = run_distributed(
            tree=build_balanced([3, 3]),
            control_plane=cp,
            target_utilization=0.7,
            n_ticks=24,
            seed=seed,
        )
        _assert_safe(collector)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_faulted_runs_stay_safe(self, seed):
        tree = build_balanced([3, 3])
        faults = random_fault_schedule(
            tree, seed=seed, horizon_ticks=24, n_crashes=1, n_partitions=1
        )
        _, collector = run_distributed(
            tree=tree,
            faults=faults,
            control_plane=ControlPlaneConfig(
                default_link=LinkProfile(drop_prob=0.15)
            ),
            target_utilization=0.7,
            n_ticks=24,
            seed=seed,
        )
        _assert_safe(collector)


class TestFaultScheduleAPI:
    def test_windows_are_half_open(self):
        window = CrashWindow(node_id=1, start_tick=5, end_tick=10)
        assert not window.covers(4)
        assert window.covers(5)
        assert window.covers(9)
        assert not window.covers(10)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            CrashWindow(1, start_tick=-1, end_tick=3)
        with pytest.raises(ValueError):
            LinkPartition(1, start_tick=5, end_tick=5)

    def test_schedule_queries(self):
        schedule = FaultSchedule(
            crashes=(CrashWindow(3, 0, 4), CrashWindow(5, 2, 6)),
            partitions=(LinkPartition(7, 1, 3),),
        )
        assert schedule.is_crashed(3, 0) and not schedule.is_crashed(3, 4)
        assert schedule.is_partitioned(7, 2) and not schedule.is_partitioned(8, 2)
        assert schedule.crashed_nodes() == (3, 5)
        assert not schedule.empty
        assert FaultSchedule().empty

    def test_random_schedule_deterministic_and_bounded(self):
        tree = build_balanced([3, 3])
        a = random_fault_schedule(
            tree, seed=9, horizon_ticks=50, n_crashes=3, n_partitions=2
        )
        b = random_fault_schedule(
            tree, seed=9, horizon_ticks=50, n_crashes=3, n_partitions=2
        )
        assert a == b
        root = tree.root.node_id
        for crash in a.crashes:
            assert crash.node_id != root  # root excluded by default
            assert 0 <= crash.start_tick < 50
        for part in a.partitions:
            assert 0 <= part.start_tick < 50


class TestConfigValidation:
    def test_link_profile_validation(self):
        assert LinkProfile().is_perfect
        assert not LinkProfile(latency_ticks=1).is_perfect
        with pytest.raises(ValueError):
            LinkProfile(drop_prob=1.0)
        with pytest.raises(ValueError):
            LinkProfile(latency_ticks=-1)

    def test_retry_backoff_schedule(self):
        policy = RetryPolicy(timeout_ticks=2, backoff=2.0, max_retries=3)
        assert [policy.timeout_for_attempt(k) for k in range(4)] == [2, 4, 8, 16]
        with pytest.raises(ValueError):
            RetryPolicy(timeout_ticks=0)

    def test_staleness_policy(self):
        policy = StalenessPolicy(decay=0.5, floor_fraction=0.5)
        assert policy.resolve_ttl(4) == 12  # default: three supply periods
        assert StalenessPolicy(ttl_ticks=7).resolve_ttl(4) == 7
        assert policy.decayed(100.0, 60.0) == pytest.approx(80.0)
        assert policy.decayed(50.0, 60.0) == 50.0  # never decays upward
        with pytest.raises(ValueError):
            StalenessPolicy(decay=1.0)

    def test_link_overrides(self):
        slow = LinkProfile(latency_ticks=3)
        cp = ControlPlaneConfig(link_overrides={4: slow})
        assert cp.link(4) is slow
        assert cp.link(5) is cp.default_link
        assert not cp.is_perfect


class TestDivergenceGuards:
    def test_mismatched_runs_rejected(self):
        _, a = run_willow(target_utilization=0.4, n_ticks=4, seed=1)
        _, b = run_willow(target_utilization=0.4, n_ticks=6, seed=1)
        with pytest.raises(ValueError, match="not comparable"):
            divergence_summary(a, b)
