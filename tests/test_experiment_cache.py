"""Disk sweep cache + process-pool experiment layer."""

import numpy as np
import pytest

from repro.experiments import cache
from repro.experiments.common import PAPER_UTILIZATIONS
from repro.experiments.paper_sweep import run_sweep
from repro.experiments.parallel import (
    default_workers,
    parallel_map,
    replicate_parallel,
    run_sweep_parallel,
)


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("WILLOW_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("WILLOW_NO_CACHE", raising=False)
    cache.set_enabled(None)
    run_sweep.cache_clear()
    yield tmp_path / "cache"
    cache.set_enabled(None)
    run_sweep.cache_clear()


UTILS = (0.3, 0.6)
TICKS = 16


class TestDiskCache:
    def test_roundtrip_is_exact(self, cache_dir):
        first = run_sweep(UTILS, n_ticks=TICKS)
        assert any(cache_dir.glob("sweep-*.npz"))
        run_sweep.cache_clear()  # force the disk path
        second = run_sweep(UTILS, n_ticks=TICKS)
        assert first == second  # SweepPoint equality is field-exact

    def test_key_covers_every_parameter(self):
        base = cache.sweep_key(UTILS, 16, 11, True)
        assert cache.sweep_key((0.3, 0.7), 16, 11, True) != base
        assert cache.sweep_key(UTILS, 17, 11, True) != base
        assert cache.sweep_key(UTILS, 16, 12, True) != base
        assert cache.sweep_key(UTILS, 16, 11, False) != base
        assert cache.sweep_key(UTILS, 16, 11, True) == base

    def test_corrupt_entry_is_a_miss(self, cache_dir):
        run_sweep(UTILS, n_ticks=TICKS)
        entry = next(cache_dir.glob("sweep-*.npz"))
        entry.write_bytes(b"not an npz")
        run_sweep.cache_clear()
        assert run_sweep(UTILS, n_ticks=TICKS)  # recomputes, no crash

    def test_disabled_by_default_without_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("WILLOW_CACHE_DIR", raising=False)
        monkeypatch.delenv("WILLOW_NO_CACHE", raising=False)
        cache.set_enabled(None)
        assert not cache.cache_enabled()

    def test_no_cache_env_wins_over_dir(self, cache_dir, monkeypatch):
        monkeypatch.setenv("WILLOW_NO_CACHE", "1")
        assert not cache.cache_enabled()

    def test_set_enabled_overrides_env(self, cache_dir):
        cache.set_enabled(False)
        assert not cache.cache_enabled()
        cache.set_enabled(True)
        assert cache.cache_enabled()

    def test_clear_disk_cache(self, cache_dir):
        run_sweep(UTILS, n_ticks=TICKS)
        removed = cache.clear_disk_cache()
        assert removed >= 1
        assert not any(cache_dir.glob("sweep-*.npz"))


class TestParallelMap:
    def test_serial_fallback_and_order(self):
        assert parallel_map(abs, [-3, -1, 2], workers=1) == [3, 1, 2]

    def test_pool_preserves_order(self):
        assert parallel_map(abs, [-3, -1, 2], workers=2) == [3, 1, 2]

    def test_workers_validated(self):
        with pytest.raises(ValueError):
            parallel_map(abs, [1], workers=0)

    def test_default_workers_positive(self):
        assert default_workers() >= 1


def _outcome(seed):
    return {"double": seed * 2.0, "shift": seed + 0.5}


class TestReplicateParallel:
    def test_matches_serial_replicate(self):
        from repro.analysis import replicate

        serial = replicate(_outcome, [1, 2, 3])
        par = replicate_parallel(_outcome, [1, 2, 3], workers=2)
        assert par.seeds == serial.seeds
        for name in serial.outcomes:
            np.testing.assert_array_equal(
                par.outcomes[name], serial.outcomes[name]
            )

    def test_duplicate_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate_parallel(_outcome, [1, 1], workers=1)


class TestRunSweepParallel:
    def test_matches_serial_run_sweep(self, cache_dir):
        serial = run_sweep(UTILS, n_ticks=TICKS)
        cache.clear_disk_cache()
        run_sweep.cache_clear()
        par = run_sweep_parallel(UTILS, n_ticks=TICKS, workers=2)
        assert par == serial

    def test_seeds_full_sweep_disk_entry(self, cache_dir):
        run_sweep_parallel(UTILS, n_ticks=TICKS, workers=1)
        run_sweep.cache_clear()
        # a fresh serial call must now hit the disk entry the parallel
        # path stored under the full-sweep key
        key = cache.sweep_key(UTILS, TICKS, 11, True)
        assert cache.load_sweep(key) is not None


class TestRunnerFlags:
    def test_no_cache_flag_parses(self, capsys):
        from repro.experiments.runner import main

        assert main(["--no-cache", "table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_bad_workers_rejected(self):
        from repro.experiments.runner import main

        assert main(["table1", "--workers", "0"]) == 2

    def test_paper_utilizations_key_is_stable(self):
        # guards against accidental key-scheme drift invalidating
        # users' caches silently; update CACHE_VERSION instead.
        key = cache.sweep_key(PAPER_UTILIZATIONS, 120, 11, True)
        assert len(key) == 24 and all(c in "0123456789abcdef" for c in key)
