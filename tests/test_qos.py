"""Tests for QoS classes, priority-aware service and latency model."""

import numpy as np
import pytest

from repro.core import WillowConfig, WillowController
from repro.metrics import MetricsCollector, ServerSample
from repro.power import step_supply
from repro.qos import (
    BRONZE,
    GOLD,
    LatencyModel,
    QoSClass,
    SILVER,
    STANDARD_CLASSES,
    per_class_report,
    sla_compliance,
    tiered_catalog,
)
from repro.qos.classes import class_of
from repro.sim import RandomStreams
from repro.topology import build_paper_simulation
from repro.workload import (
    SIMULATION_APPS,
    random_placement,
    scale_for_target_utilization,
)


class TestQoSClass:
    def test_standard_ordering(self):
        assert GOLD.priority < SILVER.priority < BRONZE.priority
        assert GOLD.latency_sla < SILVER.latency_sla < BRONZE.latency_sla

    def test_validation(self):
        with pytest.raises(ValueError):
            QoSClass("x", priority=-1, latency_sla=2.0)
        with pytest.raises(ValueError):
            QoSClass("x", priority=0, latency_sla=1.0)

    def test_tiered_catalog_crosses_apps_and_classes(self):
        catalog = tiered_catalog(SIMULATION_APPS)
        assert len(catalog) == len(SIMULATION_APPS) * 3
        names = {app.name for app in catalog}
        assert "app-5/gold" in names and "app-9/bronze" in names

    def test_tiered_catalog_validation(self):
        with pytest.raises(ValueError):
            tiered_catalog([])
        with pytest.raises(ValueError):
            tiered_catalog(SIMULATION_APPS, classes=[])

    def test_class_of(self):
        catalog = tiered_catalog(SIMULATION_APPS)
        assert class_of(catalog[0]) is GOLD
        broken = SIMULATION_APPS[0].scaled(1.0)
        assert class_of(broken) is GOLD  # priority 0 default
        with pytest.raises(KeyError):
            from repro.workload import AppType

            class_of(AppType("x", 1.0, priority=9))


class TestLatencyModel:
    def test_latency_rises_with_utilization(self):
        model = LatencyModel()
        assert model.latency_multiple(0.0) == pytest.approx(1.0)
        assert model.latency_multiple(0.5) == pytest.approx(2.0)
        assert model.latency_multiple(0.9) == pytest.approx(10.0)

    def test_singularity_clipped(self):
        model = LatencyModel(rho_cap=0.99)
        assert model.latency_multiple(1.0) == pytest.approx(100.0)

    def test_max_utilization_inverts_sla(self):
        model = LatencyModel()
        for qos in STANDARD_CLASSES:
            rho = model.max_utilization_for(qos)
            assert model.latency_multiple(rho) == pytest.approx(qos.latency_sla)

    def test_rho_cap_validated(self):
        with pytest.raises(ValueError):
            LatencyModel(rho_cap=1.0)

    def test_sla_compliance_counts_awake_ticks(self):
        collector = MetricsCollector()

        def sample(t, util, asleep=False):
            return ServerSample(
                time=t, server_id=1, power=0.0, temperature=25.0,
                utilization=util, demand=0.0, budget=0.0, asleep=asleep,
            )

        # GOLD sla=2.0 -> threshold rho=0.5.
        collector.record_server(sample(0.0, 0.4))
        collector.record_server(sample(1.0, 0.6))
        collector.record_server(sample(2.0, 0.9, asleep=True))  # excluded
        compliance = sla_compliance(collector, GOLD)
        assert compliance[1] == pytest.approx(0.5)


class TestPriorityAwareServing:
    def _run(self, seed=5):
        tree = build_paper_simulation()
        config = WillowConfig()
        streams = RandomStreams(seed)
        placement = random_placement(
            [s.node_id for s in tree.servers()],
            tuple(tiered_catalog(SIMULATION_APPS)),
            streams["placement"],
            vms_per_server=6,
        )
        scale_for_target_utilization(placement, config.server_model.slope, 0.6)
        # Starve the fleet mid-run so throttling definitely happens.
        supply = step_supply([(0.0, 18 * 450.0), (15.0, 18 * 200.0)])
        controller = WillowController(tree, config, supply, placement, seed=seed)
        collector = controller.run(40)
        return controller, collector

    def test_gold_loses_least_bronze_most(self):
        controller, collector = self._run()
        report = per_class_report(collector, controller.vms, scale=controller.placement.scale)
        assert report["gold"].loss_fraction <= report["silver"].loss_fraction
        assert report["silver"].loss_fraction <= report["bronze"].loss_fraction
        # The starved run definitely dropped something.
        assert report["bronze"].dropped > 0

    def test_report_conserves_demand(self):
        controller, collector = self._run()
        report = per_class_report(collector, controller.vms, scale=controller.placement.scale)
        for tier in report.values():
            assert tier.served >= 0
            assert 0.0 <= tier.loss_fraction <= 1.0

    def test_drops_recorded_per_vm(self):
        _, collector = self._run()
        vm_drops = [d for d in collector.drops if d.vm_id is not None]
        assert vm_drops  # priority-aware serving attributes drops to VMs
