"""Property-based tests for the thermal model (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.thermal import (
    ThermalParams,
    fit_constants,
    generate_heating_trace,
    power_cap,
    steady_state_temperature,
    temperature_after,
)

params_strategy = st.builds(
    ThermalParams,
    c1=st.floats(0.01, 1.0),
    c2=st.floats(0.001, 0.5),
    t_ambient=st.floats(0.0, 45.0),
    t_limit=st.floats(50.0, 120.0),
)


@given(
    params=params_strategy,
    t0=st.floats(0.0, 120.0),
    power=st.floats(0.0, 1000.0),
    dt=st.floats(0.0, 100.0),
)
def test_temperature_bounded_by_extremes(params, t0, power, dt):
    """T(t) always lies between min/max of {T0, steady-state temp}."""
    temp = temperature_after(params, t0, power, dt)
    steady = steady_state_temperature(params, power)
    low, high = min(t0, steady), max(t0, steady)
    assert low - 1e-6 <= temp <= high + 1e-6


@given(
    params=params_strategy,
    t0=st.floats(0.0, 120.0),
    power=st.floats(0.0, 1000.0),
    dt1=st.floats(0.001, 50.0),
    dt2=st.floats(0.001, 50.0),
)
def test_semigroup_property(params, t0, power, dt1, dt2):
    """Integrating dt1 then dt2 equals integrating dt1+dt2 at once."""
    two_step = temperature_after(
        params, temperature_after(params, t0, power, dt1), power, dt2
    )
    one_step = temperature_after(params, t0, power, dt1 + dt2)
    assert two_step == np.float64(one_step) or abs(two_step - one_step) < 1e-6


@given(
    params=params_strategy,
    t0=st.floats(0.0, 120.0),
    window=st.floats(0.01, 50.0),
)
def test_power_cap_never_negative_and_safe(params, t0, window):
    """Running at the cap never exceeds T_limit by the window's end."""
    cap = power_cap(params, t0, window)
    assert cap >= 0.0
    if cap > 0.0:
        reached = temperature_after(params, t0, cap, window)
        assert reached <= params.t_limit + 1e-6


@given(
    params=params_strategy,
    window=st.floats(0.01, 50.0),
    t_low=st.floats(0.0, 60.0),
    delta=st.floats(0.1, 60.0),
)
def test_power_cap_monotone_decreasing_in_temperature(
    params, window, t_low, delta
):
    cap_low = power_cap(params, t_low, window)
    cap_high = power_cap(params, t_low + delta, window)
    assert cap_high <= cap_low + 1e-9


@settings(max_examples=25, deadline=None)
@given(
    c1=st.floats(0.05, 0.5),
    c2=st.floats(0.005, 0.1),
    seed=st.integers(0, 10_000),
)
def test_fit_recovers_generating_constants(c1, c2, seed):
    """Least squares on a noiseless trace recovers the true constants."""
    params = ThermalParams(c1=c1, c2=c2, t_ambient=25.0, t_limit=200.0)
    rng = np.random.default_rng(seed)
    powers = rng.uniform(10.0, 300.0, size=100)
    powers, temps = generate_heating_trace(params, powers, 0.25)
    fit = fit_constants(powers, temps, 0.25, t_ambient=25.0)
    assert abs(fit.c1 - c1) / c1 < 0.05
    assert abs(fit.c2 - c2) / c2 < 0.25  # c2 observability is weaker
