"""Tests for applications, VMs, demand generation and traces."""

import numpy as np
import pytest

from repro.sim import RandomStreams
from repro.workload import (
    SIMULATION_APPS,
    TESTBED_APPS,
    AppType,
    DemandGenerator,
    DemandTrace,
    TraceDemandSource,
    VM,
    random_placement,
    replay_trace,
    scale_for_target_utilization,
)


class TestAppType:
    def test_simulation_catalog_relative_powers(self):
        assert [a.mean_power for a in SIMULATION_APPS] == [1.0, 2.0, 5.0, 9.0]

    def test_testbed_catalog_table2(self):
        assert {a.name: a.mean_power for a in TESTBED_APPS} == {
            "A1": 8.0,
            "A2": 10.0,
            "A3": 15.0,
        }

    def test_scaled(self):
        app = AppType("x", 2.0).scaled(3.0)
        assert app.mean_power == 6.0

    def test_invalid_power_rejected(self):
        with pytest.raises(ValueError):
            AppType("x", 0.0)
        with pytest.raises(ValueError):
            AppType("x", 1.0).scaled(0.0)


class TestVM:
    def test_history_starts_with_initial_host(self):
        vm = VM(vm_id=0, app=TESTBED_APPS[0], host_id=7)
        assert vm.host_history == [(0.0, 7)]

    def test_place_records_history(self):
        vm = VM(vm_id=0, app=TESTBED_APPS[0], host_id=7)
        vm.place(9, time=3.0)
        assert vm.host_id == 9
        assert vm.host_history[-1] == (3.0, 9)
        assert vm.last_migration_time == 3.0

    def test_place_same_host_rejected(self):
        vm = VM(vm_id=0, app=TESTBED_APPS[0], host_id=7)
        with pytest.raises(ValueError):
            vm.place(7, time=1.0)

    def test_residence_time(self):
        vm = VM(vm_id=0, app=TESTBED_APPS[0], host_id=7)
        assert vm.residence_time(5.0) == 5.0
        vm.place(9, time=3.0)
        assert vm.residence_time(5.0) == 2.0

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            VM(vm_id=0, app=TESTBED_APPS[0], host_id=1, current_demand=-1.0)


class TestPlacement:
    def test_every_server_gets_vms(self):
        rng = np.random.default_rng(0)
        plan = random_placement([1, 2, 3], SIMULATION_APPS, rng, vms_per_server=4)
        hosts = plan.by_host()
        assert set(hosts) == {1, 2, 3}
        assert all(len(vms) == 4 for vms in hosts.values())

    def test_vm_ids_dense(self):
        rng = np.random.default_rng(0)
        plan = random_placement([1, 2], SIMULATION_APPS, rng)
        assert [vm.vm_id for vm in plan.vms] == list(range(len(plan.vms)))

    def test_apps_drawn_from_catalog(self):
        rng = np.random.default_rng(0)
        plan = random_placement([1], SIMULATION_APPS, rng, vms_per_server=50)
        names = {vm.app.name for vm in plan.vms}
        assert names <= {a.name for a in SIMULATION_APPS}
        assert len(names) > 1  # actually a mix

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            random_placement([], SIMULATION_APPS, rng)
        with pytest.raises(ValueError):
            random_placement([1], (), rng)
        with pytest.raises(ValueError):
            random_placement([1], SIMULATION_APPS, rng, vms_per_server=0)


class TestScaling:
    def test_expected_fleet_utilization_hits_target(self):
        rng = np.random.default_rng(1)
        plan = random_placement(list(range(10)), SIMULATION_APPS, rng)
        scale_for_target_utilization(plan, dynamic_capacity=420.0, target_utilization=0.4)
        mean_total = sum(vm.app.mean_power for vm in plan.vms) * plan.scale
        fleet_capacity = 10 * 420.0
        assert mean_total / fleet_capacity == pytest.approx(0.4)

    def test_target_validated(self):
        rng = np.random.default_rng(1)
        plan = random_placement([1], SIMULATION_APPS, rng)
        with pytest.raises(ValueError):
            scale_for_target_utilization(plan, 420.0, 0.0)
        with pytest.raises(ValueError):
            scale_for_target_utilization(plan, 0.0, 0.5)


class TestDemandGenerator:
    def _plan(self, seed=0):
        streams = RandomStreams(seed)
        plan = random_placement([1, 2], SIMULATION_APPS, streams["placement"])
        plan.scale = 2.0
        return plan, streams

    def test_sample_updates_vms_and_aggregates(self):
        plan, streams = self._plan()
        generator = DemandGenerator(plan, streams)
        per_host = generator.sample_tick()
        assert set(per_host) == {1, 2}
        for host, total in per_host.items():
            expected = sum(
                vm.current_demand for vm in plan.vms if vm.host_id == host
            )
            assert total == pytest.approx(expected)

    def test_deterministic_under_seed(self):
        plan1, streams1 = self._plan(seed=9)
        plan2, streams2 = self._plan(seed=9)
        g1, g2 = DemandGenerator(plan1, streams1), DemandGenerator(plan2, streams2)
        for _ in range(5):
            assert g1.sample_tick() == g2.sample_tick()

    def test_migration_does_not_perturb_other_vms(self):
        # Per-VM streams: moving one VM must not change others' draws.
        plan1, streams1 = self._plan(seed=4)
        plan2, streams2 = self._plan(seed=4)
        g1, g2 = DemandGenerator(plan1, streams1), DemandGenerator(plan2, streams2)
        g1.sample_tick()
        g2.sample_tick()
        plan2.vms[0].place(2, time=1.0) if plan2.vms[0].host_id != 2 else plan2.vms[0].place(1, time=1.0)
        g1.sample_tick()
        g2.sample_tick()
        for vm1, vm2 in zip(plan1.vms[1:], plan2.vms[1:]):
            assert vm1.current_demand == vm2.current_demand

    def test_long_run_mean_matches_expectation(self):
        plan, streams = self._plan(seed=2)
        generator = DemandGenerator(plan, streams)
        totals = []
        for _ in range(3000):
            totals.append(sum(generator.sample_tick().values()))
        expected = sum(vm.app.mean_power for vm in plan.vms) * plan.scale
        assert np.mean(totals) == pytest.approx(expected, rel=0.05)


class TestDemandTrace:
    def test_constant_trace(self):
        trace = DemandTrace.constant([1.0, 2.0], n_ticks=3)
        assert trace.n_ticks == 3 and trace.n_vms == 2
        assert np.array_equal(trace.tick(2), [1.0, 2.0])

    def test_negative_demands_rejected(self):
        with pytest.raises(ValueError):
            DemandTrace(np.array([[-1.0]]))

    def test_replay_updates_vms(self):
        vms = [
            VM(vm_id=0, app=TESTBED_APPS[0], host_id=1),
            VM(vm_id=1, app=TESTBED_APPS[1], host_id=2),
        ]
        trace = DemandTrace.from_samples([[5.0, 6.0], [7.0, 8.0]])
        rounds = list(replay_trace(trace, vms))
        assert rounds == [{1: 5.0, 2: 6.0}, {1: 7.0, 2: 8.0}]
        assert vms[0].current_demand == 7.0

    def test_replay_vm_count_mismatch(self):
        vms = [VM(vm_id=0, app=TESTBED_APPS[0], host_id=1)]
        trace = DemandTrace.from_samples([[5.0, 6.0]])
        with pytest.raises(ValueError):
            list(replay_trace(trace, vms))


class TestTraceDemandSource:
    def test_repeats_final_row(self):
        vms = [VM(vm_id=0, app=TESTBED_APPS[0], host_id=1)]
        source = TraceDemandSource(DemandTrace.from_samples([[3.0], [9.0]]), vms)
        assert source.sample_tick() == {1: 3.0}
        assert source.sample_tick() == {1: 9.0}
        assert source.sample_tick() == {1: 9.0}  # clamped

    def test_tracks_migrated_host(self):
        vms = [VM(vm_id=0, app=TESTBED_APPS[0], host_id=1)]
        source = TraceDemandSource(DemandTrace.constant([4.0], 1), vms)
        source.sample_tick()
        vms[0].place(2, time=1.0)
        assert source.sample_tick() == {2: 4.0}


class TestDemandTraceCSV:
    def test_round_trip(self, tmp_path):
        trace = DemandTrace.from_samples([[1.0, 2.0], [3.0, 4.0]])
        path = tmp_path / "demand.csv"
        trace.to_csv(path, header=["vm0", "vm1"])
        loaded = DemandTrace.from_csv(path)
        assert np.array_equal(loaded.demands, trace.demands)

    def test_round_trip_without_header(self, tmp_path):
        trace = DemandTrace.constant([5.0], n_ticks=3)
        path = tmp_path / "demand.csv"
        trace.to_csv(path)
        loaded = DemandTrace.from_csv(path)
        assert np.array_equal(loaded.demands, trace.demands)

    def test_header_length_validated(self, tmp_path):
        trace = DemandTrace.constant([5.0, 6.0], n_ticks=1)
        with pytest.raises(ValueError):
            trace.to_csv(tmp_path / "x.csv", header=["only-one"])

    def test_empty_csv_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("a,b\n")
        with pytest.raises(ValueError):
            DemandTrace.from_csv(path)

    def test_malformed_mid_file_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1.0,2.0\nx,y\n")
        with pytest.raises(ValueError):
            DemandTrace.from_csv(path)
