"""Tests for the RC thermal model (paper Eqs. 1-3)."""

import numpy as np
import pytest

from repro.thermal import (
    TemperatureIntegrator,
    ThermalParams,
    power_cap,
    steady_state_temperature,
    temperature_after,
    window_for_power_cap,
)

PAPER = ThermalParams()  # c1=0.08, c2=0.05, Ta=25, Tl=70


class TestThermalParams:
    def test_paper_defaults(self):
        assert PAPER.c1 == 0.08
        assert PAPER.c2 == 0.05
        assert PAPER.t_ambient == 25.0
        assert PAPER.t_limit == 70.0
        assert PAPER.headroom == 45.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(c1=0.0),
            dict(c1=-1.0),
            dict(c2=0.0),
            dict(c2=-0.1),
            dict(t_limit=20.0),  # below ambient
        ],
    )
    def test_invalid_params_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ThermalParams(**kwargs)

    def test_with_ambient(self):
        hot = PAPER.with_ambient(40.0)
        assert hot.t_ambient == 40.0
        assert hot.c1 == PAPER.c1
        assert hot.headroom == 30.0


class TestTemperatureAfter:
    def test_zero_power_decays_to_ambient(self):
        temp = temperature_after(PAPER, 70.0, 0.0, 1000.0)
        assert temp == pytest.approx(25.0, abs=1e-6)

    def test_zero_time_is_identity(self):
        assert temperature_after(PAPER, 50.0, 300.0, 0.0) == pytest.approx(50.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            temperature_after(PAPER, 25.0, 100.0, -1.0)

    def test_matches_numerical_integration(self):
        # Euler-integrate dT/dt = c1 P - c2 (T - Ta) and compare.
        power, t0, horizon = 200.0, 30.0, 5.0
        steps = 200_000
        dt = horizon / steps
        temp = t0
        for _ in range(steps):
            temp += (PAPER.c1 * power - PAPER.c2 * (temp - PAPER.t_ambient)) * dt
        closed_form = temperature_after(PAPER, t0, power, horizon)
        assert closed_form == pytest.approx(temp, abs=1e-3)

    def test_monotone_in_power(self):
        low = temperature_after(PAPER, 25.0, 100.0, 2.0)
        high = temperature_after(PAPER, 25.0, 400.0, 2.0)
        assert high > low

    def test_broadcasts_over_arrays(self):
        temps = temperature_after(PAPER, 25.0, np.array([0.0, 100.0, 200.0]), 1.0)
        assert temps.shape == (3,)
        assert np.all(np.diff(temps) > 0)

    def test_converges_to_steady_state(self):
        power = 30.0
        limit = steady_state_temperature(PAPER, power)
        far = temperature_after(PAPER, 25.0, power, 1e6)
        assert far == pytest.approx(limit, abs=1e-6)


class TestPowerCap:
    def test_cap_inverts_temperature_prediction(self):
        # Running exactly at the cap reaches exactly T_limit at window end.
        window = 1.5
        for t0 in (25.0, 40.0, 60.0):
            cap = power_cap(PAPER, t0, window)
            reached = temperature_after(PAPER, t0, cap, window)
            assert reached == pytest.approx(PAPER.t_limit, abs=1e-9)

    def test_cap_decreasing_in_temperature(self):
        window = 1.5
        caps = power_cap(PAPER, np.array([25.0, 40.0, 55.0, 70.0]), window)
        assert np.all(np.diff(caps) < 0)

    def test_cap_zero_beyond_limit(self):
        assert power_cap(PAPER, 90.0, 1.5) == 0.0

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            power_cap(PAPER, 25.0, 0.0)

    def test_paper_checkpoint_cool_idle_450(self):
        window = window_for_power_cap(PAPER, 450.0)
        assert power_cap(PAPER, 25.0, window) == pytest.approx(450.0)

    def test_paper_checkpoint_hot_node_near_zero(self):
        window = window_for_power_cap(PAPER, 450.0)
        hot = PAPER.with_ambient(45.0)
        cap = power_cap(hot, 70.0, window)
        assert 0.0 <= cap < 0.05 * 450.0  # "almost zero"

    def test_hot_zone_cap_is_300w(self):
        # 40C ambient zone cap with the calibrated window: 450 * 30/45.
        window = window_for_power_cap(PAPER, 450.0)
        hot = PAPER.with_ambient(40.0)
        assert power_cap(hot, 40.0, window) == pytest.approx(300.0)


class TestWindowForPowerCap:
    def test_round_trips_with_power_cap(self):
        window = window_for_power_cap(PAPER, 450.0)
        assert power_cap(PAPER, PAPER.t_ambient, window) == pytest.approx(450.0)

    def test_unreachable_cap_rejected(self):
        # Sustainable power is c2*headroom/c1 = 28.125 W; anything below
        # is reachable with an infinite window only.
        with pytest.raises(ValueError):
            window_for_power_cap(PAPER, 20.0)

    def test_nonpositive_power_rejected(self):
        with pytest.raises(ValueError):
            window_for_power_cap(PAPER, 0.0)


class TestTemperatureIntegrator:
    def test_starts_at_ambient_by_default(self):
        integ = TemperatureIntegrator(PAPER)
        assert integ.temperature == 25.0

    def test_steps_accumulate(self):
        integ = TemperatureIntegrator(PAPER)
        one_shot = temperature_after(PAPER, 25.0, 100.0, 4.0)
        for _ in range(4):
            integ.step(100.0, 1.0)
        assert integ.temperature == pytest.approx(one_shot, abs=1e-9)

    def test_peak_and_violations_tracked(self):
        integ = TemperatureIntegrator(PAPER, t0=69.0)
        integ.step(400.0, 5.0)  # drives over the limit
        assert integ.peak > 70.0
        assert integ.violations == 1

    def test_negative_power_rejected(self):
        integ = TemperatureIntegrator(PAPER)
        with pytest.raises(ValueError):
            integ.step(-1.0, 1.0)

    def test_reset(self):
        integ = TemperatureIntegrator(PAPER)
        integ.step(450.0, 10.0)
        integ.reset()
        assert integ.temperature == 25.0
        assert integ.violations == 0
        assert integ.peak == 25.0

    def test_power_cap_shortcut_matches_function(self):
        integ = TemperatureIntegrator(PAPER, t0=50.0)
        assert integ.power_cap(2.0) == pytest.approx(power_cap(PAPER, 50.0, 2.0))
