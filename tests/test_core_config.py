"""Tests for WillowConfig."""

import pytest

from repro.core import WillowConfig


def test_paper_defaults():
    config = WillowConfig()
    assert config.eta1 == 4
    assert config.eta2 == 7
    assert config.consolidation_threshold == 0.20
    assert config.thermal.c1 == 0.08
    assert config.thermal.c2 == 0.05
    assert config.circuit_limit == 450.0


def test_derived_periods():
    config = WillowConfig(delta_d=2.0, eta1=3, eta2=5)
    assert config.delta_s == 6.0
    assert config.delta_a == 10.0


def test_eta_ordering_enforced():
    with pytest.raises(ValueError):
        WillowConfig(eta1=4, eta2=4)
    with pytest.raises(ValueError):
        WillowConfig(eta1=1, eta2=7)


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(delta_d=0.0),
        dict(alpha=0.0),
        dict(alpha=1.5),
        dict(p_min=-1.0),
        dict(migration_cost_power=-1.0),
        dict(migration_cost_ticks=-1),
        dict(migration_traffic_factor=-0.1),
        dict(consolidation_threshold=1.0),
        dict(consolidation_threshold=-0.1),
        dict(wake_latency_ticks=-1),
        dict(circuit_limit=0.0),
        dict(thermal_mode="bogus"),
        dict(thermal_window=0.0),
        dict(allocation_mode="bogus"),
    ],
)
def test_validation(kwargs):
    with pytest.raises(ValueError):
        WillowConfig(**kwargs)


def test_resolved_thermal_window_default_calibration():
    config = WillowConfig()
    window = config.resolved_thermal_window()
    # The calibrated window makes a cool idle node's cap = 450 W.
    from repro.thermal import power_cap

    assert power_cap(config.thermal, 25.0, window) == pytest.approx(450.0)


def test_resolved_thermal_window_override():
    config = WillowConfig(thermal_window=2.5)
    assert config.resolved_thermal_window() == 2.5


def test_frozen():
    config = WillowConfig()
    with pytest.raises(Exception):
        config.eta1 = 9
