"""Tests for the cooling-infrastructure model."""

import numpy as np
import pytest

from repro.cooling import (
    CoolingModel,
    effective_it_budget,
    facility_report,
)
from repro.core import run_willow


class TestCoolingModel:
    def test_economizer_regime(self):
        model = CoolingModel()
        assert model.cop(10.0) == model.economizer_cop
        assert model.cop(18.0) == model.economizer_cop

    def test_chiller_degrades_with_heat(self):
        model = CoolingModel()
        temps = np.array([20.0, 25.0, 30.0, 35.0])
        cops = model.cop(temps)
        assert np.all(np.diff(cops) < 0)

    def test_cop_floor(self):
        model = CoolingModel(min_cop=1.5)
        assert model.cop(200.0) == 1.5

    def test_cooling_power(self):
        model = CoolingModel()
        assert model.cooling_power(800.0, 10.0) == pytest.approx(100.0)

    def test_negative_it_power_rejected(self):
        with pytest.raises(ValueError):
            CoolingModel().cooling_power(-1.0, 10.0)

    def test_pue(self):
        model = CoolingModel(economizer_cop=4.0)
        assert model.pue(10.0) == pytest.approx(1.25)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(economizer_cop=0.0),
            dict(min_cop=0.0),
            dict(cop_slope=-1.0),
            dict(chiller_cop_at_limit=10.0),  # above economizer COP
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            CoolingModel(**kwargs)


class TestEffectiveBudget:
    def test_solves_holistic_division(self):
        model = CoolingModel(economizer_cop=4.0)
        it = effective_it_budget(1000.0, model, outside_temp=10.0)
        # IT + IT/COP must equal the facility supply.
        assert it + it / 4.0 == pytest.approx(1000.0)

    def test_hotter_outside_means_less_it_budget(self):
        model = CoolingModel()
        cool_day = effective_it_budget(1000.0, model, 10.0)
        hot_day = effective_it_budget(1000.0, model, 35.0)
        assert hot_day < cool_day

    def test_validation(self):
        with pytest.raises(ValueError):
            effective_it_budget(-1.0, CoolingModel(), 10.0)

    @pytest.mark.parametrize("outside", [-60.0, 0.0, 45.0, 80.0, 200.0])
    def test_never_negative_at_extreme_outside_temps(self, outside):
        model = CoolingModel()
        budget = effective_it_budget(1000.0, model, outside)
        assert budget >= 0.0
        assert budget <= 1000.0  # cooling overhead only ever subtracts

    def test_floors_at_zero_supply(self):
        assert effective_it_budget(0.0, CoolingModel(), 45.0) == 0.0
        assert effective_it_budget(0.0, CoolingModel(), -20.0) == 0.0

    def test_extreme_heat_converges_to_min_cop_share(self):
        # Past the COP floor the budget stops shrinking: the chiller is
        # as inefficient as it gets.
        model = CoolingModel()
        at_floor = 1000.0 * model.min_cop / (model.min_cop + 1.0)
        assert effective_it_budget(1000.0, model, 150.0) == pytest.approx(at_floor)
        assert effective_it_budget(1000.0, model, 500.0) == pytest.approx(at_floor)

    def test_monotone_non_increasing_in_outside_temp(self):
        model = CoolingModel()
        sweep = [
            effective_it_budget(1000.0, model, t)
            for t in np.linspace(-40.0, 120.0, 33)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(sweep, sweep[1:]))


class TestDegradedSupplyTemperature:
    def test_healthy_is_base_ambient(self):
        model = CoolingModel()
        assert model.degraded_supply_temperature(25.0, 45.0, 0.0) == 25.0

    def test_total_failure_reaches_hot_return_air(self):
        model = CoolingModel()
        t = model.degraded_supply_temperature(25.0, 45.0, 1.0, return_delta=15.0)
        assert t == pytest.approx(45.0 + 15.0)

    def test_cold_outside_still_heats_by_return_delta(self):
        # Return air is warm even in winter; failure can never *cool*.
        model = CoolingModel()
        t = model.degraded_supply_temperature(25.0, -10.0, 1.0, return_delta=15.0)
        assert t == pytest.approx(25.0 + 15.0)
        assert model.degraded_supply_temperature(25.0, -10.0, 0.5) >= 25.0

    def test_monotone_in_derate(self):
        model = CoolingModel()
        sweep = [
            model.degraded_supply_temperature(25.0, 40.0, d)
            for d in np.linspace(0.0, 1.0, 11)
        ]
        assert all(b >= a for a, b in zip(sweep, sweep[1:]))

    def test_validation(self):
        model = CoolingModel()
        with pytest.raises(ValueError):
            model.degraded_supply_temperature(25.0, 40.0, 1.5)
        with pytest.raises(ValueError):
            model.degraded_supply_temperature(25.0, 40.0, -0.1)
        with pytest.raises(ValueError):
            model.degraded_supply_temperature(25.0, 40.0, 0.5, return_delta=-1.0)


class TestFacilityReport:
    def test_report_over_real_run(self):
        _, collector = run_willow(target_utilization=0.4, n_ticks=20, seed=2)
        model = CoolingModel()
        report = facility_report(collector, model, outside_temp=25.0)
        assert report.it_energy > 0
        assert report.cooling_energy > 0
        assert report.total_energy == pytest.approx(
            report.it_energy + report.cooling_energy
        )
        # PUE consistent with the fixed outside temperature.
        assert report.mean_pue == pytest.approx(model.pue(25.0))

    def test_consolidation_reduces_facility_energy_too(self):
        from repro.core import WillowConfig

        base = dict(target_utilization=0.2, n_ticks=40, seed=2)
        _, with_consolidation = run_willow(config=WillowConfig(), **base)
        _, without = run_willow(
            config=WillowConfig(consolidation_enabled=False), **base
        )
        model = CoolingModel()
        on = facility_report(with_consolidation, model, 30.0)
        off = facility_report(without, model, 30.0)
        assert on.total_energy < off.total_energy
        # Cooling savings scale with the IT savings (same COP).
        assert on.cooling_energy < off.cooling_energy

    def test_empty_collector_rejected(self):
        from repro.metrics import MetricsCollector

        with pytest.raises(ValueError):
            facility_report(MetricsCollector(), CoolingModel(), 20.0)
