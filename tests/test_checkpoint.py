"""Crash-safe checkpoint/restore: format, store, and bit-exact resume.

The resume contract gets the same treatment as the other equivalence
contracts (vectorized, control-plane): restore a snapshot onto a
freshly built twin, run the remaining ticks, and require the decision
digest -- sha256 over every decision-bearing collector table -- to be
bit-identical to the uninterrupted run.  That is checked for all four
resumable layers (scalar, vectorized, fault-tolerant, federated), for
the live service (snapshot + audit-tail replay), and property-based
over random configurations and snapshot ticks.
"""

import copy
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkpoint import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointStore,
    Checkpointer,
    read_checkpoint,
    read_header,
    write_checkpoint,
)
from repro.cli import main
from repro.core import WillowConfig, WillowController
from repro.core.vectorized import VectorizedWillowController
from repro.power import constant_supply
from repro.sim import RandomStreams
from repro.service.simulation import (
    LiveSimulation,
    ServiceSpec,
    decision_digest,
)
from repro.topology import build_paper_simulation
from repro.workload import (
    SIMULATION_APPS,
    random_placement,
    scale_for_target_utilization,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


# ------------------------------------------------------------------ builders
def build_controller(
    seed=3, *, vectorized=False, utilization=0.5, supply_factor=1.0,
    n_servers=18,
):
    tree = build_paper_simulation()
    config = WillowConfig()
    streams = RandomStreams(seed)
    placement = random_placement(
        [s.node_id for s in tree.servers()],
        SIMULATION_APPS,
        streams["placement"],
    )
    scale_for_target_utilization(
        placement, config.server_model.slope, utilization
    )
    supply = constant_supply(supply_factor * n_servers * config.circuit_limit)
    cls = VectorizedWillowController if vectorized else WillowController
    return cls(tree, config, supply, placement, seed=seed)


def resume_digest(build, snapshot_tick, total_ticks):
    """Digest of: run to ``snapshot_tick``, snapshot, restore a twin,
    run the rest.  Compare against the uninterrupted run's digest."""
    first = build()
    first.run(snapshot_tick)
    state = copy.deepcopy(first.snapshot_state())
    twin = build()
    twin.restore_state(state)
    twin.run(total_ticks - snapshot_tick)
    return decision_digest(twin.collector)


# ------------------------------------------------------------- file format
def test_checkpoint_file_round_trip(tmp_path):
    path = tmp_path / "one.wck"
    state = {"tick": 7, "values": [1.5, 2.25], "nested": {"a": (1, 2)}}
    header = write_checkpoint(
        path, kind="test", tick=7, state=state, meta={"note": "hi"}
    )
    assert header["payload_bytes"] > 0
    document = read_checkpoint(path)
    assert document["kind"] == "test"
    assert document["tick"] == 7
    assert document["meta"] == {"note": "hi"}
    assert document["state"] == state
    assert read_header(path)["payload_sha256"] == header["payload_sha256"]
    assert not list(tmp_path.glob("*.tmp"))  # atomic write left no temp


def test_checkpoint_bad_magic_rejected(tmp_path):
    path = tmp_path / "bad.wck"
    path.write_bytes(b"not a checkpoint at all\n")
    with pytest.raises(CheckpointCorruptError, match="magic"):
        read_checkpoint(path)


def test_checkpoint_flipped_payload_byte_detected(tmp_path):
    path = tmp_path / "flip.wck"
    write_checkpoint(path, kind="t", tick=1, state={"x": list(range(100))})
    data = bytearray(path.read_bytes())
    data[-3] ^= 0xFF
    path.write_bytes(bytes(data))
    with pytest.raises(CheckpointCorruptError, match="hash mismatch"):
        read_checkpoint(path)


def test_checkpoint_torn_payload_detected(tmp_path):
    path = tmp_path / "torn.wck"
    write_checkpoint(path, kind="t", tick=1, state={"x": list(range(100))})
    data = path.read_bytes()
    path.write_bytes(data[: len(data) - 20])  # simulate a torn write
    with pytest.raises(CheckpointCorruptError, match="torn"):
        read_checkpoint(path)


def test_checkpoint_trailing_bytes_detected(tmp_path):
    path = tmp_path / "extra.wck"
    write_checkpoint(path, kind="t", tick=1, state={})
    with path.open("ab") as handle:
        handle.write(b"junk")
    with pytest.raises(CheckpointCorruptError, match="trailing"):
        read_checkpoint(path)


def test_checkpoint_torn_header_detected(tmp_path):
    path = tmp_path / "hdr.wck"
    write_checkpoint(path, kind="t", tick=1, state={})
    data = path.read_bytes()
    # Cut inside the header line (after the magic, before its newline).
    magic_end = data.index(b"\n") + 1
    path.write_bytes(data[: magic_end + 10])
    with pytest.raises(CheckpointCorruptError):
        read_checkpoint(path)


def test_checkpoint_never_unpickles_on_hash_mismatch(tmp_path):
    # A corrupted payload must be rejected by hash before pickle ever
    # sees the bytes (unpickling attacker-controlled data is the risk).
    path = tmp_path / "evil.wck"
    write_checkpoint(path, kind="t", tick=1, state={"x": 1})
    header = read_header(path)
    data = path.read_bytes()
    payload_start = len(data) - header["payload_bytes"]
    evil = data[:payload_start] + b"\x80" * header["payload_bytes"]
    path.write_bytes(evil)
    with pytest.raises(CheckpointCorruptError, match="hash mismatch"):
        read_checkpoint(path)


# ------------------------------------------------------------------- store
def test_store_save_load_and_ticks(tmp_path):
    store = CheckpointStore(tmp_path / "ckpt")
    for tick in (7, 14, 21):
        store.save(kind="t", tick=tick, state={"tick": tick})
    assert store.ticks() == [7, 14, 21]
    assert store.load(14)["state"] == {"tick": 14}
    document = store.latest_valid()
    assert document["tick"] == 21
    assert document["skipped"] == []


def test_store_latest_valid_skips_corrupt_newest(tmp_path):
    store = CheckpointStore(tmp_path / "ckpt")
    for tick in (7, 14):
        store.save(kind="t", tick=tick, state={"tick": tick})
    newest = store.path_for(14)
    data = bytearray(newest.read_bytes())
    data[-1] ^= 0xFF
    newest.write_bytes(bytes(data))
    document = store.latest_valid()
    assert document["tick"] == 7
    assert len(document["skipped"]) == 1
    assert document["skipped"][0][0] == newest


def test_store_latest_valid_none_when_all_corrupt(tmp_path):
    store = CheckpointStore(tmp_path / "ckpt")
    store.save(kind="t", tick=7, state={})
    store.path_for(7).write_bytes(b"garbage")
    assert store.latest_valid() is None
    assert CheckpointStore(tmp_path / "absent").latest_valid() is None


def test_store_latest_valid_skips_renamed_tick_mismatch(tmp_path):
    store = CheckpointStore(tmp_path / "ckpt")
    store.save(kind="t", tick=5, state={})
    store.path_for(5).rename(store.path_for(9))
    assert store.latest_valid() is None  # header tick 5 != filename 9


def test_store_prunes_to_keep(tmp_path):
    store = CheckpointStore(tmp_path / "ckpt", keep=2)
    for tick in (1, 2, 3, 4):
        store.save(kind="t", tick=tick, state={})
    assert store.ticks() == [3, 4]


def test_store_max_tick_filter(tmp_path):
    store = CheckpointStore(tmp_path / "ckpt")
    for tick in (7, 14, 21):
        store.save(kind="t", tick=tick, state={"tick": tick})
    assert store.latest_valid(max_tick=15)["tick"] == 14


# -------------------------------------------------- controller-layer resume
@pytest.mark.parametrize("vectorized", [False, True])
def test_resume_equals_straight_run(vectorized):
    def build():
        return build_controller(seed=3, vectorized=vectorized)

    reference = build()
    reference.run(30)
    expected = decision_digest(reference.collector)
    for snapshot_tick in (1, 13, 21):
        assert resume_digest(build, snapshot_tick, 30) == expected


def test_checkpointer_cadence_and_resume(tmp_path):
    store = CheckpointStore(tmp_path / "ckpt")
    controller = build_controller(seed=5)
    checkpointer = Checkpointer(store).attach(controller)
    controller.run(30)
    eta2 = controller.config.eta2
    assert checkpointer.saved == [7, 14, 21, 28]
    assert checkpointer.every == eta2
    expected = decision_digest(controller.collector)
    for tick in store.ticks():
        twin = build_controller(seed=5)
        twin.restore_state(store.load(tick)["state"])
        twin.run(30 - tick)
        assert decision_digest(twin.collector) == expected


def test_checkpointer_custom_cadence(tmp_path):
    store = CheckpointStore(tmp_path / "ckpt")
    controller = build_controller(seed=1)
    checkpointer = Checkpointer(store, every=5).attach(controller)
    controller.run(12)
    assert checkpointer.saved == [5, 10]


def test_fault_tolerant_resume_bit_exact():
    from repro.plant_faults import (
        FaultTolerantWillowController,
        random_plant_schedule,
    )

    tree = build_paper_simulation()
    config = WillowConfig()
    schedule = random_plant_schedule(
        tree, seed=7, horizon_ticks=30, n_crashes=2, n_sensor_faults=2,
        n_cooling_events=1, n_circuit_trips=1,
    )

    def build():
        streams = RandomStreams(7)
        placement = random_placement(
            [s.node_id for s in tree.servers()],
            SIMULATION_APPS,
            streams["placement"],
        )
        scale_for_target_utilization(
            placement, config.server_model.slope, 0.55
        )
        supply = constant_supply(18 * config.circuit_limit)
        return FaultTolerantWillowController(
            tree, config, supply, placement, plant_faults=schedule, seed=7
        )

    reference = build()
    reference.run(30)
    expected = decision_digest(reference.collector)
    assert reference.collector.plant_events  # the faults actually fired
    for snapshot_tick in (8, 17):
        assert resume_digest(build, snapshot_tick, 30) == expected


def test_federation_resume_bit_exact():
    from repro.federation import SiteSpec, build_federation
    from repro.power import renewable_supply
    from repro.power.battery import Battery

    n_ticks = 24

    def build():
        specs = [
            SiteSpec(
                name="west",
                supply=renewable_supply(6000.0, day_length=32.0),
                seed=1,
                battery=Battery(500.0, 100.0),
            ),
            SiteSpec(
                name="east",
                supply=renewable_supply(6000.0, day_length=32.0, phase=0.5),
                seed=2,
                vectorized=True,
            ),
        ]
        return build_federation(specs, n_ticks=n_ticks, policy="proportional")

    def digests(coordinator):
        return [
            decision_digest(site.controller.collector)
            for site in coordinator.sites
        ]

    reference = build()
    reference.run(n_ticks)
    expected = digests(reference)
    assert reference.cross_migrations  # load actually shifted cross-site

    first = build()
    first.run(10)
    state = copy.deepcopy(first.snapshot_state())
    twin = build()
    twin.restore_state(state)
    twin.run(n_ticks - 10)
    assert digests(twin) == expected
    assert len(twin.cross_migrations) == len(reference.cross_migrations)


def test_federation_checkpointer_hook(tmp_path):
    from repro.federation import SiteSpec, build_federation

    store = CheckpointStore(tmp_path / "fed")
    coordinator = build_federation(
        [SiteSpec(name="a", seed=1), SiteSpec(name="b", seed=2)],
        n_ticks=15,
    )
    checkpointer = Checkpointer(store).attach(coordinator)
    coordinator.run(15)
    assert checkpointer.saved == [7, 14]
    assert store.load(14)["state"]["tick"] == 14


# ------------------------------------------------------------------- gates
def test_distributed_controller_refuses_checkpointing():
    from repro.control_plane.controller import DistributedWillowController

    tree = build_paper_simulation()
    config = WillowConfig()
    streams = RandomStreams(0)
    placement = random_placement(
        [s.node_id for s in tree.servers()],
        SIMULATION_APPS,
        streams["placement"],
    )
    controller = DistributedWillowController(
        tree, config, constant_supply(8100.0), placement, seed=0
    )
    with pytest.raises(CheckpointError, match="Distributed"):
        controller.snapshot_state()


def test_batched_federation_refuses_checkpointing():
    from repro.federation import SiteSpec, build_federation

    coordinator = build_federation(
        [SiteSpec(name="a", seed=1, vectorized=True),
         SiteSpec(name="b", seed=2, vectorized=True)],
        n_ticks=8,
        vectorized=True,
    )
    with pytest.raises(CheckpointError, match="vectorized=False"):
        coordinator.snapshot_state()


def test_device_classes_gate():
    from repro.devices import STANDARD_DEVICES

    tree = build_paper_simulation()
    config = WillowConfig(device_classes=STANDARD_DEVICES)
    streams = RandomStreams(0)
    placement = random_placement(
        [s.node_id for s in tree.servers()],
        SIMULATION_APPS,
        streams["placement"],
    )
    controller = WillowController(
        tree, config, constant_supply(8100.0), placement, seed=0
    )
    with pytest.raises(CheckpointError, match="device"):
        controller.snapshot_state()


# ------------------------------------------- property-based (random configs)
resume_cases = st.tuples(
    st.integers(0, 10_000),  # seed
    st.floats(0.2, 0.9),  # utilization
    st.floats(0.4, 1.2),  # supply factor
    st.integers(1, 19),  # snapshot tick
    st.booleans(),  # vectorized
)


@settings(max_examples=10, deadline=None)
@given(case=resume_cases)
def test_resume_bit_exact_for_any_configuration(case):
    seed, utilization, supply_factor, snapshot_tick, vectorized = case
    total = 20

    def build():
        return build_controller(
            seed=seed,
            vectorized=vectorized,
            utilization=utilization,
            supply_factor=supply_factor,
        )

    reference = build()
    reference.run(total)
    expected = decision_digest(reference.collector)
    assert resume_digest(build, snapshot_tick, total) == expected


# ----------------------------------------------------------- live service
SPEC = ServiceSpec(seed=11, controller="scalar", utilization=0.55)


def _events_for(tick):
    events = []
    if tick % 3 == 0:
        events.append(
            {"type": "demand_sample", "vm_id": tick % 40,
             "demand": 120.0 + tick}
        )
    if tick == 5:
        events.append({"type": "vm_arrival", "app": None, "demand": 150.0})
    if tick == 9:
        events.append({"type": "supply_update", "budget": 5200.0})
    if tick == 12:
        events.append(
            {"type": "fault", "kind": "server_crash", "server": 3,
             "ticks": 6}
        )
    return events


def _run_reference(total=24):
    sim = LiveSimulation(SPEC)
    for tick in range(total):
        for event in _events_for(tick):
            sim.apply(event)
        sim.step()
    return decision_digest(sim.finish())


def test_live_simulation_snapshot_restore_bit_exact():
    total = 24
    expected = _run_reference(total)
    sim = LiveSimulation(SPEC)
    snapshot = None
    for tick in range(total):
        for event in _events_for(tick):
            sim.apply(event)
        sim.step()
        if sim.tick == 14:
            snapshot = copy.deepcopy(sim.snapshot_state())
    twin = LiveSimulation(SPEC)
    twin.restore_state(snapshot)
    assert twin.tick == 14
    for tick in range(14, total):
        for event in _events_for(tick):
            twin.apply(event)
        twin.step()
    assert decision_digest(twin.finish()) == expected


def test_live_snapshot_rejects_foreign_spec():
    sim = LiveSimulation(SPEC)
    sim.step()
    state = sim.snapshot_state()
    other = LiveSimulation(ServiceSpec(seed=99))
    with pytest.raises(CheckpointError, match="different service spec"):
        other.restore_state(state)


def _write_crashed_run(tmp_path, *, crash_tick=17, every=7):
    """Simulate a live run that died at ``crash_tick`` mid-write."""
    from repro.service.audit import AuditLog

    audit_path = tmp_path / "audit.jsonl"
    ckpt_dir = tmp_path / "ckpt"
    audit = AuditLog(audit_path)
    audit.write_meta(SPEC.to_meta(), tick_seconds=0.1)
    store = CheckpointStore(ckpt_dir)
    sim = LiveSimulation(SPEC)
    seq = 0
    for tick in range(crash_tick):
        for event in _events_for(tick):
            result = sim.apply(event)
            audit.write_event(
                tick, seq, "test", event,
                applied=result.applied, reason=result.reason,
            )
            seq += 1
        sim.step()
        audit.flush()
        if sim.tick % every == 0:
            store.save(
                kind="service", tick=sim.tick, state=sim.snapshot_state()
            )
    audit._writer._handle.close()  # hard kill: no end record
    with audit_path.open("a") as handle:
        handle.write('{"kind":"event","tick":17,"se')  # torn final line
    return audit_path, ckpt_dir


def test_recover_simulation_checkpoint_plus_tail(tmp_path):
    from repro.service.recover import recover_simulation

    audit_path, ckpt_dir = _write_crashed_run(tmp_path)
    recovery = recover_simulation(audit_path, ckpt_dir)
    assert recovery.restored_tick == 14
    assert recovery.truncated_lines == 1
    assert recovery.apply_mismatches == 0
    assert recovery.sim.tick >= recovery.restored_tick
    # Continue to the reference horizon: bit-exact with never-crashed.
    sim = recovery.sim
    for tick in range(sim.tick, 24):
        for event in _events_for(tick):
            sim.apply(event)
        sim.step()
    assert decision_digest(sim.finish()) == _run_reference(24)


def test_recover_simulation_skips_corrupt_newest(tmp_path):
    from repro.service.recover import recover_simulation

    audit_path, ckpt_dir = _write_crashed_run(tmp_path)
    newest = sorted(ckpt_dir.glob("checkpoint-*.wck"))[-1]
    data = bytearray(newest.read_bytes())
    data[-10] ^= 0xFF
    newest.write_bytes(bytes(data))
    recovery = recover_simulation(audit_path, ckpt_dir)
    assert recovery.restored_tick == 7
    assert len(recovery.skipped_checkpoints) == 1
    sim = recovery.sim
    for tick in range(sim.tick, 24):
        for event in _events_for(tick):
            sim.apply(event)
        sim.step()
    assert decision_digest(sim.finish()) == _run_reference(24)


def test_recover_simulation_without_checkpoints_full_replay(tmp_path):
    from repro.service.recover import recover_simulation

    audit_path, _ = _write_crashed_run(tmp_path)
    recovery = recover_simulation(audit_path, tmp_path / "empty")
    assert recovery.restored_tick == 0
    assert recovery.checkpoint_path is None
    sim = recovery.sim
    for tick in range(sim.tick, 24):
        for event in _events_for(tick):
            sim.apply(event)
        sim.step()
    assert decision_digest(sim.finish()) == _run_reference(24)


# ---------------------------------------------------- kill -9 crash harness
def test_kill9_recovery_replay_parity(tmp_path):
    """The full crash drill: kill -9 a live checkpointed run mid-tick,
    corrupt the newest checkpoint, recover, and require the combined
    audit log to replay bit-exactly against the recovered digest."""
    audit = tmp_path / "audit.jsonl"
    ckpt = tmp_path / "audit.jsonl.ckpt"
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve", str(audit),
            "--ticks", "500", "--tick-seconds", "0.05", "--seed", "3",
            "--load", "4000",
            "--checkpoint-dir", str(ckpt), "--checkpoint-every", "4",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    try:
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if len(list(ckpt.glob("checkpoint-*.wck"))) >= 3:
                break
            time.sleep(0.1)
        else:
            pytest.fail("no checkpoints appeared within 60s")
    finally:
        process.kill()  # SIGKILL: no graceful drain, no end record
        process.communicate()

    newest = sorted(ckpt.glob("checkpoint-*.wck"))[-1]
    data = bytearray(newest.read_bytes())
    data[400] ^= 0xFF
    newest.write_bytes(bytes(data))

    recovered = subprocess.run(
        [
            sys.executable, "-m", "repro.cli", "serve", str(audit),
            "--recover", "--no-listen", "--ticks", "6",
            "--tick-seconds", "0.02",
        ],
        capture_output=True,
        env=env,
        text=True,
        timeout=120,
    )
    assert recovered.returncode == 0, recovered.stderr
    assert "restored checkpoint at tick" in recovered.stdout
    assert "skipped corrupt checkpoint" in recovered.stdout

    replayed = subprocess.run(
        [sys.executable, "-m", "repro.cli", "replay", str(audit)],
        capture_output=True,
        env=env,
        text=True,
        timeout=120,
    )
    assert replayed.returncode == 0, replayed.stderr
    assert "replay parity: OK" in replayed.stdout


# ------------------------------------------------------------ CLI round trip
def test_cli_checkpoint_resume_round_trip(tmp_path, capsys):
    ckpt = tmp_path / "run.ckpt"
    assert main(["checkpoint", str(ckpt), "--ticks", "20", "--seed", "7"]) == 0
    first = capsys.readouterr().out
    digest = next(
        line for line in first.splitlines() if "decision digest" in line
    )
    assert main(["resume", str(ckpt)]) == 0
    second = capsys.readouterr().out
    assert digest in second
    assert "resumed from checkpoint at tick 14" in second


def test_cli_checkpoint_resume_vectorized(tmp_path, capsys):
    ckpt = tmp_path / "runv.ckpt"
    assert main(
        ["checkpoint", str(ckpt), "--ticks", "16", "--seed", "4",
         "--vectorized"]
    ) == 0
    digest = next(
        line for line in capsys.readouterr().out.splitlines()
        if "decision digest" in line
    )
    assert main(["resume", str(ckpt), "--at", "7"]) == 0
    assert digest in capsys.readouterr().out


def test_cli_resume_skips_corrupt_and_matches(tmp_path, capsys):
    ckpt = tmp_path / "run.ckpt"
    assert main(["checkpoint", str(ckpt), "--ticks", "20", "--seed", "2"]) == 0
    digest = next(
        line for line in capsys.readouterr().out.splitlines()
        if "decision digest" in line
    )
    newest = sorted(ckpt.glob("checkpoint-*.wck"))[-1]
    data = bytearray(newest.read_bytes())
    data[50] ^= 0xFF
    newest.write_bytes(bytes(data))
    assert main(["resume", str(ckpt)]) == 0
    out = capsys.readouterr().out
    assert "skipped corrupt checkpoint" in out
    assert digest in out


def test_cli_resume_missing_dir_exit_2(tmp_path, capsys):
    assert main(["resume", str(tmp_path / "nope")]) == 2
    assert "not a directory" in capsys.readouterr().err


def test_cli_resume_missing_tick_exit_2(tmp_path, capsys):
    ckpt = tmp_path / "run.ckpt"
    assert main(["checkpoint", str(ckpt), "--ticks", "8"]) == 0
    capsys.readouterr()
    assert main(["resume", str(ckpt), "--at", "999"]) == 2
    assert "no checkpoint for tick 999" in capsys.readouterr().err


def test_cli_resume_all_corrupt_exit_2(tmp_path, capsys):
    ckpt = tmp_path / "run.ckpt"
    assert main(["checkpoint", str(ckpt), "--ticks", "8"]) == 0
    capsys.readouterr()
    for path in ckpt.glob("checkpoint-*.wck"):
        path.write_bytes(b"garbage")
    assert main(["resume", str(ckpt)]) == 2
    assert "no valid checkpoint" in capsys.readouterr().err


def test_cli_resume_corrupt_at_exit_2(tmp_path, capsys):
    ckpt = tmp_path / "run.ckpt"
    assert main(["checkpoint", str(ckpt), "--ticks", "8"]) == 0
    capsys.readouterr()
    tick = int(sorted(ckpt.glob("checkpoint-*.wck"))[0].stem.split("-")[1])
    sorted(ckpt.glob("checkpoint-*.wck"))[0].write_bytes(b"garbage")
    assert main(["resume", str(ckpt), "--at", str(tick)]) == 2
    err = capsys.readouterr().err
    assert "resume:" in err and "Traceback" not in err


def test_cli_resume_ticks_before_checkpoint_exit_2(tmp_path, capsys):
    ckpt = tmp_path / "run.ckpt"
    assert main(["checkpoint", str(ckpt), "--ticks", "20"]) == 0
    capsys.readouterr()
    assert main(["resume", str(ckpt), "--ticks", "3"]) == 2
    assert "before the checkpoint" in capsys.readouterr().err


def test_cli_resume_rejects_service_checkpoints(tmp_path, capsys):
    store = CheckpointStore(tmp_path / "svc")
    sim = LiveSimulation(ServiceSpec(seed=1))
    sim.step()
    store.save(kind="service", tick=1, state=sim.snapshot_state())
    assert main(["resume", str(tmp_path / "svc")]) == 2
    assert "serve --recover" in capsys.readouterr().err


def test_cli_checkpoint_invalid_args_exit_2(capsys):
    assert main(["checkpoint", "d", "--ticks", "0"]) == 2
    assert main(["checkpoint", "d", "--every", "0"]) == 2
    assert main(["checkpoint", "d", "--utilization", "2.0"]) == 2
    assert main(["checkpoint", "d", "--branching", "a,b"]) == 2
    capsys.readouterr()


def test_cli_serve_checkpoint_flags_validated(tmp_path, capsys):
    audit = tmp_path / "a.jsonl"
    assert main(["serve", str(audit), "--checkpoint-every", "0"]) == 2
    assert "--checkpoint-every" in capsys.readouterr().err
    assert main(["serve", str(audit), "--checkpoint-every", "4"]) == 2
    assert "needs --checkpoint-dir" in capsys.readouterr().err


def test_cli_serve_recover_missing_audit_exit_2(tmp_path, capsys):
    assert main(
        ["serve", str(tmp_path / "absent.jsonl"), "--recover", "--no-listen"]
    ) == 2
    assert "serve --recover:" in capsys.readouterr().err
