"""White-box tests of controller internals: budget allocation, demand
aggregation, wake forecasting, and cost bookkeeping."""

import numpy as np
import pytest

from repro.core import WillowConfig, WillowController
from repro.core.state import SleepState
from repro.power import constant_supply, step_supply
from repro.sim import RandomStreams
from repro.topology import build_paper_simulation, build_testbed
from repro.workload import (
    SIMULATION_APPS,
    AppType,
    DemandTrace,
    PlacementPlan,
    TraceDemandSource,
    VM,
    random_placement,
    scale_for_target_utilization,
)


def build(tree=None, config=None, supply=None, utilization=0.5, seed=2, **kw):
    tree = tree or build_paper_simulation()
    config = config or WillowConfig()
    streams = RandomStreams(seed)
    placement = random_placement(
        [s.node_id for s in tree.servers()], SIMULATION_APPS, streams["placement"]
    )
    scale_for_target_utilization(placement, config.server_model.slope, utilization)
    supply = supply or constant_supply(len(tree.servers()) * 450.0)
    return WillowController(tree, config, supply, placement, seed=seed, **kw)


class TestDemandAggregation:
    def test_internal_smoothed_demand_is_sum_of_children(self):
        controller = build()
        controller.run(6)
        for node in controller.tree:
            if node.is_leaf:
                continue
            runtime = controller.internals[node.node_id]
            child_sum = 0.0
            for child in node.children:
                if child.is_leaf:
                    child_sum += controller.servers[child.node_id].smoothed_demand
                else:
                    child_sum += controller.internals[child.node_id].smoothed_demand
            # Internal smoothers smooth the sum of (already smoothed)
            # child reports; after several identical ticks the fixed
            # point is the plain sum.
            assert runtime.smoothed_demand == pytest.approx(
                child_sum, rel=0.25
            )

    def test_root_budget_capped_by_aggregate_hard_caps(self):
        # Offer far more supply than the fleet's caps can absorb.
        controller = build(supply=constant_supply(1e9))
        controller.run(2)
        root = controller.internals[controller.tree.root.node_id]
        total_caps = sum(s.hard_cap() for s in controller.servers.values())
        assert root.budget <= total_caps + 1e-6


class TestSwitchReservation:
    def test_switch_power_reserved_before_child_allocation(self):
        controller = build()
        controller.run(8)
        # At any internal node: children total <= node budget minus the
        # colocated switch group's last recorded power.
        for node in controller.tree:
            if node.is_leaf:
                continue
            runtime = controller.internals[node.node_id]
            reserve = sum(
                controller._last_switch_power[s.switch_id]
                for s in controller.fabric.at_site(node)
            )
            child_total = sum(
                controller.servers[c.node_id].budget
                if c.is_leaf
                else controller.internals[c.node_id].budget
                for c in node.children
            )
            # Reserve uses the *previous* tick's switch power, so allow
            # the small drift between ticks.
            assert child_total <= runtime.budget - reserve + 25.0


class TestWakeForecast:
    def _starved_controller(self):
        """A fleet that sleeps a server, then faces heavy drops."""
        tree = build_paper_simulation()
        config = WillowConfig(eta1=2, eta2=3, wake_latency_ticks=1)
        streams = RandomStreams(4)
        placement = random_placement(
            [s.node_id for s in tree.servers()], SIMULATION_APPS, streams["placement"]
        )
        scale_for_target_utilization(placement, config.server_model.slope, 0.15)
        # Plenty, then a demand surge cannot happen with a trace...
        # instead: plenty then sharp supply cut to force drops while a
        # server sleeps.
        supply = step_supply([(0.0, 18 * 450.0), (20.0, 6 * 450.0)])
        return WillowController(tree, config, supply, placement, seed=4)

    def test_woken_server_reports_forecast_not_floor(self):
        controller = self._starved_controller()
        collector = controller.run(60)
        woke = [
            s
            for s in controller.servers.values()
            if s.asleep_ticks > 0 and s.is_awake
        ]
        # At least one server went through a sleep->wake cycle.
        assert woke or any(
            s.sleep_state is SleepState.WAKING
            for s in controller.servers.values()
        ) or collector.total_dropped_power() == 0


class TestMigrationCostCharging:
    def test_costs_charged_to_both_ends(self):
        tree = build_testbed()
        config = WillowConfig(
            allocation_mode="capacity",
            p_min=2.0,
            migration_cost_power=7.0,
            migration_cost_ticks=3,
            consolidation_enabled=False,
            server_model=__import__(
                "repro.power.server", fromlist=["TESTBED_SERVER"]
            ).TESTBED_SERVER,
            circuit_limit=232.0,
        )
        app_big = AppType("big", 50.0)
        app_small = AppType("small", 5.0)
        servers = tree.servers()
        vms = [
            VM(vm_id=0, app=app_big, host_id=servers[0].node_id),
            VM(vm_id=1, app=app_big, host_id=servers[0].node_id),
            VM(vm_id=2, app=app_small, host_id=servers[1].node_id),
            VM(vm_id=3, app=app_small, host_id=servers[2].node_id),
        ]
        placement = PlacementPlan(vms=vms, scale=1.0)
        trace = DemandTrace.constant([50.0, 50.0, 5.0, 5.0], n_ticks=1)
        # Enough for all demand at start, then squeeze server A hard.
        supply = step_supply([(0.0, 900.0), (8.0, 660.0)])
        controller = WillowController(
            tree,
            config,
            supply,
            placement,
            demand_source=TraceDemandSource(trace, vms),
            seed=0,
        )
        collector = controller.run(20)
        if collector.migrations:
            migration = collector.migrations[0]
            src = controller.servers[migration.src_id]
            dst = controller.servers[migration.dst_id]
            # Immediately after execution both ends carry the charge
            # (it decays over migration_cost_ticks); by the end of the
            # run it must have expired.
            assert src.migration_cost_demand == 0.0
            assert dst.migration_cost_demand == 0.0
            assert migration.cost_power == 7.0


class TestTickAccounting:
    def test_simulation_clock_advances_by_delta_d(self):
        config = WillowConfig(delta_d=2.5)
        controller = build(config=config)
        collector = controller.run(4)
        assert np.allclose(collector.times(), [0.0, 2.5, 5.0, 7.5])

    def test_metrics_collector_injection(self):
        from repro.metrics import MetricsCollector

        mine = MetricsCollector()
        tree = build_paper_simulation()
        config = WillowConfig()
        streams = RandomStreams(1)
        placement = random_placement(
            [s.node_id for s in tree.servers()], SIMULATION_APPS, streams["placement"]
        )
        controller = WillowController(
            tree,
            config,
            constant_supply(8100.0),
            placement,
            collector=mine,
            seed=1,
        )
        result = controller.run(3)
        assert result is mine
        assert mine.server_samples
