"""Tests for CSV/JSON export of recorded metrics."""

import csv

import pytest

from repro.core import run_willow
from repro.metrics.export import export_csv, export_json, load_json


@pytest.fixture(scope="module")
def run_data():
    return run_willow(target_utilization=0.5, n_ticks=15, seed=7)


def test_csv_export_writes_expected_tables(tmp_path, run_data):
    _, collector = run_data
    written = export_csv(collector, tmp_path)
    assert "servers" in written
    assert "switches" in written
    assert "messages" in written
    assert "imbalance" in written
    with written["servers"].open() as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == len(collector.server_samples)
    assert set(rows[0]) >= {"time", "server_id", "power", "temperature"}


def test_csv_export_skips_empty_tables(tmp_path):
    from repro.metrics import MetricsCollector

    written = export_csv(MetricsCollector(), tmp_path)
    assert written == {}


def test_csv_enum_fields_serialised(tmp_path, run_data):
    _, collector = run_data
    if not collector.migrations:
        pytest.skip("run produced no migrations")
    written = export_csv(collector, tmp_path)
    with written["migrations"].open() as handle:
        rows = list(csv.DictReader(handle))
    assert rows[0]["cause"] in ("demand", "consolidation")


def test_json_round_trip(tmp_path, run_data):
    _, collector = run_data
    path = export_json(collector, tmp_path / "run.json")
    document = load_json(path)
    assert len(document["servers"]) == len(collector.server_samples)
    assert len(document["migrations"]) == len(collector.migrations)
    assert len(document["imbalance"]) == len(collector.imbalance)
    sample = document["servers"][0]
    assert isinstance(sample["power"], float)


def test_json_creates_parent_dirs(tmp_path, run_data):
    _, collector = run_data
    path = export_json(collector, tmp_path / "deep" / "nested" / "run.json")
    assert path.exists()
