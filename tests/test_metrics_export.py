"""Tests for CSV/JSON export of recorded metrics."""

import csv

import pytest

from repro.core import run_willow
from repro.metrics.export import export_csv, export_json, load_json


@pytest.fixture(scope="module")
def run_data():
    return run_willow(target_utilization=0.5, n_ticks=15, seed=7)


def test_csv_export_writes_expected_tables(tmp_path, run_data):
    _, collector = run_data
    written = export_csv(collector, tmp_path)
    assert "servers" in written
    assert "switches" in written
    assert "messages" in written
    assert "imbalance" in written
    with written["servers"].open() as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == len(collector.server_samples)
    assert set(rows[0]) >= {"time", "server_id", "power", "temperature"}


def test_csv_export_skips_empty_tables(tmp_path):
    from repro.metrics import MetricsCollector

    written = export_csv(MetricsCollector(), tmp_path)
    assert written == {}


def test_csv_enum_fields_serialised(tmp_path, run_data):
    _, collector = run_data
    if not collector.migrations:
        pytest.skip("run produced no migrations")
    written = export_csv(collector, tmp_path)
    with written["migrations"].open() as handle:
        rows = list(csv.DictReader(handle))
    assert rows[0]["cause"] in ("demand", "consolidation")


def test_json_round_trip(tmp_path, run_data):
    _, collector = run_data
    path = export_json(collector, tmp_path / "run.json")
    document = load_json(path)
    assert len(document["servers"]) == len(collector.server_samples)
    assert len(document["migrations"]) == len(collector.migrations)
    assert len(document["imbalance"]) == len(collector.imbalance)
    sample = document["servers"][0]
    assert isinstance(sample["power"], float)


def test_json_creates_parent_dirs(tmp_path, run_data):
    _, collector = run_data
    path = export_json(collector, tmp_path / "deep" / "nested" / "run.json")
    assert path.exists()


# ---------------------------------------------------------------- coverage
# Regression for the bug where the exporter hand-listed its tables and
# silently dropped `unmatched_deficits` and `plant_events`: the table
# set is now derived from the collector's dataclass fields, and these
# tests pin that derivation.


@pytest.fixture(scope="module")
def faulty_run_data():
    from repro.plant_faults import random_plant_schedule, run_resilient
    from repro.topology import build_paper_simulation

    tree = build_paper_simulation()
    schedule = random_plant_schedule(
        tree,
        seed=7,
        horizon_ticks=60,
        n_crashes=2,
        n_sensor_faults=1,
        n_circuit_trips=1,
    )
    return run_resilient(
        tree=tree,
        plant_faults=schedule,
        target_utilization=0.8,
        n_ticks=60,
        seed=7,
    )


def test_faulty_run_exports_plant_events_and_unmatched(
    tmp_path, faulty_run_data
):
    _, collector = faulty_run_data
    assert collector.plant_events, "schedule produced no plant events"
    assert collector.unmatched_deficits, "run produced no unmatched deficits"

    written = export_csv(collector, tmp_path / "csv")
    assert "plant_events" in written
    assert "unmatched_deficits" in written
    with written["plant_events"].open() as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == len(collector.plant_events)
    assert set(rows[0]) == {"time", "kind", "node_id", "detail"}
    with written["unmatched_deficits"].open() as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == len(collector.unmatched_deficits)

    document = load_json(export_json(collector, tmp_path / "run.json"))
    assert len(document["plant_events"]) == len(collector.plant_events)
    assert len(document["unmatched_deficits"]) == len(
        collector.unmatched_deficits
    )
    # JSON-native values only (enums and dataclasses normalised away).
    kinds = {event["kind"] for event in document["plant_events"]}
    assert kinds == {e.kind for e in collector.plant_events}


def test_export_json_covers_every_collector_list_field(tmp_path, run_data):
    """Introspective guard: a new collector series cannot silently be
    omitted from export (the original unmatched/plant-events bug)."""
    import dataclasses

    from repro.metrics import MetricsCollector
    from repro.metrics.export import record_tables

    _, collector = run_data
    list_fields = [
        f.name
        for f in dataclasses.fields(MetricsCollector)
        if isinstance(getattr(collector, f.name), list)
    ]
    tables = record_tables(collector)
    assert len(tables) == len(list_fields)

    document = load_json(export_json(collector, tmp_path / "all.json"))
    assert set(document) == set(tables)
    for name, records in tables.items():
        assert len(document[name]) == len(records)


def test_round_trip_every_record_type(tmp_path):
    """One record of each type survives export_json -> load_json."""
    from repro.core.events import (
        ControlMessage,
        Drop,
        Migration,
        MigrationCause,
        PlantEvent,
    )
    from repro.metrics import MetricsCollector
    from repro.metrics.collector import ServerSample, SwitchSample
    from repro.metrics.export import record_tables

    collector = MetricsCollector()
    collector.record_server(
        ServerSample(0.0, 3, 100.0, 45.0, 0.5, 120.0, 110.0, False)
    )
    collector.record_switch(SwitchSample(0.0, 1, 2, 50.0, 5.0, 30.0))
    collector.record_migration(
        Migration(1.0, 9, 3, 4, 25.0, MigrationCause.DEMAND, True, 1, 5.0)
    )
    collector.record_drop(Drop(1.0, 3, 9, 12.5))
    collector.record_unmatched(Drop(1.0, 4, 10, 7.5))
    collector.record_message(ControlMessage(1.0, 3, True))
    collector.record_imbalance(1.0, -3.25)
    collector.record_plant_event(PlantEvent(2.0, "circuit_trip", 2, "test"))

    document = load_json(export_json(collector, tmp_path / "one.json"))
    for name, records in record_tables(collector).items():
        assert len(document[name]) == len(records) == 1, name
    assert document["migrations"][0]["cause"] == "demand"
    assert document["plant_events"][0]["kind"] == "circuit_trip"
    assert document["unmatched_deficits"][0]["power"] == 7.5
    assert document["imbalance"][0] == {"time": 1.0, "imbalance_watts": -3.25}
