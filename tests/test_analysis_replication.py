"""Tests for replication/sweep analysis."""

import numpy as np
import pytest

from repro.analysis import compare, mean_ci, replicate


class TestReplicate:
    def test_collects_metrics_per_seed(self):
        result = replicate(lambda seed: {"x": seed * 2.0}, seeds=[1, 2, 3])
        assert np.array_equal(result.metric("x"), [2.0, 4.0, 6.0])
        assert result.mean("x") == 4.0

    def test_duplicate_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate(lambda s: {"x": 1.0}, seeds=[1, 1])

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate(lambda s: {"x": 1.0}, seeds=[])

    def test_inconsistent_keys_rejected(self):
        def run(seed):
            return {"x": 1.0} if seed == 1 else {"y": 1.0}

        with pytest.raises(ValueError):
            replicate(run, seeds=[1, 2])

    def test_no_metrics_rejected(self):
        with pytest.raises(ValueError):
            replicate(lambda s: {}, seeds=[1])


class TestMeanCI:
    def test_basic_interval(self):
        mean, half = mean_ci([10.0, 12.0, 8.0, 10.0])
        assert mean == pytest.approx(10.0)
        assert half > 0

    def test_zero_variance(self):
        mean, half = mean_ci([5.0, 5.0, 5.0])
        assert mean == 5.0
        assert half == 0.0

    def test_interval_narrows_with_more_samples(self):
        rng = np.random.default_rng(1)
        few = rng.normal(0, 1, 5)
        many = rng.normal(0, 1, 50)
        _, half_few = mean_ci(few)
        _, half_many = mean_ci(many)
        assert half_many < half_few

    def test_validation(self):
        with pytest.raises(ValueError):
            mean_ci([1.0])
        with pytest.raises(ValueError):
            mean_ci([1.0, 2.0], confidence=1.5)

    def test_nonstandard_confidence_uses_scipy(self):
        mean, half95 = mean_ci([1.0, 2.0, 3.0], confidence=0.95)
        _, half80 = mean_ci([1.0, 2.0, 3.0], confidence=0.80)
        assert half80 < half95


class TestCompare:
    def test_paired_comparison(self):
        comparison = compare(
            run_a=lambda s: {"drops": 10.0 + s},
            run_b=lambda s: {"drops": 20.0 + s},
            seeds=[1, 2, 3],
            metric="drops",
        )
        assert comparison.mean_difference == pytest.approx(-10.0)
        assert comparison.a_wins_everywhere(smaller_is_better=True)
        assert comparison.sign_consistency == 1.0

    def test_mixed_signs(self):
        comparison = compare(
            run_a=lambda s: {"m": float(s)},
            run_b=lambda s: {"m": 2.0},
            seeds=[1, 2, 3],
            metric="m",
        )
        # diffs: -1, 0, +1 -> no majority either way; consistency 0.5.
        assert comparison.sign_consistency == 0.5
        assert not comparison.a_wins_everywhere()

    def test_missing_metric_rejected(self):
        with pytest.raises(KeyError):
            compare(
                lambda s: {"x": 1.0},
                lambda s: {"x": 1.0},
                seeds=[1, 2],
                metric="y",
            )


class TestWillowReplication:
    def test_hot_zone_claim_holds_across_seeds(self):
        """Fig. 5's headline survives seed variation."""
        from repro.core import run_willow

        hot = {f"server-{i}": 40.0 for i in range(15, 19)}

        def run(seed):
            _, collector = run_willow(
                target_utilization=0.6,
                n_ticks=30,
                seed=seed,
                ambient_overrides=hot,
            )
            ids = collector.server_ids()
            cold = np.mean([collector.mean_server(i, "power") for i in ids[:14]])
            hot_mean = np.mean(
                [collector.mean_server(i, "power") for i in ids[14:]]
            )
            return {"cold": cold, "hot": hot_mean}

        result = replicate(run, seeds=[1, 2, 3, 4])
        assert np.all(result.metric("hot") < result.metric("cold"))
