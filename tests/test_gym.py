"""Tests for the gym environment and learned schedulers (:mod:`repro.gym`).

The load-bearing contracts:

* determinism -- same seed, same episode, bit for bit;
* feasibility -- no projected action ever exceeds a donor's headroom
  or a source's own demand (property-based);
* transfer -- a policy learned in the env makes *identical* decisions
  when registered and run through the normal federation coordinator,
  so the env adds observation plumbing, not alternative physics.
"""

import hashlib
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkpoint.errors import CheckpointError
from repro.federation import POLICIES, run_federation
from repro.federation.policies import SiteStatus
from repro.gym import (
    BanditAgent,
    CEMAgent,
    GymConfig,
    LearnedPolicy,
    RewardWeights,
    WillowFedEnv,
    linear_policy_fn,
    linear_shift_matrix,
    matrix_to_transfers,
    project_shift_matrix,
)

THETA = (1.4, 0.3)


def rollout_digest(env, theta=THETA, seed=5):
    """SHA-256 over every observation and reward of one episode."""
    agent = CEMAgent()
    obs, info = env.reset(seed=seed)
    sha = hashlib.sha256()
    sha.update(obs.tobytes())
    truncated = False
    while not truncated:
        obs, reward, terminated, truncated, info = env.step(
            agent.act(info, theta)
        )
        assert not terminated
        sha.update(obs.tobytes())
        sha.update(np.float64(reward).tobytes())
    return sha.hexdigest()


class TestDeterminism:
    def test_same_seed_episodes_bit_identical(self):
        config = GymConfig(windows=8)
        assert rollout_digest(WillowFedEnv(config)) == rollout_digest(
            WillowFedEnv(config)
        )

    def test_reset_after_steps_restarts_cleanly(self):
        """A mid-episode reset reproduces the fresh-env episode."""
        config = GymConfig(windows=8)
        env = WillowFedEnv(config)
        _obs, info = env.reset(seed=5)
        for _ in range(3):
            env.step(CEMAgent().act(info, THETA))
        assert rollout_digest(env) == rollout_digest(WillowFedEnv(config))

    def test_seedless_resets_advance_episodes(self):
        env = WillowFedEnv(GymConfig(windows=8))
        _obs, info1 = env.reset(seed=5)
        _obs, info2 = env.reset()
        assert info1["site_seed"] != info2["site_seed"]

    def test_observation_matches_space(self):
        env = WillowFedEnv(GymConfig(windows=4))
        obs, _info = env.reset(seed=0)
        assert obs.shape == env.observation_space.shape
        assert obs.dtype == np.float64
        assert env.observation_space.contains(obs)


def status_lists(draw):
    n = draw(st.integers(min_value=2, max_value=4))
    statuses = []
    for i in range(n):
        supply = draw(
            st.floats(min_value=0.0, max_value=1e4, allow_nan=False)
        )
        demand = draw(
            st.floats(min_value=0.0, max_value=1e4, allow_nan=False)
        )
        statuses.append(
            SiteStatus(
                name=f"site{i}",
                supply=supply,
                smoothed_demand=demand,
                carbon=1.0,
                price=1.0,
            )
        )
    return statuses


@st.composite
def projection_cases(draw):
    statuses = status_lists(draw)
    n = len(statuses)
    matrix = draw(
        st.lists(
            st.lists(
                st.floats(
                    min_value=-1e3, max_value=1e5, allow_nan=False
                ),
                min_size=n,
                max_size=n,
            ),
            min_size=n,
            max_size=n,
        )
    )
    margin = draw(st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
    return statuses, matrix, margin


class TestProjection:
    @settings(max_examples=200, deadline=None)
    @given(projection_cases())
    def test_projection_is_always_feasible(self, case):
        """Inflow never exceeds donor headroom; outflow never exceeds
        the source's own demand; entries stay non-negative, diagonal
        zero."""
        statuses, matrix, margin = case
        out = project_shift_matrix(statuses, matrix, margin)
        tol = 1e-9 + 1e-12 * np.abs(out).sum()
        assert (out >= 0.0).all()
        assert np.diagonal(out).sum() == 0.0
        for i, status in enumerate(statuses):
            assert out[i].sum() <= max(status.smoothed_demand, 0.0) + tol
            donatable = max(status.headroom - margin, 0.0)
            assert out[:, i].sum() <= donatable + tol

    def test_projection_rejects_wrong_shape(self):
        statuses = [
            SiteStatus("a", 10.0, 5.0, 1.0, 1.0),
            SiteStatus("b", 10.0, 5.0, 1.0, 1.0),
        ]
        with pytest.raises(ValueError, match="shape"):
            project_shift_matrix(statuses, np.zeros((3, 3)), 0.0)

    def test_proportional_matrix_passes_through_unchanged(self):
        """The waterfall's own output is a fixed point of the
        projection, which is what makes theta=[1,0] exact."""
        statuses = [
            SiteStatus("a", 100.0, 900.0, 1.0, 1.0),
            SiteStatus("b", 1000.0, 400.0, 1.0, 1.0),
            SiteStatus("c", 800.0, 500.0, 1.0, 1.0),
        ]
        matrix = linear_shift_matrix(statuses, None, (1.0, 0.0), 10.0)
        projected = project_shift_matrix(statuses, matrix, 10.0)
        np.testing.assert_array_equal(matrix, projected)

    def test_transfer_lowering_matches_proportional(self):
        statuses = [
            SiteStatus("a", 100.0, 900.0, 1.0, 1.0),
            SiteStatus("b", 1000.0, 400.0, 1.0, 1.0),
            SiteStatus("c", 800.0, 500.0, 1.0, 1.0),
        ]
        matrix = linear_shift_matrix(statuses, None, (1.0, 0.0), 10.0)
        assert matrix_to_transfers(statuses, matrix) == POLICIES[
            "proportional"
        ](statuses, margin=10.0)


class TestRoundTrip:
    def test_theta_one_zero_reproduces_proportional(self):
        """An env episode driven by gains [1, 0] executes the exact
        transfer schedule run_federation produces under proportional."""
        config = GymConfig(windows=10)
        env = WillowFedEnv(config)
        agent = CEMAgent()
        _obs, info = env.reset(seed=0)
        truncated = False
        while not truncated:
            _o, _r, _t, truncated, info = env.step(agent.act(info, (1.0, 0.0)))
        reference = run_federation(
            env.episode_specs(),
            n_ticks=env.n_ticks,
            policy="proportional",
            margin=config.margin,
        )
        assert env.coordinator.transfer_log == reference.transfer_log

    def test_learned_policy_round_trips_through_run_federation(self):
        """The same theta, run via LearnedPolicy under the planner,
        makes bit-identical decisions to the env rollout."""
        config = GymConfig(windows=10)
        env = WillowFedEnv(config)
        agent = CEMAgent()
        _obs, info = env.reset(seed=0)
        truncated = False
        while not truncated:
            _o, _r, _t, truncated, info = env.step(agent.act(info, THETA))
        learned = LearnedPolicy(linear_policy_fn(THETA), name="cem-test")
        reference = run_federation(
            env.episode_specs(),
            n_ticks=env.n_ticks,
            policy=learned,
            horizon=config.horizon,
            margin=config.margin,
            forecast=config.forecast,
        )
        assert env.coordinator.transfer_log == reference.transfer_log

    def test_learned_policy_registry_round_trip(self):
        before = set(POLICIES)
        learned = LearnedPolicy(linear_policy_fn(THETA), name="cem-test")
        with learned:
            assert POLICIES["cem-test"] is learned
            assert learned.forecast_aware
        assert set(POLICIES) == before

    def test_register_refuses_shadowing(self):
        learned = LearnedPolicy(linear_policy_fn(THETA), name="proportional")
        with pytest.raises(ValueError, match="already registered"):
            learned.register()
        assert POLICIES["proportional"].policy_name == "proportional"

    def test_policy_mode_arm_matches_run_federation(self):
        config = GymConfig(windows=8, action_mode="policy")
        env = WillowFedEnv(config)
        env.reset(seed=0)
        arm = config.policy_arms.index("proportional")
        truncated = False
        while not truncated:
            _o, _r, _t, truncated, _i = env.step(arm)
        reference = run_federation(
            env.episode_specs(),
            n_ticks=env.n_ticks,
            policy="proportional",
            margin=config.margin,
        )
        assert env.coordinator.transfer_log == reference.transfer_log


class TestCheckpoint:
    def test_snapshot_restore_mid_episode_digest_parity(self):
        config = GymConfig(windows=10)
        agent = CEMAgent()

        def finish(env, info):
            sha = hashlib.sha256()
            truncated = False
            while not truncated:
                obs, reward, _t, truncated, info = env.step(
                    agent.act(info, THETA)
                )
                sha.update(obs.tobytes())
                sha.update(np.float64(reward).tobytes())
            return sha.hexdigest()

        env = WillowFedEnv(config)
        _obs, info = env.reset(seed=3)
        for _ in range(4):
            _o, _r, _t, _tr, info = env.step(agent.act(info, THETA))
        # Snapshots hold live object references (the checkpoint layer
        # pickles them as one payload); serialize so the twin gets its
        # own state, exactly like a checkpoint/restore cycle.
        snapshot = pickle.loads(pickle.dumps(env.snapshot_state()))

        twin = WillowFedEnv(config)
        twin.restore_state(snapshot)
        assert finish(twin, twin._info()) == finish(env, info)

    def test_snapshot_rejected_on_batched_coordinator(self):
        env = WillowFedEnv(GymConfig(windows=4, vectorized=True))
        env.reset(seed=0)
        with pytest.raises(CheckpointError):
            env.snapshot_state()

    def test_restore_rejects_foreign_snapshot(self):
        env = WillowFedEnv(GymConfig(windows=4))
        with pytest.raises(CheckpointError, match="snapshot is for"):
            env.restore_state({"env": "SomethingElse"})


class TestRewardAndValidation:
    def test_reward_vector_components_are_costs(self):
        env = WillowFedEnv(GymConfig(windows=4))
        _obs, info = env.reset(seed=0)
        _o, reward, _t, _tr, info = env.step(
            CEMAgent().act(info, (1.0, 0.0))
        )
        vector = info["reward_vector"]
        assert set(vector) == {
            "dropped",
            "energy",
            "carbon",
            "wan_energy",
            "violations",
        }
        assert all(value >= 0.0 for value in vector.values())
        assert reward == GymConfig().weights.scalarize(vector)
        assert reward <= 0.0

    def test_custom_weights_change_scalarization(self):
        weights = RewardWeights(dropped=2.0, energy=1.0)
        vector = {
            "dropped": 3.0,
            "energy": 5.0,
            "carbon": 0.0,
            "wan_energy": 0.0,
            "violations": 0.0,
        }
        assert weights.scalarize(vector) == -(2.0 * 3.0 + 1.0 * 5.0)

    def test_step_without_reset_raises(self):
        env = WillowFedEnv(GymConfig(windows=4))
        with pytest.raises(RuntimeError, match="reset"):
            env.step(np.zeros((2, 2)))

    def test_step_past_truncation_raises(self):
        env = WillowFedEnv(GymConfig(windows=1))
        _obs, info = env.reset(seed=0)
        _o, _r, _t, truncated, _i = env.step(np.zeros((2, 2)))
        assert truncated
        with pytest.raises(RuntimeError, match="reset"):
            env.step(np.zeros((2, 2)))

    def test_matrix_action_shape_validated(self):
        env = WillowFedEnv(GymConfig(windows=4))
        env.reset(seed=0)
        with pytest.raises(ValueError, match="shape"):
            env.step(np.zeros(3))

    def test_policy_action_range_validated(self):
        env = WillowFedEnv(GymConfig(windows=4, action_mode="policy"))
        env.reset(seed=0)
        with pytest.raises(ValueError, match="out of range"):
            env.step(99)

    def test_unknown_policy_arm_rejected_at_config(self):
        with pytest.raises(ValueError, match="unknown policy arms"):
            GymConfig(action_mode="policy", policy_arms=("nope",))

    def test_unknown_action_mode_rejected(self):
        with pytest.raises(ValueError, match="action_mode"):
            GymConfig(action_mode="q-learning")


class TestAgents:
    def test_cem_training_is_deterministic_and_never_below_baseline(self):
        config = GymConfig(windows=8)
        results = []
        for _ in range(2):
            env = WillowFedEnv(config)
            agent = CEMAgent(population=4, seed=1, reset_seed=0)
            agent.train(env, iterations=1)
            results.append((agent.best_theta, agent.best_score))
        assert results[0] == results[1]
        env = WillowFedEnv(config)
        agent = CEMAgent(population=4, seed=1, reset_seed=0)
        baseline = agent.rollout(env, (1.0, 0.0))
        agent.train(env, iterations=1)
        best = agent.rollout(env, agent.best_theta)
        assert best["dropped"] <= baseline["dropped"] + 1e-6

    def test_bandit_update_is_incremental_mean(self):
        bandit = BanditAgent(2, epsilon=0.0, seed=0)
        bandit.update(0, 10.0)
        bandit.update(0, 20.0)
        assert bandit.values[0] == pytest.approx(15.0)
        assert bandit.select() == 0


class TestCLI:
    def test_federation_rejects_horizon_for_myopic_policy(self, capsys):
        from repro.cli import main

        assert (
            main(["federation", "--policy", "proportional", "--horizon", "2"])
            == 2
        )
        assert "forecast-aware" in capsys.readouterr().err

    def test_federation_rejects_cooling_for_myopic_policy(self, capsys):
        from repro.cli import main

        assert (
            main(["federation", "--policy", "greedy-greenest", "--cooling"])
            == 2
        )
        assert "forecast-aware" in capsys.readouterr().err

    def test_federation_rejects_bad_forecast_spec(self, capsys):
        from repro.cli import main

        assert main(["federation", "--forecast", "nope"]) == 2
        assert "forecast model" in capsys.readouterr().err

    def test_gym_subcommand_validates_population(self, capsys):
        from repro.cli import main

        assert main(["gym", "--population", "1"]) == 2
        assert "--population" in capsys.readouterr().err
