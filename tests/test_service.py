"""Tests for Willow-as-a-service: ingest, live ticking, replay parity.

The two contracts the subsystem stands on are tested end to end here:

* **Backpressure** -- the pending queue is bounded; a burst of 10x the
  bound gets exactly ``bound`` acceptances and 429-style rejections
  with a ``retry_after`` hint for the rest, per-source accounted.
* **Replayability** -- a live run's audit log, re-executed offline,
  reproduces the controller's decisions bit-exactly (equal decision
  digests), including under arrivals, departures, supply steps and
  plant-fault edges, for both embedded controllers.

Plus graceful shutdown (in-flight events drained, ``end`` record
written, exit 0; SIGINT mid-run never corrupts the JSONL) and the
concurrency/durability contract of the shared JSONL writer.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.service import (
    AuditLog,
    AuditRecordError,
    EventValidationError,
    IngestGateway,
    LiveRunner,
    LiveSimulation,
    MutableSupply,
    ServiceSpec,
    decision_digest,
    read_audit,
    replay,
    validate_event,
)
from repro.trace.writer import JsonlTraceWriter, trace_segments

REPO_ROOT = Path(__file__).resolve().parent.parent


# ---------------------------------------------------------------- validation
@pytest.mark.parametrize(
    "event",
    [
        {"type": "vm_arrival"},
        {"type": "vm_arrival", "vm_id": 7, "host": "server-3", "demand": 10.5},
        {"type": "vm_arrival", "app": "app-2", "source": "tester"},
        {"type": "vm_arrival", "app": {"name": "x", "mean_power": 9.0}},
        {"type": "vm_departure", "vm_id": 0},
        {"type": "demand_sample", "vm_id": 3, "demand": 0.0},
        {"type": "supply_update", "budget": 1234.5},
        {"type": "fault", "kind": "server_crash", "server": "server-1"},
        {"type": "fault", "kind": "server_restart", "server": 5},
        {"type": "fault", "kind": "circuit_trip", "node": 1, "ticks": 4},
        {"type": "fault", "kind": "circuit_restore", "node": "dc"},
        {"type": "fault", "kind": "cooling_derate", "derate": 0.5},
        {"type": "fault", "kind": "cooling_restore"},
    ],
)
def test_valid_events_accepted(event):
    normalized = validate_event(event)
    assert normalized["type"] == event["type"]


@pytest.mark.parametrize(
    "event",
    [
        "not a dict",
        {"type": "nope"},
        {"type": "vm_arrival", "bogus": 1},
        {"type": "vm_arrival", "vm_id": -1},
        {"type": "vm_arrival", "demand": float("nan")},
        {"type": "vm_arrival", "app": "no-such-app"},
        {"type": "vm_arrival", "app": {"mean_power": 3.0}},
        {"type": "vm_departure"},
        {"type": "demand_sample", "vm_id": 1},
        {"type": "demand_sample", "vm_id": 1, "demand": -2.0},
        {"type": "demand_sample", "vm_id": True, "demand": 1.0},
        {"type": "supply_update"},
        {"type": "supply_update", "budget": float("inf")},
        {"type": "fault", "kind": "nope"},
        {"type": "fault", "kind": "server_crash"},
        {"type": "fault", "kind": "circuit_trip", "node": 1, "ticks": 0},
        {"type": "fault", "kind": "cooling_derate", "derate": 1.5},
        {"type": "demand_sample", "vm_id": 1, "demand": 2.0, "source": ""},
    ],
)
def test_invalid_events_rejected(event):
    with pytest.raises(EventValidationError):
        validate_event(event)


def test_fault_events_need_scalar_controller():
    event = {"type": "fault", "kind": "server_crash", "server": "server-1"}
    validate_event(event, allow_faults=True)
    with pytest.raises(EventValidationError, match="vectorized"):
        validate_event(event, allow_faults=False)


def test_spec_meta_round_trip():
    spec = ServiceSpec(
        seed=3, controller="vectorized", branching=(3, 3),
        utilization=0.4, vms_per_server=2, supply_factor=0.8,
    )
    assert ServiceSpec.from_meta(spec.to_meta()) == spec
    # JSON round-trip too: the meta record travels through the audit log.
    assert ServiceSpec.from_meta(json.loads(json.dumps(spec.to_meta()))) == spec


def test_mutable_supply():
    supply = MutableSupply(100.0)
    assert supply.at(0.0) == supply.at(99.0) == 100.0
    supply.set(40.0)
    assert supply.at(5.0) == 40.0
    with pytest.raises(ValueError):
        MutableSupply(-1.0)


# -------------------------------------------------------------- backpressure
def test_burst_10x_queue_bound_backpressured():
    bound = 50
    gateway = IngestGateway(queue_bound=bound)
    gateway.next_tick_eta = gateway._clock() + 0.25
    responses = [
        gateway.submit(
            {"type": "demand_sample", "vm_id": i, "demand": 1.0},
            source="burst",
        )
        for i in range(10 * bound)
    ]
    accepted = [r for r in responses if r["status"] == "accepted"]
    rejected = [r for r in responses if r["status"] == "rejected"]
    assert len(accepted) == bound
    assert len(rejected) == 9 * bound
    assert all(r["code"] == 429 for r in rejected)
    assert all(0.0 <= r["retry_after"] <= 0.25 for r in rejected)
    assert gateway.pending_count() == bound
    # Per-source accounting saw every outcome.
    stats = gateway.stats()
    assert stats["sources"]["burst"]["accepted"] == bound
    assert stats["sources"]["burst"]["rejected_full"] == 9 * bound
    assert stats["sources"]["burst"]["accept_rate_per_sec"] > 0
    # Draining frees the whole bound again.
    assert len(gateway.drain()) == bound
    assert gateway.submit(
        {"type": "supply_update", "budget": 1.0}
    )["status"] == "accepted"


def test_invalid_events_counted_per_source():
    gateway = IngestGateway(queue_bound=4)
    response = gateway.submit({"type": "nope"}, source="fuzz")
    assert response["code"] == 400
    assert gateway.rejected_invalid == 1
    assert gateway.stats()["sources"]["fuzz"]["rejected_invalid"] == 1


def test_retry_after_without_worker_uses_default():
    gateway = IngestGateway(queue_bound=1)
    gateway.submit({"type": "supply_update", "budget": 1.0})
    rejected = gateway.submit({"type": "supply_update", "budget": 2.0})
    assert rejected["retry_after"] == gateway.default_retry_after


# ------------------------------------------------------------- event mapping
def _sim(controller="scalar", **kwargs):
    return LiveSimulation(ServiceSpec(seed=1, controller=controller, **kwargs))


def test_arrival_departure_demand_mapping():
    sim = _sim()
    n0 = sim.n_vms
    result = sim.apply({"type": "vm_arrival", "demand": 25.0})
    assert result.applied
    assert sim.n_vms == n0 + 1
    new_id = sim._next_vm_id - 1
    vm = sim.controller._vm_by_id[new_id]
    assert vm.current_demand == 25.0
    assert vm.vm_id in sim.controller.servers[vm.host_id].vms

    assert sim.apply(
        {"type": "vm_arrival", "vm_id": new_id}
    ).reason == "vm_id_taken"
    assert sim.apply(
        {"type": "vm_arrival", "host": "no-such-node"}
    ).reason == "unknown_host"

    assert sim.apply(
        {"type": "demand_sample", "vm_id": new_id, "demand": 70.5}
    ).applied
    assert vm.current_demand == 70.5
    assert sim.apply(
        {"type": "demand_sample", "vm_id": 10_000, "demand": 1.0}
    ).reason == "unknown_vm"

    assert sim.apply({"type": "vm_departure", "vm_id": new_id}).applied
    assert sim.n_vms == n0
    assert sim.apply(
        {"type": "vm_departure", "vm_id": new_id}
    ).reason == "unknown_vm"
    assert sim.applied["vm_arrival"] == 1
    assert sim.ignored["vm_departure:unknown_vm"] == 1


def test_explicit_host_by_name_and_id():
    sim = _sim()
    by_name = sim.apply({"type": "vm_arrival", "host": "server-4"})
    assert by_name.applied
    leaf_id = sim.tree.by_name("server-4").node_id
    by_id = sim.apply({"type": "vm_arrival", "host": leaf_id})
    assert by_id.applied
    host = sim.controller.servers[leaf_id]
    new_ids = sorted(host.vms)[-2:]
    assert all(sim.controller._vm_by_id[i].host_id == leaf_id for i in new_ids)


def test_supply_update_changes_root_budget():
    sim = _sim()
    assert sim.apply({"type": "supply_update", "budget": 123.0}).applied
    assert sim.supply.at(sim.tick) == 123.0


def test_fault_mapping_crash_and_restart():
    sim = _sim()
    server_id = sim.tree.by_name("server-1").node_id
    assert sim.apply(
        {"type": "fault", "kind": "server_restart", "server": "server-1"}
    ).reason == "not_crashed"
    assert sim.apply(
        {"type": "fault", "kind": "server_crash", "server": "server-1"}
    ).applied
    assert sim.controller.plant_faults.is_crashed(server_id, sim.tick)
    assert sim.apply(
        {"type": "fault", "kind": "server_crash", "server": "server-1"}
    ).reason == "already_crashed"
    sim.step()
    sim.step()
    assert sim.apply(
        {"type": "fault", "kind": "server_restart", "server": "server-1"}
    ).applied
    assert not sim.controller.plant_faults.is_crashed(server_id, sim.tick)


def test_fault_mapping_trip_and_cooling():
    sim = _sim()
    assert sim.apply(
        {"type": "fault", "kind": "circuit_trip", "node": 1, "ticks": 2}
    ).applied
    assert 1 in sim.controller.plant_faults.tripped_roots(sim.tick)
    assert sim.apply(
        {"type": "fault", "kind": "cooling_derate", "derate": 0.6}
    ).applied
    sim.step()
    assert sim.apply(
        {"type": "fault", "kind": "cooling_restore"}
    ).applied


def test_vectorized_sim_rejects_faults_as_noop():
    sim = _sim(controller="vectorized")
    result = sim.apply(
        {"type": "fault", "kind": "server_crash", "server": "server-1"}
    )
    assert not result.applied
    assert result.reason == "faults_unsupported"


def test_internal_errors_degrade_to_counted_noop():
    sim = _sim()
    # A validated-shape event with a hostile payload must never raise
    # out of apply() -- live and replay both see the same no-op.
    result = sim.apply({"type": "demand_sample"})
    assert not result.applied
    assert result.reason == "internal_error"
    assert sim.ignored["demand_sample:internal_error"] == 1


# ------------------------------------------------------- live vs replay
def _drive_live(tmp_path, controller, feeder, *, ticks=10, name="audit.jsonl"):
    """Run a live runner with a feeder coroutine; return (path, report)."""
    path = tmp_path / name
    sim = LiveSimulation(ServiceSpec(seed=2, controller=controller))
    gateway = IngestGateway(
        queue_bound=256, allow_faults=sim.allow_faults
    )
    runner = LiveRunner(
        sim, gateway, AuditLog(path), tick_seconds=0.02, max_ticks=ticks
    )

    async def drive():
        report, _ = await asyncio.gather(runner.run(), feeder(gateway, runner))
        return report

    return path, asyncio.run(drive())


async def _mixed_feed(gateway, runner):
    await asyncio.sleep(0.005)
    for i, event in enumerate(
        [
            {"type": "demand_sample", "vm_id": 0, "demand": 90.0},
            {"type": "vm_arrival", "demand": 42.0, "app": "app-2"},
            {"type": "supply_update", "budget": 2500.0},
            {"type": "vm_departure", "vm_id": 3},
            {"type": "demand_sample", "vm_id": 1, "demand": 0.0},
            {"type": "vm_arrival", "host": "server-2", "demand": 12.0},
            {"type": "supply_update", "budget": 5200.0},
            {"type": "vm_departure", "vm_id": 999},  # no-op, still audited
        ]
    ):
        response = gateway.submit(event, source="test")
        assert response["status"] == "accepted", response
        if i % 3 == 2:
            await asyncio.sleep(0.03)


async def _fault_feed(gateway, runner):
    await asyncio.sleep(0.005)
    for event in [
        {"type": "fault", "kind": "server_crash", "server": "server-1"},
        {"type": "fault", "kind": "cooling_derate", "derate": 0.7,
         "ramp_ticks": 1},
        {"type": "demand_sample", "vm_id": 2, "demand": 130.0},
    ]:
        assert gateway.submit(event)["status"] == "accepted"
    await asyncio.sleep(0.06)
    assert gateway.submit(
        {"type": "fault", "kind": "server_restart", "server": "server-1"}
    )["status"] == "accepted"


@pytest.mark.parametrize("controller", ["scalar", "vectorized"])
def test_live_replay_bit_exact(tmp_path, controller):
    path, report = _drive_live(tmp_path, controller, _mixed_feed)
    assert report.accepted == 8
    result = replay(path)
    assert result.parity is True
    assert result.digest == report.digest
    assert result.ticks == report.ticks
    assert result.apply_mismatches == 0
    assert result.events_ignored == 1  # the vm_departure of 999


def test_live_replay_bit_exact_with_faults(tmp_path):
    path, report = _drive_live(tmp_path, "scalar", _fault_feed)
    assert report.applied.get("fault", 0) >= 3
    result = replay(path)
    assert result.parity is True
    assert result.digest == report.digest
    # The fault edges made it into the decision tables on both sides.
    assert result.collector.plant_events


def test_live_run_without_events_matches_replay(tmp_path):
    async def silent(gateway, runner):
        return None

    path, report = _drive_live(tmp_path, "scalar", silent, ticks=5)
    result = replay(path)
    assert result.parity is True
    assert result.ticks == 5


# --------------------------------------------------------- graceful shutdown
def test_graceful_stop_drains_inflight_events(tmp_path):
    path = tmp_path / "audit.jsonl"
    sim = LiveSimulation(ServiceSpec(seed=0))
    gateway = IngestGateway(queue_bound=64)
    runner = LiveRunner(
        sim, gateway, AuditLog(path), tick_seconds=5.0  # never fires on its own
    )

    async def drive():
        async def stopper():
            await asyncio.sleep(0.01)
            for i in range(5):
                gateway.submit(
                    {"type": "demand_sample", "vm_id": i, "demand": 33.0}
                )
            runner.request_stop()

        report, _ = await asyncio.gather(runner.run(), stopper())
        return report

    report = asyncio.run(drive())
    assert report.stopped_early
    assert report.ticks == 1  # exactly the final drain tick
    assert report.applied["demand_sample"] == 5
    document = read_audit(path)
    assert document["end"] is not None
    assert document["end"]["digest"] == report.digest
    assert len(document["events"]) == 5
    assert replay(path).parity is True


def test_sigint_subprocess_exits_zero_with_parseable_audit(tmp_path):
    audit = tmp_path / "audit.jsonl"
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve", str(audit),
            "--tick-seconds", "0.05",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    try:
        line = process.stdout.readline()
        assert "serving on" in line
        time.sleep(0.4)  # let a few ticks land, then interrupt mid-run
        process.send_signal(signal.SIGINT)
        out, err = process.communicate(timeout=15)
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate()
    assert process.returncode == 0, err
    assert "decision digest:" in out
    # Every line of the audit log is complete, parseable JSON.
    for segment in trace_segments(audit):
        for raw in segment.read_text().splitlines():
            json.loads(raw)
    document = read_audit(audit)
    assert document["truncated_lines"] == 0
    assert document["end"] is not None
    assert replay(audit).parity is True


# ----------------------------------------------------------------- audit log
def test_read_audit_tolerates_truncated_tail(tmp_path):
    path = tmp_path / "audit.jsonl"
    log = AuditLog(path)
    log.write_meta(ServiceSpec().to_meta())
    log.write_event(0, 1, "x", {"type": "supply_update", "budget": 1.0},
                    applied=True)
    log.close()
    with path.open("a") as handle:
        handle.write('{"kind": "event", "tick": 1, "seq"')  # hard kill
    document = read_audit(path)
    assert document["truncated_lines"] == 1
    assert len(document["events"]) == 1


def test_read_audit_tolerates_torn_line_in_middle_segment(tmp_path):
    # A crash + append-mode recovery leaves the torn line in a segment
    # that later rotation pushes into the *middle* of the read order;
    # the reader must tolerate it anywhere, not just at the very end.
    path = tmp_path / "audit.jsonl"
    log = AuditLog(path, max_bytes=1)  # rotate after every record
    log.write_meta(ServiceSpec().to_meta())
    log.write_event(0, 1, "x", {"type": "supply_update", "budget": 1.0},
                    applied=True)
    log.write_event(1, 2, "x", {"type": "supply_update", "budget": 2.0},
                    applied=True)
    log.close()
    segments = trace_segments(path)
    assert len(segments) >= 3
    middle = segments[1]
    with middle.open("a") as handle:
        handle.write('{"kind": "event", "tick": 0, "se')  # torn mid-rotation
    document = read_audit(path)
    assert document["truncated_lines"] == 1
    assert len(document["events"]) == 2


def test_trace_reader_tolerates_torn_line_in_middle_segment(tmp_path):
    from repro.trace.query import TraceReader

    path = tmp_path / "run.trace"
    writer = JsonlTraceWriter(path, max_bytes=1)  # rotate per frame
    writer.write_frame({"type": "meta", "controller": "t", "nodes": []})
    writer.write_frame({"tick": 0, "t": 0.0})
    writer.write_frame({"tick": 1, "t": 1.0})
    writer.close()
    segments = trace_segments(path)
    assert len(segments) >= 3
    with segments[1].open("a") as handle:
        handle.write('{"tick": 99, "t"')  # torn line mid-rotation
    reader = TraceReader(path)
    assert reader.skipped_lines == 1
    assert [frame["tick"] for frame in reader.run.frames] == [0, 1]


def test_read_audit_requires_meta(tmp_path):
    path = tmp_path / "audit.jsonl"
    path.write_text('{"kind": "event", "tick": 0, "seq": 1}\n')
    with pytest.raises(AuditRecordError, match="meta"):
        read_audit(path)


def test_replay_detects_digest_mismatch(tmp_path, capsys):
    path = tmp_path / "audit.jsonl"
    log = AuditLog(path)
    log.write_meta(ServiceSpec().to_meta())
    log.write_end(ticks=2, accepted=0, digest="not-the-real-digest")
    log.close()
    result = replay(path)
    assert result.parity is False
    assert main(["replay", str(path)]) == 1
    assert "MISMATCH" in capsys.readouterr().out


def test_audit_rotation_segments_replay(tmp_path):
    path = tmp_path / "audit.jsonl"
    log = AuditLog(path, max_bytes=512)  # force several rotations
    log.write_meta(ServiceSpec(vms_per_server=0).to_meta(), tick_seconds=0.01)
    sim = LiveSimulation(ServiceSpec(vms_per_server=0))
    for tick in range(6):
        event = {"type": "supply_update", "budget": 100.0 + tick}
        result = sim.apply(event)
        log.write_event(tick, tick + 1, "t", event, applied=result.applied)
        sim.step()
    collector = sim.finish()
    log.write_end(ticks=6, accepted=6, digest=decision_digest(collector))
    log.close()
    assert len(trace_segments(path)) > 1
    assert replay(path).parity is True


# --------------------------------------------------- JSONL writer append mode
def test_jsonl_writer_append_truncates_torn_tail(tmp_path):
    path = tmp_path / "log.jsonl"
    writer = JsonlTraceWriter(path)
    writer.write_frame({"i": 0})
    writer.write_frame({"i": 1})
    writer.close()
    with path.open("a") as handle:
        handle.write('{"i": 2, "torn')  # hard kill mid-write
    resumed = JsonlTraceWriter(path, append=True)
    resumed.write_frame({"i": 3})
    resumed.close()
    frames = [json.loads(raw) for raw in path.read_text().splitlines()]
    assert frames == [{"i": 0}, {"i": 1}, {"i": 3}]


def test_jsonl_writer_append_continues_rotation_numbering(tmp_path):
    path = tmp_path / "log.jsonl"
    writer = JsonlTraceWriter(path, max_bytes=1)  # rotate per frame
    writer.write_frame({"i": 0})
    writer.write_frame({"i": 1})
    writer.close()
    before = len(trace_segments(path))
    resumed = JsonlTraceWriter(path, max_bytes=1, append=True)
    resumed.write_frame({"i": 2})
    resumed.write_frame({"i": 3})
    resumed.close()
    segments = trace_segments(path)
    assert len(segments) > before
    frames = [
        json.loads(raw)
        for segment in segments
        for raw in segment.read_text().splitlines()
    ]
    assert [frame["i"] for frame in frames] == [0, 1, 2, 3]


def test_jsonl_writer_append_resumes_byte_counter(tmp_path):
    path = tmp_path / "log.jsonl"
    writer = JsonlTraceWriter(path, max_bytes=64)
    writer.write_frame({"pad": "x" * 40})  # 51 bytes: below the cap
    writer.close()
    resumed = JsonlTraceWriter(path, max_bytes=64, append=True)
    assert resumed._written == path.stat().st_size
    resumed.write_frame({"pad": "y" * 40})  # pushes past the cap -> rotate
    resumed.close()
    assert len(trace_segments(path)) == 2


def test_jsonl_writer_append_missing_file_starts_fresh(tmp_path):
    writer = JsonlTraceWriter(tmp_path / "new.jsonl", append=True)
    writer.write_frame({"i": 0})
    writer.close()
    assert json.loads((tmp_path / "new.jsonl").read_text()) == {"i": 0}


# ------------------------------------------------- JSONL writer concurrency
def test_jsonl_writer_concurrent_append_no_interleaving(tmp_path):
    path = tmp_path / "trace.jsonl"
    writer = JsonlTraceWriter(path, max_bytes=4096)  # rotates under load
    n_threads, per_thread = 8, 200

    def pound(worker):
        for i in range(per_thread):
            writer.write_frame({"w": worker, "i": i, "pad": "x" * 40})

    threads = [
        threading.Thread(target=pound, args=(w,)) for w in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    writer.close()
    frames = []
    for segment in trace_segments(path):
        for raw in segment.read_text().splitlines():
            frames.append(json.loads(raw))  # every line parses
    assert len(frames) == n_threads * per_thread
    seen = {(f["w"], f["i"]) for f in frames}
    assert len(seen) == n_threads * per_thread  # nothing lost or mangled


def test_jsonl_writer_fsync_flag(tmp_path, monkeypatch):
    calls = []
    real_fsync = os.fsync
    monkeypatch.setattr(
        os, "fsync", lambda fd: (calls.append(fd), real_fsync(fd))
    )
    writer = JsonlTraceWriter(tmp_path / "t.jsonl", fsync=True)
    writer.write_frame({"a": 1})
    writer.flush()
    writer.close()
    assert calls  # flush and close both hit the disk

    calls.clear()
    writer = JsonlTraceWriter(tmp_path / "u.jsonl")
    writer.write_frame({"a": 1})
    writer.flush()
    writer.close()
    assert not calls  # default stays cheap


# ----------------------------------------------------------------------- CLI
def test_cli_serve_and_replay_round_trip(tmp_path, capsys):
    audit = tmp_path / "audit.jsonl"
    assert main([
        "serve", str(audit), "--ticks", "3", "--tick-seconds", "0.02",
        "--load", "600", "--queue-bound", "4096", "--seed", "5",
    ]) == 0
    out = capsys.readouterr().out
    assert "serving on 127.0.0.1:" in out
    assert "self-load: offered 600" in out
    assert "decision digest:" in out
    assert main(["replay", str(audit)]) == 0
    assert "replay parity: OK" in capsys.readouterr().out


def test_cli_serve_no_listen(tmp_path, capsys):
    audit = tmp_path / "audit.jsonl"
    assert main([
        "serve", str(audit), "--ticks", "2", "--tick-seconds", "0.01",
        "--no-listen", "--controller", "vectorized",
    ]) == 0
    assert "serving on" not in capsys.readouterr().out
    assert read_audit(audit)["meta"]["spec"]["controller"] == "vectorized"


def test_cli_serve_missing_parent_dir_is_clear_error(tmp_path, capsys):
    target = tmp_path / "no" / "such" / "dir" / "audit.jsonl"
    assert main(["serve", str(target), "--ticks", "1"]) == 2
    err = capsys.readouterr().err
    assert "does not exist" in err
    assert "Traceback" not in err


def test_cli_bench_profile_missing_parent_dir_is_clear_error(tmp_path, capsys):
    target = tmp_path / "missing" / "bench.pstats"
    assert main(["bench", "--quick", "--profile", str(target)]) == 2
    err = capsys.readouterr().err
    assert "does not exist" in err
    assert "Traceback" not in err


@pytest.mark.parametrize(
    "argv",
    [
        ["serve", "a.jsonl", "--ticks", "0"],
        ["serve", "a.jsonl", "--tick-seconds", "0"],
        ["serve", "a.jsonl", "--queue-bound", "0"],
        ["serve", "a.jsonl", "--load", "5", "--no-listen"],
        ["serve", "a.jsonl", "--branching", "3,x"],
        ["serve", "a.jsonl", "--utilization", "2.0"],
    ],
)
def test_cli_serve_invalid_arguments_rejected(argv, capsys):
    assert main(argv) == 2


def test_cli_replay_missing_file(tmp_path, capsys):
    assert main(["replay", str(tmp_path / "nope.jsonl")]) == 2
    assert "replay:" in capsys.readouterr().err
