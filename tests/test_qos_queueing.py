"""The DES substrate validates the QoS latency model (M/M/1)."""

import pytest

from repro.qos import LatencyModel, simulate_mm1


class TestSimulateMM1:
    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_mm1(arrival_rate=0.0, service_rate=1.0, horizon=10.0)
        with pytest.raises(ValueError):
            simulate_mm1(arrival_rate=1.0, service_rate=1.0, horizon=10.0)
        with pytest.raises(ValueError):
            simulate_mm1(arrival_rate=0.5, service_rate=1.0, horizon=0.0)
        with pytest.raises(ValueError):
            simulate_mm1(
                arrival_rate=0.5, service_rate=1.0, horizon=10.0,
                warmup_fraction=1.0,
            )

    def test_counts_consistent(self):
        stats = simulate_mm1(
            arrival_rate=0.5, service_rate=1.0, horizon=2000.0, seed=3
        )
        assert 0 < stats.completed <= stats.arrivals
        assert stats.mean_wait >= 0
        assert stats.mean_response >= stats.mean_service

    def test_response_decomposes_into_wait_plus_service(self):
        stats = simulate_mm1(
            arrival_rate=0.5, service_rate=1.0, horizon=5000.0, seed=3
        )
        assert stats.mean_response == pytest.approx(
            stats.mean_wait + stats.mean_service, rel=1e-9
        )

    def test_measured_utilization_tracks_rho(self):
        stats = simulate_mm1(
            arrival_rate=0.6, service_rate=1.0, horizon=20000.0, seed=5
        )
        assert stats.utilization == pytest.approx(0.6, abs=0.04)

    def test_deterministic_under_seed(self):
        a = simulate_mm1(arrival_rate=0.5, service_rate=1.0, horizon=500.0, seed=9)
        b = simulate_mm1(arrival_rate=0.5, service_rate=1.0, horizon=500.0, seed=9)
        assert a == b


class TestLatencyModelValidation:
    """The headline: simulation agrees with R/S = 1/(1-rho)."""

    @pytest.mark.parametrize(
        "rho,tolerance",
        [(0.2, 0.10), (0.4, 0.10), (0.6, 0.12), (0.8, 0.25)],
    )
    def test_mm1_formula_matches_simulation(self, rho, tolerance):
        stats = simulate_mm1(
            arrival_rate=rho, service_rate=1.0, horizon=30000.0, seed=1
        )
        predicted = LatencyModel().latency_multiple(rho)
        assert stats.response_multiple == pytest.approx(
            predicted, rel=tolerance
        )

    def test_latency_explodes_toward_saturation(self):
        low = simulate_mm1(
            arrival_rate=0.3, service_rate=1.0, horizon=20000.0, seed=2
        )
        high = simulate_mm1(
            arrival_rate=0.9, service_rate=1.0, horizon=20000.0, seed=2
        )
        assert high.response_multiple > 2.5 * low.response_multiple
