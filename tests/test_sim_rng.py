"""Tests for reproducible named random streams."""

import numpy as np
import pytest

from repro.sim import RandomStreams


def test_same_seed_same_stream():
    a = RandomStreams(42)["demand"].random(10)
    b = RandomStreams(42)["demand"].random(10)
    assert np.array_equal(a, b)


def test_different_names_different_streams():
    streams = RandomStreams(42)
    a = streams["demand"].random(100)
    b = streams["supply"].random(100)
    assert not np.array_equal(a, b)


def test_different_seeds_different_streams():
    a = RandomStreams(1)["x"].random(50)
    b = RandomStreams(2)["x"].random(50)
    assert not np.array_equal(a, b)


def test_stream_identity_independent_of_creation_order():
    forward = RandomStreams(7)
    _ = forward["alpha"].random(3)
    first = forward["beta"].random(5)

    backward = RandomStreams(7)
    second = backward["beta"].random(5)
    assert np.array_equal(first, second)


def test_stream_is_cached():
    streams = RandomStreams(0)
    assert streams["a"] is streams["a"]


def test_contains_and_len():
    streams = RandomStreams(0)
    assert "x" not in streams
    _ = streams["x"]
    assert "x" in streams
    assert len(streams) == 1


def test_seed_must_be_int():
    with pytest.raises(TypeError):
        RandomStreams("not-an-int")


def test_fork_changes_streams_deterministically():
    base = RandomStreams(9)
    fork_a = base.fork(1)["w"].random(5)
    fork_b = RandomStreams(9).fork(1)["w"].random(5)
    assert np.array_equal(fork_a, fork_b)
    assert not np.array_equal(fork_a, base["w"].random(5))


def test_streams_statistically_distinct():
    # Crude independence check: correlation between two long streams
    # should be near zero.
    streams = RandomStreams(1234)
    a = streams["one"].standard_normal(20_000)
    b = streams["two"].standard_normal(20_000)
    assert abs(np.corrcoef(a, b)[0, 1]) < 0.05
