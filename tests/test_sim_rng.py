"""Tests for reproducible named random streams."""

import numpy as np
import pytest

from repro.sim import RandomStreams


def test_same_seed_same_stream():
    a = RandomStreams(42)["demand"].random(10)
    b = RandomStreams(42)["demand"].random(10)
    assert np.array_equal(a, b)


def test_different_names_different_streams():
    streams = RandomStreams(42)
    a = streams["demand"].random(100)
    b = streams["supply"].random(100)
    assert not np.array_equal(a, b)


def test_different_seeds_different_streams():
    a = RandomStreams(1)["x"].random(50)
    b = RandomStreams(2)["x"].random(50)
    assert not np.array_equal(a, b)


def test_stream_identity_independent_of_creation_order():
    forward = RandomStreams(7)
    _ = forward["alpha"].random(3)
    first = forward["beta"].random(5)

    backward = RandomStreams(7)
    second = backward["beta"].random(5)
    assert np.array_equal(first, second)


def test_stream_is_cached():
    streams = RandomStreams(0)
    assert streams["a"] is streams["a"]


def test_contains_and_len():
    streams = RandomStreams(0)
    assert "x" not in streams
    _ = streams["x"]
    assert "x" in streams
    assert len(streams) == 1


def test_seed_must_be_int():
    with pytest.raises(TypeError):
        RandomStreams("not-an-int")


def test_fork_changes_streams_deterministically():
    base = RandomStreams(9)
    fork_a = base.fork(1)["w"].random(5)
    fork_b = RandomStreams(9).fork(1)["w"].random(5)
    assert np.array_equal(fork_a, fork_b)
    assert not np.array_equal(fork_a, base["w"].random(5))


def test_fork_seed_derivation_is_pinned():
    # SeedSequence-based derivation is a documented serialization
    # contract: these exact values must never change between releases.
    assert RandomStreams(9).fork(1).seed == 1494730845
    assert RandomStreams(0).fork(0).seed == 74991045
    assert RandomStreams(42).fork(3).seed == 2929963353
    assert RandomStreams(9).fork(1)["w"].integers(0, 1000, 4).tolist() == [
        296,
        65,
        901,
        477,
    ]


def test_fork_salts_are_distinct():
    base = RandomStreams(7)
    seeds = {base.fork(i).seed for i in range(64)}
    assert len(seeds) == 64


def test_fork_does_not_collide_with_named_streams():
    base = RandomStreams(5)
    fork_draw = base.fork(0)["x"].random(8)
    named_draw = RandomStreams(5)["x"].random(8)
    assert not np.array_equal(fork_draw, named_draw)


def test_state_dict_round_trip_resumes_bit_exactly():
    streams = RandomStreams(21)
    _ = streams["demand"].random(17)
    _ = streams["noise"].standard_normal(5)
    state = streams["demand"].bit_generator.state  # advance asymmetrically
    del state

    snapshot = streams.state_dict()
    expected_a = streams["demand"].random(9)
    expected_b = streams["noise"].standard_normal(9)

    restored = RandomStreams(21)
    restored.load_state_dict(snapshot)
    assert np.array_equal(restored["demand"].random(9), expected_a)
    assert np.array_equal(restored["noise"].standard_normal(9), expected_b)


def test_load_state_dict_preserves_generator_identity():
    streams = RandomStreams(3)
    held = streams["sensor-noise"]
    _ = held.random(4)
    snapshot = streams.state_dict()
    _ = held.random(4)

    streams.load_state_dict(snapshot)
    # The externally held reference must observe the restored state.
    fresh = RandomStreams(3)
    fresh.load_state_dict(snapshot)
    assert np.array_equal(held.random(6), fresh["sensor-noise"].random(6))


def test_load_state_dict_rejects_foreign_seed():
    snapshot = RandomStreams(1).state_dict()
    with pytest.raises(ValueError, match="seed"):
        RandomStreams(2).load_state_dict(snapshot)


def test_state_dict_only_captures_realised_streams():
    streams = RandomStreams(11)
    _ = streams["only"]
    assert set(streams.state_dict()["streams"]) == {"only"}


def test_streams_statistically_distinct():
    # Crude independence check: correlation between two long streams
    # should be near zero.
    streams = RandomStreams(1234)
    a = streams["one"].standard_normal(20_000)
    b = streams["two"].standard_normal(20_000)
    assert abs(np.corrcoef(a, b)[0, 1]) < 0.05
