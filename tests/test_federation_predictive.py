"""Tests for the predictive (receding-horizon MPC) federation layer.

Covers the contracts ``ISSUE`` pins:

* ``horizon=0`` is decision-bit-exact with ``proportional`` (policy
  level and whole-federation level);
* a single-site predictive federation is bit-exact with ``neutral``;
* all-deficit statuses emit no transfers;
* planned transfers never exceed donor headroom minus the margin
  (Hypothesis property over random statuses/forecasts);
* a live setpoint change composes with an in-progress CRAC-derate ramp
  instead of resetting it;
* planner/battery-plan/cooling state round-trips
  ``snapshot_state()``/``restore_state()`` with digest parity;
* the headline experiment claim (lookahead strictly reduces dropped
  demand at equal-or-lower WAN energy, zero thermal violations).
"""

import copy

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cooling.model import CoolingModel
from repro.federation import (
    CoolingControl,
    CoolingSetpoint,
    SiteForecast,
    SiteSpec,
    SiteStatus,
    build_federation,
    predictive_policy,
    proportional,
    run_federation,
)
from repro.federation.predictive import ActuatedSupply, PredictivePlanner
from repro.power import constant_supply, renewable_supply, step_supply
from repro.power.battery import Battery
from repro.service.simulation import decision_digest

_EPS = 1e-9


def status(name, supply, demand, carbon=1.0, price=1.0):
    return SiteStatus(
        name=name,
        supply=supply,
        smoothed_demand=demand,
        carbon=carbon,
        price=price,
    )


def flat_forecast(s, horizon):
    """A forecast that just extends the current supply forward."""
    return SiteForecast(name=s.name, supplies=(s.supply,) * (horizon + 1))


class TestPolicyDegradation:
    def test_horizon_zero_is_proportional_verbatim(self):
        statuses = [
            status("a", 100.0, 500.0),
            status("b", 900.0, 100.0),
            status("c", 600.0, 200.0),
        ]
        assert predictive_policy(statuses, margin=50.0, horizon=0) == (
            proportional(statuses, margin=50.0)
        )

    def test_no_forecasts_degrades_too(self):
        statuses = [status("a", 100.0, 500.0), status("b", 900.0, 100.0)]
        assert predictive_policy(
            statuses, margin=0.0, horizon=3, forecasts=None
        ) == proportional(statuses, margin=0.0)

    def test_flat_forecasts_match_proportional_watts(self):
        # With flat forecasts and no predicted crunch anywhere, the
        # horizon-screened waterfall sees the same donors and deficits
        # as proportional.
        statuses = [status("a", 100.0, 500.0), status("b", 900.0, 100.0)]
        forecasts = [flat_forecast(s, 3) for s in statuses]
        predicted = predictive_policy(
            statuses, margin=0.0, horizon=3, forecasts=forecasts
        )
        myopic = proportional(statuses, margin=0.0)
        assert [(t.src, t.dst, t.watts) for t in predicted] == [
            (t.src, t.dst, t.watts) for t in myopic
        ]

    def test_all_deficit_emits_nothing(self):
        statuses = [
            status("a", 100.0, 500.0),
            status("b", 200.0, 400.0),
            status("c", 50.0, 60.0),
        ]
        forecasts = [flat_forecast(s, 2) for s in statuses]
        assert predictive_policy(
            statuses, margin=0.0, horizon=2, forecasts=forecasts
        ) == []

    def test_missing_forecast_rejected(self):
        statuses = [status("a", 100.0, 500.0), status("b", 900.0, 100.0)]
        with pytest.raises(ValueError, match="no forecast"):
            predictive_policy(
                statuses,
                horizon=2,
                forecasts=[flat_forecast(statuses[0], 2)],
            )

    def test_dimming_donor_is_screened_out(self):
        # b has headroom now but the forecast says it dims below the
        # deficit next period: no load is parked there.
        statuses = [status("a", 100.0, 500.0), status("b", 900.0, 100.0)]
        forecasts = [
            flat_forecast(statuses[0], 2),
            SiteForecast(name="b", supplies=(900.0, 50.0, 50.0)),
        ]
        assert predictive_policy(
            statuses, margin=0.0, horizon=2, forecasts=forecasts
        ) == []

    def test_preemptive_shift_ahead_of_predicted_crunch(self):
        # a is fine now, but its forecast collapses; b stays plentiful.
        statuses = [status("a", 600.0, 500.0), status("b", 900.0, 100.0)]
        forecasts = [
            SiteForecast(name="a", supplies=(600.0, 100.0, 100.0)),
            flat_forecast(statuses[1], 2),
        ]
        transfers = predictive_policy(
            statuses, margin=0.0, horizon=2, forecasts=forecasts
        )
        assert transfers and all(t.preemptive for t in transfers)
        assert all(t.src == "a" and t.dst == "b" for t in transfers)

    def test_battery_relief_suppresses_preemptive_shift(self):
        # The same predicted crunch, but the UPS plan can carry it.
        statuses = [status("a", 600.0, 500.0), status("b", 900.0, 100.0)]
        forecasts = [
            SiteForecast(
                name="a",
                supplies=(600.0, 100.0, 100.0),
                battery_charge=4000.0,
                battery_rate=500.0,
            ),
            flat_forecast(statuses[1], 2),
        ]
        assert predictive_policy(
            statuses, margin=0.0, horizon=2, forecasts=forecasts
        ) == []

    def test_wan_break_even_gates_preemptive_shift(self):
        statuses = [status("a", 600.0, 500.0), status("b", 900.0, 100.0)]
        forecasts = [
            SiteForecast(name="a", supplies=(600.0, 100.0, 100.0)),
            flat_forecast(statuses[1], 2),
        ]
        assert predictive_policy(
            statuses,
            margin=0.0,
            horizon=2,
            forecasts=forecasts,
            wan_break_even=1e9,
        ) == []


watts = st.floats(0.0, 2000.0, allow_nan=False, allow_infinity=False)


class TestDonorHeadroomProperty:
    @given(
        data=st.lists(
            st.tuples(watts, watts, st.lists(watts, min_size=2, max_size=2)),
            min_size=2,
            max_size=6,
        ),
        margin=st.floats(0.0, 100.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_transfers_never_exceed_donor_room(self, data, margin):
        statuses = [
            status(f"s{i}", supply, demand)
            for i, (supply, demand, _future) in enumerate(data)
        ]
        forecasts = [
            SiteForecast(
                name=f"s{i}", supplies=(supply, *future)
            )
            for i, (supply, demand, future) in enumerate(data)
        ]
        transfers = predictive_policy(
            statuses, margin=margin, horizon=2, forecasts=forecasts
        )
        by_status = {s.name: s for s in statuses}
        by_forecast = {f.name: f for f in forecasts}
        incoming: dict = {}
        for t in transfers:
            assert t.watts > 0
            incoming[t.dst] = incoming.get(t.dst, 0.0) + t.watts
        for name, total in incoming.items():
            donor = by_status[name]
            demand = donor.smoothed_demand
            floor = min(
                [donor.headroom]
                + [s - demand for s in by_forecast[name].supplies[1:]]
            )
            # A donor never receives more than its worst-case headroom
            # over the window minus the margin.
            assert total <= floor - margin + 1e-6


class TestFederationEquivalence:
    def _specs(self):
        return [
            SiteSpec(
                name="west",
                supply=renewable_supply(6000.0, day_length=32.0),
                seed=1,
                battery=Battery(500.0, 100.0),
            ),
            SiteSpec(
                name="east",
                supply=renewable_supply(6000.0, day_length=32.0, phase=0.5),
                seed=2,
            ),
        ]

    def _digests(self, coordinator):
        return [
            decision_digest(site.controller.collector)
            for site in coordinator.sites
        ]

    def test_horizon_zero_bit_exact_vs_proportional(self):
        myopic = run_federation(
            self._specs(), n_ticks=24, policy="proportional"
        )
        degraded = run_federation(
            self._specs(), n_ticks=24, policy="predictive", horizon=0
        )
        assert myopic.cross_migrations  # the scenario actually shifts
        assert self._digests(myopic) == self._digests(degraded)
        assert [
            [(t.src, t.dst, t.watts) for t in transfers]
            for _tick, transfers in myopic.transfer_log
        ] == [
            [(t.src, t.dst, t.watts) for t in transfers]
            for _tick, transfers in degraded.transfer_log
        ]

    def test_single_site_predictive_is_neutral(self):
        spec = [
            SiteSpec(
                name="only",
                supply=renewable_supply(6000.0, day_length=32.0),
                seed=3,
            )
        ]
        idle = run_federation(spec, n_ticks=24, policy="neutral")
        predicted = run_federation(
            spec, n_ticks=24, policy="predictive", horizon=4
        )
        assert predicted.cross_migrations == []
        assert self._digests(idle) == self._digests(predicted)


class TestCoolingActuation:
    def test_actuated_supply_subtracts_overhead(self):
        wrapped = ActuatedSupply(constant_supply(100.0))
        assert wrapped.at(5.0) == 100.0
        wrapped.overhead = 30.0
        assert wrapped.at(5.0) == 70.0
        wrapped.overhead = 500.0
        assert wrapped.at(5.0) == 0.0  # clamped, never negative

    def test_setpoint_cop_relieves_chiller(self):
        model = CoolingModel()
        hot = model.setpoint_cop(25.0, 30.0)
        relieved = model.setpoint_cop(32.0, 30.0)
        assert relieved > hot
        assert model.setpoint_cooling_power(
            1000.0, 32.0, 30.0
        ) < model.setpoint_cooling_power(1000.0, 25.0, 30.0)

    def test_setpoint_validation(self):
        with pytest.raises(ValueError):
            CoolingSetpoint(site="", base_ambient=25.0)
        with pytest.raises(ValueError):
            CoolingSetpoint(site="a", base_ambient=99.0)
        with pytest.raises(ValueError):
            CoolingControl(nominal_setpoint=30.0, max_setpoint=25.0)

    def test_cooling_rejected_for_vectorized_sites(self):
        specs = [
            SiteSpec(name="a", vectorized=True),
            SiteSpec(name="b", vectorized=True),
        ]
        with pytest.raises(ValueError, match="vectorized"):
            build_federation(
                specs,
                n_ticks=8,
                policy="predictive",
                horizon=2,
                cooling=CoolingControl(),
            )

    def test_planner_raises_and_restores_setpoint(self):
        planner = PredictivePlanner(horizon=2)
        control = CoolingControl(nominal_setpoint=25.0, max_setpoint=32.0)
        crunch = [status("a", 100.0, 500.0), status("b", 900.0, 100.0)]
        _, setpoints = planner.plan(
            crunch,
            [flat_forecast(s, 2) for s in crunch],
            margin=0.0,
            step=4.0,
            wan_break_even=0.0,
            cooling=control,
        )
        assert setpoints == [CoolingSetpoint(site="a", base_ambient=32.0)]
        recovered = [status("a", 900.0, 500.0), status("b", 900.0, 100.0)]
        _, setpoints = planner.plan(
            recovered,
            [flat_forecast(s, 2) for s in recovered],
            margin=0.0,
            step=4.0,
            wan_break_even=0.0,
            cooling=control,
        )
        assert setpoints == [CoolingSetpoint(site="a", base_ambient=25.0)]


class TestSetpointFaultComposition:
    def _controller(self, schedule):
        from repro.core.config import WillowConfig
        from repro.plant_faults.controller import (
            FaultTolerantWillowController,
        )
        from repro.sim.rng import RandomStreams
        from repro.topology.builders import build_paper_simulation
        from repro.workload.applications import SIMULATION_APPS
        from repro.workload.generator import random_placement

        tree = build_paper_simulation()
        config = WillowConfig()
        placement = random_placement(
            [s.node_id for s in tree.servers()],
            SIMULATION_APPS,
            RandomStreams(0)["placement"],
            vms_per_server=2,
        )
        return FaultTolerantWillowController(
            tree,
            config,
            constant_supply(9000.0),
            placement,
            plant_faults=schedule,
            outside_temp=35.0,
        )

    def test_setpoint_change_mid_derate_keeps_ramp(self):
        from repro.plant_faults.schedule import (
            CoolingDegradation,
            PlantFaultSchedule,
        )

        schedule = PlantFaultSchedule(
            cooling=(
                CoolingDegradation(
                    start_tick=4, end_tick=40, derate=0.5, ramp_ticks=8
                ),
            )
        )
        controller = self._controller(schedule)
        controller.run(8)  # mid-ramp: effective derate is ramping up

        event = schedule.cooling[0]
        tick = controller._tick_index
        derate_now = event.effective_derate(tick)
        assert 0.0 < derate_now < 0.5  # genuinely mid-ramp

        server = next(iter(controller.servers.values()))
        new_base = 29.0
        controller.set_base_ambient(new_base)

        # The new ambient composes base + the *current* derate -- the
        # ramp is re-anchored, not reset.
        expected = controller.cooling.degraded_supply_temperature(
            new_base, controller.outside_temp, derate_now
        )
        ceiling = (
            server.thermal_params.t_limit
            - controller.ambient_clamp_headroom
        )
        assert server.thermal_params.t_ambient == pytest.approx(
            min(expected, ceiling)
        )

        # And the ramp keeps climbing from the new base on later ticks.
        controller.run(4)
        derate_later = event.effective_derate(controller._tick_index - 1)
        assert derate_later > derate_now
        expected_later = controller.cooling.degraded_supply_temperature(
            new_base, controller.outside_temp, derate_later
        )
        assert server.thermal_params.t_ambient == pytest.approx(
            min(expected_later, ceiling)
        )
        assert controller._base_ambient[server.node.node_id] == new_base

    def test_base_ambient_round_trips_snapshot(self):
        from repro.plant_faults.schedule import PlantFaultSchedule

        controller = self._controller(PlantFaultSchedule())
        controller.run(2)
        controller.set_base_ambient(28.0)
        state = controller.snapshot_state()
        twin = self._controller(PlantFaultSchedule())
        twin.restore_state(copy.deepcopy(state))
        assert twin._base_ambient == controller._base_ambient


class TestPredictiveCheckpoint:
    def _build(self, n_ticks=24):
        specs = [
            SiteSpec(
                name="west",
                supply=renewable_supply(6000.0, day_length=32.0),
                seed=1,
                battery=Battery(500.0, 100.0),
            ),
            SiteSpec(
                name="east",
                supply=renewable_supply(6000.0, day_length=32.0, phase=0.5),
                seed=2,
            ),
        ]
        return build_federation(
            specs,
            n_ticks=n_ticks,
            policy="predictive",
            horizon=3,
            cooling=CoolingControl(outside_temp=30.0),
        )

    def test_planner_state_survives_resume_bit_exact(self):
        n_ticks = 24
        reference = self._build(n_ticks)
        reference.run(n_ticks)
        expected = [
            decision_digest(site.controller.collector)
            for site in reference.sites
        ]
        expected_planner = reference._planner.state_dict()

        first = self._build(n_ticks)
        first.run(10)
        state = copy.deepcopy(first.snapshot_state())
        assert state["planner"]["planner"]["horizon"] == 3

        twin = self._build(n_ticks)
        twin.restore_state(state)
        assert twin._planner.rebalances == first._planner.rebalances
        assert twin._planner.setpoints == first._planner.setpoints
        for site, twin_site in zip(first.sites, twin.sites):
            assert twin_site.setpoint == site.setpoint
            assert (
                twin_site.actuated_supply.overhead
                == site.actuated_supply.overhead
            )
        twin.run(n_ticks - 10)
        got = [
            decision_digest(site.controller.collector)
            for site in twin.sites
        ]
        assert got == expected
        assert twin._planner.state_dict() == expected_planner
        assert twin.setpoint_log == reference.setpoint_log

    def test_horizon_mismatch_rejected(self):
        planner = PredictivePlanner(horizon=2)
        with pytest.raises(ValueError, match="horizon"):
            planner.load_state_dict(PredictivePlanner(horizon=4).state_dict())


class TestBatteryPlan:
    def test_sites_carry_battery_plan_and_rate(self):
        from repro.federation.site import build_site

        spec = SiteSpec(
            name="a",
            supply=step_supply([(0.0, 9000.0), (10.0, 100.0)]),
            battery=Battery(800.0, 120.0),
        )
        site = build_site(spec, n_ticks=24)
        assert site.battery_rate == 120.0
        assert site.battery_plan is not None
        # Charged from early surplus, drained through the plunge.
        assert site.battery_charge_at(9.0) > 0.0
        assert site.battery_charge_at(20.0) < site.battery_charge_at(9.0)

    def test_site_without_battery_reports_zero(self):
        from repro.federation.site import build_site

        site = build_site(SiteSpec(name="a"), n_ticks=8)
        assert site.battery_plan is None
        assert site.battery_rate == 0.0
        assert site.battery_charge_at(3.0) == 0.0


class TestExperimentClaim:
    def test_smoke_assertions_hold(self, capsys):
        from repro.experiments.fig_predictive import smoke

        smoke()  # raises AssertionError on any regression
        assert "OK" in capsys.readouterr().out
