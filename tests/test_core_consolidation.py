"""Unit tests for the consolidation planner."""

import pytest

from repro.core import NodeRuntime, ServerRuntime, SleepState, WillowConfig
from repro.core.consolidation import ConsolidationPlanner
from repro.topology import NodeKind, Tree
from repro.workload import AppType, VM


def build_cluster(config, n=4):
    tree = Tree(root_name="dc", root_level=2)
    group = tree.add_child(tree.root, "g", NodeKind.ENCLOSURE)
    for i in range(n):
        tree.add_child(group, f"s{i}", NodeKind.SERVER)
    servers = {
        leaf.node_id: ServerRuntime(leaf, config) for leaf in tree.servers()
    }
    internals = {
        node.node_id: NodeRuntime(node, config)
        for node in tree
        if not node.is_leaf
    }
    return tree, servers, internals


def load(server, demands, start_id, budget):
    app = AppType("app", 1.0)
    for offset, demand in enumerate(demands):
        vm = VM(vm_id=start_id + offset, app=app, host_id=server.node.node_id)
        vm.current_demand = float(demand)
        server.vms[vm.vm_id] = vm
    server.observe_demand()
    server.set_budget(budget)


@pytest.fixture
def config():
    # threshold 20% of 420 W slope = 84 W of VM demand.
    return WillowConfig(p_min=10.0, migration_cost_power=5.0)


def test_light_server_drained_and_slept(config):
    tree, servers, internals = build_cluster(config)
    s = [servers[leaf.node_id] for leaf in tree.servers()]
    load(s[0], [20.0], start_id=0, budget=450.0)  # below threshold
    load(s[1], [200.0], start_id=10, budget=450.0)
    load(s[2], [200.0], start_id=20, budget=450.0)
    load(s[3], [200.0], start_id=30, budget=450.0)
    plan = ConsolidationPlanner(tree, config).plan(servers, internals)
    assert s[0] in plan.to_sleep
    assert len(plan.moves) == 1
    assert plan.moves[0].src.name == "s0"


def test_busy_server_not_drained(config):
    tree, servers, internals = build_cluster(config)
    s = [servers[leaf.node_id] for leaf in tree.servers()]
    for i, server in enumerate(s):
        load(server, [200.0], start_id=i * 10, budget=450.0)
    plan = ConsolidationPlanner(tree, config).plan(servers, internals)
    assert plan.to_sleep == [] and plan.moves == []


def test_empty_server_sleeps_without_moves(config):
    tree, servers, internals = build_cluster(config)
    s = [servers[leaf.node_id] for leaf in tree.servers()]
    s[0].observe_demand()
    s[0].set_budget(450.0)
    for i, server in enumerate(s[1:], start=1):
        load(server, [200.0], start_id=i * 10, budget=450.0)
    plan = ConsolidationPlanner(tree, config).plan(servers, internals)
    assert s[0] in plan.to_sleep
    assert plan.moves == []


def test_no_drain_when_targets_lack_margin(config):
    tree, servers, internals = build_cluster(config)
    s = [servers[leaf.node_id] for leaf in tree.servers()]
    load(s[0], [50.0], start_id=0, budget=450.0)
    # Other servers are all nearly at budget: no capacity.
    for i, server in enumerate(s[1:], start=1):
        load(server, [300.0], start_id=i * 10, budget=340.0)
    plan = ConsolidationPlanner(tree, config).plan(servers, internals)
    assert s[0] not in plan.to_sleep
    assert plan.moves == []


def test_partial_drain_never_planned(config):
    tree, servers, internals = build_cluster(config)
    s = [servers[leaf.node_id] for leaf in tree.servers()]
    # Candidate hosts two VMs; targets can absorb only one.
    load(s[0], [40.0, 40.0], start_id=0, budget=450.0)
    load(s[1], [330.0], start_id=10, budget=430.0)  # capacity ~55: one VM
    load(s[2], [400.0], start_id=20, budget=435.0)
    load(s[3], [400.0], start_id=30, budget=435.0)
    plan = ConsolidationPlanner(tree, config).plan(servers, internals)
    moved_from_s0 = [m for m in plan.moves if m.src.name == "s0"]
    assert moved_from_s0 == []  # all-or-nothing
    assert s[0] not in plan.to_sleep


def test_hot_zone_drained_first(config):
    tree, servers, internals = build_cluster(config)
    leaves = tree.servers()
    hot = ServerRuntime(leaves[0], config, config.thermal.with_ambient(40.0))
    servers[leaves[0].node_id] = hot
    s = [servers[leaf.node_id] for leaf in leaves]
    # Hot server slightly busier than a cold candidate; both below
    # threshold.  Hot must still be drained first.
    load(s[0], [50.0], start_id=0, budget=300.0)  # hot
    load(s[1], [30.0], start_id=10, budget=450.0)  # cold, lighter
    load(s[2], [200.0], start_id=20, budget=450.0)
    load(s[3], [200.0], start_id=30, budget=450.0)
    plan = ConsolidationPlanner(tree, config).plan(servers, internals)
    assert plan.to_sleep
    assert plan.to_sleep[0] is s[0]


def test_drain_disabled_in_deficit_regime(config):
    tree, servers, internals = build_cluster(config)
    s = [servers[leaf.node_id] for leaf in tree.servers()]
    load(s[0], [20.0], start_id=0, budget=450.0)
    for i, server in enumerate(s[1:], start=1):
        load(server, [200.0], start_id=i * 10, budget=450.0)
    plan = ConsolidationPlanner(tree, config).plan(
        servers, internals, recent_dropped_power=100.0, root_budget=2000.0,
        total_demand=1000.0,
    )
    assert plan.to_sleep == []  # drops in flight: keep capacity up


def test_wake_heuristic_fires_on_drops_with_headroom(config):
    tree, servers, internals = build_cluster(config)
    s = [servers[leaf.node_id] for leaf in tree.servers()]
    s[0].observe_demand()
    s[0].set_budget(0.0)
    s[0].sleep()
    for i, server in enumerate(s[1:], start=1):
        load(server, [400.0], start_id=i * 10, budget=440.0)
    plan = ConsolidationPlanner(tree, config).plan(
        servers,
        internals,
        recent_dropped_power=200.0,
        root_budget=1800.0,
        total_demand=1300.0,
    )
    assert plan.to_wake == [s[0]]


def test_wake_heuristic_respects_headroom(config):
    tree, servers, internals = build_cluster(config)
    s = [servers[leaf.node_id] for leaf in tree.servers()]
    s[0].observe_demand()
    s[0].set_budget(0.0)
    s[0].sleep()
    for i, server in enumerate(s[1:], start=1):
        load(server, [400.0], start_id=i * 10, budget=440.0)
    plan = ConsolidationPlanner(tree, config).plan(
        servers,
        internals,
        recent_dropped_power=200.0,
        root_budget=1300.0,  # no room for another static floor
        total_demand=1295.0,
    )
    assert plan.to_wake == []


def test_consolidation_disabled(config):
    import dataclasses

    off = dataclasses.replace(config, consolidation_enabled=False)
    tree, servers, internals = build_cluster(off)
    s = [servers[leaf.node_id] for leaf in tree.servers()]
    load(s[0], [20.0], start_id=0, budget=450.0)
    for i, server in enumerate(s[1:], start=1):
        load(server, [200.0], start_id=i * 10, budget=450.0)
    plan = ConsolidationPlanner(tree, off).plan(servers, internals)
    assert plan.to_sleep == [] and plan.moves == []


def test_floor_starved_server_drained_even_in_deficit_regime(config):
    tree, servers, internals = build_cluster(config)
    s = [servers[leaf.node_id] for leaf in tree.servers()]
    # s0's budget fell below the 30 W static floor: it cannot comply
    # while awake, so it must drain and sleep even while drops persist.
    load(s[0], [10.0], start_id=0, budget=20.0)
    load(s[1], [100.0], start_id=10, budget=450.0)
    load(s[2], [100.0], start_id=20, budget=450.0)
    load(s[3], [100.0], start_id=30, budget=450.0)
    plan = ConsolidationPlanner(tree, config).plan(
        servers, internals, recent_dropped_power=500.0,
        root_budget=1400.0, total_demand=1350.0,
    )
    assert s[0] in plan.to_sleep
    assert any(m.src.name == "s0" for m in plan.moves)


def test_floor_starved_server_stays_up_when_vms_cannot_move(config):
    tree, servers, internals = build_cluster(config)
    s = [servers[leaf.node_id] for leaf in tree.servers()]
    load(s[0], [10.0], start_id=0, budget=20.0)
    for i, server in enumerate(s[1:], start=1):
        # Everyone else also floor-starved: no targets at all.
        load(server, [100.0], start_id=i * 10, budget=20.0)
    plan = ConsolidationPlanner(tree, config).plan(
        servers, internals, recent_dropped_power=500.0,
        root_budget=100.0, total_demand=400.0,
    )
    assert s[0] not in plan.to_sleep  # VMs cannot be stranded


def test_chained_drains_do_not_target_draining_servers(config):
    tree, servers, internals = build_cluster(config)
    s = [servers[leaf.node_id] for leaf in tree.servers()]
    # Everyone light: the pass must not move VMs onto a server that is
    # itself being put to sleep this round.
    for i, server in enumerate(s):
        load(server, [30.0 + i], start_id=i * 10, budget=450.0)
    plan = ConsolidationPlanner(tree, config).plan(servers, internals)
    slept_ids = {srv.node.node_id for srv in plan.to_sleep}
    for move in plan.moves:
        assert move.dst.node_id not in slept_ids
    assert plan.to_sleep  # something consolidated
