"""Property-based tests for trees and switch fabrics (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import SwitchFabric, build_balanced

branchings = st.lists(st.integers(1, 4), min_size=1, max_size=4)


@given(branching=branchings)
def test_balanced_tree_structure(branching):
    tree = build_balanced(branching)
    tree.validate()
    # Server count is the product of the branching factors.
    expected = 1
    for b in branching:
        expected *= b
    assert len(tree.servers()) == expected
    # Height equals depth + 1 (leaves are level 0).
    assert tree.height == len(branching) + 1
    # Every leaf's path to the root has height many nodes.
    for server in tree.servers():
        assert len(server.path_to_root()) == tree.height


@given(branching=branchings)
def test_lca_properties(branching):
    tree = build_balanced(branching)
    servers = tree.servers()
    a, b = servers[0], servers[-1]
    lca = tree.lca(a, b)
    # Symmetric.
    assert tree.lca(b, a) is lca
    # Idempotent.
    assert tree.lca(a, a) is a
    # The LCA is an ancestor of both (or the node itself).
    assert lca in a.path_to_root()
    assert lca in b.path_to_root()


@given(branching=branchings, redundancy=st.integers(1, 3))
@settings(max_examples=40)
def test_fabric_path_invariants(branching, redundancy):
    tree = build_balanced(branching)
    fabric = SwitchFabric(tree, redundancy=redundancy)
    servers = tree.servers()
    src, dst = servers[0], servers[-1]

    path = fabric.path(src, dst)
    if src is dst:
        assert path == []
        return

    # Per-site shares sum to exactly 1.
    per_site = {}
    for switch, share in path:
        per_site.setdefault(switch.site.node_id, 0.0)
        per_site[switch.site.node_id] += share
    assert all(abs(total - 1.0) < 1e-9 for total in per_site.values())

    # The path's sites climb to the LCA and descend: site count is
    # (levels up) + (levels down) - 1 = 2*lca.level - 1 for leaf pairs.
    lca = tree.lca(src, dst)
    assert fabric.hop_count(src, dst) == 2 * lca.level - 1

    # Direction symmetry on sites.
    forward = {sw.site.node_id for sw, _ in fabric.path(src, dst)}
    backward = {sw.site.node_id for sw, _ in fabric.path(dst, src)}
    assert forward == backward

    # Redundancy multiplies switch count, not site count.
    assert len(path) == fabric.hop_count(src, dst) * redundancy


@given(branching=branchings)
def test_every_server_has_a_serving_switch(branching):
    tree = build_balanced(branching)
    fabric = SwitchFabric(tree)
    for server in tree.servers():
        group = fabric.serving(server)
        assert len(group) == 1
        assert group[0].site is server.parent
