"""Tests for generator-based processes and composite events."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, Interrupt


def test_process_advances_through_timeouts():
    env = Environment()
    log = []

    def worker(env):
        yield env.timeout(1.0)
        log.append(env.now)
        yield env.timeout(2.0)
        log.append(env.now)

    env.process(worker(env))
    env.run()
    assert log == [1.0, 3.0]


def test_process_receives_event_value():
    env = Environment()
    got = []

    def worker(env):
        value = yield env.timeout(1.0, value="hello")
        got.append(value)

    env.process(worker(env))
    env.run()
    assert got == ["hello"]


def test_process_return_value_becomes_event_value():
    env = Environment()

    def worker(env):
        yield env.timeout(1.0)
        return 42

    proc = env.process(worker(env))
    env.run()
    assert proc.processed and proc.value == 42


def test_process_can_wait_on_another_process():
    env = Environment()
    log = []

    def child(env):
        yield env.timeout(2.0)
        return "done"

    def parent(env):
        result = yield env.process(child(env))
        log.append((env.now, result))

    env.process(parent(env))
    env.run()
    assert log == [(2.0, "done")]


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_exception_in_process_propagates():
    env = Environment()

    def worker(env):
        yield env.timeout(1.0)
        raise ValueError("inside process")

    env.process(worker(env))
    with pytest.raises(ValueError, match="inside process"):
        env.run()


def test_process_can_catch_failed_event():
    env = Environment()
    caught = []

    def worker(env):
        event = env.event()
        event.fail(RuntimeError("expected"))
        try:
            yield event
        except RuntimeError as error:
            caught.append(str(error))

    env.process(worker(env))
    env.run()
    assert caught == ["expected"]


def test_interrupt_raises_in_process():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as interrupt:
            log.append((env.now, interrupt.cause))

    def interrupter(env, victim):
        yield env.timeout(1.0)
        victim.interrupt(cause="wake up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [(1.0, "wake up")]


def test_interrupt_finished_process_rejected():
    env = Environment()

    def quick(env):
        yield env.timeout(0.0)

    proc = env.process(quick(env))
    env.run()
    with pytest.raises(RuntimeError):
        proc.interrupt()


def test_is_alive_lifecycle():
    env = Environment()

    def worker(env):
        yield env.timeout(1.0)

    proc = env.process(worker(env))
    assert proc.is_alive
    env.run()
    assert not proc.is_alive


def test_all_of_waits_for_every_event():
    env = Environment()
    log = []

    def worker(env):
        a = env.timeout(1.0, value="a")
        b = env.timeout(3.0, value="b")
        results = yield AllOf(env, [a, b])
        log.append((env.now, sorted(results.values())))

    env.process(worker(env))
    env.run()
    assert log == [(3.0, ["a", "b"])]


def test_any_of_fires_on_first_event():
    env = Environment()
    log = []

    def worker(env):
        a = env.timeout(1.0, value="fast")
        b = env.timeout(5.0, value="slow")
        results = yield AnyOf(env, [a, b])
        log.append((env.now, list(results.values())))

    env.process(worker(env))
    env.run(until=2.0)
    assert log == [(1.0, ["fast"])]


def test_all_of_with_already_processed_events():
    env = Environment()
    a = env.timeout(0.0, value=1)
    env.run()

    log = []

    def worker(env, done):
        b = env.timeout(1.0, value=2)
        results = yield AllOf(env, [done, b])
        log.append(sorted(results.values()))

    env.process(worker(env, a))
    env.run()
    assert log == [[1, 2]]


def test_condition_events_must_share_environment():
    env1, env2 = Environment(), Environment()
    with pytest.raises(ValueError):
        AllOf(env1, [env1.timeout(1.0), env2.timeout(1.0)])


def test_yielding_foreign_event_fails_process():
    env1, env2 = Environment(), Environment()

    def worker(env):
        yield env2.timeout(1.0)

    env1.process(worker(env1))
    with pytest.raises(ValueError):
        env1.run()


def test_many_interleaved_processes_deterministic():
    def run_once():
        env = Environment()
        log = []

        def worker(env, tag, delay):
            for _ in range(3):
                yield env.timeout(delay)
                log.append((env.now, tag))

        for tag, delay in enumerate([1.0, 1.5, 2.0]):
            env.process(worker(env, tag, delay))
        env.run()
        return log

    assert run_once() == run_once()
