"""Tests for metric collection, stability and convergence helpers."""

import numpy as np
import pytest

from repro.core.events import ControlMessage, Drop, Migration, MigrationCause
from repro.metrics import (
    MetricsCollector,
    ServerSample,
    SwitchSample,
    count_ping_pongs,
    min_residence_time,
    propagation_delay,
    recommended_delta_d,
    residence_times,
)
from repro.metrics.convergence import decision_time_scaling, fit_log_scaling
from repro.metrics.summary import fleet_mean, mean_by_server
from repro.workload import AppType, VM


def sample(t, sid, power=100.0, **kw):
    defaults = dict(
        temperature=40.0, utilization=0.3, demand=120.0, budget=150.0, asleep=False
    )
    defaults.update(kw)
    return ServerSample(time=t, server_id=sid, power=power, **defaults)


def migration(t, vm_id=0, src=1, dst=2, cause=MigrationCause.DEMAND, local=True):
    return Migration(
        time=t,
        vm_id=vm_id,
        src_id=src,
        dst_id=dst,
        demand=50.0,
        cause=cause,
        local=local,
        hops=1 if local else 3,
        cost_power=5.0,
    )


class TestCollector:
    def test_server_series_and_means(self):
        collector = MetricsCollector()
        for t in range(3):
            collector.record_server(sample(float(t), 1, power=100.0 + t))
            collector.record_server(sample(float(t), 2, power=50.0))
        assert collector.server_ids() == [1, 2]
        assert np.array_equal(collector.server_series(1, "power"), [100, 101, 102])
        assert collector.mean_server(2, "power") == 50.0
        assert collector.mean_server(1, "power") == 101.0

    def test_mean_requires_samples(self):
        with pytest.raises(ValueError):
            MetricsCollector().mean_server(1, "power")

    def test_migration_counting(self):
        collector = MetricsCollector()
        collector.record_migration(migration(1.0))
        collector.record_migration(
            migration(2.0, cause=MigrationCause.CONSOLIDATION, local=False)
        )
        assert collector.migration_count() == 2
        assert collector.migration_count(MigrationCause.DEMAND) == 1
        assert collector.local_fraction() == 0.5

    def test_migrations_per_tick_histogram(self):
        collector = MetricsCollector()
        for t in (0.2, 0.7, 2.1):
            collector.record_migration(migration(t))
        hist = collector.migrations_per_tick(horizon=4.0)
        assert hist.tolist() == [2, 0, 1, 0]

    def test_drop_totals(self):
        collector = MetricsCollector()
        collector.record_drop(Drop(1.0, 5, None, 30.0))
        collector.record_drop(Drop(2.0, 5, 7, 20.0))
        assert collector.total_dropped_power() == 50.0

    def test_switch_series(self):
        collector = MetricsCollector()
        for t in range(2):
            collector.record_switch(
                SwitchSample(float(t), switch_id=9, level=1,
                             base_traffic=10.0, migration_traffic=1.0, power=5.0)
            )
        assert collector.switch_ids(level=1) == [9]
        assert collector.switch_ids(level=2) == []
        assert collector.mean_switch(9, "power") == 5.0

    def test_message_bound_report(self):
        collector = MetricsCollector()
        collector.record_message(ControlMessage(0.0, link=3, upward=True))
        collector.record_message(ControlMessage(0.0, link=3, upward=False))
        collector.record_message(ControlMessage(1.0, link=3, upward=True))
        worst = collector.messages_per_link_per_tick()
        assert worst[3] == 2

    def test_total_energy(self):
        collector = MetricsCollector()
        collector.record_server(sample(0.0, 1, power=100.0))
        collector.record_server(sample(0.0, 2, power=50.0))
        assert collector.total_energy() == 150.0


class TestStability:
    def _vm(self):
        return VM(vm_id=0, app=AppType("a", 1.0), host_id=1)

    def test_residence_times(self):
        vm = self._vm()
        vm.place(2, 5.0)
        vm.place(3, 8.0)
        assert residence_times(vm, now=10.0) == [5.0, 3.0, 2.0]

    def test_min_residence_infinite_when_no_moves(self):
        assert min_residence_time([self._vm()], now=10.0) == float("inf")

    def test_min_residence_over_population(self):
        vm1, vm2 = self._vm(), self._vm()
        vm1.place(2, 4.0)
        vm1.place(3, 10.0)  # stay of 6
        vm2.place(2, 7.0)
        vm2.place(3, 9.0)  # stay of 2
        assert min_residence_time([vm1, vm2], now=20.0) == 2.0

    def test_ping_pong_detected(self):
        vm = self._vm()
        vm.place(2, 1.0)
        vm.place(1, 3.0)  # back to host 1 within 2 ticks
        assert count_ping_pongs([vm], window=5.0) == 1
        assert count_ping_pongs([vm], window=1.0) == 0

    def test_non_returning_moves_not_ping_pong(self):
        vm = self._vm()
        vm.place(2, 1.0)
        vm.place(3, 2.0)
        assert count_ping_pongs([vm], window=100.0) == 0

    def test_window_validated(self):
        with pytest.raises(ValueError):
            count_ping_pongs([], window=-1.0)


class TestConvergence:
    def test_propagation_delay(self):
        assert propagation_delay(4, 10.0) == 40.0
        with pytest.raises(ValueError):
            propagation_delay(0, 10.0)

    def test_recommended_delta_d_paper_numbers(self):
        # h=5 levels at 10 ms -> delta 50 ms -> Delta_D >= 500 ms.
        assert recommended_delta_d(5, 10.0) == 500.0

    def test_decision_time_scaling_runs(self):
        calls = []
        results = decision_time_scaling([2, 4], lambda n: calls.append(n), repeats=2)
        assert [n for n, _t in results] == [2, 4]
        assert calls == [2, 2, 4, 4]

    def test_fit_log_scaling_recovers_linear_exponent(self):
        points = [(10, 0.010), (100, 0.100), (1000, 1.0)]
        assert fit_log_scaling(points) == pytest.approx(1.0, abs=0.01)

    def test_fit_log_scaling_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_log_scaling([(10, 1.0)])


class TestSummary:
    def test_mean_by_server_and_fleet_mean(self):
        collector = MetricsCollector()
        collector.record_server(sample(0.0, 1, power=100.0))
        collector.record_server(sample(0.0, 2, power=200.0))
        assert mean_by_server(collector, "power") == {1: 100.0, 2: 200.0}
        assert fleet_mean(collector, "power") == 150.0

    def test_fleet_mean_requires_samples(self):
        with pytest.raises(ValueError):
            fleet_mean(MetricsCollector(), "power")
