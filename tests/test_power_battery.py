"""Tests for the UPS/battery supply buffering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.power import Battery, buffer_supply, constant_supply, step_supply


class TestBattery:
    def test_starts_full_by_default(self):
        battery = Battery(capacity=100.0, max_rate=50.0)
        assert battery.state_of_charge == 1.0

    def test_deliver_bounded_by_rate(self):
        battery = Battery(capacity=1000.0, max_rate=50.0)
        assert battery.deliver(200.0, dt=1.0) == 50.0

    def test_deliver_bounded_by_charge(self):
        battery = Battery(capacity=100.0, max_rate=500.0, charge=30.0)
        assert battery.deliver(200.0, dt=1.0) == 30.0
        assert battery.charge == 0.0

    def test_absorb_bounded_by_room(self):
        battery = Battery(
            capacity=100.0, max_rate=500.0, efficiency=1.0, charge=90.0
        )
        assert battery.absorb(50.0, dt=1.0) == pytest.approx(10.0)
        assert battery.charge == pytest.approx(100.0)

    def test_efficiency_loses_energy_on_charge(self):
        battery = Battery(
            capacity=100.0, max_rate=500.0, efficiency=0.5, charge=0.0
        )
        accepted = battery.absorb(40.0, dt=1.0)
        assert accepted == 40.0
        assert battery.charge == pytest.approx(20.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(capacity=0.0, max_rate=1.0),
            dict(capacity=1.0, max_rate=0.0),
            dict(capacity=1.0, max_rate=1.0, efficiency=0.0),
            dict(capacity=1.0, max_rate=1.0, charge=2.0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            Battery(**kwargs)

    def test_negative_flows_rejected(self):
        battery = Battery(capacity=10.0, max_rate=10.0)
        with pytest.raises(ValueError):
            battery.absorb(-1.0, 1.0)
        with pytest.raises(ValueError):
            battery.deliver(-1.0, 1.0)


class TestBufferSupply:
    def _plunging_trace(self, nominal=1000.0, depth=400.0):
        # Plunge for 3 ticks at t=10.
        return step_supply([(0.0, nominal), (10.0, nominal - depth), (13.0, nominal)])

    def test_big_battery_erases_short_plunge(self):
        battery = Battery(capacity=10_000.0, max_rate=1_000.0, efficiency=1.0)
        buffered = buffer_supply(
            self._plunging_trace(), battery, duration=30.0, horizon=16.0
        )
        during = buffered.series(np.arange(10.0, 13.0))
        # Delivery stays near the 1000 W level through the plunge (the
        # trailing-mean target sags slightly as the dip enters it).
        assert during.min() > 900.0
        # Versus the unbuffered 600 W floor.
        raw_during = self._plunging_trace().series(np.arange(10.0, 13.0))
        assert raw_during.min() == pytest.approx(600.0)

    def test_small_battery_cannot_bridge(self):
        battery = Battery(capacity=100.0, max_rate=50.0, efficiency=1.0)
        buffered = buffer_supply(
            self._plunging_trace(), battery, duration=30.0, horizon=8.0
        )
        during = buffered.series(np.arange(10.0, 13.0))
        assert during.min() < 700.0  # plunge leaks through

    def test_energy_conserved_with_perfect_efficiency(self):
        battery = Battery(capacity=5_000.0, max_rate=1_000.0, efficiency=1.0)
        initial_charge = battery.charge
        trace = self._plunging_trace()
        duration = 30.0
        buffered = buffer_supply(trace, battery, duration=duration, horizon=8.0)
        times = np.arange(0.0, duration)
        raw_energy = trace.series(times).sum()
        out_energy = buffered.series(times).sum()
        # Delivered = raw + (initial - final) charge, exactly.
        assert out_energy == pytest.approx(
            raw_energy + initial_charge - battery.charge, rel=1e-9
        )

    def test_constant_supply_passes_through(self):
        battery = Battery(capacity=1_000.0, max_rate=100.0)
        buffered = buffer_supply(
            constant_supply(500.0), battery, duration=20.0
        )
        assert np.allclose(buffered.series(np.arange(0.0, 20.0)), 500.0)

    def test_sustained_deficit_persists(self):
        # A permanent 40% cut eventually reaches the controller even
        # with a generous battery.
        battery = Battery(capacity=3_000.0, max_rate=1_000.0, efficiency=1.0)
        trace = step_supply([(0.0, 1000.0), (10.0, 600.0)])
        buffered = buffer_supply(trace, battery, duration=60.0, horizon=8.0)
        late = buffered.series(np.arange(45.0, 60.0))
        assert late.max() < 700.0

    def test_validation(self):
        battery = Battery(capacity=10.0, max_rate=10.0)
        with pytest.raises(ValueError):
            buffer_supply(constant_supply(1.0), battery, duration=0.0)
        with pytest.raises(ValueError):
            buffer_supply(
                constant_supply(1.0), battery, duration=10.0, dt=2.0, horizon=1.0
            )


class TestEndToEnd:
    def test_ups_protects_qos_through_flapping_supply(self):
        """The paper's point: storage integrates out short deficits.

        Under rapid global flapping the unbuffered controller mostly
        *drops* (every node is squeezed at once, so the unidirectional
        rule leaves few targets); the buffered controller sees a calm
        mid-level supply and keeps serving."""
        from repro.core import WillowConfig, WillowController
        from repro.sim import RandomStreams
        from repro.topology import build_paper_simulation
        from repro.workload import (
            SIMULATION_APPS,
            random_placement,
            scale_for_target_utilization,
        )

        nominal = 18 * 450.0
        # Rapid short plunges.
        segments = []
        for i in range(15):
            segments.append((float(4 * i), nominal if i % 2 == 0 else 0.55 * nominal))
        raw = step_supply(segments)

        def run(trace, seed=31):
            tree = build_paper_simulation()
            config = WillowConfig()
            streams = RandomStreams(seed)
            placement = random_placement(
                [s.node_id for s in tree.servers()],
                SIMULATION_APPS,
                streams["placement"],
            )
            scale_for_target_utilization(
                placement, config.server_model.slope, 0.6
            )
            controller = WillowController(
                tree, config, trace, placement, seed=seed
            )
            return controller.run(60)

        battery = Battery(
            capacity=60_000.0, max_rate=nominal, efficiency=1.0
        )
        buffered = buffer_supply(raw, battery, duration=60.0, horizon=12.0)

        raw_metrics = run(raw)
        buffered_metrics = run(buffered)
        assert (
            buffered_metrics.total_dropped_power()
            < 0.5 * raw_metrics.total_dropped_power()
        )
        # And it serves more demand overall.
        assert buffered_metrics.total_energy() > raw_metrics.total_energy()


# ---------------------------------------------------- property tests
# What any UPS must guarantee regardless of sizing or solar shape,
# checked over the renewable_supply family the federation sweep uses.
class TestBufferSupplyProperties:
    @staticmethod
    def _delivered(peak, base_fraction, phase, capacity, max_rate, charge):
        from repro.power import renewable_supply

        raw = renewable_supply(
            peak,
            base_fraction=base_fraction,
            day_length=48.0,
            cloud_noise=0.0,
            phase=phase,
        )
        battery = Battery(
            capacity=capacity, max_rate=max_rate, charge=charge
        )
        delivered = buffer_supply(raw, battery, duration=48.0, dt=1.0)
        times = np.arange(0.0, 48.0, 1.0)
        return raw.series(times), delivered.series(times)

    @given(
        peak=st.floats(10.0, 10_000.0),
        base_fraction=st.floats(0.0, 1.0),
        phase=st.floats(0.0, 1.0),
        capacity=st.floats(1.0, 50_000.0),
        rate_fraction=st.floats(0.01, 1.0),
        charge_fraction=st.floats(0.0, 1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_delivered_is_bounded(
        self,
        peak,
        base_fraction,
        phase,
        capacity,
        rate_fraction,
        charge_fraction,
    ):
        max_rate = rate_fraction * capacity
        raw, delivered = self._delivered(
            peak,
            base_fraction,
            phase,
            capacity,
            max_rate,
            charge_fraction * capacity,
        )
        # Never negative, never more than raw supply plus the
        # battery's maximum discharge over one step.
        assert np.all(delivered >= 0.0)
        assert np.all(delivered <= raw + max_rate + 1e-9)

    @given(
        peak=st.floats(10.0, 10_000.0),
        base_fraction=st.floats(0.0, 1.0),
        phase=st.floats(0.0, 1.0),
        capacity=st.floats(1.0, 50_000.0),
        rate_fraction=st.floats(0.01, 1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_empty_battery_never_creates_energy(
        self, peak, base_fraction, phase, capacity, rate_fraction
    ):
        raw, delivered = self._delivered(
            peak,
            base_fraction,
            phase,
            capacity,
            rate_fraction * capacity,
            0.0,  # starts empty: everything delivered came from the grid
        )
        assert float(np.sum(delivered)) <= float(np.sum(raw)) + 1e-6

    @given(
        peak=st.floats(10.0, 10_000.0),
        base_fraction=st.floats(0.0, 1.0),
        capacity=st.floats(1.0, 50_000.0),
        charge_fraction=st.floats(0.0, 1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_energy_conserved_up_to_initial_charge(
        self, peak, base_fraction, capacity, charge_fraction
    ):
        charge = charge_fraction * capacity
        raw, delivered = self._delivered(
            peak, base_fraction, 0.0, capacity, capacity, charge
        )
        # Any pre-charged battery adds at most its stored energy.
        assert (
            float(np.sum(delivered))
            <= float(np.sum(raw)) + charge + 1e-6
        )
