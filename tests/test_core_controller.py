"""Integration tests: the full Willow control loop and its invariants."""

import numpy as np
import pytest

from repro.core import MigrationCause, WillowConfig, WillowController, run_willow
from repro.core.state import SleepState
from repro.network import verify_message_bound
from repro.power import constant_supply, step_supply
from repro.sim import RandomStreams
from repro.topology import build_paper_simulation
from repro.workload import (
    SIMULATION_APPS,
    random_placement,
    scale_for_target_utilization,
)

HOT = {f"server-{i}": 40.0 for i in range(15, 19)}


@pytest.fixture(scope="module")
def medium_run():
    """One shared 60-tick run at 50% utilization with a hot zone."""
    controller, collector = run_willow(
        target_utilization=0.5, n_ticks=60, seed=21, ambient_overrides=HOT
    )
    return controller, collector


class TestStructure:
    def test_run_returns_samples_for_every_server_every_tick(self, medium_run):
        controller, collector = medium_run
        n_servers = len(controller.servers)
        assert len(collector.server_samples) == 60 * n_servers
        assert len(collector.times()) == 60

    def test_switch_samples_for_every_switch_every_tick(self, medium_run):
        controller, collector = medium_run
        assert len(collector.switch_samples) == 60 * len(
            controller.fabric.switches
        )

    def test_n_ticks_validated(self):
        controller, _ = run_willow(n_ticks=1, seed=0)
        with pytest.raises(ValueError):
            controller.run(0)


class TestBudgetInvariants:
    def test_children_budgets_never_exceed_parent(self, medium_run):
        controller, _ = medium_run
        for node in controller.tree:
            if node.is_leaf:
                continue
            parent_budget = controller.internals[node.node_id].budget
            child_total = 0.0
            for child in node.children:
                if child.is_leaf:
                    child_total += controller.servers[child.node_id].budget
                else:
                    child_total += controller.internals[child.node_id].budget
            assert child_total <= parent_budget + 1e-6

    def test_no_server_budget_exceeds_hard_cap(self, medium_run):
        controller, collector = medium_run
        for server in controller.servers.values():
            cap = server.hard_cap()
            samples = collector.server_series(server.node.node_id, "budget")
            assert np.all(samples <= cap + 1e-6)

    def test_served_power_within_budget(self, medium_run):
        _, collector = medium_run
        for sample in collector.server_samples:
            assert sample.power <= max(sample.budget, 0.0) + 1e-6 or sample.asleep


class TestThermalSafety:
    def test_no_thermal_violations_with_caps_on(self, medium_run):
        controller, _ = medium_run
        assert sum(s.thermal.violations for s in controller.servers.values()) == 0

    def test_temperatures_never_exceed_limit(self, medium_run):
        controller, collector = medium_run
        for server in controller.servers.values():
            temps = collector.server_series(server.node.node_id, "temperature")
            assert np.all(temps <= server.thermal_params.t_limit + 1e-6)

    def test_hot_zone_capped_below_cold(self, medium_run):
        controller, collector = medium_run
        hot = [controller.tree.by_name(n).node_id for n in HOT]
        cold = [
            s.node.node_id
            for s in controller.servers.values()
            if s.node.name not in HOT
        ]
        hot_mean = np.mean([collector.mean_server(i, "power") for i in hot])
        cold_mean = np.mean([collector.mean_server(i, "power") for i in cold])
        assert hot_mean < cold_mean


class TestDemandConservation:
    def test_vms_never_lost_or_duplicated(self, medium_run):
        controller, _ = medium_run
        hosted = [vm.vm_id for s in controller.servers.values() for vm in s.vms.values()]
        assert sorted(hosted) == sorted(vm.vm_id for vm in controller.vms)

    def test_vm_host_field_consistent_with_server_maps(self, medium_run):
        controller, _ = medium_run
        for server in controller.servers.values():
            for vm in server.vms.values():
                assert vm.host_id == server.node.node_id

    def test_sleeping_servers_host_nothing(self, medium_run):
        controller, _ = medium_run
        for server in controller.servers.values():
            if server.sleep_state is SleepState.ASLEEP:
                assert not server.vms


class TestMessages:
    def test_property3_bound(self, medium_run):
        _, collector = medium_run
        assert verify_message_bound(collector, bound=2)

    def test_upward_reports_every_tick(self, medium_run):
        controller, collector = medium_run
        n_links = len(controller.tree) - 1
        upward = sum(1 for m in collector.messages if m.upward)
        assert upward == 60 * n_links

    def test_downward_only_at_supply_events(self, medium_run):
        controller, collector = medium_run
        n_links = len(controller.tree) - 1
        supply_events = len(
            [t for t in range(60) if t % controller.config.eta1 == 0]
        )
        downward = sum(1 for m in collector.messages if not m.upward)
        assert downward == supply_events * n_links


class TestMigrations:
    def test_migration_records_consistent(self, medium_run):
        controller, collector = medium_run
        ids = {s.node.node_id for s in controller.servers.values()}
        for migration in collector.migrations:
            assert migration.src_id in ids
            assert migration.dst_id in ids
            assert migration.src_id != migration.dst_id
            assert migration.hops >= 1

    def test_local_migrations_have_one_hop(self, medium_run):
        _, collector = medium_run
        for migration in collector.migrations:
            if migration.local:
                assert migration.hops == 1
            else:
                assert migration.hops >= 3

    def test_both_causes_occur_at_mid_utilization(self, medium_run):
        _, collector = medium_run
        assert collector.migration_count(MigrationCause.DEMAND) > 0
        assert collector.migration_count(MigrationCause.CONSOLIDATION) > 0


class TestDeterminism:
    def test_same_seed_same_results(self):
        runs = []
        for _ in range(2):
            _, collector = run_willow(
                target_utilization=0.4, n_ticks=25, seed=99, ambient_overrides=HOT
            )
            runs.append(
                (
                    collector.total_energy(),
                    collector.migration_count(),
                    collector.total_dropped_power(),
                )
            )
        assert runs[0] == runs[1]

    def test_different_seed_different_results(self):
        energies = set()
        for seed in (1, 2, 3):
            _, collector = run_willow(
                target_utilization=0.4, n_ticks=25, seed=seed
            )
            energies.add(round(collector.total_energy(), 3))
        assert len(energies) > 1


class TestSupplyResponse:
    def _make(self, supply, config=None, seed=5):
        tree = build_paper_simulation()
        config = config or WillowConfig()
        streams = RandomStreams(seed)
        placement = random_placement(
            [s.node_id for s in tree.servers()],
            SIMULATION_APPS,
            streams["placement"],
        )
        scale_for_target_utilization(placement, config.server_model.slope, 0.5)
        return WillowController(tree, config, supply, placement, seed=seed)

    def test_supply_cut_reduces_fleet_power(self):
        full = self._make(constant_supply(18 * 450.0))
        full_metrics = full.run(40)
        starved = self._make(
            step_supply([(0.0, 18 * 450.0), (20.0, 18 * 150.0)])
        )
        starved_metrics = starved.run(40)
        # After the cut the starved fleet must draw much less power.
        full_tail = [
            s.power for s in full_metrics.server_samples if s.time >= 25
        ]
        starved_tail = [
            s.power for s in starved_metrics.server_samples if s.time >= 25
        ]
        assert np.sum(starved_tail) < 0.75 * np.sum(full_tail)

    def test_supply_cut_causes_drops(self):
        starved = self._make(
            step_supply([(0.0, 18 * 450.0), (20.0, 18 * 100.0)])
        )
        metrics = starved.run(40)
        dropped_late = [d for d in metrics.drops if d.time >= 20]
        assert dropped_late

    def test_zero_supply_fleet_draws_nothing_dynamic(self):
        starved = self._make(step_supply([(0.0, 18 * 450.0), (20.0, 0.0)]))
        metrics = starved.run(40)
        for sample in metrics.server_samples:
            if sample.time >= 25 and not sample.asleep:
                # Only the unavoidable static floor remains.
                assert sample.power <= 30.0 + 1e-6


class TestWindowResetThermalModel:
    def test_temperature_is_ambient_plus_scaled_power(self, medium_run):
        controller, collector = medium_run
        for server in controller.servers.values():
            params = server.thermal_params
            powers = collector.server_series(server.node.node_id, "power")
            temps = collector.server_series(server.node.node_id, "temperature")
            k = (params.t_limit - params.t_ambient) / 450.0
            # cap for this zone: cold 450, hot 300 -> k*power relation
            cap = server.hard_cap()
            expected = params.t_ambient + (
                params.t_limit - params.t_ambient
            ) * powers / cap
            assert np.allclose(temps, expected, atol=1e-6)
