"""Tests for the comparator policies and Willow-vs-baseline claims."""

import numpy as np
import pytest

from repro.baselines import (
    build_flat_tree,
    run_centralized,
    run_independent,
    run_no_thermal,
)
from repro.core import WillowConfig, WillowController
from repro.power import constant_supply
from repro.sim import RandomStreams
from repro.topology import build_paper_simulation
from repro.workload import (
    SIMULATION_APPS,
    random_placement,
    scale_for_target_utilization,
)

HOT = {f"server-{i}": 40.0 for i in range(15, 19)}


def make_inputs(utilization=0.5, seed=3, config=None):
    tree = build_paper_simulation()
    config = config or WillowConfig()
    streams = RandomStreams(seed)
    placement = random_placement(
        [s.node_id for s in tree.servers()], SIMULATION_APPS, streams["placement"]
    )
    scale_for_target_utilization(placement, config.server_model.slope, utilization)
    supply = constant_supply(18 * 450.0)
    return tree, config, supply, placement


class TestIndependent:
    def test_runs_and_never_migrates(self):
        tree, config, supply, placement = make_inputs()
        collector = run_independent(
            tree, config, supply, placement, n_ticks=30, seed=3
        )
        assert collector.migrations == []
        assert len(collector.server_samples) == 30 * 18

    def test_willow_drops_less_than_independent_under_hot_zone(self):
        # Same seed/placement; the hot zone throttles the uncoordinated
        # fleet while Willow migrates the load away.
        tree, config, supply, placement = make_inputs(utilization=0.6, seed=8)
        independent = run_independent(
            tree,
            config,
            supply,
            placement,
            n_ticks=40,
            seed=8,
            ambient_overrides=HOT,
        )
        tree2, config2, supply2, placement2 = make_inputs(utilization=0.6, seed=8)
        willow = WillowController(
            tree2, config2, supply2, placement2, ambient_overrides=HOT, seed=8
        ).run(40)
        assert willow.total_dropped_power() < independent.total_dropped_power()

    def test_n_ticks_validated(self):
        tree, config, supply, placement = make_inputs()
        with pytest.raises(ValueError):
            run_independent(tree, config, supply, placement, n_ticks=0)


class TestCentralized:
    def test_flat_tree_shape(self):
        tree = build_flat_tree(18)
        assert tree.height == 2
        assert len(tree.servers()) == 18
        with pytest.raises(ValueError):
            build_flat_tree(0)

    def test_runs_with_translated_placement(self):
        tree, config, supply, placement = make_inputs()
        collector = run_centralized(
            tree, config, supply, placement, n_ticks=20, seed=3
        )
        assert len(collector.server_samples) == 20 * 18

    def test_message_load_on_root_links_exceeds_willow(self):
        # 18 direct children = 18 upward messages into the root per tick
        # versus 2 per link in the hierarchy.
        tree, config, supply, placement = make_inputs()
        centralized = run_centralized(
            tree, config, supply, placement, n_ticks=10, seed=3
        )
        per_tick = sum(1 for m in centralized.messages if m.upward) / 10
        assert per_tick == 18

    def test_ambient_overrides_carry_over_by_name(self):
        tree, config, supply, placement = make_inputs(utilization=0.7)
        collector = run_centralized(
            tree,
            config,
            supply,
            placement,
            n_ticks=30,
            seed=3,
            ambient_overrides=HOT,
        )
        ids = collector.server_ids()
        hot_power = np.mean([collector.mean_server(i, "power") for i in ids[14:]])
        cold_power = np.mean([collector.mean_server(i, "power") for i in ids[:14]])
        assert hot_power < cold_power


class TestNoThermal:
    def test_thermal_blind_violates_where_willow_does_not(self):
        tree, config, supply, placement = make_inputs(utilization=0.8, seed=4)
        _, violations = run_no_thermal(
            tree,
            config,
            supply,
            placement,
            n_ticks=40,
            seed=4,
            ambient_overrides=HOT,
        )
        assert violations > 0

        tree2, config2, supply2, placement2 = make_inputs(utilization=0.8, seed=4)
        willow = WillowController(
            tree2, config2, supply2, placement2, ambient_overrides=HOT, seed=4
        )
        willow.run(40)
        assert sum(s.thermal.violations for s in willow.servers.values()) == 0

    def test_returns_collector_and_count(self):
        tree, config, supply, placement = make_inputs()
        collector, violations = run_no_thermal(
            tree, config, supply, placement, n_ticks=10, seed=3
        )
        assert violations >= 0
        assert len(collector.server_samples) == 10 * 18
