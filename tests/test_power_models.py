"""Tests for server and switch power models."""

import numpy as np
import pytest

from repro.power import (
    SIMULATION_SERVER,
    SIMULATION_SWITCH,
    ServerPowerModel,
    SwitchPowerModel,
    TESTBED_SERVER,
)


class TestServerPowerModel:
    def test_testbed_calibration_anchors(self):
        # Derived from the paper's Sec. V-C5 arithmetic (see DESIGN.md).
        assert TESTBED_SERVER.power(0.8) + TESTBED_SERVER.power(
            0.4
        ) + TESTBED_SERVER.power(0.2) == pytest.approx(580.0)
        assert TESTBED_SERVER.power(1.0) == pytest.approx(232.0)

    def test_consolidation_savings_arithmetic(self):
        # Consolidating 80/40/20 into 90/50/sleep saves ~27.5 %.
        before = sum(TESTBED_SERVER.power(u) for u in (0.8, 0.4, 0.2))
        after = TESTBED_SERVER.power(0.9) + TESTBED_SERVER.power(0.5)
        assert 1.0 - after / before == pytest.approx(0.275, abs=0.001)

    def test_simulation_max_power_450(self):
        assert SIMULATION_SERVER.max_power == pytest.approx(450.0)

    def test_power_monotone_and_linear(self):
        u = np.linspace(0.0, 1.0, 11)
        p = TESTBED_SERVER.power(u)
        assert np.all(np.diff(p) > 0)
        assert np.allclose(np.diff(p, n=2), 0.0)

    def test_utilization_inverts_power(self):
        for u in (0.0, 0.25, 0.5, 1.0):
            p = TESTBED_SERVER.power(u)
            assert TESTBED_SERVER.utilization(p) == pytest.approx(u)

    def test_utilization_below_static_floor_clips_to_zero(self):
        assert TESTBED_SERVER.utilization(100.0) == 0.0

    def test_utilization_above_max_rejected(self):
        with pytest.raises(ValueError):
            TESTBED_SERVER.utilization(1000.0)

    def test_power_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            TESTBED_SERVER.power(1.5)
        with pytest.raises(ValueError):
            TESTBED_SERVER.power(-0.1)

    def test_dynamic_power_excludes_floor(self):
        assert TESTBED_SERVER.dynamic_power(0.5) == pytest.approx(36.25)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(static_power=-1.0, slope=10.0),
            dict(static_power=0.0, slope=0.0),
            dict(static_power=0.0, slope=10.0, standby_power=-1.0),
        ],
    )
    def test_invalid_model_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServerPowerModel(**kwargs)


class TestSwitchPowerModel:
    def test_power_affine_in_traffic(self):
        t = np.array([0.0, 100.0, 200.0])
        p = SIMULATION_SWITCH.power(t)
        assert p[0] == SIMULATION_SWITCH.static_power
        assert np.allclose(np.diff(p, n=2), 0.0)

    def test_negative_traffic_rejected(self):
        with pytest.raises(ValueError):
            SIMULATION_SWITCH.power(-1.0)

    def test_utilization(self):
        half = SIMULATION_SWITCH.capacity / 2
        assert SIMULATION_SWITCH.utilization(half) == pytest.approx(0.5)

    def test_max_power(self):
        expected = (
            SIMULATION_SWITCH.static_power
            + SIMULATION_SWITCH.watts_per_unit_traffic * SIMULATION_SWITCH.capacity
        )
        assert SIMULATION_SWITCH.max_power == pytest.approx(expected)

    def test_static_part_small_vs_dynamic(self):
        # Paper: "The static part is fixed and is very small."
        assert SIMULATION_SWITCH.static_power < 0.1 * SIMULATION_SWITCH.max_power

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(static_power=-1.0, watts_per_unit_traffic=1.0, capacity=10.0),
            dict(static_power=1.0, watts_per_unit_traffic=0.0, capacity=10.0),
            dict(static_power=1.0, watts_per_unit_traffic=1.0, capacity=0.0),
        ],
    )
    def test_invalid_model_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SwitchPowerModel(**kwargs)
