"""Physical fault injection and sensor-fault-tolerant control.

Three pillars:

* **Equivalence** -- with an all-healthy :class:`PlantFaultSchedule`
  the :class:`FaultTolerantWillowController` reproduces the scalar
  controller's trajectories bit for bit (both thermal modes): per-tick
  power, temperature, budget, demand, sleep states, every migration,
  and the control-message multiset.
* **Safety** -- under *any* seeded fault schedule (hypothesis sweep) no
  server ever exceeds ``T_limit`` and no budget goes negative:
  degradation is graceful, never unsafe.
* **Mechanics** -- unit tests for each fault class: crash/evacuate/
  restart, sensor stuck/drift/noise/dropout with quarantine and
  restore, cooling derates ramping ambients, circuit trips zeroing
  subtree budgets, and the plant-event record.
"""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import WillowConfig
from repro.core.controller import run_willow
from repro.core.events import MigrationCause
from repro.core.state import SleepState
from repro.experiments.common import hot_zone_overrides
from repro.plant_faults import (
    SENSOR_DRIFT,
    SENSOR_DROPOUT,
    SENSOR_NOISE,
    SENSOR_STUCK,
    CircuitTrip,
    CoolingDegradation,
    PlantFaultSchedule,
    SensorFault,
    SensorValidatorConfig,
    ServerCrash,
    random_plant_schedule,
    run_resilient,
)
from repro.topology.builders import build_balanced, build_paper_simulation

T_LIMIT = WillowConfig().thermal.t_limit


def _server_series(collector, attr):
    return np.array([getattr(s, attr) for s in collector.server_samples])


def _assert_safe(collector, t_ceiling=T_LIMIT):
    """The two invariants every degraded run must keep.

    In the default ``window_reset`` mode the ceiling is ``T_limit``
    itself.  Integrated mode legitimately overshoots ``T_limit``
    between allocation windows even with a perfect plant, so those
    tests pass the ideal (fault-free) run's peak as the ceiling: faults
    must never make the thermal trajectory worse than ideal.
    """
    temps = _server_series(collector, "temperature")
    budgets = _server_series(collector, "budget")
    assert temps.max() <= t_ceiling + 1e-6
    assert budgets.min() >= 0.0


# ---------------------------------------------------------------------------
# Equivalence: an all-healthy plant is the scalar controller, bit for bit.
# ---------------------------------------------------------------------------
class HealthyEquivalenceContract:
    """Shared assertions; subclasses fix the thermal mode."""

    KW = dict(
        target_utilization=0.95,
        n_ticks=60,
        seed=7,
        ambient_overrides=hot_zone_overrides(),
    )
    MODE = "window_reset"

    @pytest.fixture(scope="class")
    def pair(self):
        config = WillowConfig(thermal_mode=self.MODE)
        _, ideal = run_willow(config=config, **self.KW)
        controller, resilient = run_resilient(
            config=WillowConfig(thermal_mode=self.MODE),
            plant_faults=PlantFaultSchedule(),
            **self.KW,
        )
        return ideal, resilient, controller

    @pytest.mark.parametrize(
        "attr", ["power", "temperature", "budget", "demand", "utilization"]
    )
    def test_server_series_bit_identical(self, pair, attr):
        ideal, resilient, _ = pair
        a, b = _server_series(ideal, attr), _server_series(resilient, attr)
        assert a.shape == b.shape
        assert np.array_equal(a, b), f"{attr} differs bit-wise"

    def test_sleep_states_identical(self, pair):
        ideal, resilient, _ = pair
        assert [s.asleep for s in ideal.server_samples] == [
            s.asleep for s in resilient.server_samples
        ]

    def test_migrations_identical(self, pair):
        ideal, resilient, _ = pair
        key = lambda m: (m.time, m.vm_id, m.src_id, m.dst_id, m.cause)
        assert [key(m) for m in ideal.migrations] == [
            key(m) for m in resilient.migrations
        ]
        assert len(ideal.migrations) > 0  # the run must exercise the path

    def test_message_multiset_identical(self, pair):
        ideal, resilient, _ = pair
        key = lambda m: (m.time, m.link, m.upward)
        assert Counter(map(key, ideal.messages)) == Counter(
            map(key, resilient.messages)
        )

    def test_no_plant_events_or_evacuations(self, pair):
        _, resilient, controller = pair
        assert resilient.plant_event_counts() == {}
        assert resilient.migration_count(MigrationCause.EVACUATION) == 0
        assert all(
            controller.sensors.trusted(sid) for sid in controller.servers
        )

    def test_drops_identical(self, pair):
        ideal, resilient, _ = pair
        key = lambda d: (d.time, d.node_id, d.vm_id, d.power)
        assert [key(d) for d in ideal.drops] == [
            key(d) for d in resilient.drops
        ]


class TestHealthyEquivalenceWindowReset(HealthyEquivalenceContract):
    MODE = "window_reset"


class TestHealthyEquivalenceIntegrated(HealthyEquivalenceContract):
    MODE = "integrated"


# ---------------------------------------------------------------------------
# Safety under arbitrary seeded fault schedules.
# ---------------------------------------------------------------------------
class TestFaultSafetyProperties:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_fault_runs_stay_safe(self, seed):
        tree = build_balanced([3, 3])
        n_ticks = 24
        schedule = random_plant_schedule(
            tree,
            seed=seed,
            horizon_ticks=n_ticks,
            n_crashes=2,
            n_sensor_faults=3,
            n_cooling_events=2,
            n_circuit_trips=1,
            min_duration=3,
            max_duration=8,
        )
        controller, collector = run_resilient(
            tree=tree,
            plant_faults=schedule,
            outside_temp=45.0,
            target_utilization=0.8,
            n_ticks=n_ticks,
            seed=seed,
        )
        _assert_safe(collector)
        assert all(
            s.thermal.violations == 0 for s in controller.servers.values()
        )

    @settings(max_examples=4, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        outside=st.floats(min_value=20.0, max_value=60.0),
    )
    def test_total_cooling_failure_stays_safe(self, seed, outside):
        """Full-facility CRAC failure: thermal shutdowns, zero violations."""
        tree = build_balanced([3, 3])
        n_ticks = 20
        schedule = PlantFaultSchedule(
            cooling=(
                CoolingDegradation(3, 14, derate=1.0, ramp_ticks=2),
            )
        )
        controller, collector = run_resilient(
            tree=tree,
            plant_faults=schedule,
            outside_temp=outside,
            target_utilization=0.8,
            n_ticks=n_ticks,
            seed=seed,
        )
        _assert_safe(collector)
        assert all(
            s.thermal.violations == 0 for s in controller.servers.values()
        )

    def test_paper_fleet_survives_everything(self):
        """The kitchen-sink run on the full 18-server topology."""
        tree = build_paper_simulation()
        n_ticks = 48
        schedule = random_plant_schedule(
            tree,
            seed=11,
            horizon_ticks=n_ticks,
            n_crashes=4,
            n_sensor_faults=6,
            n_cooling_events=3,
            n_circuit_trips=2,
        )
        controller, collector = run_resilient(
            tree=tree,
            plant_faults=schedule,
            outside_temp=48.0,
            target_utilization=0.9,
            n_ticks=n_ticks,
            seed=11,
        )
        _assert_safe(collector)
        counts = collector.plant_event_counts()
        assert counts.get("server_crash", 0) >= 1
        assert counts.get("sensor_quarantine", 0) >= 1


# ---------------------------------------------------------------------------
# Crash / evacuation / restart mechanics.
# ---------------------------------------------------------------------------
class TestCrashAndEvacuation:
    def _run(self, schedule, n_ticks=24, **kwargs):
        kwargs.setdefault("target_utilization", 0.5)
        return run_resilient(
            tree=build_balanced([3, 3]),
            plant_faults=schedule,
            n_ticks=n_ticks,
            seed=2,
            **kwargs,
        )

    def test_crashed_server_draws_nothing(self):
        victim_tree = build_balanced([3, 3])
        victim = victim_tree.servers()[0].node_id
        schedule = PlantFaultSchedule(crashes=(ServerCrash(victim, 4, 12),))
        controller, collector = run_resilient(
            tree=victim_tree,
            plant_faults=schedule,
            target_utilization=0.5,
            n_ticks=24,
            seed=2,
        )
        power = collector.server_series(victim, "power")
        assert np.all(power[4:12] == 0.0)
        counts = collector.plant_event_counts()
        assert counts["server_crash"] == 1
        assert counts["server_restart"] == 1

    def test_vms_are_evacuated_and_crash_events_recorded(self):
        tree = build_balanced([3, 3])
        victim = tree.servers()[0].node_id
        schedule = PlantFaultSchedule(crashes=(ServerCrash(victim, 4, 16),))
        controller, collector = run_resilient(
            tree=tree,
            plant_faults=schedule,
            target_utilization=0.3,  # plenty of surplus to evacuate into
            n_ticks=24,
            seed=2,
        )
        evacs = collector.migrations_by_cause(MigrationCause.EVACUATION)
        assert evacs, "stranded VMs must be evacuated"
        assert all(m.src_id == victim for m in evacs)
        # Once evacuated the victim hosts nothing until restart.
        assert not controller.servers[victim].vms or all(
            vm.host_id == victim
            for vm in controller.servers[victim].vms.values()
        )

    def test_restart_pays_wake_latency(self):
        tree = build_balanced([3, 3])
        victim = tree.servers()[0].node_id
        end = 12
        schedule = PlantFaultSchedule(crashes=(ServerCrash(victim, 4, end),))
        controller, collector = run_resilient(
            tree=tree,
            # No consolidation: it could legitimately re-drain the
            # freshly restarted (now empty) server and mask the wake.
            config=WillowConfig(consolidation_enabled=False),
            plant_faults=schedule,
            target_utilization=0.5,
            n_ticks=24,
            seed=2,
        )
        config = controller.config
        asleep = collector.server_series(victim, "asleep").astype(bool)
        # FAILED and WAKING both sample as not-awake; the server must
        # stay not-awake for wake_latency_ticks after the crash window.
        assert np.all(asleep[end : end + config.wake_latency_ticks])
        assert not asleep[end + config.wake_latency_ticks]
        assert controller.servers[victim].failed_ticks > 0

    def test_fail_repair_state_machine(self):
        tree = build_balanced([2])
        _, collector = run_willow(tree=tree, n_ticks=1, seed=0)
        # Direct unit check on the runtime methods.
        from repro.core.state import ServerRuntime

        runtime = ServerRuntime(tree.servers()[0], WillowConfig())
        with pytest.raises(RuntimeError):
            runtime.repair()  # not failed
        runtime.fail()
        assert runtime.sleep_state is SleepState.FAILED
        assert runtime.actual_power() == 0.0
        runtime.repair()
        assert runtime.sleep_state is SleepState.WAKING


# ---------------------------------------------------------------------------
# Sensor faults, validation and quarantine.
# ---------------------------------------------------------------------------
class TestSensorFaults:
    def _run_with_fault(self, kind, magnitude=0.0, n_ticks=24, **kwargs):
        tree = build_balanced([3, 3])
        victim = tree.servers()[1].node_id
        schedule = PlantFaultSchedule(
            sensor_faults=(
                SensorFault(victim, 4, 14, kind=kind, magnitude=magnitude),
            )
        )
        controller, collector = run_resilient(
            tree=tree,
            plant_faults=schedule,
            target_utilization=0.7,
            n_ticks=n_ticks,
            seed=3,
            **kwargs,
        )
        return victim, controller, collector

    @pytest.mark.parametrize(
        "kind,magnitude",
        [
            (SENSOR_DROPOUT, 0.0),
            (SENSOR_DRIFT, 2.0),
            (SENSOR_NOISE, 8.0),
        ],
    )
    def test_lying_sensor_is_quarantined_and_restored(self, kind, magnitude):
        victim, controller, collector = self._run_with_fault(kind, magnitude)
        counts = collector.plant_event_counts()
        assert counts.get("sensor_quarantine", 0) >= 1
        assert counts.get("sensor_restore", 0) >= 1
        events = collector.plant_events_for(victim)
        kinds = [e.kind for e in events]
        assert kinds.index("sensor_quarantine") < kinds.index("sensor_restore")
        # By the end of the run trust is re-established.
        assert controller.sensors.trusted(victim)
        _assert_safe(collector)

    def test_stuck_sensor_in_integrated_mode_is_caught(self):
        # Stuck-at freezes the reading while the true temperature moves;
        # the residual against the open-loop RC prediction flags it.
        victim, controller, collector = self._run_with_fault(
            SENSOR_STUCK, config=WillowConfig(thermal_mode="integrated")
        )
        counts = collector.plant_event_counts()
        assert counts.get("sensor_quarantine", 0) >= 1
        # Integrated mode overshoots T_limit between allocations even
        # with a perfect plant; the fault must not make that worse.
        _, ideal = run_willow(
            tree=build_balanced([3, 3]),
            config=WillowConfig(thermal_mode="integrated"),
            target_utilization=0.7,
            n_ticks=24,
            seed=3,
        )
        ideal_peak = max(s.temperature for s in ideal.server_samples)
        _assert_safe(collector, t_ceiling=ideal_peak)

    def test_quarantined_server_runs_open_loop_conservatively(self):
        """While quarantined, the believed cap never exceeds the true cap."""
        tree = build_balanced([3, 3])
        victim = tree.servers()[0].node_id
        schedule = PlantFaultSchedule(
            sensor_faults=(
                SensorFault(victim, 4, 20, kind=SENSOR_DRIFT, magnitude=3.0),
            )
        )
        controller, collector = run_resilient(
            tree=tree,
            plant_faults=schedule,
            target_utilization=0.7,
            n_ticks=24,
            seed=3,
        )
        server = controller.servers[victim]
        if not controller.sensors.trusted(victim):
            believed = controller._server_cap(server)
            assert believed <= server.hard_cap() + 1e-9
        _assert_safe(collector)

    def test_validator_config_validation(self):
        with pytest.raises(ValueError):
            SensorValidatorConfig(max_rate=0.0)
        with pytest.raises(ValueError):
            SensorValidatorConfig(residual_tol=-1.0)
        with pytest.raises(ValueError):
            SensorValidatorConfig(quarantine_ticks=0)
        with pytest.raises(ValueError):
            SensorValidatorConfig(uncertainty_margin=-1.0)


# ---------------------------------------------------------------------------
# Cooling degradation and thermal shutdown.
# ---------------------------------------------------------------------------
class TestCoolingDegradation:
    def test_zone_ambient_ramps_and_recovers(self):
        tree = build_balanced([3, 3])
        zone = tree.root.children[0]
        schedule = PlantFaultSchedule(
            cooling=(
                CoolingDegradation(
                    4, 12, derate=0.6, zone_id=zone.node_id, ramp_ticks=3
                ),
            )
        )
        controller, collector = run_resilient(
            tree=tree,
            plant_faults=schedule,
            outside_temp=45.0,
            target_utilization=0.5,
            n_ticks=24,
            seed=4,
        )
        in_zone = {leaf.node_id for leaf in tree.subtree_leaves(zone)}
        base = WillowConfig().thermal.t_ambient
        for sid, server in controller.servers.items():
            # After the ramp-down completes everyone is back at base.
            assert server.thermal_params.t_ambient == pytest.approx(base)
        # During the event, in-zone temperatures ran hotter than the
        # out-zone ones at comparable load.
        counts = collector.plant_event_counts()
        assert counts["cooling_degraded"] == 1
        assert counts["cooling_restored"] == 1
        _assert_safe(collector)
        # Out-of-zone servers never saw their ambient move.
        out_zone = set(controller.servers) - in_zone
        for sid in out_zone:
            assert not [
                e
                for e in collector.plant_events_for(sid)
                if e.kind == "thermal_shutdown"
            ]

    def test_extreme_heat_triggers_shutdown_not_violation(self):
        tree = build_balanced([3, 3])
        schedule = PlantFaultSchedule(
            cooling=(CoolingDegradation(3, 15, derate=1.0, ramp_ticks=1),)
        )
        controller, collector = run_resilient(
            tree=tree,
            plant_faults=schedule,
            outside_temp=65.0,
            target_utilization=0.8,
            n_ticks=28,
            seed=4,
        )
        counts = collector.plant_event_counts()
        assert counts.get("thermal_shutdown", 0) >= 1
        assert counts.get("server_recovered", 0) >= 1
        assert all(
            s.thermal.violations == 0 for s in controller.servers.values()
        )
        _assert_safe(collector)

    def test_degraded_supply_temperature_model(self):
        from repro.cooling.model import CoolingModel

        model = CoolingModel()
        assert model.degraded_supply_temperature(25.0, 40.0, 0.0) == 25.0
        full = model.degraded_supply_temperature(25.0, 40.0, 1.0)
        assert full == pytest.approx(25.0 + 15.0 + 15.0)
        half = model.degraded_supply_temperature(25.0, 40.0, 0.5)
        assert 25.0 < half < full
        # Cold outside air still leaks the return delta.
        assert model.degraded_supply_temperature(25.0, 10.0, 1.0) == 40.0
        with pytest.raises(ValueError):
            model.degraded_supply_temperature(25.0, 40.0, 1.5)
        with pytest.raises(ValueError):
            model.degraded_supply_temperature(25.0, 40.0, 0.5, return_delta=-1)


# ---------------------------------------------------------------------------
# Circuit trips.
# ---------------------------------------------------------------------------
class TestCircuitTrips:
    def test_tripped_subtree_gets_zero_budget(self):
        tree = build_balanced([3, 3])
        group = tree.root.children[1]
        start, end = 4, 14
        schedule = PlantFaultSchedule(
            trips=(CircuitTrip(group.node_id, start, end),)
        )
        controller, collector = run_resilient(
            tree=tree,
            plant_faults=schedule,
            target_utilization=0.5,
            n_ticks=24,
            seed=5,
        )
        tripped = {leaf.node_id for leaf in tree.subtree_leaves(group)}
        times = collector.times()
        for sid in tripped:
            budgets = collector.server_series(sid, "budget")
            # Budgets are zero for every tick inside the trip window.
            assert np.all(budgets[start:end] == 0.0)
            # And recover afterwards (allocation is forced on restore).
            assert budgets[end:].max() > 0.0
        counts = collector.plant_event_counts()
        assert counts["circuit_trip"] == 1
        assert counts["circuit_restore"] == 1
        _assert_safe(collector)

    def test_budgets_never_negative_under_overlapping_trips(self):
        tree = build_balanced([3, 3])
        groups = tree.root.children
        schedule = PlantFaultSchedule(
            trips=(
                CircuitTrip(groups[0].node_id, 2, 12),
                CircuitTrip(groups[1].node_id, 6, 16),
            )
        )
        _, collector = run_resilient(
            tree=tree,
            plant_faults=schedule,
            target_utilization=0.6,
            n_ticks=24,
            seed=5,
        )
        _assert_safe(collector)


# ---------------------------------------------------------------------------
# Schedule plumbing.
# ---------------------------------------------------------------------------
class TestScheduleValidation:
    def test_windows_are_half_open(self):
        crash = ServerCrash(0, 3, 6)
        assert not crash.covers(2)
        assert crash.covers(3)
        assert crash.covers(5)
        assert not crash.covers(6)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            ServerCrash(0, -1, 4)
        with pytest.raises(ValueError):
            ServerCrash(0, 5, 5)
        with pytest.raises(ValueError):
            SensorFault(0, 1, 4, kind="bogus")
        with pytest.raises(ValueError):
            SensorFault(0, 1, 4, kind=SENSOR_DRIFT, magnitude=-1.0)
        with pytest.raises(ValueError):
            CoolingDegradation(1, 4, derate=0.0)
        with pytest.raises(ValueError):
            CoolingDegradation(1, 4, derate=1.5)
        with pytest.raises(ValueError):
            CoolingDegradation(1, 4, derate=0.5, ramp_ticks=0)

    def test_cooling_ramp_shape(self):
        event = CoolingDegradation(4, 10, derate=0.8, ramp_ticks=4)
        assert event.effective_derate(3) == 0.0
        assert event.effective_derate(4) == pytest.approx(0.2)
        assert event.effective_derate(7) == pytest.approx(0.8)
        assert event.effective_derate(9) == pytest.approx(0.8)
        assert event.effective_derate(10) == pytest.approx(0.6)
        assert event.effective_derate(13) == 0.0

    def test_schedule_queries(self):
        schedule = PlantFaultSchedule(
            crashes=(ServerCrash(3, 2, 6),),
            sensor_faults=(SensorFault(4, 1, 5, kind=SENSOR_NOISE, magnitude=1.0),),
            trips=(CircuitTrip(1, 3, 7),),
        )
        assert not schedule.empty
        assert schedule.is_crashed(3, 2)
        assert not schedule.is_crashed(3, 6)
        assert not schedule.is_crashed(9, 2)
        assert len(schedule.sensor_faults_at(4, 1)) == 1
        assert schedule.sensor_faults_at(4, 5) == ()
        assert schedule.tripped_roots(3) == (1,)
        assert schedule.tripped_roots(7) == ()
        assert PlantFaultSchedule().empty

    def test_random_schedule_deterministic_and_bounded(self):
        tree = build_paper_simulation()
        kwargs = dict(
            seed=9,
            horizon_ticks=40,
            n_crashes=3,
            n_sensor_faults=4,
            n_cooling_events=2,
            n_circuit_trips=2,
        )
        a = random_plant_schedule(tree, **kwargs)
        b = random_plant_schedule(tree, **kwargs)
        assert a == b
        c = random_plant_schedule(tree, **{**kwargs, "seed": 10})
        assert a != c
        server_ids = {s.node_id for s in tree.servers()}
        internal_ids = {
            n.node_id for n in tree if not n.is_leaf and not n.is_root
        }
        for crash in a.crashes:
            assert crash.server_id in server_ids
            assert 0 <= crash.start_tick < crash.end_tick
        for fault in a.sensor_faults:
            assert fault.server_id in server_ids
        for trip in a.trips:
            assert trip.node_id in internal_ids
        for event in a.cooling:
            assert event.zone_id is None or event.zone_id in internal_ids
            assert 0.0 < event.derate <= 1.0


# ---------------------------------------------------------------------------
# Plant events land in the metrics layer.
# ---------------------------------------------------------------------------
class TestPlantEventMetrics:
    def test_events_surface_in_summary(self):
        from repro.metrics.summary import summarize_run

        tree = build_balanced([3, 3])
        victim = tree.servers()[0].node_id
        schedule = PlantFaultSchedule(crashes=(ServerCrash(victim, 2, 8),))
        _, collector = run_resilient(
            tree=tree,
            plant_faults=schedule,
            target_utilization=0.5,
            n_ticks=16,
            seed=6,
        )
        summary = summarize_run(collector)
        assert summary.plant_events["server_crash"] == 1
        assert "plant events" in summary.format()
        assert "server_crash=1" in summary.format()

    def test_events_for_node_are_time_ordered(self):
        tree = build_balanced([3, 3])
        victim = tree.servers()[0].node_id
        schedule = PlantFaultSchedule(
            crashes=(ServerCrash(victim, 2, 6), ServerCrash(victim, 10, 14))
        )
        _, collector = run_resilient(
            tree=tree,
            plant_faults=schedule,
            target_utilization=0.5,
            n_ticks=20,
            seed=6,
        )
        events = collector.plant_events_for(victim)
        times = [e.time for e in events]
        assert times == sorted(times)
        kinds = [e.kind for e in events]
        assert kinds == [
            "server_crash",
            "server_restart",
            "server_crash",
            "server_restart",
        ]

    def test_plant_event_validation(self):
        from repro.core.events import PlantEvent

        with pytest.raises(ValueError):
            PlantEvent(time=0.0, kind="", node_id=1)


# ---------------------------------------------------------------------------
# The resilience experiment.
# ---------------------------------------------------------------------------
class TestResilienceExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments.fig_resilience import run

        return run(fault_rates=(0.0, 1.0), n_ticks=30, seed=3)

    def test_registered(self):
        from repro.experiments.runner import REGISTRY

        assert "resilience" in REGISTRY

    def test_zero_rate_matches_ideal(self, result):
        cell = result.data["sweep"][0.0]
        assert cell["events"] == {}
        assert cell["evacuations"] == 0

    def test_all_cells_safe(self, result):
        for cell in result.data["sweep"].values():
            assert cell["worst_temp"] <= result.data["t_limit"] + 1e-6
            assert cell["violations"] == 0
            assert cell["min_budget"] >= 0.0

    def test_faulted_cell_degrades(self, result):
        healthy = result.data["sweep"][0.0]
        faulted = result.data["sweep"][1.0]
        assert faulted["events"], "fault rate 1.0 must inject something"
        assert faulted["dropped"] >= healthy["dropped"]
