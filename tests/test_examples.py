"""Smoke tests: every example script runs cleanly end-to-end.

Examples are the adoption surface; they must never rot.  Each is
executed in-process (import + ``main()``) with stdout captured.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_examples_directory_populated():
    assert len(EXAMPLES) >= 10


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = load_example(name)
    assert hasattr(module, "main"), f"{name} lacks a main()"
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{name} printed nothing"


def test_quickstart_reports_core_metrics(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "migrations" in out
    assert "thermal violations" in out


def test_consolidation_savings_mentions_paper_number(capsys):
    load_example("consolidation_savings").main()
    out = capsys.readouterr().out
    assert "27.5%" in out


def test_python_dash_m_repro(capsys):
    from repro.__main__ import main

    assert main(["--no-demo"]) == 0
    out = capsys.readouterr().out
    assert "Willow" in out and "experiments.runner" in out
