"""Tests for RunSummary aggregation."""

import pytest

from repro.core import run_willow
from repro.metrics import MetricsCollector, summarize_run


def test_summarize_real_run():
    controller, collector = run_willow(
        target_utilization=0.4, n_ticks=25, seed=3
    )
    summary = summarize_run(collector)
    assert summary.n_servers == 18
    assert summary.n_ticks == 25
    assert summary.mean_fleet_power > 0
    assert summary.peak_temperature <= 70.0 + 1e-6
    assert 0.0 <= summary.asleep_fraction <= 1.0
    assert 0.0 <= summary.local_migration_fraction <= 1.0
    assert (
        summary.demand_migrations + summary.consolidation_migrations
        == collector.migration_count()
    )


def test_summary_format_is_readable():
    _, collector = run_willow(target_utilization=0.4, n_ticks=10, seed=3)
    text = summarize_run(collector).format()
    assert "fleet power" in text
    assert "migrations" in text


def test_empty_collector_rejected():
    with pytest.raises(ValueError):
        summarize_run(MetricsCollector())


def test_plant_events_absent_from_healthy_summary():
    _, collector = run_willow(target_utilization=0.4, n_ticks=10, seed=3)
    summary = summarize_run(collector)
    assert summary.plant_events == {}
    assert "plant events" not in summary.format()


def test_plant_event_counts_surface_in_summary():
    from repro.core.events import PlantEvent

    _, collector = run_willow(target_utilization=0.4, n_ticks=10, seed=3)
    collector.record_plant_event(PlantEvent(2.0, "server_crash", 3))
    collector.record_plant_event(PlantEvent(4.0, "server_restart", 3))
    collector.record_plant_event(
        PlantEvent(5.0, "sensor_quarantine", 7, detail="stuck")
    )
    collector.record_plant_event(PlantEvent(6.0, "sensor_quarantine", 8))
    summary = summarize_run(collector)
    assert summary.plant_events == {
        "server_crash": 1,
        "server_restart": 1,
        "sensor_quarantine": 2,
    }
    text = summary.format()
    assert "plant events" in text
    assert "sensor_quarantine=2" in text


def test_no_migrations_yields_zero_local_fraction():
    # Single-server run can't migrate; local fraction is defined as 0.
    from repro.core import WillowConfig, WillowController
    from repro.power import constant_supply
    from repro.sim import RandomStreams
    from repro.topology import NodeKind, Tree
    from repro.workload import SIMULATION_APPS, random_placement

    tree = Tree(root_name="dc", root_level=1)
    tree.add_child(tree.root, "s", NodeKind.SERVER)
    streams = RandomStreams(0)
    placement = random_placement(
        [tree.servers()[0].node_id], SIMULATION_APPS, streams["placement"]
    )
    controller = WillowController(
        tree, WillowConfig(), constant_supply(450.0), placement, seed=0
    )
    collector = controller.run(5)
    assert summarize_run(collector).local_migration_fraction == 0.0


# ------------------------------------------------------- unmatched deficits
# Regression: the summary reported drops and plant events but not
# unmatched deficits, so degraded-but-not-dropped demand was invisible.


def test_summary_reports_unmatched_deficits():
    from repro.plant_faults import random_plant_schedule, run_resilient
    from repro.topology import build_paper_simulation

    tree = build_paper_simulation()
    schedule = random_plant_schedule(
        tree, seed=7, horizon_ticks=60, n_crashes=2, n_circuit_trips=1
    )
    _, collector = run_resilient(
        tree=tree,
        plant_faults=schedule,
        target_utilization=0.8,
        n_ticks=60,
        seed=7,
    )
    assert collector.unmatched_deficits, "run produced no unmatched deficits"
    summary = summarize_run(collector)
    assert summary.unmatched_count == len(collector.unmatched_deficits)
    assert summary.unmatched_watts == pytest.approx(
        sum(d.power for d in collector.unmatched_deficits)
    )
    text = summary.format()
    assert "unmatched deficits" in text
    assert str(summary.unmatched_count) in text


def test_summary_unmatched_zero_on_ideal_run():
    _, collector = run_willow(target_utilization=0.3, n_ticks=10, seed=3)
    summary = summarize_run(collector)
    assert summary.unmatched_count == len(collector.unmatched_deficits)
    assert summary.unmatched_watts == pytest.approx(
        collector.total_unmatched_power()
    )
    assert "unmatched deficits" in summary.format()
