"""Batched vs. scalar federation equivalence (the formal contract).

``build_federation(vectorized=True)`` promises: identical *decisions*
(cross-site transfers and migrations, per-site migrations, drops,
unmatched deficits, control messages, sleep states) and floats within
``rtol=1e-12`` of the scalar :class:`FederationCoordinator`, for N >= 2
sites under every policy, with batteries and a plant-fault site in the
mix.  A single-site neutral federation is additionally bit-exact with
the per-site vectorized controller (nothing reorders a sum across
sites).  Also covered here: the :mod:`repro.binpack.prescreen` kernels
against their scalar reference loops, and the
:class:`~repro.core.fleet.FederationFleet` view-aliasing invariants the
fused tick relies on.
"""

import numpy as np
import pytest

from repro.binpack.prescreen import (
    deficient_order,
    destination_order,
    shed_takes,
    shed_vm_order,
)
from repro.core.controller import run_willow
from repro.core.fleet import FederationFleet
from repro.core.vectorized import VectorizedWillowController
from repro.federation import (
    BatchedFederationCoordinator,
    FederationCoordinator,
    POLICIES,
    SiteSpec,
    build_federation,
    run_federation,
)
from repro.federation.vectorized import _Segment
from repro.plant_faults import random_plant_schedule
from repro.plant_faults.controller import FaultTolerantWillowController
from repro.power import Battery, renewable_supply
from repro.topology import build_paper_simulation

RTOL = 1e-12
TICKS = 96
UTIL = 0.55


def make_specs(n_sites=3, fault_site=True, battery_site=True):
    """Fresh specs per call: batteries, supply buffers and fault
    schedules are stateful, so scalar and batched runs must not share
    them."""
    specs = []
    for i in range(n_sites):
        kwargs = dict(
            name=f"site{i}",
            seed=i + 1,
            target_utilization=UTIL,
            supply=renewable_supply(
                5200.0,
                base_fraction=0.3,
                cloud_noise=0.0,
                phase=i / n_sites,
            ),
        )
        if battery_site and i == 0:
            kwargs["battery"] = Battery(1500.0, 1500.0 / 8.0, charge=0.0)
        if fault_site and i == 1 and n_sites > 2:
            tree = build_paper_simulation()
            kwargs["tree"] = tree
            kwargs["plant_faults"] = random_plant_schedule(
                tree,
                seed=11,
                horizon_ticks=TICKS,
                n_crashes=1,
                n_sensor_faults=1,
                n_circuit_trips=1,
            )
        specs.append(SiteSpec(**kwargs))
    return specs


def federation_pair(policy, **spec_kw):
    scalar = run_federation(
        make_specs(**spec_kw), n_ticks=TICKS, policy=policy
    )
    batched = run_federation(
        make_specs(**spec_kw), n_ticks=TICKS, policy=policy, vectorized=True
    )
    assert type(scalar) is FederationCoordinator
    assert isinstance(batched, BatchedFederationCoordinator)
    return scalar, batched


def _server_series(collector, attr):
    return np.array([getattr(s, attr) for s in collector.server_samples])


def assert_federations_equal(scalar, batched):
    # Grid-level decisions.
    mig_key = lambda m: (
        m.time, m.vm_id, m.src_site, m.dst_site, m.src_node, m.dst_node,
    )
    assert [mig_key(m) for m in scalar.cross_migrations] == [
        mig_key(m) for m in batched.cross_migrations
    ]
    for attr in ("demand", "src_deficit", "dst_surplus", "wan_cost_power"):
        np.testing.assert_allclose(
            [getattr(m, attr) for m in scalar.cross_migrations],
            [getattr(m, attr) for m in batched.cross_migrations],
            rtol=RTOL,
            atol=0,
        )
    assert [
        (t, [(x.src, x.dst) for x in transfers])
        for t, transfers in scalar.transfer_log
    ] == [
        (t, [(x.src, x.dst) for x in transfers])
        for t, transfers in batched.transfer_log
    ]
    np.testing.assert_allclose(
        [x.watts for _t, tr in scalar.transfer_log for x in tr],
        [x.watts for _t, tr in batched.transfer_log for x in tr],
        rtol=RTOL,
        atol=0,
    )

    # Per-site trajectories and decisions.
    for s_site, b_site in zip(scalar.sites, batched.sites):
        assert s_site.name == b_site.name
        assert s_site.vms_sent == b_site.vms_sent
        assert s_site.vms_received == b_site.vms_received
        sc, bc = s_site.collector, b_site.collector
        for attr in ("power", "temperature", "utilization", "demand", "budget"):
            a, b = _server_series(sc, attr), _server_series(bc, attr)
            assert a.shape == b.shape, (s_site.name, attr)
            np.testing.assert_allclose(
                a, b, rtol=RTOL, atol=0, err_msg=f"{s_site.name}:{attr}"
            )
        assert [s.asleep for s in sc.server_samples] == [
            s.asleep for s in bc.server_samples
        ], s_site.name
        key = lambda m: (m.time, m.vm_id, m.src_id, m.dst_id, m.cause)
        assert [key(m) for m in sc.migrations] == [
            key(m) for m in bc.migrations
        ], s_site.name
        dkey = lambda d: (d.time, d.node_id, d.vm_id)
        for series in ("drops", "unmatched_deficits"):
            assert [dkey(d) for d in getattr(sc, series)] == [
                dkey(d) for d in getattr(bc, series)
            ], (s_site.name, series)
            # A drop is ``demand - grant``: near-zero drops amplify the
            # contract's ulp-level sum reorderings into relative error,
            # so the float check gets a nanowatt absolute floor.
            np.testing.assert_allclose(
                [d.power for d in getattr(sc, series)],
                [d.power for d in getattr(bc, series)],
                rtol=RTOL,
                atol=1e-9,
            )
        mkey = lambda m: (m.time, m.link, m.upward)
        assert [mkey(m) for m in sc.messages] == [
            mkey(m) for m in bc.messages
        ], s_site.name
        for attr in ("base_traffic", "migration_traffic", "power"):
            np.testing.assert_allclose(
                [getattr(s, attr) for s in sc.switch_samples],
                [getattr(s, attr) for s in bc.switch_samples],
                rtol=RTOL,
                atol=0,
            )


# --------------------------------------------------------------- contract
class TestBatchedFederationEquivalence:
    """N=3 sites (battery site, plant-fault site, plain site) under
    every shipped policy: same decisions, same floats."""

    @pytest.mark.parametrize("policy", sorted(POLICIES))
    def test_policy_equivalent(self, policy):
        scalar, batched = federation_pair(policy)
        assert_federations_equal(scalar, batched)

    def test_shifting_actually_happens(self):
        """The contract must be exercised with real cross-site moves."""
        scalar, batched = federation_pair("proportional")
        assert scalar.cross_migrations
        assert batched.cross_migrations
        assert_federations_equal(scalar, batched)

    def test_two_site_fused_segment(self):
        """All-array federation: one segment spans every site."""
        scalar, batched = federation_pair(
            "proportional", n_sites=2, fault_site=False
        )
        assert len(batched.segments) == 1
        assert len(batched.segments[0].controllers) == 2
        assert_federations_equal(scalar, batched)


class TestSingleSiteBitExact:
    def test_matches_vectorized_controller_bit_for_bit(self):
        """A 1-site neutral federation runs the same array expressions
        as the per-site vectorized controller: bit-identical floats."""
        _, vector = run_willow(
            n_ticks=60, seed=3, target_utilization=0.5, vectorized=True
        )
        coordinator = run_federation(
            [SiteSpec(name="solo", seed=3, target_utilization=0.5)],
            n_ticks=60,
            policy="neutral",
            vectorized=True,
        )
        federated = coordinator.sites[0].collector
        for attr in ("power", "temperature", "utilization", "demand", "budget"):
            a = _server_series(vector, attr)
            b = _server_series(federated, attr)
            assert np.array_equal(a, b), f"{attr} differs bit-wise"
        key = lambda m: (m.time, m.vm_id, m.src_id, m.dst_id, m.cause)
        assert [key(m) for m in vector.migrations] == [
            key(m) for m in federated.migrations
        ]


# ------------------------------------------------------------- structure
class TestSegmentPartitioning:
    def test_fault_site_splits_segments(self):
        coordinator = build_federation(
            make_specs(n_sites=3), n_ticks=TICKS, vectorized=True
        )
        # site1 carries the fault schedule: scalar island between two
        # single-site segments.
        assert isinstance(
            coordinator.sites[1].controller, FaultTolerantWillowController
        )
        assert len(coordinator.segments) == 2
        assert [
            seg.global_idx for seg in coordinator.segments
        ] == [[0], [2]]
        plan_kinds = [
            "segment" if isinstance(part, _Segment) else "site"
            for part in coordinator._plan
        ]
        assert plan_kinds == ["segment", "site", "segment"]

    def test_all_array_sites_one_segment(self):
        coordinator = build_federation(
            make_specs(n_sites=3, fault_site=False),
            n_ticks=TICKS,
            vectorized=True,
        )
        assert len(coordinator.segments) == 1
        assert coordinator.segments[0].global_idx == [0, 1, 2]
        assert coordinator.fed_fleet.n == sum(
            s.controller.fleet.n for s in coordinator.sites
        )


class TestFederationFleetAliasing:
    """The fused tick writes block arrays; per-site code must see the
    same memory through the site views (and vice versa)."""

    @pytest.fixture()
    def fed(self):
        coordinator = build_federation(
            make_specs(n_sites=2, fault_site=False),
            n_ticks=8,
            vectorized=True,
        )
        return coordinator.fed_fleet, [
            s.controller.fleet for s in coordinator.sites
        ]

    def test_views_share_memory(self, fed):
        block, fleets = fed
        for name in ("raw", "served", "budget", "temperature", "awake"):
            for fleet in fleets:
                assert np.shares_memory(
                    getattr(block, name), getattr(fleet, name)
                ), name

    def test_smoother_lanes_share_memory(self, fed):
        block, fleets = fed
        for fleet in fleets:
            assert np.shares_memory(block.smoother_values, fleet.smoother.values)
            assert np.shares_memory(block.smoother_primed, fleet.smoother.primed)

    def test_site_update_lands_in_block(self, fed):
        block, fleets = fed
        obs = np.full(fleets[0].n, 123.0)
        fleets[0].smoother.update(obs, mask=np.ones(fleets[0].n, dtype=bool))
        assert np.all(block.smoother_values[: fleets[0].n] == 123.0)

    def test_site_sums_fold_left_to_right(self, fed):
        block, fleets = fed
        values = np.arange(block.n, dtype=float) * 0.1
        sums = block.site_sums(values)
        assert len(sums) == 2
        for k, sl in enumerate(block.site_slices):
            assert sums[k] == sum(values[sl].tolist())


# ------------------------------------------------------- prescreen kernels
def _ref_shed_takes(demands, raw, goal, directive, eps):
    remaining = raw
    left = directive
    out = []
    for k, d in enumerate(demands):
        if remaining <= goal + eps or left <= eps:
            break
        if d <= 0.0:
            continue
        if d > left + eps:
            continue
        out.append(k)
        remaining -= d
        left -= d
    return out, left


class TestPrescreenKernels:
    EPS = 1e-9

    def test_shed_vm_order_matches_sorted_with_ties(self):
        demands = np.array([5.0, 2.0, 5.0, 0.0, 7.0, 2.0])
        vm_ids = np.array([11, 3, 2, 9, 40, 1])
        order = shed_vm_order(demands, vm_ids)
        ref = sorted(
            range(len(demands)),
            key=lambda i: (-demands[i], vm_ids[i]),
        )
        assert order.tolist() == ref

    def test_shed_takes_matches_reference(self):
        rng = np.random.default_rng(17)
        for _ in range(300):
            n = int(rng.integers(0, 9))
            demands = np.round(rng.uniform(-1.0, 6.0, n), 3)
            demands[::-1].sort()
            raw = float(rng.uniform(0.0, 20.0))
            goal = float(rng.uniform(0.0, raw))
            directive = float(rng.uniform(0.0, 12.0))
            got = shed_takes(demands, raw, goal, directive, self.EPS)
            want = _ref_shed_takes(demands, raw, goal, directive, self.EPS)
            assert got[0] == want[0], (demands, raw, goal, directive)
            assert got[1] == want[1]

    def test_shed_takes_oversize_skip_falls_back(self):
        # First VM overshoots the directive; the scalar loop skips it
        # and takes the next one -- the prefix rule alone would not.
        demands = np.array([10.0, 3.0, 2.0])
        takes, left = shed_takes(demands, 20.0, 1.0, 6.0, self.EPS)
        assert takes == [1, 2]
        assert left == 6.0 - 3.0 - 2.0

    def test_deficient_order_matches_sorted(self):
        rng = np.random.default_rng(5)
        n = 40
        raw = rng.uniform(50.0, 150.0, n)
        budget = rng.uniform(50.0, 150.0, n)
        awake = rng.random(n) > 0.2
        node_ids = rng.permutation(n) + 100
        rows = deficient_order(awake, raw, budget, node_ids, self.EPS)
        ref = sorted(
            (
                i
                for i in range(n)
                if awake[i] and raw[i] > budget[i] + self.EPS
            ),
            key=lambda i: (budget[i] - raw[i], node_ids[i]),
        )
        assert rows.tolist() == ref

    def test_destination_order_matches_scalar_screen(self):
        rng = np.random.default_rng(6)
        n = 40
        raw = rng.uniform(50.0, 150.0, n)
        budget = rng.uniform(50.0, 150.0, n)
        awake = rng.random(n) > 0.2
        squeezed = rng.random(n) > 0.7
        node_ids = rng.permutation(n) + 7
        capacity = budget - raw - 5.0 - 2.0
        order, caps = destination_order(
            awake, raw, budget, squeezed, capacity, node_ids, self.EPS
        )
        ref = sorted(
            (
                i
                for i in range(n)
                if awake[i]
                and not raw[i] > budget[i] + self.EPS
                and not squeezed[i]
                and capacity[i] > self.EPS
            ),
            key=lambda i: node_ids[i],
        )
        assert order.tolist() == ref
        assert caps.tolist() == [capacity[i] for i in ref]
