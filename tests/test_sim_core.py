"""Tests for the discrete-event simulation kernel (Environment)."""

import pytest

from repro.sim import Environment, SimulationError, Timeout


def test_clock_starts_at_initial_time():
    assert Environment().now == 0.0
    assert Environment(initial_time=5.0).now == 5.0


def test_timeout_fires_at_right_time():
    env = Environment()
    fired = []
    env.timeout(3.0).add_callback(lambda e: fired.append(env.now))
    env.run()
    assert fired == [3.0]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_events_fire_in_time_order():
    env = Environment()
    order = []
    for delay in (5.0, 1.0, 3.0):
        env.timeout(delay, value=delay).add_callback(
            lambda e: order.append(e.value)
        )
    env.run()
    assert order == [1.0, 3.0, 5.0]


def test_simultaneous_events_fire_fifo():
    env = Environment()
    order = []
    for tag in range(5):
        env.timeout(1.0, value=tag).add_callback(
            lambda e: order.append(e.value)
        )
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_run_until_advances_clock_exactly():
    env = Environment()
    env.timeout(2.0)
    env.run(until=10.0)
    assert env.now == 10.0


def test_run_until_excludes_later_events():
    env = Environment()
    fired = []
    env.timeout(5.0).add_callback(lambda e: fired.append("late"))
    env.timeout(1.0).add_callback(lambda e: fired.append("early"))
    env.run(until=3.0)
    assert fired == ["early"]
    env.run()  # finish the rest
    assert fired == ["early", "late"]


def test_run_until_in_past_rejected():
    env = Environment()
    env.timeout(1.0)
    env.run()
    with pytest.raises(SimulationError):
        env.run(until=0.5)


def test_step_without_events_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(4.0)
    env.timeout(2.0)
    assert env.peek() == 2.0


def test_event_succeed_value_and_flags():
    env = Environment()
    event = env.event()
    assert not event.triggered
    event.succeed("payload")
    assert event.triggered and event.ok
    assert event.value == "payload"
    env.run()
    assert event.processed


def test_event_cannot_trigger_twice():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(RuntimeError):
        event.succeed(2)
    with pytest.raises(RuntimeError):
        event.fail(ValueError("x"))


def test_event_value_before_trigger_raises():
    env = Environment()
    event = env.event()
    with pytest.raises(RuntimeError):
        _ = event.value
    with pytest.raises(RuntimeError):
        _ = event.ok


def test_fail_requires_exception_instance():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_unhandled_failed_event_propagates():
    env = Environment()
    env.event().fail(RuntimeError("boom"))
    with pytest.raises(RuntimeError, match="boom"):
        env.run()


def test_callback_on_processed_event_runs_immediately():
    env = Environment()
    event = env.timeout(0.0, value=7)
    env.run()
    seen = []
    event.add_callback(lambda e: seen.append(e.value))
    assert seen == [7]


def test_call_at_runs_at_absolute_time():
    env = Environment(initial_time=10.0)
    hits = []
    env.call_at(12.5, lambda: hits.append(env.now))
    env.run()
    assert hits == [12.5]


def test_call_at_in_past_rejected():
    env = Environment(initial_time=10.0)
    with pytest.raises(SimulationError):
        env.call_at(9.0, lambda: None)


def test_call_every_periodic_ticks():
    env = Environment()
    hits = []
    env.call_every(2.0, lambda: hits.append(env.now))
    env.run(until=7.0)
    assert hits == [2.0, 4.0, 6.0]


def test_call_every_with_start():
    env = Environment()
    hits = []
    env.call_every(3.0, lambda: hits.append(env.now), start=1.0)
    env.run(until=8.0)
    assert hits == [1.0, 4.0, 7.0]


def test_call_every_validates_interval():
    env = Environment()
    with pytest.raises(SimulationError):
        env.call_every(0.0, lambda: None)


def test_determinism_two_identical_runs():
    def build_and_run():
        env = Environment()
        log = []
        for i, delay in enumerate([2.0, 1.0, 1.0, 3.0]):
            env.timeout(delay, value=i).add_callback(
                lambda e: log.append((env.now, e.value))
            )
        env.run()
        return log

    assert build_and_run() == build_and_run()


def test_timeout_is_event_subclass():
    env = Environment()
    assert isinstance(env.timeout(1.0), Timeout)
