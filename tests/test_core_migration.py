"""Unit tests for the demand-side migration planner (Sec. IV-E)."""

import pytest

from repro.core import NodeRuntime, ServerRuntime, WillowConfig
from repro.core.migration import MigrationPlanner
from repro.topology import NodeKind, Tree
from repro.workload import AppType, VM


def build_cluster(config, groups=2, per_group=2):
    """A 2-level tree with runtimes; returns (tree, servers, internals)."""
    tree = Tree(root_name="dc", root_level=2)
    for g in range(groups):
        group = tree.add_child(tree.root, f"g{g}", NodeKind.ENCLOSURE)
        for s in range(per_group):
            tree.add_child(group, f"s{g}{s}", NodeKind.SERVER)
    servers = {
        leaf.node_id: ServerRuntime(leaf, config) for leaf in tree.servers()
    }
    internals = {
        node.node_id: NodeRuntime(node, config)
        for node in tree
        if not node.is_leaf
    }
    return tree, servers, internals


def load(server, demands, start_id=0):
    """Host VMs with the given current demands on ``server``."""
    app = AppType("app", 1.0)
    for offset, demand in enumerate(demands):
        vm = VM(
            vm_id=start_id + offset, app=app, host_id=server.node.node_id
        )
        vm.current_demand = float(demand)
        server.vms[vm.vm_id] = vm
    server.observe_demand()


def set_budgets(servers, internals, budgets):
    """Assign per-server budgets by name and sum them up the tree."""
    by_name = {s.node.name: s for s in servers.values()}
    for name, budget in budgets.items():
        by_name[name].set_budget(budget)
    for runtime in internals.values():
        total = 0.0
        for leaf in runtime.node.leaves():
            total += servers[leaf.node_id].budget
        runtime.set_budget(total)
        runtime.observe_demand(
            sum(servers[leaf.node_id].smoothed_demand for leaf in runtime.node.leaves())
        )


@pytest.fixture
def config():
    # static 30 W, margin 10 W, cost 5 W: numbers below are chosen to be
    # easy to reason about.
    return WillowConfig(p_min=10.0, migration_cost_power=5.0)


def test_no_deficit_no_moves(config):
    tree, servers, internals = build_cluster(config)
    for i, server in enumerate(servers.values()):
        load(server, [50.0], start_id=i * 10)
        server.set_budget(200.0)
    plan = MigrationPlanner(tree, config).plan(servers, internals)
    assert plan.moves == [] and plan.dropped == []


def test_local_migration_preferred(config):
    tree, servers, internals = build_cluster(config)
    s00, s01, s10, s11 = [servers[leaf.node_id] for leaf in tree.servers()]
    load(s00, [100.0, 60.0], start_id=0)  # demand 30+160=190
    load(s01, [10.0], start_id=10)
    load(s10, [10.0], start_id=20)
    load(s11, [10.0], start_id=30)
    set_budgets(
        servers,
        internals,
        {"s00": 120.0, "s01": 200.0, "s10": 200.0, "s11": 200.0},
    )
    plan = MigrationPlanner(tree, config).plan(servers, internals)
    assert len(plan.moves) >= 1
    # The local sibling (s01) has plenty of surplus: everything shed
    # must land there, not across the tree.
    for move in plan.moves:
        assert move.dst.name == "s01"
        assert move.local


def test_nonlocal_when_local_siblings_full(config):
    tree, servers, internals = build_cluster(config)
    s00, s01, s10, s11 = [servers[leaf.node_id] for leaf in tree.servers()]
    load(s00, [100.0], start_id=0)  # demand 130
    load(s01, [150.0], start_id=10)  # sibling full: demand 180 = budget
    load(s10, [10.0], start_id=20)  # distant surplus
    load(s11, [10.0], start_id=30)
    set_budgets(
        servers,
        internals,
        {"s00": 100.0, "s01": 180.0, "s10": 200.0, "s11": 200.0},
    )
    plan = MigrationPlanner(tree, config).plan(servers, internals)
    assert len(plan.moves) == 1
    move = plan.moves[0]
    assert move.dst.name in ("s10", "s11")
    assert not move.local


def test_margin_respected_at_target(config):
    tree, servers, internals = build_cluster(config)
    s00, s01, s10, s11 = [servers[leaf.node_id] for leaf in tree.servers()]
    load(s00, [100.0], start_id=0)  # deficit on s00
    load(s01, [55.0], start_id=10)  # surplus 100-85=15 < item+margin
    load(s10, [150.0], start_id=20)
    load(s11, [150.0], start_id=30)
    set_budgets(
        servers,
        internals,
        {"s00": 50.0, "s01": 100.0, "s10": 180.0, "s11": 180.0},
    )
    plan = MigrationPlanner(tree, config).plan(servers, internals)
    # s01's capacity = 100 - 85 - 10 - 5 = 0: can't accept the 100 W VM;
    # nobody else can either -> demand dropped.
    assert plan.moves == []
    assert len(plan.dropped) == 1
    assert plan.dropped[0][1].name == "s00"


def test_sheds_largest_vms_first(config):
    tree, servers, internals = build_cluster(config)
    s00, s01, s10, s11 = [servers[leaf.node_id] for leaf in tree.servers()]
    load(s00, [80.0, 20.0, 5.0], start_id=0)  # demand 135
    load(s01, [5.0], start_id=10)
    load(s10, [5.0], start_id=20)
    load(s11, [5.0], start_id=30)
    set_budgets(
        servers,
        internals,
        {"s00": 100.0, "s01": 300.0, "s10": 300.0, "s11": 300.0},
    )
    plan = MigrationPlanner(tree, config).plan(servers, internals)
    # Deficit 35, goal demand <= 90: shedding the 80 W VM suffices.
    assert len(plan.moves) == 1
    assert plan.moves[0].vm.current_demand == 80.0


def test_unidirectional_rule_excludes_squeezed_targets(config):
    tree, servers, internals = build_cluster(config)
    s00, s01, s10, s11 = [servers[leaf.node_id] for leaf in tree.servers()]
    load(s00, [100.0], start_id=0)
    load(s01, [20.0], start_id=10)  # sibling has surplus but is squeezed
    load(s10, [20.0], start_id=20)
    load(s11, [20.0], start_id=30)
    set_budgets(
        servers,
        internals,
        {"s00": 80.0, "s01": 200.0, "s10": 200.0, "s11": 200.0},
    )
    # Simulate a supply event that *reduced* s01's budget below its
    # smoothed demand: it must not receive migrations.
    s01.set_budget(40.0)  # smoothed demand is 50, so s01 is squeezed
    plan = MigrationPlanner(tree, config).plan(servers, internals)
    assert all(move.dst.name != "s01" for move in plan.moves)


def test_budget_reduced_but_not_squeezed_still_receives(config):
    tree, servers, internals = build_cluster(config)
    s00, s01, s10, s11 = [servers[leaf.node_id] for leaf in tree.servers()]
    load(s00, [100.0], start_id=0)
    load(s01, [20.0], start_id=10)
    load(s10, [200.0], start_id=20)
    load(s11, [200.0], start_id=30)
    set_budgets(
        servers,
        internals,
        {"s00": 80.0, "s01": 300.0, "s10": 230.0, "s11": 230.0},
    )
    # s01's budget shrank but still covers its demand comfortably.
    s01.set_budget(250.0)
    plan = MigrationPlanner(tree, config).plan(servers, internals)
    assert len(plan.moves) == 1
    assert plan.moves[0].dst.name == "s01"


def test_squeezed_ancestor_excludes_whole_subtree(config):
    tree, servers, internals = build_cluster(config)
    s00, s01, s10, s11 = [servers[leaf.node_id] for leaf in tree.servers()]
    load(s00, [100.0], start_id=0)
    load(s01, [200.0], start_id=10)  # local sibling full
    load(s10, [20.0], start_id=20)  # distant group has surplus...
    load(s11, [20.0], start_id=30)
    set_budgets(
        servers,
        internals,
        {"s00": 80.0, "s01": 230.0, "s10": 200.0, "s11": 200.0},
    )
    # ...but the distant group's PMU was squeezed by the supply event.
    g1 = tree.by_name("g1")
    internals[g1.node_id].smoothed_demand = 500.0
    internals[g1.node_id].set_budget(300.0)  # below aggregated demand
    plan = MigrationPlanner(tree, config).plan(servers, internals)
    assert plan.moves == []
    assert len(plan.dropped) == 1


def test_sleeping_server_not_a_target(config):
    tree, servers, internals = build_cluster(config)
    s00, s01, s10, s11 = [servers[leaf.node_id] for leaf in tree.servers()]
    load(s00, [100.0], start_id=0)
    load(s10, [20.0], start_id=20)
    load(s11, [20.0], start_id=30)
    s01.observe_demand()
    set_budgets(
        servers,
        internals,
        {"s00": 80.0, "s01": 300.0, "s10": 60.0, "s11": 60.0},
    )
    s01.sleep()
    plan = MigrationPlanner(tree, config).plan(servers, internals)
    assert all(move.dst.name != "s01" for move in plan.moves)


def test_deficient_server_not_a_target(config):
    tree, servers, internals = build_cluster(config)
    s00, s01, s10, s11 = [servers[leaf.node_id] for leaf in tree.servers()]
    load(s00, [100.0], start_id=0)
    load(s01, [100.0], start_id=10)
    load(s10, [5.0], start_id=20)
    load(s11, [5.0], start_id=30)
    set_budgets(
        servers,
        internals,
        {"s00": 80.0, "s01": 80.0, "s10": 300.0, "s11": 300.0},
    )
    plan = MigrationPlanner(tree, config).plan(servers, internals)
    for move in plan.moves:
        assert move.dst.name in ("s10", "s11")


def test_dropped_power_property(config):
    tree, servers, internals = build_cluster(config)
    s00 = servers[tree.servers()[0].node_id]
    load(s00, [100.0, 50.0], start_id=0)
    for leaf in tree.servers()[1:]:
        servers[leaf.node_id].observe_demand()
        servers[leaf.node_id].set_budget(10.0)
    set_budgets(servers, internals, {"s00": 40.0})
    plan = MigrationPlanner(tree, config).plan(servers, internals)
    assert plan.dropped_power == pytest.approx(
        sum(vm.current_demand for vm, _node in plan.dropped)
    )
    assert plan.dropped_power > 0


class TestDistributedVsFlatMatching:
    """Paper Properties 1-2: the distributed (local-first) solution is
    optimal within FFDLR's bounds; it may differ from the flat global
    solution, but not by much."""

    @staticmethod
    def _scenario(seed, local_first):
        import numpy as np

        rng = np.random.default_rng(seed)
        cfg = WillowConfig(p_min=10.0, local_first=local_first)
        tree = Tree(root_name="dc", root_level=2)
        servers = {}
        for g in range(3):
            grp = tree.add_child(tree.root, f"g{g}", NodeKind.ENCLOSURE)
            for s in range(3):
                leaf = tree.add_child(grp, f"s{g}{s}", NodeKind.SERVER)
                servers[leaf.node_id] = ServerRuntime(leaf, cfg)
        internals = {
            n.node_id: NodeRuntime(n, cfg) for n in tree if not n.is_leaf
        }
        app = AppType("a", 1.0)
        vid = 0
        for runtime in servers.values():
            for _ in range(rng.integers(2, 6)):
                vm = VM(vm_id=vid, app=app, host_id=runtime.node.node_id)
                vid += 1
                vm.current_demand = float(rng.uniform(10, 120))
                runtime.vms[vm.vm_id] = vm
            runtime.observe_demand()
            runtime.set_budget(float(rng.uniform(100, 450)))
        for runtime in internals.values():
            runtime.set_budget(
                sum(servers[l.node_id].budget for l in runtime.node.leaves())
            )
            runtime.smoothed_demand = sum(
                servers[l.node_id].smoothed_demand
                for l in runtime.node.leaves()
            )
        plan = MigrationPlanner(tree, cfg).plan(servers, internals)
        matched = sum(m.vm.current_demand for m in plan.moves)
        return matched, plan.dropped_power

    def test_locality_costs_little_matching_quality(self):
        import numpy as np

        extra_drops = []
        totals = []
        for seed in range(40):
            matched_local, dropped_local = self._scenario(seed, True)
            matched_flat, dropped_flat = self._scenario(seed, False)
            # Demand is conserved either way.
            assert matched_local + dropped_local == pytest.approx(
                matched_flat + dropped_flat, rel=1e-9
            )
            extra_drops.append(dropped_local - dropped_flat)
            totals.append(matched_local + dropped_local)
        mean_shed = float(np.mean([t for t in totals if t > 0]))
        # On average the locality preference costs < 10 % of the shed
        # demand in extra drops (FFDLR's bound keeps both near-optimal).
        assert float(np.mean(extra_drops)) < 0.10 * mean_shed
