"""Property-based tests for the packers (hypothesis).

The headline check is FFDLR's published guarantee: no more than
(3/2) OPT + 1 bins on equal-capacity instances (Friesen & Langston),
verified against the exhaustive optimum on small instances.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.binpack import (
    Bin,
    Item,
    best_fit_decreasing,
    feasible_exact,
    ffd_bin_count,
    ffdlr_pack,
    first_fit,
    first_fit_decreasing,
    optimal_bin_count,
    worst_fit,
)

sizes_strategy = st.lists(st.floats(0.01, 1.0), min_size=1, max_size=10)
capacities_strategy = st.lists(st.floats(0.1, 2.0), min_size=1, max_size=8)

ALL_PACKERS = [
    ffdlr_pack,
    first_fit,
    first_fit_decreasing,
    best_fit_decreasing,
    worst_fit,
]


@given(sizes=sizes_strategy, capacities=capacities_strategy)
@settings(max_examples=150)
@pytest.mark.parametrize("packer", ALL_PACKERS)
def test_every_packer_produces_valid_packings(packer, sizes, capacities):
    items = [Item(i, s) for i, s in enumerate(sizes)]
    bins = [Bin(j, c) for j, c in enumerate(capacities)]
    result = packer(items, bins)
    result.validate()  # no overflow, no duplication
    # Every positive item is either packed or unpacked, never lost.
    accounted = set(result.assignment) | {it.key for it in result.unpacked}
    assert accounted == {i for i, s in enumerate(sizes) if s > 0}


@given(sizes=sizes_strategy, capacities=capacities_strategy)
@settings(max_examples=100)
def test_ffdlr_unpacked_items_truly_do_not_fit_residuals(sizes, capacities):
    """After FFDLR finishes, nothing unpacked fits any residual."""
    items = [Item(i, s) for i, s in enumerate(sizes)]
    bins = [Bin(j, c) for j, c in enumerate(capacities)]
    result = ffdlr_pack(items, bins)
    for item in result.unpacked:
        assert all(not b.fits(item) for b in result.bins)


@given(
    sizes=st.lists(st.floats(0.05, 1.0), min_size=1, max_size=9),
)
@settings(max_examples=60, deadline=None)
def test_ffd_respects_friesen_langston_bound(sizes):
    """FFD bin count <= (3/2) OPT + 1 on unit-capacity instances."""
    used = ffd_bin_count(sizes, 1.0)
    optimal = optimal_bin_count(sizes, 1.0)
    assert used <= 1.5 * optimal + 1
    assert used >= optimal  # sanity: never beats the optimum


@given(
    sizes=st.lists(st.floats(0.05, 1.0), min_size=1, max_size=8),
    n_bins=st.integers(1, 8),
)
@settings(max_examples=60, deadline=None)
def test_ffdlr_matches_feasibility_oracle_when_it_packs_all(sizes, n_bins):
    """If FFDLR packs everything, the oracle agrees it is feasible."""
    items = [Item(i, s) for i, s in enumerate(sizes)]
    bins = [Bin(j, 1.0) for j in range(n_bins)]
    result = ffdlr_pack(items, bins)
    if not result.unpacked:
        assert feasible_exact(sizes, [1.0] * n_bins)


@given(
    sizes=st.lists(st.floats(0.3, 1.0), min_size=1, max_size=6),
    n_bins=st.integers(1, 6),
)
@settings(max_examples=60, deadline=None)
def test_ffdlr_on_equal_bins_uses_at_most_bound_bins(sizes, n_bins):
    """With enough equal bins available, FFDLR stays within the bound."""
    optimal = optimal_bin_count(sizes, 1.0)
    allowed = int(1.5 * optimal) + 1
    if allowed > n_bins:
        return  # not enough bins offered to make the claim
    items = [Item(i, s) for i, s in enumerate(sizes)]
    bins = [Bin(j, 1.0) for j in range(n_bins)]
    result = ffdlr_pack(items, bins)
    assert not result.unpacked
    assert result.bins_used <= allowed


@given(sizes=sizes_strategy)
@settings(max_examples=100)
def test_packed_size_conserved(sizes):
    """Total packed + unpacked size equals total offered size."""
    items = [Item(i, s) for i, s in enumerate(sizes)]
    bins = [Bin(0, 1.5), Bin(1, 1.0)]
    result = ffdlr_pack(items, bins)
    unpacked = sum(item.size for item in result.unpacked)
    assert result.packed_size + unpacked == pytest.approx(sum(sizes))
