"""Tests for network impact accounting."""

import pytest

from repro.core.events import ControlMessage, Migration, MigrationCause
from repro.metrics import MetricsCollector, SwitchSample
from repro.network import (
    max_messages_per_link,
    migration_hop_histogram,
    migration_traffic_fraction,
    switch_migration_cost,
    switch_power_by_level,
    verify_message_bound,
)
from repro.network.messages import messages_per_direction
from repro.network.paths import mean_migration_hops
from repro.power import SwitchPowerModel

MODEL = SwitchPowerModel(static_power=5.0, watts_per_unit_traffic=0.1, capacity=100.0)


def switch_sample(t, sid, level=1, base=10.0, mig=2.0):
    return SwitchSample(
        time=t,
        switch_id=sid,
        level=level,
        base_traffic=base,
        migration_traffic=mig,
        power=MODEL.power(base + mig),
    )


class TestTraffic:
    def test_fraction_of_capacity(self):
        collector = MetricsCollector()
        collector.record_switch(switch_sample(0.0, 1, mig=10.0))
        collector.record_switch(switch_sample(1.0, 1, mig=0.0))
        # 10 units over 2 samples of 100 capacity = 5 %.
        assert migration_traffic_fraction(collector, MODEL) == pytest.approx(0.05)

    def test_empty_collector(self):
        assert migration_traffic_fraction(MetricsCollector(), MODEL) == 0.0

    def test_level_filter(self):
        collector = MetricsCollector()
        collector.record_switch(switch_sample(0.0, 1, level=1, mig=10.0))
        collector.record_switch(switch_sample(0.0, 2, level=2, mig=50.0))
        level1 = migration_traffic_fraction(collector, MODEL, level=1)
        overall = migration_traffic_fraction(collector, MODEL, level=None)
        assert level1 == pytest.approx(0.10)
        assert overall == pytest.approx(0.30)

    def test_switch_power_by_level(self):
        collector = MetricsCollector()
        collector.record_switch(switch_sample(0.0, 1))
        collector.record_switch(switch_sample(1.0, 1))
        collector.record_switch(switch_sample(0.0, 2, level=2))
        powers = switch_power_by_level(collector, level=1)
        assert set(powers) == {1}
        assert powers[1] == pytest.approx(MODEL.power(12.0))

    def test_switch_migration_cost_accumulates(self):
        collector = MetricsCollector()
        collector.record_switch(switch_sample(0.0, 1, mig=10.0))
        collector.record_switch(switch_sample(1.0, 1, mig=5.0))
        costs = switch_migration_cost(collector, MODEL, level=1)
        assert costs[1] == pytest.approx(0.1 * 15.0)


class TestMessages:
    def test_bound_check(self):
        collector = MetricsCollector()
        collector.record_message(ControlMessage(0.0, link=1, upward=True))
        collector.record_message(ControlMessage(0.0, link=1, upward=False))
        assert verify_message_bound(collector, bound=2)
        collector.record_message(ControlMessage(0.0, link=1, upward=True))
        assert not verify_message_bound(collector, bound=2)
        assert max_messages_per_link(collector)[1] == 3

    def test_direction_split(self):
        collector = MetricsCollector()
        collector.record_message(ControlMessage(0.0, link=1, upward=True))
        collector.record_message(ControlMessage(0.0, link=2, upward=False))
        assert messages_per_direction(collector) == {"upward": 1, "downward": 1}

    def test_empty_collector_raises_not_vacuous_true(self):
        # An all() over zero links would be vacuously True; a run that
        # exchanged no control traffic must not "verify" Property 3.
        with pytest.raises(ValueError, match="no control messages"):
            verify_message_bound(MetricsCollector())


class TestPaths:
    def _mig(self, hops, local):
        return Migration(
            time=0.0,
            vm_id=0,
            src_id=1,
            dst_id=2,
            demand=10.0,
            cause=MigrationCause.DEMAND,
            local=local,
            hops=hops,
            cost_power=1.0,
        )

    def test_hop_histogram(self):
        collector = MetricsCollector()
        collector.migrations.extend(
            [self._mig(1, True), self._mig(1, True), self._mig(3, False)]
        )
        assert migration_hop_histogram(collector) == {1: 2, 3: 1}

    def test_mean_hops(self):
        collector = MetricsCollector()
        collector.migrations.extend([self._mig(1, True), self._mig(3, False)])
        assert mean_migration_hops(collector) == 2.0

    def test_mean_hops_nan_when_empty(self):
        import math

        assert math.isnan(mean_migration_hops(MetricsCollector()))
