"""Failure-injection and edge-case tests for the full controller.

These drive the controller through pathological conditions -- total
blackout, supply flapping, impossible workloads, degenerate trees --
and assert it neither crashes nor violates its invariants.
"""

import numpy as np
import pytest

from repro.core import WillowConfig, WillowController, run_willow
from repro.power import constant_supply, step_supply
from repro.sim import RandomStreams
from repro.topology import NodeKind, Tree, build_balanced, build_paper_simulation
from repro.workload import (
    SIMULATION_APPS,
    AppType,
    PlacementPlan,
    VM,
    random_placement,
    scale_for_target_utilization,
)


def make_controller(tree, config, supply, utilization=0.5, seed=1, **kw):
    streams = RandomStreams(seed)
    placement = random_placement(
        [s.node_id for s in tree.servers()], SIMULATION_APPS, streams["placement"]
    )
    scale_for_target_utilization(placement, config.server_model.slope, utilization)
    return WillowController(tree, config, supply, placement, seed=seed, **kw)


class TestBlackouts:
    def test_zero_supply_from_start(self):
        tree = build_paper_simulation()
        controller = make_controller(tree, WillowConfig(), constant_supply(0.0))
        collector = controller.run(20)
        # Nothing served, everything dropped, no crash, no negatives.
        for sample in collector.server_samples:
            assert sample.budget == 0.0
            assert sample.power >= 0.0
        assert collector.total_dropped_power() > 0

    def test_supply_flapping_every_window(self):
        tree = build_paper_simulation()
        segments = [
            (float(4 * i), 18 * 450.0 if i % 2 == 0 else 18 * 100.0)
            for i in range(10)
        ]
        controller = make_controller(
            tree, WillowConfig(), step_supply(segments)
        )
        collector = controller.run(40)
        # Invariants survive the flapping.
        from repro.network import verify_message_bound

        assert verify_message_bound(collector, bound=2)
        assert (
            sum(s.thermal.violations for s in controller.servers.values()) == 0
        )

    def test_recovery_after_blackout(self):
        tree = build_paper_simulation()
        supply = step_supply([(0.0, 18 * 450.0), (10.0, 0.0), (20.0, 18 * 450.0)])
        controller = make_controller(tree, WillowConfig(), supply)
        collector = controller.run(40)
        tail = [s for s in collector.server_samples if s.time >= 30]
        served_tail = sum(s.power for s in tail)
        blackout = [s for s in collector.server_samples if 12 <= s.time < 20]
        served_blackout = sum(s.power for s in blackout)
        assert served_tail > served_blackout


class TestImpossibleWorkloads:
    def test_vm_larger_than_any_budget_is_throttled_not_lost(self):
        tree = Tree(root_name="dc", root_level=1)
        tree.add_child(tree.root, "s1", NodeKind.SERVER)
        tree.add_child(tree.root, "s2", NodeKind.SERVER)
        config = WillowConfig()
        monster = AppType("monster", 5000.0)
        vms = [VM(vm_id=0, app=monster, host_id=tree.servers()[0].node_id)]
        placement = PlacementPlan(vms=vms, scale=1.0)
        controller = WillowController(
            tree, config, constant_supply(900.0), placement, seed=0
        )
        collector = controller.run(10)
        # The VM still exists on some server and was served up to caps.
        assert sum(len(s.vms) for s in controller.servers.values()) == 1
        assert collector.total_dropped_power() > 0

    def test_all_servers_in_hot_zone(self):
        tree = build_paper_simulation()
        hot = {f"server-{i}": 40.0 for i in range(1, 19)}
        controller = make_controller(
            tree,
            WillowConfig(),
            constant_supply(18 * 450.0),
            utilization=0.8,
            ambient_overrides=hot,
        )
        collector = controller.run(30)
        # Everyone capped at 300 W: temperatures pinned at/below 70.
        for server in controller.servers.values():
            assert server.hard_cap() == pytest.approx(300.0)
        temps = [s.temperature for s in collector.server_samples]
        assert max(temps) <= 70.0 + 1e-6

    def test_zero_demand_workload(self):
        tree = build_paper_simulation()
        config = WillowConfig()
        app = AppType("idle", 1e-9)
        vms = [
            VM(vm_id=i, app=app, host_id=s.node_id)
            for i, s in enumerate(tree.servers())
        ]
        placement = PlacementPlan(vms=vms, scale=1.0)
        controller = WillowController(
            tree, config, constant_supply(18 * 450.0), placement, seed=0
        )
        collector = controller.run(20)
        # Fleet idles; consolidation puts almost everything to sleep.
        asleep = [s for s in collector.server_samples if s.time > 15 and s.asleep]
        assert asleep


class TestDegenerateTopologies:
    def test_single_server_tree(self):
        tree = Tree(root_name="dc", root_level=1)
        tree.add_child(tree.root, "only", NodeKind.SERVER)
        config = WillowConfig()
        streams = RandomStreams(0)
        placement = random_placement(
            [tree.servers()[0].node_id], SIMULATION_APPS, streams["placement"]
        )
        scale_for_target_utilization(placement, config.server_model.slope, 0.5)
        controller = WillowController(
            tree, config, constant_supply(450.0), placement, seed=0
        )
        collector = controller.run(20)
        assert collector.migration_count() == 0  # nowhere to go
        assert len(collector.server_samples) == 20

    def test_deep_narrow_tree(self):
        tree = build_balanced([2, 2, 2, 2, 2])  # height 6, 32 servers
        controller = make_controller(
            tree, WillowConfig(), constant_supply(32 * 450.0)
        )
        collector = controller.run(15)
        from repro.network import verify_message_bound

        assert verify_message_bound(collector, bound=2)

    def test_tree_without_servers_rejected(self):
        tree = Tree(root_name="dc", root_level=1)
        config = WillowConfig()
        placement = PlacementPlan(
            vms=[VM(vm_id=0, app=SIMULATION_APPS[0], host_id=99)], scale=1.0
        )
        with pytest.raises(ValueError):
            WillowController(tree, config, constant_supply(100.0), placement)

    def test_vm_on_unknown_server_rejected(self):
        tree = Tree(root_name="dc", root_level=1)
        tree.add_child(tree.root, "s", NodeKind.SERVER)
        placement = PlacementPlan(
            vms=[VM(vm_id=0, app=SIMULATION_APPS[0], host_id=12345)], scale=1.0
        )
        with pytest.raises(ValueError):
            WillowController(
                tree, WillowConfig(), constant_supply(100.0), placement
            )


class TestExtremeConfigs:
    def test_huge_margin_suppresses_all_migrations(self):
        controller, collector = run_willow(
            config=WillowConfig(p_min=10_000.0),
            target_utilization=0.6,
            n_ticks=20,
            seed=4,
        )
        from repro.core import MigrationCause

        assert collector.migration_count(MigrationCause.DEMAND) == 0

    def test_wake_latency_zero(self):
        controller, collector = run_willow(
            config=WillowConfig(wake_latency_ticks=0),
            target_utilization=0.15,
            n_ticks=30,
            seed=4,
        )
        assert len(collector.server_samples) == 30 * 18

    def test_migration_cost_free(self):
        _, collector = run_willow(
            config=WillowConfig(
                migration_cost_power=0.0, migration_cost_ticks=0
            ),
            target_utilization=0.6,
            n_ticks=20,
            seed=4,
        )
        for migration in collector.migrations:
            assert migration.cost_power == 0.0

    def test_long_run_stays_consistent(self):
        controller, collector = run_willow(
            target_utilization=0.5, n_ticks=300, seed=12
        )
        hosted = sorted(
            vm.vm_id
            for s in controller.servers.values()
            for vm in s.vms.values()
        )
        assert hosted == sorted(vm.vm_id for vm in controller.vms)
        assert (
            sum(s.thermal.violations for s in controller.servers.values()) == 0
        )
