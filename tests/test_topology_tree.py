"""Tests for the hierarchy tree."""

import pytest

from repro.topology import Node, NodeKind, Tree


@pytest.fixture
def small_tree():
    tree = Tree(root_name="dc", root_level=2)
    rack0 = tree.add_child(tree.root, "rack-0", NodeKind.RACK)
    rack1 = tree.add_child(tree.root, "rack-1", NodeKind.RACK)
    tree.add_child(rack0, "s0", NodeKind.SERVER)
    tree.add_child(rack0, "s1", NodeKind.SERVER)
    tree.add_child(rack1, "s2", NodeKind.SERVER)
    return tree


def test_root_properties(small_tree):
    assert small_tree.root.is_root
    assert not small_tree.root.is_leaf
    assert small_tree.root.level == 2
    assert small_tree.height == 3


def test_levels(small_tree):
    assert len(small_tree.nodes_at_level(2)) == 1
    assert len(small_tree.nodes_at_level(1)) == 2
    assert len(small_tree.nodes_at_level(0)) == 3


def test_servers_listed_in_creation_order(small_tree):
    assert [s.name for s in small_tree.servers()] == ["s0", "s1", "s2"]


def test_lookup_by_name_and_id(small_tree):
    node = small_tree.by_name("s1")
    assert small_tree.node(node.node_id) is node


def test_duplicate_name_rejected(small_tree):
    with pytest.raises(ValueError):
        small_tree.add_child(small_tree.root, "rack-0", NodeKind.RACK)


def test_child_below_leaf_level_rejected(small_tree):
    leaf = small_tree.by_name("s0")
    with pytest.raises(ValueError):
        small_tree.add_child(leaf, "too-deep", NodeKind.SERVER)


def test_foreign_parent_rejected(small_tree):
    other = Tree(root_name="other", root_level=1)
    with pytest.raises(ValueError):
        small_tree.add_child(other.root, "x", NodeKind.SERVER)


def test_siblings(small_tree):
    s0 = small_tree.by_name("s0")
    assert [n.name for n in s0.siblings()] == ["s1"]
    assert small_tree.root.siblings() == []


def test_ancestors_and_path_to_root(small_tree):
    s2 = small_tree.by_name("s2")
    assert [n.name for n in s2.ancestors()] == ["rack-1", "dc"]
    assert [n.name for n in s2.path_to_root()] == ["s2", "rack-1", "dc"]


def test_descendants_and_leaves(small_tree):
    names = {n.name for n in small_tree.root.descendants()}
    assert names == {"rack-0", "rack-1", "s0", "s1", "s2"}
    assert [n.name for n in small_tree.by_name("rack-0").leaves()] == ["s0", "s1"]
    leaf = small_tree.by_name("s2")
    assert leaf.leaves() == [leaf]


def test_lca(small_tree):
    s0 = small_tree.by_name("s0")
    s1 = small_tree.by_name("s1")
    s2 = small_tree.by_name("s2")
    assert small_tree.lca(s0, s1).name == "rack-0"
    assert small_tree.lca(s0, s2).name == "dc"
    assert small_tree.lca(s0, s0) is s0


def test_len_counts_all_nodes(small_tree):
    assert len(small_tree) == 6


def test_iteration_yields_every_node(small_tree):
    assert {n.name for n in small_tree} == {
        "dc",
        "rack-0",
        "rack-1",
        "s0",
        "s1",
        "s2",
    }


def test_validate_passes_on_wellformed(small_tree):
    small_tree.validate()


def test_validate_detects_level_corruption(small_tree):
    small_tree.by_name("s0").level = 5
    with pytest.raises(ValueError):
        small_tree.validate()


def test_walk_preorder(small_tree):
    visited = []
    small_tree.walk(lambda n: visited.append(n.name))
    assert visited[0] == "dc"
    assert visited.index("rack-0") < visited.index("s0")
    assert set(visited) == {n.name for n in small_tree}


def test_root_level_must_be_positive():
    with pytest.raises(ValueError):
        Tree(root_level=0)


def test_node_repr_mentions_name():
    tree = Tree(root_name="dc", root_level=1)
    assert "dc" in repr(tree.root)
    assert isinstance(tree.root, Node)
