"""Tests for the bin-packing data model, FFDLR and baselines."""

import pytest

from repro.binpack import (
    Bin,
    Item,
    best_fit_decreasing,
    feasible_exact,
    ffd_bin_count,
    ffdlr_pack,
    first_fit,
    first_fit_decreasing,
    optimal_bin_count,
    worst_fit,
)


class TestItemsAndBins:
    def test_bin_load_and_residual(self):
        bin_ = Bin("b", 10.0)
        bin_.add(Item("i", 4.0))
        assert bin_.load == 4.0
        assert bin_.residual == 6.0

    def test_bin_rejects_overflow(self):
        bin_ = Bin("b", 5.0)
        with pytest.raises(ValueError):
            bin_.add(Item("i", 6.0))

    def test_fits(self):
        bin_ = Bin("b", 5.0)
        assert bin_.fits(Item("i", 5.0))
        assert not bin_.fits(Item("j", 5.1))

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError):
            Item("i", -1.0)
        with pytest.raises(ValueError):
            Bin("b", -1.0)


class TestFFDLR:
    def test_everything_fits_when_it_can(self):
        items = [Item(i, s) for i, s in enumerate([5, 4, 3, 3, 2])]
        bins = [Bin("a", 8.0), Bin("b", 6.0), Bin("c", 5.0)]
        result = ffdlr_pack(items, bins)
        assert not result.unpacked
        assert result.packed_size == 17.0
        result.validate()

    def test_oversized_items_unpacked(self):
        result = ffdlr_pack([Item(0, 100.0)], [Bin("a", 10.0)])
        assert len(result.unpacked) == 1
        assert result.unpacked[0].key == 0

    def test_overflow_unpacked_when_bins_full(self):
        items = [Item(i, 6.0) for i in range(3)]
        bins = [Bin("a", 6.0), Bin("b", 6.0)]
        result = ffdlr_pack(items, bins)
        assert len(result.unpacked) == 1
        assert result.packed_size == 12.0

    def test_zero_size_items_ignored(self):
        result = ffdlr_pack([Item(0, 0.0)], [Bin("a", 5.0)])
        assert not result.unpacked
        assert result.assignment == {}

    def test_empty_inputs(self):
        assert ffdlr_pack([], []).assignment == {}
        result = ffdlr_pack([Item(0, 1.0)], [])
        assert len(result.unpacked) == 1

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError):
            ffdlr_pack([Item(0, 1.0), Item(0, 2.0)], [Bin("a", 5.0)])

    def test_payload_carried_through(self):
        marker = object()
        result = ffdlr_pack([Item(0, 1.0, payload=marker)], [Bin("a", 5.0)])
        assert result.bins[0].contents[0].payload is marker

    def test_repack_prefers_smallest_feasible_bin(self):
        # One 5-unit group should land in the capacity-5 bin, not the 50.
        result = ffdlr_pack([Item(0, 5.0)], [Bin("big", 50.0), Bin("small", 5.0)])
        assert result.assignment[0] == "small"

    def test_consolidation_effect_fewer_bins_than_first_fit(self):
        # FFDLR's repack should never use more bins than plain FF here.
        sizes = [4, 4, 3, 3, 2, 2, 1, 1]
        bins_template = [("a", 10.0), ("b", 10.0), ("c", 10.0), ("d", 10.0)]
        ffdlr_result = ffdlr_pack(
            [Item(i, s) for i, s in enumerate(sizes)],
            [Bin(k, c) for k, c in bins_template],
        )
        ff_result = first_fit(
            [Item(i, s) for i, s in enumerate(sizes)],
            [Bin(k, c) for k, c in bins_template],
        )
        assert ffdlr_result.bins_used <= ff_result.bins_used

    def test_deterministic(self):
        sizes = [7, 3, 9, 2, 5, 5, 1]

        def pack_once():
            result = ffdlr_pack(
                [Item(i, s) for i, s in enumerate(sizes)],
                [Bin(k, 12.0) for k in "abc"],
            )
            return sorted(result.assignment.items())

        assert pack_once() == pack_once()


class TestFFDBinCount:
    def test_known_instance(self):
        # Classic: sizes packed FFD into capacity-10 bins.
        assert ffd_bin_count([6, 5, 4, 3, 2], 10) == 2

    def test_oversize_rejected(self):
        with pytest.raises(ValueError):
            ffd_bin_count([11], 10)

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            ffd_bin_count([1], 0)


class TestBaselines:
    def _items(self, sizes):
        return [Item(i, s) for i, s in enumerate(sizes)]

    def _bins(self):
        return [Bin("a", 8.0), Bin("b", 6.0), Bin("c", 5.0)]

    @pytest.mark.parametrize(
        "packer", [first_fit, first_fit_decreasing, best_fit_decreasing, worst_fit]
    )
    def test_all_baselines_valid_and_complete(self, packer):
        result = packer(self._items([5, 4, 3, 3, 2]), self._bins())
        result.validate()
        assert not result.unpacked

    def test_first_fit_respects_arrival_order(self):
        result = first_fit(self._items([2, 7]), self._bins())
        assert result.assignment[0] == "a"  # first item -> first bin
        assert result.assignment[1] == "a" if result.bins[0].capacity >= 9 else True

    def test_bfd_prefers_tight_bin(self):
        result = best_fit_decreasing([Item(0, 5.0)], self._bins())
        assert result.assignment[0] == "c"

    def test_worst_fit_prefers_loose_bin(self):
        result = worst_fit([Item(0, 5.0)], self._bins())
        assert result.assignment[0] == "a"


class TestExactSolvers:
    def test_optimal_known_instances(self):
        assert optimal_bin_count([5, 4, 3, 3, 2], 8) == 3
        assert optimal_bin_count([4, 4, 4], 4) == 3
        assert optimal_bin_count([2, 2, 2, 2], 4) == 2
        assert optimal_bin_count([], 5) == 0

    def test_optimal_oversize_rejected(self):
        with pytest.raises(ValueError):
            optimal_bin_count([10], 5)

    def test_optimal_size_limited(self):
        with pytest.raises(ValueError):
            optimal_bin_count([1.0] * 20, 5)

    def test_feasibility_positive(self):
        assert feasible_exact([5, 4, 3], [8, 6]) is True

    def test_feasibility_negative_volume(self):
        assert feasible_exact([10, 10], [9, 9]) is False

    def test_feasibility_negative_fragmentation(self):
        # Volume fits (12 <= 12) but 7+5 cannot split across 6+6.
        assert feasible_exact([7, 5], [6, 6]) is False

    def test_feasibility_empty(self):
        assert feasible_exact([], []) is True
        assert feasible_exact([1], []) is False
