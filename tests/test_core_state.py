"""Tests for per-node runtime state."""

import pytest

from repro.core import NodeRuntime, ServerRuntime, SleepState, WillowConfig
from repro.topology import NodeKind, Tree
from repro.workload import TESTBED_APPS, VM


@pytest.fixture
def server():
    tree = Tree(root_name="dc", root_level=1)
    leaf = tree.add_child(tree.root, "s", NodeKind.SERVER)
    return ServerRuntime(leaf, WillowConfig())


def _add_vm(server, vm_id=0, demand=50.0):
    vm = VM(vm_id=vm_id, app=TESTBED_APPS[0], host_id=server.node.node_id)
    vm.current_demand = demand
    server.vms[vm_id] = vm
    return vm


class TestDemand:
    def test_awake_wall_demand_includes_static(self, server):
        _add_vm(server, demand=100.0)
        server.observe_demand()
        assert server.raw_demand == pytest.approx(
            server.model.static_power + 100.0
        )

    def test_asleep_demand_is_standby(self, server):
        server.sleep()
        server.observe_demand()
        assert server.raw_demand == server.model.standby_power

    def test_smoothing_applies_eq4(self, server):
        _add_vm(server, demand=100.0)
        first = server.observe_demand()
        server.vms[0].current_demand = 200.0
        second = server.observe_demand()
        alpha = server.config.alpha
        expected = alpha * (server.model.static_power + 200.0) + (
            1 - alpha
        ) * first
        assert second == pytest.approx(expected)

    def test_waking_reports_frozen_forecast(self, server):
        server.sleep()
        server.begin_wake()
        server.smoother.reset(initial=333.0)
        server.smoothed_demand = 333.0
        assert server.observe_demand() == 333.0
        assert server.raw_demand == server.model.static_power


class TestMigrationCosts:
    def test_cost_expires_after_ticks(self, server):
        server.charge_migration_cost(5.0, ticks=2)
        assert server.migration_cost_demand == 5.0
        server.expire_costs()
        assert server.migration_cost_demand == 5.0
        server.expire_costs()
        assert server.migration_cost_demand == 0.0

    def test_costs_accumulate(self, server):
        server.charge_migration_cost(5.0, ticks=1)
        server.charge_migration_cost(3.0, ticks=1)
        assert server.migration_cost_demand == 8.0

    def test_zero_cost_noop(self, server):
        server.charge_migration_cost(0.0, ticks=3)
        assert server.migration_cost_demand == 0.0


class TestBudget:
    def test_budget_reduction_flag(self, server):
        server.set_budget(100.0)
        assert not server.budget_reduced
        server.set_budget(90.0)
        assert server.budget_reduced
        server.set_budget(95.0)
        assert not server.budget_reduced

    def test_hard_cap_respects_circuit(self, server):
        assert server.hard_cap() <= server.config.circuit_limit

    def test_hard_cap_hot_zone_is_300(self):
        tree = Tree(root_name="dc", root_level=1)
        leaf = tree.add_child(tree.root, "s", NodeKind.SERVER)
        config = WillowConfig()
        hot = ServerRuntime(leaf, config, config.thermal.with_ambient(40.0))
        assert hot.hard_cap() == pytest.approx(300.0)

    def test_hard_cap_thermal_disabled(self):
        tree = Tree(root_name="dc", root_level=1)
        leaf = tree.add_child(tree.root, "s", NodeKind.SERVER)
        config = WillowConfig(thermal_enabled=False)
        hot = ServerRuntime(leaf, config, config.thermal.with_ambient(40.0))
        assert hot.hard_cap() == config.circuit_limit


class TestPowerAndTemperature:
    def test_actual_power_awake(self, server):
        server.served_power = 120.0
        assert server.actual_power() == server.model.static_power + 120.0

    def test_actual_power_asleep(self, server):
        server.sleep()
        assert server.actual_power() == server.model.standby_power

    def test_window_reset_temperature_tracks_power(self, server):
        # T = Ta + headroom * (P / cap) with the calibrated window.
        temp = server.update_temperature(450.0, dt=1.0)
        assert temp == pytest.approx(70.0)
        temp = server.update_temperature(225.0, dt=1.0)
        assert temp == pytest.approx(47.5)

    def test_integrated_mode_accumulates(self):
        tree = Tree(root_name="dc", root_level=1)
        leaf = tree.add_child(tree.root, "s", NodeKind.SERVER)
        config = WillowConfig(thermal_mode="integrated")
        server = ServerRuntime(leaf, config)
        t1 = server.update_temperature(100.0, dt=1.0)
        t2 = server.update_temperature(100.0, dt=1.0)
        assert t2 > t1  # keeps heating, unlike window_reset

    def test_utilization(self, server):
        server.served_power = server.model.slope / 2
        assert server.utilization == pytest.approx(0.5)
        server.sleep_state = SleepState.ASLEEP
        assert server.utilization == 0.0


class TestSleep:
    def test_sleep_requires_empty(self, server):
        _add_vm(server)
        with pytest.raises(RuntimeError):
            server.sleep()

    def test_wake_cycle(self, server):
        server.sleep()
        assert server.sleep_state is SleepState.ASLEEP
        server.begin_wake()
        assert server.sleep_state is SleepState.WAKING
        for _ in range(server.config.wake_latency_ticks):
            server.tick_wake()
        assert server.sleep_state is SleepState.AWAKE

    def test_zero_latency_wake_is_instant(self):
        tree = Tree(root_name="dc", root_level=1)
        leaf = tree.add_child(tree.root, "s", NodeKind.SERVER)
        server = ServerRuntime(leaf, WillowConfig(wake_latency_ticks=0))
        server.sleep()
        server.begin_wake()
        assert server.sleep_state is SleepState.AWAKE

    def test_wake_requires_asleep(self, server):
        with pytest.raises(RuntimeError):
            server.begin_wake()

    def test_asleep_ticks_counted(self, server):
        server.sleep()
        server.tick_wake()
        server.tick_wake()
        assert server.asleep_ticks == 2


class TestNodeRuntime:
    def test_observe_and_budget(self):
        tree = Tree(root_name="dc", root_level=1)
        runtime = NodeRuntime(tree.root, WillowConfig())
        runtime.observe_demand(100.0)
        assert runtime.smoothed_demand == 100.0
        runtime.set_budget(50.0)
        runtime.set_budget(40.0)
        assert runtime.budget_reduced
