"""Tests for the shared testbed scenario builders."""

import numpy as np
import pytest

# NB: `testbed_config` is aliased because its name starts with "test"
# and pytest would otherwise collect the import as a test function.
from repro.experiments.testbed_run import (
    SineDemandSource,
    TESTBED_SWITCH,
    build_workload,
    mix_for_utilization,
    run_testbed,
)
from repro.experiments.testbed_run import testbed_config as make_testbed_config
from repro.power import constant_supply
from repro.power.server import TESTBED_SERVER
from repro.topology import build_testbed
from repro.workload.vm import VM
from repro.workload.applications import TESTBED_APPS


class TestMixForUtilization:
    @pytest.mark.parametrize("target", [0.1, 0.2, 0.4, 0.6, 0.8, 0.9])
    def test_mix_lands_close_to_target(self, target):
        mix = mix_for_utilization(target)
        total = sum(app.mean_power for app in mix)
        budget = target * TESTBED_SERVER.slope
        # Closest achievable sum with 8/10/15 W parts: within 4 W.
        assert abs(total - budget) <= 4.0

    def test_zero_target_empty_mix(self):
        assert mix_for_utilization(0.0) == []

    def test_only_catalog_apps_used(self):
        names = {a.name for a in TESTBED_APPS}
        for app in mix_for_utilization(0.7):
            assert app.name in names

    def test_target_validated(self):
        with pytest.raises(ValueError):
            mix_for_utilization(1.5)


class TestBuildWorkload:
    def test_placement_matches_utilizations(self):
        tree = build_testbed()
        placement, trace = build_workload(tree, (0.8, 0.4, 0.2))
        hosts = placement.by_host()
        servers = tree.servers()
        for server, target in zip(servers, (0.8, 0.4, 0.2)):
            demand = sum(vm.app.mean_power for vm in hosts[server.node_id])
            assert abs(demand - target * TESTBED_SERVER.slope) <= 4.0
        assert trace.n_vms == len(placement.vms)

    def test_wrong_utilization_count_rejected(self):
        tree = build_testbed()
        with pytest.raises(ValueError):
            build_workload(tree, (0.5, 0.5))


class TestSineDemandSource:
    def _vms(self, n=3):
        return [
            VM(vm_id=i, app=TESTBED_APPS[0], host_id=1) for i in range(n)
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            SineDemandSource(self._vms(), amplitude=1.0)
        with pytest.raises(ValueError):
            SineDemandSource(self._vms(), period=0.0)

    def test_mean_preserved_over_full_period(self):
        source = SineDemandSource(self._vms(), amplitude=0.3, period=20.0)
        totals = []
        for _ in range(200):  # 10 periods
            totals.append(sum(source.sample_tick().values()))
        rated = 3 * TESTBED_APPS[0].mean_power
        assert np.mean(totals) == pytest.approx(rated, rel=0.02)

    def test_amplitude_bounds_hold(self):
        source = SineDemandSource(self._vms(1), amplitude=0.25, period=16.0)
        for _ in range(32):
            demand = sum(source.sample_tick().values())
            rated = TESTBED_APPS[0].mean_power
            assert 0.74 * rated <= demand <= 1.26 * rated

    def test_host_phases_shift_peaks(self):
        vms_a = self._vms(1)
        vms_b = self._vms(1)
        source_a = SineDemandSource(vms_a, amplitude=0.5, period=8.0,
                                    host_phases={1: 0.0})
        source_b = SineDemandSource(vms_b, amplitude=0.5, period=8.0,
                                    host_phases={1: 0.5})
        series_a = [sum(source_a.sample_tick().values()) for _ in range(8)]
        series_b = [sum(source_b.sample_tick().values()) for _ in range(8)]
        assert int(np.argmax(series_a)) != int(np.argmax(series_b))


class TestRunTestbed:
    def test_deterministic_trace_run(self):
        config = make_testbed_config(consolidation_enabled=False)
        supply = constant_supply(800.0)
        _c1, m1 = run_testbed(supply, (0.8, 0.4, 0.2), n_ticks=20, config=config)
        _c2, m2 = run_testbed(supply, (0.8, 0.4, 0.2), n_ticks=20, config=config)
        assert m1.total_energy() == m2.total_energy()
        assert m1.migration_count() == m2.migration_count()

    def test_switch_model_scaled_for_testbed(self):
        assert TESTBED_SWITCH.capacity < 300.0
        assert TESTBED_SWITCH.static_power <= 5.0

    def test_config_overrides_apply(self):
        config = make_testbed_config(p_min=9.0, eta1=2, eta2=3)
        assert config.p_min == 9.0
        assert config.delta_s == 2.0
        assert config.server_model is TESTBED_SERVER
