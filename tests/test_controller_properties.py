"""Property-based tests over the whole controller.

Randomised seeds, utilizations and control parameters; the invariants
of DESIGN.md must hold for every combination.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import WillowConfig, WillowController
from repro.network import verify_message_bound
from repro.power import constant_supply, step_supply
from repro.sim import RandomStreams
from repro.topology import build_paper_simulation
from repro.workload import (
    SIMULATION_APPS,
    random_placement,
    scale_for_target_utilization,
)

HOT = {f"server-{i}": 40.0 for i in range(15, 19)}


def build_and_run(
    seed: int,
    utilization: float,
    p_min: float,
    alpha: float,
    supply_factor: float,
    n_ticks: int = 15,
):
    tree = build_paper_simulation()
    config = WillowConfig(p_min=p_min, alpha=alpha)
    streams = RandomStreams(seed)
    placement = random_placement(
        [s.node_id for s in tree.servers()], SIMULATION_APPS, streams["placement"]
    )
    scale_for_target_utilization(placement, config.server_model.slope, utilization)
    supply = constant_supply(supply_factor * 18 * 450.0)
    controller = WillowController(
        tree, config, supply, placement, ambient_overrides=HOT, seed=seed
    )
    collector = controller.run(n_ticks)
    return controller, collector


controller_cases = st.tuples(
    st.integers(0, 10_000),  # seed
    st.floats(0.05, 0.95),  # utilization
    st.floats(0.0, 50.0),  # p_min
    st.floats(0.1, 1.0),  # alpha
    st.floats(0.2, 1.2),  # supply factor
)


@settings(max_examples=20, deadline=None)
@given(case=controller_cases)
def test_invariants_hold_for_any_configuration(case):
    seed, utilization, p_min, alpha, supply_factor = case
    controller, collector = build_and_run(
        seed, utilization, p_min, alpha, supply_factor
    )

    # 1. VM conservation: never lost, never duplicated.
    hosted = sorted(
        vm.vm_id for s in controller.servers.values() for vm in s.vms.values()
    )
    assert hosted == sorted(vm.vm_id for vm in controller.vms)

    # 2. Thermal safety with caps on.
    assert sum(s.thermal.violations for s in controller.servers.values()) == 0

    # 3. Message bound (Property 3).
    assert verify_message_bound(collector, bound=2)

    # 4. Budget hierarchy: children never exceed the parent.
    for node in controller.tree:
        if node.is_leaf:
            continue
        parent_budget = controller.internals[node.node_id].budget
        child_total = sum(
            controller.servers[c.node_id].budget
            if c.is_leaf
            else controller.internals[c.node_id].budget
            for c in node.children
        )
        assert child_total <= parent_budget + 1e-6

    # 5. Power within budget for awake servers -- modulo the physically
    # unavoidable static floor (a starved server draws its idle floor
    # until the next consolidation round drains and sleeps it).
    floor = controller.config.server_model.static_power
    for sample in collector.server_samples:
        if not sample.asleep:
            assert sample.power <= max(sample.budget, floor) + 1e-6

    # 6. Sleeping servers host nothing and draw standby only.
    for server in controller.servers.values():
        if not server.is_awake:
            assert not server.vms


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 1000),
    drop_at=st.integers(3, 10),
)
def test_migration_records_match_vm_histories(seed, drop_at):
    """Every recorded migration appears in its VM's host history."""
    tree = build_paper_simulation()
    config = WillowConfig()
    streams = RandomStreams(seed)
    placement = random_placement(
        [s.node_id for s in tree.servers()], SIMULATION_APPS, streams["placement"]
    )
    scale_for_target_utilization(placement, config.server_model.slope, 0.6)
    supply = step_supply(
        [(0.0, 18 * 450.0), (float(drop_at), 0.6 * 18 * 450.0)]
    )
    controller = WillowController(
        tree, config, supply, placement, ambient_overrides=HOT, seed=seed
    )
    collector = controller.run(15)
    vm_by_id = {vm.vm_id: vm for vm in controller.vms}
    for migration in collector.migrations:
        history = vm_by_id[migration.vm_id].host_history
        assert (migration.time, migration.dst_id) in history


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1000))
def test_steady_demand_means_no_ping_pong(seed):
    """With constant demands, decisions are stable: zero ping-pongs."""
    from repro.metrics import count_ping_pongs
    from repro.workload import DemandTrace, TraceDemandSource

    tree = build_paper_simulation()
    config = WillowConfig()
    streams = RandomStreams(seed)
    placement = random_placement(
        [s.node_id for s in tree.servers()], SIMULATION_APPS, streams["placement"]
    )
    scale_for_target_utilization(placement, config.server_model.slope, 0.6)
    demands = [vm.app.mean_power * placement.scale for vm in placement.vms]
    trace = DemandTrace.constant(demands, n_ticks=1)
    source = TraceDemandSource(trace, placement.vms)
    supply = step_supply([(0.0, 18 * 450.0), (8.0, 0.75 * 18 * 450.0)])
    controller = WillowController(
        tree,
        config,
        supply,
        placement,
        demand_source=source,
        ambient_overrides=HOT,
        seed=seed,
    )
    controller.run(30)
    assert count_ping_pongs(controller.vms, window=30.0) == 0
