"""Edge-path tests across modules (error branches, rare paths)."""

import pytest

from repro.sim import Environment


class TestProcessErrorPaths:
    def test_yielding_non_event_raises_into_process(self):
        env = Environment()
        errors = []

        def worker(env):
            try:
                yield 42  # not an Event
            except TypeError as error:
                errors.append(str(error))

        env.process(worker(env))
        env.run()
        assert errors and "non-event" in errors[0]

    def test_target_property_reflects_wait(self):
        env = Environment()
        observed = []

        def sleeper(env):
            yield env.timeout(5.0)

        proc = env.process(sleeper(env))
        env.run(until=1.0)
        assert proc.target is not None
        env.run()
        assert proc.target is None


class TestQoSAccountingEdgePaths:
    def test_unattributed_drops_spread_proportionally(self):
        from repro.core.events import Drop
        from repro.metrics import MetricsCollector
        from repro.qos import per_class_report
        from repro.qos.classes import BRONZE, GOLD
        from repro.workload import AppType, VM

        gold_app = AppType("g", 30.0, priority=0)
        bronze_app = AppType("b", 10.0, priority=2)
        vms = [
            VM(vm_id=0, app=gold_app, host_id=1),
            VM(vm_id=1, app=bronze_app, host_id=1),
        ]
        collector = MetricsCollector()
        # One tick recorded so offered = mean * 1.
        from repro.metrics import ServerSample

        collector.record_server(
            ServerSample(
                time=0.0, server_id=1, power=0.0, temperature=25.0,
                utilization=0.0, demand=0.0, budget=0.0, asleep=False,
            )
        )
        # A legacy drop without VM attribution.
        collector.record_drop(Drop(0.0, 1, None, 8.0))
        report = per_class_report(
            collector, vms, classes=(GOLD, BRONZE)
        )
        # Spread 8 W proportional to offered 30:10.
        assert report["gold"].dropped == pytest.approx(6.0)
        assert report["bronze"].dropped == pytest.approx(2.0)

    def test_scale_validated(self):
        from repro.metrics import MetricsCollector
        from repro.qos import per_class_report

        with pytest.raises(ValueError):
            per_class_report(MetricsCollector(), [], scale=0.0)


class TestExactSolverEdges:
    def test_feasible_exact_size_limit(self):
        from repro.binpack import feasible_exact

        with pytest.raises(ValueError):
            feasible_exact([1.0] * 20, [10.0])

    def test_feasible_with_zero_capacity_bins(self):
        from repro.binpack import feasible_exact

        assert feasible_exact([1.0], [0.0, 2.0]) is True
        assert feasible_exact([1.0], [0.0]) is False


class TestSupplyEdges:
    def test_trace_mean_with_horizon_before_second_segment(self):
        from repro.power import step_supply

        trace = step_supply([(0.0, 10.0), (100.0, 50.0)])
        assert trace.mean(10.0) == 10.0

    def test_scaled_rejects_negative(self):
        from repro.power import constant_supply

        with pytest.raises(ValueError):
            constant_supply(1.0).scaled(-1.0)


class TestDeviceSetEdges:
    def test_single_device_class(self):
        from repro.devices import DeviceClass, DeviceSet
        from repro.thermal import ThermalParams

        only = (
            DeviceClass(
                "cpu", 1.0, ThermalParams(), rated_power=450.0
            ),
        )
        devices = DeviceSet(only)
        assert devices.server_cap() == pytest.approx(450.0)
        assert devices.binding_device() == "cpu"


class TestCollectorEdges:
    def test_switch_series_missing_switch(self):
        from repro.metrics import MetricsCollector

        with pytest.raises(ValueError):
            MetricsCollector().mean_switch(99, "power")

    def test_migrations_per_tick_ignores_out_of_range(self):
        from repro.core.events import Migration, MigrationCause
        from repro.metrics import MetricsCollector

        collector = MetricsCollector()
        collector.record_migration(
            Migration(
                time=100.0, vm_id=0, src_id=1, dst_id=2, demand=1.0,
                cause=MigrationCause.DEMAND, local=True, hops=1,
                cost_power=0.0,
            )
        )
        assert collector.migrations_per_tick(horizon=10.0).sum() == 0
