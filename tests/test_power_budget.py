"""Tests for budget allocation (paper Sec. IV-D), incl. hypothesis
invariants."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.power import allocate_proportional, redistribute_surplus


class TestAllocateProportional:
    def test_simple_proportional_split(self):
        alloc, unused = allocate_proportional(90.0, [10.0, 20.0, 30.0])
        # Surplus regime: everyone gets demand; leftover spread ~ demand.
        assert alloc.sum() + unused == pytest.approx(90.0)
        assert np.all(alloc >= [10.0, 20.0, 30.0])

    def test_deficit_regime_proportional(self):
        alloc, unused = allocate_proportional(30.0, [10.0, 20.0, 30.0])
        assert alloc.sum() == pytest.approx(30.0)
        assert unused == pytest.approx(0.0)
        # Proportional to demand: ratios preserved.
        assert alloc[1] / alloc[0] == pytest.approx(2.0)
        assert alloc[2] / alloc[0] == pytest.approx(3.0)

    def test_caps_never_exceeded(self):
        alloc, _ = allocate_proportional(100.0, [50.0, 50.0], caps=[30.0, 80.0])
        assert alloc[0] <= 30.0 + 1e-9
        assert alloc[1] <= 80.0 + 1e-9

    def test_capped_node_excess_flows_to_sibling(self):
        alloc, unused = allocate_proportional(
            100.0, [50.0, 50.0], caps=[30.0, 80.0]
        )
        assert alloc[0] == pytest.approx(30.0)
        assert alloc[1] == pytest.approx(70.0)
        assert unused == pytest.approx(0.0)

    def test_all_capped_leaves_surplus_unallocated(self):
        alloc, unused = allocate_proportional(
            100.0, [50.0, 50.0], caps=[20.0, 20.0]
        )
        assert alloc.tolist() == [20.0, 20.0]
        assert unused == pytest.approx(60.0)

    def test_surplus_regime_guarantees_demand(self):
        alloc, _ = allocate_proportional(200.0, [10.0, 60.0, 30.0])
        assert np.all(alloc >= [10.0, 60.0, 30.0])

    def test_zero_demand_child_gets_surplus_only_after_caps(self):
        # One busy child capped at 60; idle child should then absorb
        # the remainder (paper step 2: harness surplus with new work).
        alloc, unused = allocate_proportional(
            100.0, [50.0, 0.0], caps=[60.0, 100.0]
        )
        assert alloc[0] == pytest.approx(60.0)
        assert alloc[1] == pytest.approx(40.0)
        assert unused == pytest.approx(0.0)

    def test_zero_total(self):
        alloc, unused = allocate_proportional(0.0, [10.0, 20.0])
        assert alloc.tolist() == [0.0, 0.0]
        assert unused == 0.0

    def test_empty_children(self):
        alloc, unused = allocate_proportional(50.0, [])
        assert alloc.size == 0
        assert unused == 50.0

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            allocate_proportional(-1.0, [10.0])
        with pytest.raises(ValueError):
            allocate_proportional(10.0, [-1.0])
        with pytest.raises(ValueError):
            allocate_proportional(10.0, [1.0], caps=[-1.0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            allocate_proportional(10.0, [1.0, 2.0], caps=[1.0])


class TestRedistributeSurplus:
    def test_adds_proportionally_within_headroom(self):
        new = redistribute_surplus(
            [10.0, 10.0], [30.0, 10.0], [100.0, 12.0], surplus=20.0
        )
        assert new[1] <= 12.0 + 1e-9
        assert new.sum() == pytest.approx(40.0)

    def test_negative_surplus_rejected(self):
        with pytest.raises(ValueError):
            redistribute_surplus([1.0], [1.0], [2.0], surplus=-1.0)


# -- hypothesis invariants ---------------------------------------------------

budget_cases = st.integers(1, 8).flatmap(
    lambda n: st.tuples(
        st.floats(0.0, 10_000.0),
        st.lists(st.floats(0.0, 1_000.0), min_size=n, max_size=n),
        st.lists(st.floats(0.0, 1_000.0), min_size=n, max_size=n),
    )
)


@given(case=budget_cases)
def test_allocation_invariants(case):
    total, demands, caps = case
    alloc, unused = allocate_proportional(total, demands, caps)
    # 1. No negative allocations.
    assert np.all(alloc >= -1e-9)
    # 2. Caps respected.
    assert np.all(alloc <= np.asarray(caps) + 1e-6)
    # 3. Conservation: allocated + unallocated == total.
    assert alloc.sum() + unused == pytest.approx(total, rel=1e-6, abs=1e-6)
    # 4. Unused is non-negative.
    assert unused >= -1e-9


@given(case=budget_cases)
def test_surplus_regime_satisfies_everyone(case):
    total, demands, caps = case
    satisfiable = np.minimum(demands, caps)
    if total < satisfiable.sum():
        return  # only the surplus regime carries this guarantee
    alloc, _ = allocate_proportional(total, demands, caps)
    assert np.all(alloc >= satisfiable - 1e-6)


@given(case=budget_cases, scale=st.floats(0.1, 10.0))
def test_allocation_scale_invariant(case, scale):
    """Scaling total+demands+caps scales the allocation."""
    total, demands, caps = case
    alloc1, unused1 = allocate_proportional(total, demands, caps)
    alloc2, unused2 = allocate_proportional(
        total * scale,
        [d * scale for d in demands],
        [c * scale for c in caps],
    )
    assert np.allclose(alloc1 * scale, alloc2, rtol=1e-6, atol=1e-4)
    assert unused1 * scale == pytest.approx(unused2, rel=1e-6, abs=1e-4)
