"""Tests for supply traces."""

import numpy as np
import pytest

from repro.power import (
    SupplyTrace,
    constant_supply,
    deficit_supply_trace,
    plenty_supply_trace,
    renewable_supply,
    step_supply,
)


class TestSupplyTrace:
    def test_constant(self):
        trace = constant_supply(100.0)
        assert trace.at(0.0) == 100.0
        assert trace.at(1e6) == 100.0

    def test_step_lookup(self):
        trace = step_supply([(0.0, 10.0), (5.0, 20.0), (8.0, 5.0)])
        assert trace.at(0.0) == 10.0
        assert trace.at(4.999) == 10.0
        assert trace.at(5.0) == 20.0
        assert trace.at(7.0) == 20.0
        assert trace.at(100.0) == 5.0

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            constant_supply(1.0).at(-0.1)

    def test_must_start_at_zero(self):
        with pytest.raises(ValueError):
            step_supply([(1.0, 5.0)])

    def test_times_strictly_increasing(self):
        with pytest.raises(ValueError):
            step_supply([(0.0, 1.0), (0.0, 2.0)])

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            step_supply([(0.0, -5.0)])

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_budget_rejected(self, bad):
        # NaN compares False against everything, so without an explicit
        # finiteness check it slips past the ordering validation.
        with pytest.raises(ValueError):
            step_supply([(0.0, 10.0), (5.0, bad)])

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_non_finite_time_rejected(self, bad):
        with pytest.raises(ValueError):
            step_supply([(0.0, 10.0), (bad, 20.0)])

    def test_non_monotone_times_rejected(self):
        with pytest.raises(ValueError):
            SupplyTrace(times=(0.0, 5.0, 3.0), budgets=(1.0, 2.0, 3.0))

    def test_nan_lookup_time_rejected(self):
        with pytest.raises(ValueError):
            constant_supply(1.0).at(float("nan"))

    def test_mean(self):
        trace = step_supply([(0.0, 10.0), (5.0, 20.0)])
        assert trace.mean(10.0) == pytest.approx(15.0)
        assert trace.mean(5.0) == pytest.approx(10.0)

    def test_mean_between_segment_exact(self):
        trace = step_supply([(0.0, 10.0), (5.0, 20.0), (8.0, 40.0)])
        # Entirely inside one segment.
        assert trace.mean_between(1.0, 3.0) == pytest.approx(10.0)
        # Straddling two segments: 2 units at 10, 1 unit at 20.
        assert trace.mean_between(3.0, 6.0) == pytest.approx(40.0 / 3.0)
        # The final budget holds forever past the last segment start.
        assert trace.mean_between(100.0, 200.0) == pytest.approx(40.0)
        assert trace.mean_between(7.0, 10.0) == pytest.approx(100.0 / 3.0)

    def test_mean_between_boundary_reads_starting_segment(self):
        # t0 exactly on a boundary uses the segment starting there,
        # matching at()'s half-open convention.
        trace = step_supply([(0.0, 10.0), (5.0, 20.0)])
        assert trace.mean_between(5.0, 6.0) == pytest.approx(20.0)

    def test_mean_between_agrees_with_mean(self):
        trace = step_supply([(0.0, 10.0), (5.0, 20.0), (8.0, 40.0)])
        for horizon in (1.0, 5.0, 6.5, 30.0):
            assert trace.mean_between(0.0, horizon) == pytest.approx(
                trace.mean(horizon)
            )

    def test_mean_between_validation(self):
        trace = constant_supply(1.0)
        with pytest.raises(ValueError):
            trace.mean_between(-1.0, 2.0)
        with pytest.raises(ValueError):
            trace.mean_between(2.0, 2.0)
        with pytest.raises(ValueError):
            trace.mean_between(0.0, float("nan"))

    def test_window_rebases_and_clips(self):
        trace = step_supply([(0.0, 10.0), (5.0, 20.0), (8.0, 40.0)])
        window = trace.window(3.0, 4.0)
        assert window.times == (0.0, 2.0)
        assert window.budgets == (10.0, 20.0)
        # Values agree with the parent trace throughout the window.
        for offset in (0.0, 1.9, 2.0, 3.9):
            assert window.at(offset) == trace.at(3.0 + offset)

    def test_window_validation(self):
        trace = constant_supply(1.0)
        with pytest.raises(ValueError):
            trace.window(-1.0, 2.0)
        with pytest.raises(ValueError):
            trace.window(0.0, 0.0)

    def test_scaled(self):
        trace = step_supply([(0.0, 10.0), (5.0, 20.0)]).scaled(2.0)
        assert trace.at(0.0) == 20.0
        assert trace.at(6.0) == 40.0

    def test_series(self):
        trace = step_supply([(0.0, 1.0), (2.0, 3.0)])
        assert np.array_equal(trace.series([0.0, 1.0, 2.0, 5.0]), [1, 1, 3, 3])

    def test_series_matches_at_pointwise(self):
        trace = step_supply([(0.0, 5.0), (1.5, 7.0), (4.0, 2.0), (9.0, 11.0)])
        times = [0.0, 0.7, 1.5, 3.999, 4.0, 8.9, 9.0, 50.0]
        assert np.array_equal(
            trace.series(times), [trace.at(t) for t in times]
        )

    def test_series_empty_and_validation(self):
        trace = constant_supply(1.0)
        assert trace.series([]).size == 0
        with pytest.raises(ValueError):
            trace.series([0.0, -1.0])
        with pytest.raises(ValueError):
            trace.series([float("nan")])


class TestDeficitTrace:
    def test_plunges_reduce_budget(self):
        trace = deficit_supply_trace(1000.0, plunge_depth=0.4, ripple=0.0)
        assert trace.at(8.0) == pytest.approx(600.0)
        assert trace.at(0.0) == pytest.approx(1000.0)

    def test_recovery_after_plunge(self):
        trace = deficit_supply_trace(1000.0, plunge_depth=0.4, ripple=0.0)
        assert trace.at(10.0) == pytest.approx(1000.0)

    def test_depth_validated(self):
        with pytest.raises(ValueError):
            deficit_supply_trace(1000.0, plunge_depth=1.5)

    def test_ripple_bounded(self):
        trace = deficit_supply_trace(1000.0, ripple=0.05)
        for t in range(30):
            value = trace.at(float(t))
            assert 550.0 <= value <= 1050.0


class TestPlentyTrace:
    def test_mean_near_full_power(self):
        trace = plenty_supply_trace(750.0, rng=np.random.default_rng(1))
        assert trace.mean(30.0) == pytest.approx(750.0, rel=0.05)


class TestRenewable:
    def test_base_load_always_available(self):
        trace = renewable_supply(
            1000.0, base_fraction=0.3, cloud_noise=0.0
        )
        values = trace.series(np.arange(0.0, 96.0, 1.0))
        assert values.min() >= 300.0 - 1e-9

    def test_peaks_midday(self):
        trace = renewable_supply(1000.0, base_fraction=0.2, cloud_noise=0.0)
        midday = trace.at(48.0)
        night = trace.at(1.0)
        assert midday > night

    def test_multiple_days_repeat_pattern(self):
        trace = renewable_supply(
            1000.0, base_fraction=0.2, cloud_noise=0.0, days=2
        )
        assert trace.at(20.0) == pytest.approx(trace.at(20.0 + 96.0), rel=1e-9)

    def test_base_fraction_validated(self):
        with pytest.raises(ValueError):
            renewable_supply(1000.0, base_fraction=1.5)


class TestCSVRoundTrip:
    def test_supply_from_csv(self, tmp_path):
        from repro.power import supply_from_csv

        path = tmp_path / "supply.csv"
        path.write_text("time,budget\n0,100\n5,80\n9,120\n")
        trace = supply_from_csv(path)
        assert trace.at(0.0) == 100.0
        assert trace.at(6.0) == 80.0
        assert trace.at(50.0) == 120.0

    def test_supply_from_csv_without_header(self, tmp_path):
        from repro.power import supply_from_csv

        path = tmp_path / "supply.csv"
        path.write_text("0,10\n2,20\n")
        assert supply_from_csv(path).at(3.0) == 20.0

    def test_supply_from_csv_empty_rejected(self, tmp_path):
        from repro.power import supply_from_csv

        path = tmp_path / "supply.csv"
        path.write_text("time,budget\n")
        with pytest.raises(ValueError):
            supply_from_csv(path)

    def test_supply_from_csv_malformed_mid_file(self, tmp_path):
        from repro.power import supply_from_csv

        path = tmp_path / "supply.csv"
        path.write_text("0,10\nbad,row\n")
        with pytest.raises(ValueError):
            supply_from_csv(path)
