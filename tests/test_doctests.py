"""Run the executable examples embedded in docstrings."""

import doctest

import pytest

import repro.power.budget
import repro.sim.core
import repro.sim.rng
import repro.topology.builders

MODULES = [
    repro.sim.core,
    repro.sim.rng,
    repro.topology.builders,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    failures, attempted = doctest.testmod(
        module, verbose=False, raise_on_error=False
    ).failed, doctest.testmod(module, verbose=False).attempted
    assert attempted > 0, f"{module.__name__} has no doctests to run"
    assert failures == 0
