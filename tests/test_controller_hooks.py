"""Tests for controller observer hooks and the diurnal generator."""

import numpy as np
import pytest

from repro.core import WillowConfig, WillowController
from repro.power import constant_supply, step_supply
from repro.sim import RandomStreams
from repro.topology import build_paper_simulation
from repro.workload import (
    DiurnalDemandGenerator,
    SIMULATION_APPS,
    random_placement,
    scale_for_target_utilization,
)


def make_controller(supply=None, seed=8, demand_source=None, utilization=0.6):
    tree = build_paper_simulation()
    config = WillowConfig()
    streams = RandomStreams(seed)
    placement = random_placement(
        [s.node_id for s in tree.servers()], SIMULATION_APPS, streams["placement"]
    )
    scale_for_target_utilization(placement, config.server_model.slope, utilization)
    if demand_source == "diurnal":
        demand_source = DiurnalDemandGenerator(placement, streams, day_length=24.0)
    return WillowController(
        tree,
        config,
        supply or constant_supply(18 * 450.0),
        placement,
        demand_source=demand_source,
        seed=seed,
    )


class TestHooks:
    def test_on_tick_runs_every_tick(self):
        controller = make_controller()
        calls = []
        controller.on_tick.append(lambda c, i, t: calls.append((i, t)))
        controller.run(7)
        assert [i for i, _t in calls] == list(range(7))
        assert calls[-1][1] == 6.0

    def test_on_migration_sees_each_record(self):
        controller = make_controller(
            supply=step_supply([(0.0, 18 * 450.0), (8.0, 0.7 * 18 * 450.0)])
        )
        seen = []
        controller.on_migration.append(lambda c, m: seen.append(m))
        collector = controller.run(20)
        assert len(seen) == collector.migration_count()
        assert all(m in collector.migrations for m in seen)

    def test_hook_can_read_live_state(self):
        controller = make_controller()
        temps = []
        controller.on_tick.append(
            lambda c, i, t: temps.append(
                max(s.temperature for s in c.servers.values())
            )
        )
        controller.run(5)
        assert len(temps) == 5
        assert all(25.0 <= t <= 70.0 + 1e-6 for t in temps)


class TestDiurnalGenerator:
    def test_validation(self):
        tree = build_paper_simulation()
        streams = RandomStreams(0)
        placement = random_placement(
            [s.node_id for s in tree.servers()], SIMULATION_APPS, streams["placement"]
        )
        with pytest.raises(ValueError):
            DiurnalDemandGenerator(placement, streams, day_length=0.0)
        with pytest.raises(ValueError):
            DiurnalDemandGenerator(placement, streams, base=1.0, peak=0.5)

    def test_profile_peaks_midday_troughs_midnight(self):
        tree = build_paper_simulation()
        streams = RandomStreams(0)
        placement = random_placement(
            [s.node_id for s in tree.servers()], SIMULATION_APPS, streams["placement"]
        )
        generator = DiurnalDemandGenerator(
            placement, streams, day_length=24.0, base=0.3, peak=1.5
        )
        assert generator.profile(0.0) == pytest.approx(0.3, abs=1e-9)
        assert generator.profile(12.0) == pytest.approx(1.5, abs=1e-9)
        assert generator.profile(24.0) == pytest.approx(0.3, abs=1e-9)

    def test_demand_follows_the_day(self):
        controller = make_controller(demand_source="diurnal", utilization=0.5)
        collector = controller.run(48)  # two 24-tick days
        per_tick = {
            t: sum(s.demand for s in collector.server_samples if s.time == t)
            for t in collector.times()
        }
        midnights = [per_tick[0.0], per_tick[24.0]]
        middays = [per_tick[12.0], per_tick[36.0]]
        assert min(middays) > max(midnights)

    def test_invariants_hold_under_diurnal_demand(self):
        controller = make_controller(demand_source="diurnal")
        controller.run(48)
        assert (
            sum(s.thermal.violations for s in controller.servers.values()) == 0
        )
        hosted = sorted(
            vm.vm_id for s in controller.servers.values() for vm in s.vms.values()
        )
        assert hosted == sorted(vm.vm_id for vm in controller.vms)
