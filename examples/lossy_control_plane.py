"""Lossy control plane: Willow's PMU tree over an unreliable network.

The paper's controller assumes its DemandReports and BudgetDirectives
always arrive.  This example runs the same 18-server fleet twice --
once with the ideal synchronous controller, once with the distributed
control plane (:mod:`repro.control_plane`) over links that drop 20 % of
messages and add a tick of latency, while one PMU crashes mid-run and
one link is partitioned.  Stale budgets decay toward the thermally-safe
floor, so the fleet loses some efficiency but never its thermal safety.

Run with::

    python examples/lossy_control_plane.py

Set ``WILLOW_EXAMPLE_TICKS`` to shorten the run (CI smoke uses 12).
"""

import os

from repro.control_plane import (
    ControlPlaneConfig,
    CrashWindow,
    FaultSchedule,
    LinkPartition,
    LinkProfile,
    divergence_summary,
    run_distributed,
)
from repro.core import WillowConfig
from repro.core.controller import run_willow
from repro.topology import build_paper_simulation

N_TICKS = int(os.environ.get("WILLOW_EXAMPLE_TICKS", "48"))
SEED = 5
UTILIZATION = 0.6


def main() -> None:
    config = WillowConfig()
    run_kwargs = dict(
        config=config,
        target_utilization=UTILIZATION,
        n_ticks=N_TICKS,
        seed=SEED,
    )

    # The ideal twin: every message delivered instantly.
    _, ideal = run_willow(**run_kwargs)

    # The degraded run: lossy links plus a PMU crash and a partition.
    # Fault windows scale with the horizon so short smoke runs hit them.
    tree = build_paper_simulation()
    zone_pmu = tree.root.children[0]
    cut_link = tree.root.children[1].node_id
    width = max(2, N_TICKS // 5)
    crash = CrashWindow(zone_pmu.node_id, N_TICKS // 3, N_TICKS // 3 + width)
    part = LinkPartition(cut_link, 2 * N_TICKS // 3, 2 * N_TICKS // 3 + width)
    faults = FaultSchedule(crashes=(crash,), partitions=(part,))
    control_plane = ControlPlaneConfig(
        default_link=LinkProfile(latency_ticks=1, jitter_ticks=1, drop_prob=0.2)
    )
    controller, degraded = run_distributed(
        tree=tree, control_plane=control_plane, faults=faults, **run_kwargs
    )

    print("Lossy control plane -- 18 servers at U=60%, 20% drop, 1-tick latency")
    print(
        f"fault: PMU {crash.node_id} (zone) crashed ticks "
        f"[{crash.start_tick}, {crash.end_tick})"
    )
    print(
        f"fault: link to PMU {part.link} partitioned ticks "
        f"[{part.start_tick}, {part.end_tick})"
    )
    print()

    stats = controller.transport_stats()
    print(f"messages sent              : {stats.sent}")
    print(f"retransmissions            : {stats.retransmits}")
    print(f"delivered                  : {stats.delivered}")
    print(
        "dropped                    : "
        f"{stats.dropped_loss} loss, {stats.dropped_partition} partition, "
        f"{stats.dropped_crash} crash"
    )
    print(f"gave up after retries      : {stats.expired}")
    print(f"stale frames discarded     : {controller.stale_discards()}")
    print()

    summary = divergence_summary(ideal, degraded)
    print(
        "budget divergence          : "
        f"{summary['budget_mean']:.1f} W mean, {summary['budget_max']:.0f} W max"
    )
    print(
        "temperature divergence     : "
        f"{summary['temperature_mean']:.2f} C mean, "
        f"{summary['temperature_max']:.1f} C max"
    )

    t_limit = config.thermal.t_limit
    worst = max(s.temperature for s in degraded.server_samples)
    min_budget = min(s.budget for s in degraded.server_samples)
    print(f"worst temperature          : {worst:.1f} C (T_limit {t_limit:.0f} C)")
    print(f"minimum budget             : {min_budget:.1f} W (never negative)")
    verdict = "held" if worst <= t_limit + 1e-6 and min_budget >= 0.0 else "VIOLATED"
    print(f"safety invariants          : {verdict}")


if __name__ == "__main__":
    main()
