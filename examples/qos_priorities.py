"""QoS tiers under a brown-out: gold degrades last.

Extends the paper's future-work direction ("dealing with multiple QoS
classes"): the fleet hosts gold/silver/bronze replicas of the standard
application mix, the supply collapses to 45 % mid-run, and the
controller's priority-aware serving protects the higher tiers.

Run with::

    python examples/qos_priorities.py
"""

from repro.core import WillowConfig, WillowController
from repro.power import step_supply
from repro.qos import LatencyModel, STANDARD_CLASSES, per_class_report, sla_compliance
from repro.sim import RandomStreams
from repro.topology import build_paper_simulation
from repro.workload import (
    SIMULATION_APPS,
    random_placement,
    scale_for_target_utilization,
)
from repro.qos import tiered_catalog


def main() -> None:
    config = WillowConfig()
    tree = build_paper_simulation()
    streams = RandomStreams(17)
    placement = random_placement(
        [s.node_id for s in tree.servers()],
        tuple(tiered_catalog(SIMULATION_APPS)),
        streams["placement"],
        vms_per_server=6,
    )
    scale_for_target_utilization(placement, config.server_model.slope, 0.65)
    supply = step_supply([(0.0, 18 * 450.0), (30.0, 18 * 200.0)])
    controller = WillowController(tree, config, supply, placement, seed=17)
    metrics = controller.run(80)

    report = per_class_report(metrics, controller.vms, scale=controller.placement.scale)
    print("QoS tiers through a brown-out (supply drops to 45% at tick 30)")
    print(f"{'tier':>8} {'offered':>12} {'dropped':>12} {'loss':>8}")
    for name in ("gold", "silver", "bronze"):
        tier = report[name]
        print(
            f"{name:>8} {tier.offered:12.0f} {tier.dropped:12.0f} "
            f"{tier.loss_fraction:8.1%}"
        )

    model = LatencyModel()
    print()
    print("SLA compliance (fraction of awake server-ticks within SLA):")
    for qos in STANDARD_CLASSES:
        compliance = sla_compliance(metrics, qos, model)
        mean = sum(compliance.values()) / len(compliance)
        print(
            f"  {qos.name:>7}: latency <= {qos.latency_sla:.0f}x unloaded "
            f"-> {mean:6.1%} compliant"
        )


if __name__ == "__main__":
    main()
