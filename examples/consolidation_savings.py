"""Consolidation savings: the Sec. V-C5 experiment, generalised.

Runs the 3-server testbed scenario (servers at 80/40/20 % utilization
under a plentiful supply) exactly as the paper does -- server C drains
and sleeps, saving ~27.5 % -- then sweeps the fleet utilization to show
where consolidation stops paying.

Run with::

    python examples/consolidation_savings.py
"""

import numpy as np

from repro.experiments import fig19_table3
from repro.experiments.testbed_run import run_testbed, testbed_config
from repro.power import plenty_supply_trace


def paper_scenario() -> None:
    result = fig19_table3.run()
    data = result.data
    print("Paper scenario (Table III): servers at 80/40/20 % utilization")
    for name in ("server-A", "server-B", "server-C"):
        print(
            f"  {name}: {data['initial'][name]:5.1%} -> "
            f"{data['final'][name]:5.1%} utilization"
        )
    print(
        f"  fleet power {data['baseline_power']:.0f} W -> "
        f"{data['consolidated_power']:.0f} W  "
        f"(savings {data['savings']:.1%}, paper ~27.5%)"
    )


def sweep() -> None:
    print()
    print("Where consolidation pays: savings vs fleet utilization")
    print(f"{'mean util':>10} {'power on':>9} {'power off':>10} {'savings':>8}")
    config_on = testbed_config()
    config_off = testbed_config(consolidation_enabled=False)
    for base in (0.1, 0.2, 0.3, 0.5, 0.7):
        utils = (base + 0.1, base, max(base - 0.1, 0.05))
        full_power = 3 * config_on.server_model.max_power + 30.0
        n_ticks = 80
        supply = plenty_supply_trace(
            full_power,
            period=n_ticks * config_on.delta_d,
            resolution=config_on.delta_s,
            rng=np.random.default_rng(1),
        )
        _c1, on = run_testbed(supply, utils, n_ticks=n_ticks, config=config_on)
        _c2, off = run_testbed(supply, utils, n_ticks=n_ticks, config=config_off)
        p_on = on.total_energy() / n_ticks
        p_off = off.total_energy() / n_ticks
        savings = 1.0 - p_on / p_off
        print(f"{np.mean(utils):10.1%} {p_on:9.0f} {p_off:10.0f} {savings:8.1%}")


def main() -> None:
    paper_scenario()
    sweep()


if __name__ == "__main__":
    main()
