"""IPC-heavy workloads: what migrations do to chatty VM clusters.

The paper's future work asks how Willow behaves "under more complex
workloads where there is excessive IPC traffic among the servers."
Here each server initially hosts one tightly-coupled 4-VM cluster
(think app + cache + two workers).  A supply squeeze forces
migrations; every cluster a migration splits starts paying its clique
traffic across the switch fabric.

Run with::

    python examples/ipc_affinity.py
"""

import numpy as np

from repro.core import WillowConfig, WillowController
from repro.power import step_supply
from repro.sim import RandomStreams
from repro.topology import build_paper_simulation
from repro.workload import (
    SIMULATION_APPS,
    random_placement,
    scale_for_target_utilization,
)
from repro.workload.affinity import clustered_affinity


def run_variant(affinity_aware: bool, seed: int = 37):
    tree = build_paper_simulation()
    config = WillowConfig(affinity_aware=affinity_aware)
    streams = RandomStreams(seed)
    placement = random_placement(
        [s.node_id for s in tree.servers()], SIMULATION_APPS, streams["placement"]
    )
    scale_for_target_utilization(placement, config.server_model.slope, 0.6)
    # One clique per server (VM ids are dense per host).
    graph = clustered_affinity(placement.vms, cluster_size=4, in_rate=8.0)
    supply = step_supply([(0.0, 18 * 450.0), (25.0, 0.75 * 18 * 450.0)])
    controller = WillowController(
        tree, config, supply, placement, seed=seed, ipc_graph=graph
    )
    metrics = controller.run(70)
    times = metrics.times()
    late_fabric = np.mean(
        [
            sum(
                s.base_traffic
                for s in metrics.switch_samples
                if s.time == t and s.level == 1
            )
            for t in times[-20:]
        ]
    )
    return {
        "colocated": graph.colocated_fraction(controller.vms),
        "migrations": metrics.migration_count(),
        "fabric_load": float(late_fabric),
        "dropped": metrics.total_dropped_power(),
    }


def main() -> None:
    print("IPC-heavy workload through a 25% supply squeeze")
    print(f"{'planner':>16} {'co-located':>11} {'migs':>5} "
          f"{'fabric load':>12} {'dropped':>9}")
    for aware in (False, True):
        stats = run_variant(aware)
        label = "affinity-aware" if aware else "plain FFDLR"
        print(
            f"{label:>16} {stats['colocated']:11.1%} {stats['migrations']:5d} "
            f"{stats['fabric_load']:12.0f} {stats['dropped']:9.0f}"
        )
    print()
    print("Splitting a clique turns its on-box chatter into fabric traffic;")
    print("the affinity-aware matcher offers each shed VM to a peer's host")
    print("first, keeping clusters together through the squeeze.")


if __name__ == "__main__":
    main()
