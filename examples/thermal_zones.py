"""Thermal zones: cooling is never uniform; Willow works around it.

Section III: "all servers in a rack do not receive the same degree of
cooling."  We put a third of the fleet in a hot aisle (40 C ambient)
and compare Willow against a thermally blind controller on the same
workload: where the blind controller overheats the hot aisle, Willow
respects the Eq. 3 caps and shifts work to the cold aisle instead.

Run with::

    python examples/thermal_zones.py
"""

import numpy as np

from repro.baselines import run_no_thermal
from repro.core import WillowConfig, WillowController
from repro.power import constant_supply
from repro.sim import RandomStreams
from repro.topology import build_paper_simulation
from repro.workload import (
    SIMULATION_APPS,
    random_placement,
    scale_for_target_utilization,
)

HOT_AISLE = {f"server-{i}": 40.0 for i in range(13, 19)}  # last 6 servers


def make_inputs(seed=11):
    tree = build_paper_simulation()
    config = WillowConfig()
    streams = RandomStreams(seed)
    placement = random_placement(
        [s.node_id for s in tree.servers()], SIMULATION_APPS, streams["placement"]
    )
    scale_for_target_utilization(placement, config.server_model.slope, 0.7)
    return tree, config, constant_supply(18 * 450.0), placement


def main() -> None:
    tree, config, supply, placement = make_inputs()
    willow = WillowController(
        tree, config, supply, placement, ambient_overrides=HOT_AISLE, seed=11
    )
    metrics = willow.run(80)

    tree2, config2, supply2, placement2 = make_inputs()
    blind_metrics, blind_violations = run_no_thermal(
        tree2, config2, supply2, placement2,
        n_ticks=80, seed=11, ambient_overrides=HOT_AISLE,
    )

    ids = metrics.server_ids()
    hot_ids = [tree.by_name(name).node_id for name in HOT_AISLE]
    cold_ids = [i for i in ids if i not in hot_ids]

    def zone_stats(collector, label):
        hot_power = np.mean([collector.mean_server(i, "power") for i in hot_ids])
        cold_power = np.mean([collector.mean_server(i, "power") for i in cold_ids])
        hot_peak = max(
            collector.server_series(i, "temperature").max() for i in hot_ids
        )
        print(
            f"  {label:14s} hot aisle {hot_power:6.1f} W (peak {hot_peak:5.1f} C)"
            f"   cold aisle {cold_power:6.1f} W"
        )
        return hot_peak

    print("Thermal zones -- 6 of 18 servers in a 40 C hot aisle, U=70%")
    willow_peak = zone_stats(metrics, "Willow")
    blind_peak = zone_stats(blind_metrics, "thermal-blind")
    print()
    print(f"  Willow thermal violations        : "
          f"{sum(s.thermal.violations for s in willow.servers.values())}")
    print(f"  thermal-blind violations         : {blind_violations}")
    print(f"  hot-aisle peak temperature       : "
          f"{willow_peak:.1f} C (Willow) vs {blind_peak:.1f} C (blind, limit 70)")
    print(f"  Willow migrations                : {metrics.migration_count()}")


if __name__ == "__main__":
    main()
