"""Holistic facility control: cooling-aware budgets.

The paper's future work asks Willow to "consider the energy consumed by
cooling infrastructure as well in the adaptation."  This example feeds
the controller an *effective IT budget* -- the facility supply minus
the cooling power needed to remove the IT heat -- across a day whose
outside temperature swings from a cool morning to a hot afternoon.

On the hot afternoon the chiller's COP drops, the same facility feed
supports less IT load, and Willow sheds/consolidates accordingly.

Run with::

    python examples/green_facility.py
"""

import numpy as np

from repro.cooling import CoolingModel, effective_it_budget, facility_report
from repro.core import WillowConfig, WillowController
from repro.power import step_supply
from repro.sim import RandomStreams
from repro.topology import build_paper_simulation
from repro.workload import (
    SIMULATION_APPS,
    random_placement,
    scale_for_target_utilization,
)

N_TICKS = 96  # one tick ~ 15 minutes


def outside_temperature(tick: int) -> float:
    """10 C at dawn, 38 C mid-afternoon."""
    return 24.0 + 14.0 * np.sin(np.pi * (tick - 20) / 60.0) if 20 <= tick <= 80 else 12.0


def main() -> None:
    config = WillowConfig()
    tree = build_paper_simulation()
    streams = RandomStreams(23)
    placement = random_placement(
        [s.node_id for s in tree.servers()], SIMULATION_APPS, streams["placement"]
    )
    scale_for_target_utilization(placement, config.server_model.slope, 0.55)

    cooling = CoolingModel()
    facility_feed = 18 * 450.0 * 1.1  # feed sized with ~10% cooling headroom
    segments = []
    for tick in range(N_TICKS):
        budget = effective_it_budget(
            facility_feed, cooling, outside_temperature(tick)
        )
        segments.append((float(tick), budget))
    compact = [segments[0]]
    for time, budget in segments[1:]:
        if abs(budget - compact[-1][1]) > 1e-9:
            compact.append((time, budget))
    supply = step_supply(compact)

    controller = WillowController(tree, config, supply, placement, seed=23)
    metrics = controller.run(N_TICKS)

    print("Green facility -- cooling-aware IT budgets across a day")
    print(f"{'tick':>5} {'outside C':>9} {'COP':>6} {'IT budget':>10} {'IT power':>9}")
    for tick in range(0, N_TICKS, 8):
        t_out = outside_temperature(tick)
        it_power = sum(
            s.power for s in metrics.server_samples if s.time == float(tick)
        )
        print(
            f"{tick:5d} {t_out:9.1f} {cooling.cop(t_out):6.1f} "
            f"{supply.at(float(tick)):10.0f} {it_power:9.0f}"
        )

    report_cool = facility_report(metrics, cooling, outside_temp=12.0)
    report_hot = facility_report(metrics, cooling, outside_temp=35.0)
    print()
    print(f"PUE if the whole day were cool (12C) : {report_cool.mean_pue:.2f}")
    print(f"PUE if the whole day were hot (35C)  : {report_hot.mean_pue:.2f}")
    print(f"migrations                           : {metrics.migration_count()}")
    print(f"demand dropped                       : "
          f"{metrics.total_dropped_power():.0f} W*ticks")


if __name__ == "__main__":
    main()
