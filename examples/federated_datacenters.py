"""Geo-federated data centers: follow the sun across sites.

Willow's hierarchy composes one level up (Fig. 1): here two data
centers on opposite sides of the planet -- their solar humps half a day
apart -- run tick-locked under a :class:`FederationCoordinator` that
shifts VM load toward whichever site currently has supply headroom.
The same fleet is first run isolated (the ``neutral`` policy) to show
what cross-site shifting buys.

Set ``WILLOW_EXAMPLE_TICKS`` to shorten the run (CI smoke uses 12).

Run with::

    python examples/federated_datacenters.py
"""

import os

from repro.experiments.fig_federation import build_specs
from repro.federation import run_federation
from repro.metrics.federation import summarize_federation

N_TICKS = int(os.environ.get("WILLOW_EXAMPLE_TICKS", "192"))


def main() -> None:
    kwargs = dict(battery_capacity=800.0, target_utilization=0.35, seed=1)

    isolated = run_federation(
        build_specs(2, **kwargs), n_ticks=N_TICKS, policy="neutral"
    )
    federated = run_federation(
        build_specs(2, **kwargs), n_ticks=N_TICKS, policy="proportional"
    )

    print("Geo-federation -- two sites, solar humps half a day apart")
    print()
    print("isolated sites (no shifting):")
    print(summarize_federation(isolated).format())
    print()
    print("federated (proportional shifting):")
    fed_summary = summarize_federation(federated)
    print(fed_summary.format())
    print()

    iso_dropped = summarize_federation(isolated).total_dropped_power
    fed_dropped = fed_summary.total_dropped_power
    if iso_dropped > 0:
        print(
            f"dropped demand: {iso_dropped:.0f} -> {fed_dropped:.0f} W*ticks "
            f"({1 - fed_dropped / iso_dropped:.1%} recovered by shifting)"
        )
    for migration in federated.cross_migrations[:5]:
        print(
            f"  t={migration.time:5.1f}  vm {migration.vm_id} "
            f"{migration.src_site} -> {migration.dst_site} "
            f"({migration.demand:.1f} W, src deficit "
            f"{migration.src_deficit:.1f} W)"
        )
    remaining = len(federated.cross_migrations) - 5
    if remaining > 0:
        print(f"  ... and {remaining} more cross-site moves")


if __name__ == "__main__":
    main()
