"""Brownout response: a data center rides through supply plunges.

The scenario of the paper's introduction: a leaner design means the
data center is occasionally under-powered.  We run the 18-server fleet
at 60 % utilization through a supply trace with three brown-out
episodes and show how Willow adapts: fleet power follows the budget,
migrations burst at the plunges, QoS loss stays bounded.

Run with::

    python examples/brownout_response.py
"""

import numpy as np

from repro.core import WillowConfig, WillowController
from repro.power import step_supply
from repro.sim import RandomStreams
from repro.topology import build_paper_simulation
from repro.workload import (
    SIMULATION_APPS,
    random_placement,
    scale_for_target_utilization,
)

N_TICKS = 120
BROWNOUTS = ((30, 50, 0.70), (70, 80, 0.55), (100, 110, 0.80))  # (start, end, factor)


def build_supply(nominal: float):
    segments = []
    for tick in range(N_TICKS):
        factor = 1.0
        for start, end, depth in BROWNOUTS:
            if start <= tick < end:
                factor = depth
        segments.append((float(tick), nominal * factor))
    # De-duplicate consecutive equal budgets for a compact trace.
    compact = [segments[0]]
    for time, budget in segments[1:]:
        if budget != compact[-1][1]:
            compact.append((time, budget))
    return step_supply(compact)


def main() -> None:
    config = WillowConfig()
    tree = build_paper_simulation()
    streams = RandomStreams(7)
    placement = random_placement(
        [s.node_id for s in tree.servers()], SIMULATION_APPS, streams["placement"]
    )
    scale_for_target_utilization(placement, config.server_model.slope, 0.6)

    nominal = 18 * config.circuit_limit
    supply = build_supply(nominal)
    controller = WillowController(tree, config, supply, placement, seed=7)
    metrics = controller.run(N_TICKS)

    # Per-tick fleet power vs the budget in force.
    times = metrics.times()
    fleet_power = np.array(
        [
            sum(s.power for s in metrics.server_samples if s.time == t)
            for t in times
        ]
    )
    budgets = np.array([supply.at(t) for t in times])
    migrations = metrics.migrations_per_tick(horizon=N_TICKS)

    print("Brownout response -- 18 servers at U=60%")
    print(f"{'tick':>5} {'budget (W)':>11} {'fleet (W)':>10} {'migs':>5}")
    for t in range(0, N_TICKS, 5):
        marker = " <- brownout" if budgets[t] < nominal else ""
        print(
            f"{t:5d} {budgets[t]:11.0f} {fleet_power[t]:10.0f} "
            f"{migrations[t]:5d}{marker}"
        )

    print()
    inside = [
        fleet_power[t] <= budgets[t] + 1e-6 for t in range(N_TICKS)
    ]
    print(f"fleet power within budget  : {np.mean(inside):.1%} of ticks")
    print(f"total migrations           : {metrics.migration_count()}")
    print(f"demand dropped             : {metrics.total_dropped_power():.0f} W*ticks")
    served = sum(s.power for s in metrics.server_samples)
    print(
        "QoS: dropped / served      : "
        f"{metrics.total_dropped_power() / served:.2%}"
    )


if __name__ == "__main__":
    main()
