"""Faulty plant: Willow when the hardware itself misbehaves.

The paper's controller assumes servers stay up, sensors tell the truth
and the cooling plant keeps the inlet at 25 C.  This example runs the
18-server fleet through a gauntlet of *physical* faults with the
sensor-fault-tolerant controller (:mod:`repro.plant_faults`): a server
crashes mid-run (its VMs are evacuated, then re-admitted after the
S3/S4 resume), one thermal sensor gets stuck and another drifts (both
are quarantined and the affected servers run open loop on the RC
model), a CRAC unit derates and ramps one zone's ambient up, and a
branch circuit trips, zeroing its subtree's budget.

Quality of service degrades gracefully -- demand is dropped or
rebalanced -- but the safety invariants hold: no server ever exceeds
``T_limit`` and no budget goes negative.

Run with::

    python examples/faulty_plant.py

Set ``WILLOW_EXAMPLE_TICKS`` to shorten the run (CI smoke uses 12).
"""

import os

from repro.core import WillowConfig
from repro.core.controller import run_willow
from repro.core.events import MigrationCause
from repro.plant_faults import (
    SENSOR_DRIFT,
    SENSOR_STUCK,
    CircuitTrip,
    CoolingDegradation,
    PlantFaultSchedule,
    SensorFault,
    ServerCrash,
    run_resilient,
)
from repro.topology import build_paper_simulation

N_TICKS = int(os.environ.get("WILLOW_EXAMPLE_TICKS", "48"))
SEED = 5
UTILIZATION = 0.6


def main() -> None:
    config = WillowConfig()
    run_kwargs = dict(
        config=config,
        target_utilization=UTILIZATION,
        n_ticks=N_TICKS,
        seed=SEED,
    )

    # The ideal twin: perfect hardware, honest sensors.
    _, ideal = run_willow(**run_kwargs)

    # Fault windows scale with the horizon so short smoke runs hit them.
    tree = build_paper_simulation()
    servers = tree.servers()
    width = max(2, N_TICKS // 5)
    third = max(1, N_TICKS // 3)
    crash = ServerCrash(servers[2].node_id, third, third + width)
    stuck = SensorFault(
        servers[5].node_id, 2, 2 + 2 * width, kind=SENSOR_STUCK
    )
    drift = SensorFault(
        servers[9].node_id, third, third + 2 * width,
        kind=SENSOR_DRIFT, magnitude=1.0,
    )
    hot_zone = tree.root.children[-1]
    cooling = CoolingDegradation(
        2 * third, 2 * third + width, derate=0.8, zone_id=hot_zone.node_id
    )
    tripped = tree.root.children[0].children[0]
    trip = CircuitTrip(tripped.node_id, third + 1, third + 1 + width)
    schedule = PlantFaultSchedule(
        crashes=(crash,),
        sensor_faults=(stuck, drift),
        cooling=(cooling,),
        trips=(trip,),
    )

    controller, faulty = run_resilient(
        tree=tree, plant_faults=schedule, outside_temp=38.0, **run_kwargs
    )

    print("Faulty plant -- 18 servers at U=60% under physical fault injection")
    print(
        f"fault: server {crash.server_id} crashed ticks "
        f"[{crash.start_tick}, {crash.end_tick})"
    )
    print(
        f"fault: sensor {stuck.server_id} stuck-at, sensor {drift.server_id} "
        f"drifting +{drift.magnitude:.1f} C/tick"
    )
    print(
        f"fault: cooling zone {cooling.zone_id} derated {cooling.derate:.0%} "
        f"ticks [{cooling.start_tick}, {cooling.end_tick})"
    )
    print(
        f"fault: circuit {trip.node_id} tripped ticks "
        f"[{trip.start_tick}, {trip.end_tick})"
    )
    print()

    counts = faulty.plant_event_counts()
    for kind in sorted(counts):
        print(f"plant event {kind:<18} : {counts[kind]}")
    print(
        "evacuation migrations      : "
        f"{faulty.migration_count(MigrationCause.EVACUATION)}"
    )
    print()

    ideal_dropped = ideal.total_dropped_power()
    faulty_dropped = faulty.total_dropped_power()
    print(f"dropped demand (ideal)     : {ideal_dropped:.0f} W*ticks")
    print(f"dropped demand (faulty)    : {faulty_dropped:.0f} W*ticks")

    t_limit = config.thermal.t_limit
    worst = max(s.temperature for s in faulty.server_samples)
    min_budget = min(s.budget for s in faulty.server_samples)
    violations = sum(
        s.thermal.violations for s in controller.servers.values()
    )
    print(f"worst temperature          : {worst:.1f} C (T_limit {t_limit:.0f} C)")
    print(f"thermal violations         : {violations}")
    print(f"minimum budget             : {min_budget:.1f} W (never negative)")
    verdict = (
        "held"
        if worst <= t_limit + 1e-6 and min_budget >= 0.0 and not violations
        else "VIOLATED"
    )
    print(f"safety invariants          : {verdict}")


if __name__ == "__main__":
    main()
