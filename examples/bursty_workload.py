"""Bursty (data-mining-style) demand: severe variations, same controls.

The paper predicts that "as the computing moves towards more real-time
data mining driven answers to user queries, the demand side variations
could become significantly more severe, thereby further increasing the
need for adaptation."  This example compares plain Poisson demand with
a Markov-modulated bursty workload of the same long-run mean and shows
what the extra variance costs -- and how much of it the P_min margin
absorbs.

Run with::

    python examples/bursty_workload.py
"""

import numpy as np

from repro.core import WillowConfig, WillowController
from repro.metrics import summarize_run
from repro.power import constant_supply
from repro.sim import RandomStreams
from repro.topology import build_paper_simulation
from repro.workload import (
    BurstyDemandGenerator,
    DemandGenerator,
    SIMULATION_APPS,
    random_placement,
    scale_for_target_utilization,
)

N_TICKS = 80


def run(bursty: bool, p_min: float, seed: int = 29):
    tree = build_paper_simulation()
    config = WillowConfig(p_min=p_min)
    streams = RandomStreams(seed)
    placement = random_placement(
        [s.node_id for s in tree.servers()], SIMULATION_APPS, streams["placement"]
    )
    scale_for_target_utilization(placement, config.server_model.slope, 0.6)
    source = (
        BurstyDemandGenerator(placement, streams)
        if bursty
        else DemandGenerator(placement, streams)
    )
    controller = WillowController(
        tree,
        config,
        constant_supply(18 * 450.0),
        placement,
        demand_source=source,
        seed=seed,
    )
    return summarize_run(controller.run(N_TICKS))


def main() -> None:
    print("Bursty vs steady demand (same long-run mean, U=60%)")
    print(f"{'workload':>10} {'P_min':>6} {'migs':>6} {'dropped':>9} {'fleet W':>8}")
    for bursty in (False, True):
        for p_min in (10.0, 40.0):
            summary = run(bursty, p_min)
            label = "bursty" if bursty else "steady"
            migs = summary.demand_migrations + summary.consolidation_migrations
            print(
                f"{label:>10} {p_min:6.0f} {migs:6d} "
                f"{summary.dropped_power:9.0f} {summary.mean_fleet_power:8.0f}"
            )
    print()
    print("Bursts multiply QoS loss at the same mean load (correlated")
    print("spikes leave no surplus to migrate into); a larger migration")
    print("margin (P_min) suppresses churn at the cost of throttling --")
    print("the stability/QoS dial the paper designs around.")


if __name__ == "__main__":
    main()
