"""Quickstart: run Willow on the paper's 18-server data center.

Builds the Fig. 3 hierarchy, places a random transactional workload at
40 % utilization, runs 100 control ticks, and prints what the
controller did.

Run with::

    python examples/quickstart.py
"""

from repro.core import MigrationCause, run_willow


def main() -> None:
    controller, metrics = run_willow(
        target_utilization=0.40,
        n_ticks=100,
        seed=42,
    )

    servers = metrics.server_ids()
    fleet_power = sum(metrics.mean_server(i, "power") for i in servers)
    peak_temp = max(
        metrics.server_series(i, "temperature").max() for i in servers
    )
    asleep = sum(1 for s in metrics.server_samples if s.asleep)

    print("Willow quickstart -- 18 servers, 4-level hierarchy, U=40%")
    print(f"  fleet average power        : {fleet_power:8.1f} W")
    print(f"  peak server temperature    : {peak_temp:8.1f} C (limit 70)")
    print(
        "  migrations                 : "
        f"{metrics.migration_count(MigrationCause.DEMAND):4d} demand-driven, "
        f"{metrics.migration_count(MigrationCause.CONSOLIDATION):4d} "
        "consolidation-driven"
    )
    print(f"  local migrations           : {metrics.local_fraction():8.1%}")
    print(f"  server-ticks asleep        : {asleep:8d}")
    print(f"  demand dropped             : {metrics.total_dropped_power():8.1f} W*ticks")
    print(
        "  thermal violations         : "
        f"{sum(s.thermal.violations for s in controller.servers.values()):8d}"
    )


if __name__ == "__main__":
    main()
