"""Component-level thermal control: the disk is the weakest link.

Implements the paper's "more complete design" (Sec. VI): every server
tracks CPU / DIMM / NIC / disk temperatures separately, and the hard
power cap is the tightest *component* envelope rather than a single
server-level limit.  In a 40 C hot aisle the binding component flips
from the CPU to the disk, tightening the cap from 300 W to ~257 W —
and Willow adapts placement accordingly.

Run with::

    python examples/component_thermal.py
"""

import numpy as np

from repro.core import WillowConfig, run_willow
from repro.devices import DeviceSet, STANDARD_DEVICES

HOT = {f"server-{i}": 40.0 for i in range(15, 19)}


def show_envelopes() -> None:
    print("Component envelopes and the induced server-level cap")
    print(f"{'zone':>8} {'cpu':>7} {'dimm':>7} {'nic':>7} {'disk':>7} "
          f"{'server cap':>11} {'binding':>8}")
    for label, ambient in (("25C", 25.0), ("40C", 40.0)):
        devices = DeviceSet(STANDARD_DEVICES, t_ambient=ambient)
        caps = devices.device_caps()
        print(
            f"{label:>8} "
            + " ".join(f"{caps[n]:7.0f}" for n in ("cpu", "dimm", "nic", "disk"))
            + f" {devices.server_cap():11.0f} {devices.binding_device():>8}"
        )


def run_fleet() -> None:
    config = WillowConfig(device_classes=STANDARD_DEVICES)
    controller, metrics = run_willow(
        config=config,
        target_utilization=0.7,
        n_ticks=80,
        seed=6,
        ambient_overrides=HOT,
    )
    print()
    print("Fleet at U=70% with 4 servers in the 40C aisle, device-aware caps")
    hottest = {}
    for server in controller.servers.values():
        name, margin = server.devices.hottest_margin()
        hottest[name] = hottest.get(name, 0) + 1
    print(f"  binding/hottest component per server : {hottest}")
    violations = sum(
        sum(s.devices.violations.values()) for s in controller.servers.values()
    )
    print(f"  component thermal violations         : {violations}")
    ids = metrics.server_ids()
    hot_power = np.mean([metrics.mean_server(i, "power") for i in ids[14:]])
    cold_power = np.mean([metrics.mean_server(i, "power") for i in ids[:14]])
    print(f"  hot-aisle mean power                 : {hot_power:.0f} W "
          f"(cap ~257 W, disk-bound)")
    print(f"  cold-aisle mean power                : {cold_power:.0f} W")


def main() -> None:
    show_envelopes()
    run_fleet()


if __name__ == "__main__":
    main()
