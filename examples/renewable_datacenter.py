"""Renewable-powered data center: ride the solar curve.

The paper motivates Energy Adaptive Computing with data centers running
directly off variable renewable supply.  This example powers the
18-server fleet from a solar-like diurnal budget (25 % grid base +
solar hump with cloud noise) for two simulated days and shows Willow
consolidating the fleet at night and re-expanding by day.

Run with::

    python examples/renewable_datacenter.py
"""

import numpy as np

from repro.core import WillowConfig, WillowController
from repro.power import renewable_supply
from repro.sim import RandomStreams
from repro.topology import build_paper_simulation
from repro.workload import (
    DiurnalDemandGenerator,
    SIMULATION_APPS,
    random_placement,
    scale_for_target_utilization,
)

DAY_TICKS = 96  # one tick ~ 15 simulated minutes
DAYS = 2


def main() -> None:
    config = WillowConfig()
    tree = build_paper_simulation()
    streams = RandomStreams(3)
    placement = random_placement(
        [s.node_id for s in tree.servers()], SIMULATION_APPS, streams["placement"]
    )
    scale_for_target_utilization(placement, config.server_model.slope, 0.45)
    # The workload follows the day too: demand peaks mid-day, exactly
    # when the solar supply does -- the favourable alignment renewable
    # data centers count on.
    demand = DiurnalDemandGenerator(
        placement, streams, day_length=float(DAY_TICKS), base=0.4, peak=1.6
    )

    peak = 18 * config.circuit_limit
    supply = renewable_supply(
        peak,
        base_fraction=0.25,
        day_length=float(DAY_TICKS),
        days=DAYS,
        cloud_noise=0.10,
        rng=np.random.default_rng(3),
    )
    controller = WillowController(
        tree, config, supply, placement, demand_source=demand, seed=3
    )
    n_ticks = DAY_TICKS * DAYS
    metrics = controller.run(n_ticks)

    times = metrics.times()
    print("Renewable data center -- 2 days on a solar profile")
    print(f"{'hour':>6} {'supply (W)':>11} {'fleet (W)':>10} {'asleep':>7} {'dropped':>8}")
    for index in range(0, n_ticks, 8):
        t = times[index]
        tick_samples = [s for s in metrics.server_samples if s.time == t]
        fleet = sum(s.power for s in tick_samples)
        asleep = sum(1 for s in tick_samples if s.asleep)
        dropped = sum(d.power for d in metrics.drops if abs(d.time - t) < 0.5)
        hour = (index % DAY_TICKS) / DAY_TICKS * 24.0
        print(
            f"{hour:6.1f} {supply.at(t):11.0f} {fleet:10.0f} "
            f"{asleep:4d}/18 {dropped:8.0f}"
        )

    # Judge the settled behaviour on day 2 only (day 1 includes the
    # cold-start before the first consolidation rounds).
    day2 = [s for s in metrics.server_samples if s.time >= DAY_TICKS]
    night = [s for s in day2 if (s.time % DAY_TICKS) < 0.2 * DAY_TICKS]
    midday = [
        s
        for s in day2
        if abs((s.time % DAY_TICKS) - 0.5 * DAY_TICKS) < 0.15 * DAY_TICKS
    ]
    print()
    print(f"servers asleep at night (day 2)  : "
          f"{np.mean([s.asleep for s in night]):.1%}")
    print(f"servers asleep at midday (day 2) : "
          f"{np.mean([s.asleep for s in midday]):.1%}")
    print(f"total migrations                 : {metrics.migration_count()}")


if __name__ == "__main__":
    main()
