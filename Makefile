PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-smoke bench-guard federation-bench-smoke trace-smoke examples-smoke federation-smoke mpc-smoke gym-smoke service-smoke resume-smoke experiments clean-cache

test:
	$(PYTHON) -m pytest tests/ -q

## Run every example script end-to-end at a small tick count.
examples-smoke:
	@set -e; for script in examples/*.py; do \
		echo "== $$script"; \
		WILLOW_EXAMPLE_TICKS=12 timeout 120 $(PYTHON) $$script > /dev/null; \
	done; echo "all examples OK"

## Geo-federation smoke: the follow-the-sun example plus a tiny
## 2-site sweep through the CLI subcommand.
federation-smoke:
	@set -e; \
	WILLOW_EXAMPLE_TICKS=12 timeout 120 \
		$(PYTHON) examples/federated_datacenters.py > /dev/null; \
	timeout 120 $(PYTHON) -m repro.cli federation \
		--sites 2 --ticks 24 --policy proportional > /dev/null; \
	timeout 120 $(PYTHON) -m repro.cli federation \
		--sites 2 --ticks 24 --battery 500:100 \
		--policy greedy-greenest > /dev/null; \
	echo "federation smoke OK"

## Predictive-federation (MPC) smoke: a tiny anti-correlated-solar run
## asserting predictive lookahead strictly reduces dropped demand vs
## proportional at equal-or-lower WAN energy with zero thermal
## violations (both with and without cooling actuation), plus a CLI
## pass through --policy predictive --horizon/--cooling.
mpc-smoke:
	@set -e; \
	timeout 300 $(PYTHON) -c \
		"from repro.experiments.fig_predictive import smoke; smoke()"; \
	timeout 120 $(PYTHON) -m repro.cli federation \
		--sites 2 --ticks 24 --battery 500:100 \
		--policy predictive --horizon 3 --cooling > /dev/null; \
	echo "mpc smoke OK"

## Gym smoke: train the CEM scheduler on the seeded episode and assert
## the CI contract (beats neutral, never loses to proportional on
## dropped demand, zero thermal violations on every row), check the
## env-step overhead stays under the 10% bound, and pass the gym CLI
## subcommand end-to-end.
gym-smoke:
	@set -e; \
	timeout 300 $(PYTHON) -c \
		"from repro.gym.evaluate import smoke; smoke()"; \
	timeout 300 $(PYTHON) -m pytest benchmarks/test_bench_gym.py -q; \
	timeout 300 $(PYTHON) -m repro.cli gym \
		--windows 12 --iterations 1 --population 4 --no-bandit > /dev/null; \
	echo "gym smoke OK"

## Full performance run: writes BENCH_tick.json / BENCH_sweep.json.
bench:
	$(PYTHON) -m repro.cli bench

## Tier-1 tests + a smoke-sized perf run (same JSON schema) in one go.
bench-smoke:
	$(PYTHON) -m pytest tests/ -x -q
	$(PYTHON) -m repro.cli bench --quick --out .

## Regression guard against the recorded BENCH_tick.json.
bench-guard:
	$(PYTHON) -m pytest benchmarks/test_bench_hotpath.py benchmarks/test_bench_trace.py -q

## Batched-federation guard: equivalence tests + the federation section
## of the perf regression guard (quick-sized fresh measurement).
federation-bench-smoke:
	$(PYTHON) -m pytest tests/test_federation_vectorized.py -q
	$(PYTHON) -m pytest benchmarks/test_bench_federation.py -q

## Willow-as-a-service smoke: a short live run (TCP gateway + wall-clock
## ticks + self-generated load) whose audit log is then replayed offline
## -- the replay exits non-zero unless it is bit-exact with the live run.
service-smoke:
	@set -e; audit=$$(mktemp -d)/audit.jsonl; \
	timeout 120 $(PYTHON) -m repro.cli serve $$audit \
		--ticks 8 --tick-seconds 0.1 --load 8000 --seed 11; \
	timeout 120 $(PYTHON) -m repro.cli replay $$audit --summary; \
	timeout 120 $(PYTHON) -m repro.cli serve $$audit \
		--ticks 4 --tick-seconds 0.05 --controller vectorized --no-listen; \
	timeout 120 $(PYTHON) -m repro.cli replay $$audit; \
	rm -rf $$(dirname $$audit); echo "service live/replay parity OK"

## Crash-recovery drill: kill -9 a live checkpointed run mid-flight,
## corrupt the newest checkpoint, recover from the previous valid one
## plus the audit tail, and verify the combined audit log replays
## bit-exactly against the recovered run's decision digest.
resume-smoke:
	@set -e; dir=$$(mktemp -d); audit=$$dir/audit.jsonl; \
	$(PYTHON) -m repro.cli serve $$audit \
		--ticks 500 --tick-seconds 0.05 --seed 3 --load 4000 \
		--checkpoint-dir $$audit.ckpt --checkpoint-every 4 \
		> $$dir/serve.out 2>&1 & pid=$$!; \
	for i in $$(seq 1 200); do \
		n=$$(ls $$audit.ckpt/checkpoint-*.wck 2>/dev/null | wc -l); \
		[ "$$n" -ge 3 ] && break; sleep 0.2; \
	done; \
	[ "$$n" -ge 3 ] || { echo "no checkpoints appeared"; kill -9 $$pid; exit 1; }; \
	kill -9 $$pid; wait $$pid 2>/dev/null || true; \
	echo "killed live run after $$n checkpoint(s)"; \
	newest=$$(ls $$audit.ckpt/checkpoint-*.wck | tail -1); \
	printf 'CORRUPT' | dd of=$$newest bs=1 seek=400 conv=notrunc 2>/dev/null; \
	timeout 120 $(PYTHON) -m repro.cli serve $$audit \
		--recover --no-listen --ticks 6 --tick-seconds 0.02; \
	timeout 120 $(PYTHON) -m repro.cli replay $$audit; \
	timeout 120 $(PYTHON) -m repro.cli checkpoint $$dir/batch.ckpt \
		--ticks 30 --seed 7 | grep "decision digest" > $$dir/a; \
	timeout 120 $(PYTHON) -m repro.cli resume $$dir/batch.ckpt \
		| grep "decision digest" > $$dir/b; \
	cmp $$dir/a $$dir/b; \
	rm -rf $$dir; echo "crash recovery parity OK"

## Record a faulty-plant run with tracing on, then replay it through
## the trace CLI (overview, per-server explanation, fault edges).
trace-smoke:
	@set -e; trace=$$(mktemp -d)/run.trace; \
	$(PYTHON) -m repro.cli resilience --ticks 60 --seed 7 \
		--crashes 2 --sensor-faults 1 --trips 1 --trace $$trace > /dev/null; \
	$(PYTHON) -m repro.cli trace $$trace; \
	$(PYTHON) -m repro.cli trace $$trace --tick 40; \
	$(PYTHON) -m repro.cli trace $$trace --histogram --events; \
	rm -rf $$(dirname $$trace); echo "trace round-trip OK"

experiments:
	$(PYTHON) -m repro.experiments.runner all

clean-cache:
	rm -rf .willow_cache
