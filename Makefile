PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-smoke bench-guard examples-smoke experiments clean-cache

test:
	$(PYTHON) -m pytest tests/ -q

## Run every example script end-to-end at a small tick count.
examples-smoke:
	@set -e; for script in examples/*.py; do \
		echo "== $$script"; \
		WILLOW_EXAMPLE_TICKS=12 timeout 120 $(PYTHON) $$script > /dev/null; \
	done; echo "all examples OK"

## Full performance run: writes BENCH_tick.json / BENCH_sweep.json.
bench:
	$(PYTHON) -m repro.cli bench

## Tier-1 tests + a smoke-sized perf run (same JSON schema) in one go.
bench-smoke:
	$(PYTHON) -m pytest tests/ -x -q
	$(PYTHON) -m repro.cli bench --quick --out .

## Regression guard against the recorded BENCH_tick.json.
bench-guard:
	$(PYTHON) -m pytest benchmarks/test_bench_hotpath.py -q

experiments:
	$(PYTHON) -m repro.experiments.runner all

clean-cache:
	rm -rf .willow_cache
