PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-smoke bench-guard experiments clean-cache

test:
	$(PYTHON) -m pytest tests/ -q

## Full performance run: writes BENCH_tick.json / BENCH_sweep.json.
bench:
	$(PYTHON) -m repro.cli bench

## Tier-1 tests + a smoke-sized perf run (same JSON schema) in one go.
bench-smoke:
	$(PYTHON) -m pytest tests/ -x -q
	$(PYTHON) -m repro.cli bench --quick --out .

## Regression guard against the recorded BENCH_tick.json.
bench-guard:
	$(PYTHON) -m pytest benchmarks/test_bench_hotpath.py -q

experiments:
	$(PYTHON) -m repro.experiments.runner all

clean-cache:
	rm -rf .willow_cache
