"""Extension bench: multiple QoS classes (the paper's future work).

Asserts the priority ladder: under a supply collapse, loss fractions
order gold <= silver <= bronze.
"""

from repro.core import WillowConfig, WillowController
from repro.power import step_supply
from repro.qos import per_class_report, tiered_catalog
from repro.sim import RandomStreams
from repro.topology import build_paper_simulation
from repro.workload import (
    SIMULATION_APPS,
    random_placement,
    scale_for_target_utilization,
)


def run_scenario(seed: int = 17):
    config = WillowConfig()
    tree = build_paper_simulation()
    streams = RandomStreams(seed)
    placement = random_placement(
        [s.node_id for s in tree.servers()],
        tuple(tiered_catalog(SIMULATION_APPS)),
        streams["placement"],
        vms_per_server=6,
    )
    scale_for_target_utilization(placement, config.server_model.slope, 0.65)
    supply = step_supply([(0.0, 18 * 450.0), (30.0, 18 * 200.0)])
    controller = WillowController(tree, config, supply, placement, seed=seed)
    collector = controller.run(80)
    return per_class_report(collector, controller.vms, scale=controller.placement.scale)


def test_bench_extension_qos_priority_ladder(benchmark):
    report = benchmark.pedantic(run_scenario, rounds=1, iterations=1)
    benchmark.extra_info["loss"] = {
        name: tier.loss_fraction for name, tier in report.items()
    }
    print()
    for name in ("gold", "silver", "bronze"):
        tier = report[name]
        print(f"{name:>7}: loss {tier.loss_fraction:.1%}")
    assert report["gold"].loss_fraction <= report["silver"].loss_fraction
    assert report["silver"].loss_fraction <= report["bronze"].loss_fraction
    assert report["bronze"].dropped > 0
    # Gold keeps the vast majority of its service through the collapse.
    assert report["gold"].loss_fraction < 0.35
