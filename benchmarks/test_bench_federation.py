"""Regression guard for the batched federation hot path.

Mirrors ``test_bench_hotpath.py``: a fresh quick measurement is
compared against the recorded ``federation`` section of
``BENCH_tick.json`` at the repo root (written by ``python -m repro.cli
bench``).  Tolerances are generous -- CI runners and laptops differ by
integer factors -- so only a genuine regression fails: the batched
coordinator falling behind the per-site scalar loop, the steady-state
speedup collapsing below the pinned floor, or an order-of-magnitude
slowdown against the recording.  Skips when no baseline (or an old
baseline without a ``federation`` section) has been recorded.
"""

import json
from pathlib import Path

import pytest

_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_tick.json"

#: A fresh run may be this many times slower than the recorded baseline
#: before we call it a regression (absorbs machine-to-machine spread).
_SLOWDOWN_TOLERANCE = 10.0

#: Pinned floor for the steady-state speedup at 512+ servers.  The
#: recorded headline is ~5-6x; guard well below it so shared-runner
#: noise cannot flake the suite while a real de-vectorization (the
#: fused tick falling back to per-site scalar work) still fails.
_STEADY_SPEEDUP_FLOOR = 2.0


@pytest.fixture(scope="module")
def baseline():
    if not _BASELINE.is_file():
        pytest.skip("no recorded baseline (run: python -m repro.cli bench)")
    payload = json.loads(_BASELINE.read_text())
    if "federation" not in payload:
        pytest.skip("baseline predates the federation suite (re-run bench)")
    section = dict(payload["federation"])
    section["meta"] = payload.get("meta", {})
    return section


@pytest.fixture(scope="module")
def fresh():
    from repro.benchmarks.harness import bench_federation

    return bench_federation(quick=True)


def test_batched_federation_beats_scalar_loop(fresh):
    for row in fresh["scaling"]:
        assert row["speedup"] > 1.0, (
            f"batched federation no longer beats the per-site scalar "
            f"loop ({row['workload']}, n={row['n_servers']}): "
            f"{row['speedup']:.2f}x"
        )


def test_steady_state_speedup_keeps_floor(fresh):
    steady = [r for r in fresh["scaling"] if r["workload"] == "steady"]
    assert steady, "harness stopped emitting steady-state scaling rows"
    for row in steady:
        assert row["speedup"] >= _STEADY_SPEEDUP_FLOOR, (
            f"steady-state speedup at n={row['n_servers']} dropped to "
            f"{row['speedup']:.2f}x (floor {_STEADY_SPEEDUP_FLOOR}x)"
        )


def test_batched_tick_not_regressed_vs_baseline(baseline, fresh):
    recorded = {
        (row["workload"], row["n_servers"]): row["batched_ms_per_tick"]
        for row in baseline.get("scaling", [])
    }
    for row in fresh["scaling"]:
        key = (row["workload"], row["n_servers"])
        if key not in recorded:
            continue
        assert row["batched_ms_per_tick"] <= recorded[key] * _SLOWDOWN_TOLERANCE, (
            f"batched federation tick at {key} is "
            f"{row['batched_ms_per_tick']:.3f} ms vs recorded "
            f"{recorded[key]:.3f} ms (> {_SLOWDOWN_TOLERANCE}x slower)"
        )


def test_recorded_frontier_hits_realtime_at_10k(baseline):
    # The recorded full run must include the 10k-server row and it must
    # have ticked at/faster than realtime (wall <= delta_d).  This pins
    # the scaling story without re-running a 10k build on CI.
    rows = {row["label"]: row for row in baseline.get("frontier", [])}
    ten_k = rows.get("10k_realtime")
    assert ten_k is not None, "baseline frontier lacks the 10k row"
    if baseline.get("meta", {}).get("quick") or ten_k["n_servers"] < 10_000:
        pytest.skip("baseline was recorded quick-sized")
    assert ten_k["realtime_ok"], (
        f"recorded 10k-server federation ticked at "
        f"{ten_k['ms_per_tick']:.0f} ms vs the "
        f"{ten_k['realtime_budget_ms']:.0f} ms realtime budget"
    )


def test_fresh_frontier_row_is_realtime(fresh):
    # Even the quick-sized frontier row (a ~2k-server batched build)
    # must tick far inside the realtime budget on any machine.
    for row in fresh["frontier"]:
        assert row["realtime_ok"], (
            f"frontier row {row['label']} ({row['n_servers']} servers) "
            f"ticked at {row['ms_per_tick']:.0f} ms vs the "
            f"{row['realtime_budget_ms']:.0f} ms budget"
        )
