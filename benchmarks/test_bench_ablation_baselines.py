"""Ablation: Willow vs independent / centralized / thermal-blind control.

Quantifies each ingredient of the design: coordination (vs independent
per-server control), hierarchy (vs a flat centralized matcher), and
the Eq. 3 thermal caps (vs a thermally blind controller).
"""

import numpy as np

from repro.baselines import run_centralized, run_independent, run_no_thermal
from repro.core import WillowConfig, WillowController
from repro.power import constant_supply
from repro.sim import RandomStreams
from repro.topology import build_paper_simulation
from repro.workload import (
    SIMULATION_APPS,
    random_placement,
    scale_for_target_utilization,
)

HOT = {f"server-{i}": 40.0 for i in range(15, 19)}
SEED = 8
TICKS = 50


def fresh_inputs():
    tree = build_paper_simulation()
    config = WillowConfig()
    streams = RandomStreams(SEED)
    placement = random_placement(
        [s.node_id for s in tree.servers()], SIMULATION_APPS, streams["placement"]
    )
    scale_for_target_utilization(placement, config.server_model.slope, 0.6)
    return tree, config, constant_supply(18 * 450.0), placement


def run_all():
    outcomes = {}

    tree, config, supply, placement = fresh_inputs()
    willow = WillowController(
        tree, config, supply, placement, ambient_overrides=HOT, seed=SEED
    )
    collector = willow.run(TICKS)
    outcomes["willow"] = {
        "dropped": collector.total_dropped_power(),
        "violations": sum(s.thermal.violations for s in willow.servers.values()),
        "worst_link_msgs": max(
            collector.messages_per_link_per_tick().values()
        ),
    }

    tree, config, supply, placement = fresh_inputs()
    independent = run_independent(
        tree, config, supply, placement, n_ticks=TICKS, seed=SEED,
        ambient_overrides=HOT,
    )
    outcomes["independent"] = {
        "dropped": independent.total_dropped_power(),
        "violations": 0,
        "worst_link_msgs": 0,
    }

    tree, config, supply, placement = fresh_inputs()
    centralized = run_centralized(
        tree, config, supply, placement, n_ticks=TICKS, seed=SEED,
        ambient_overrides=HOT,
    )
    outcomes["centralized"] = {
        "dropped": centralized.total_dropped_power(),
        "violations": 0,
        "root_msgs_per_tick": sum(1 for m in centralized.messages if m.upward)
        / TICKS,
    }

    tree, config, supply, placement = fresh_inputs()
    _collector, violations = run_no_thermal(
        tree, config, supply, placement, n_ticks=TICKS, seed=SEED,
        ambient_overrides=HOT,
    )
    outcomes["no_thermal"] = {"violations": violations}
    return outcomes


def test_bench_ablation_baselines(benchmark):
    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)
    benchmark.extra_info["outcomes"] = outcomes
    print()
    for name, stats in outcomes.items():
        print(f"{name:12s} {stats}")

    # Coordination wins: Willow drops far less than independent control.
    assert outcomes["willow"]["dropped"] < 0.8 * outcomes["independent"]["dropped"]
    # Thermal caps matter: the blind controller violates; Willow never.
    assert outcomes["willow"]["violations"] == 0
    assert outcomes["no_thermal"]["violations"] > 0
    # Hierarchy matters for message load: Willow keeps <= 2 per link,
    # centralized pushes one message per server through the root.
    assert outcomes["willow"]["worst_link_msgs"] <= 2
    assert outcomes["centralized"]["root_msgs_per_tick"] == 18
    # Property 2 flavour: hierarchical matching is not materially worse
    # than the centralized matcher on served demand.
    assert outcomes["willow"]["dropped"] <= 2.0 * max(
        outcomes["centralized"]["dropped"], 1.0
    ) + 0.05 * outcomes["independent"]["dropped"]
