"""Bench: Fig. 6 -- average server temperature vs utilization."""

import numpy as np
from conftest import clear_sweep_cache

from repro.experiments import fig06_temperature


def test_bench_fig06_temperature_convergence(benchmark, record_result):
    def run():
        clear_sweep_cache()
        return fig06_temperature.run(n_ticks=120, seed=11)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(result)
    data = result.data
    # Hot zone pinned near its 40 C ambient at low utilization.
    assert data["hot"][0] >= 39.0
    assert data["cold"][0] < 35.0
    # Temperatures converge as utilization rises (gap shrinks).
    gaps = data["gap"]
    assert np.mean(gaps[:3]) > 2.0 * np.mean(gaps[-3:]) or np.mean(
        gaps[-3:]
    ) < 3.0
    # The 70 C limit is never crossed.
    for temps in data["per_server"]:
        assert max(temps) <= 70.0 + 1e-6
