"""Bench: Figs. 15+16 -- deficit supply trace and migration bursts."""

from repro.experiments import fig15_16_deficit


def test_bench_fig15_16_deficit_run(benchmark, record_result):
    result = benchmark.pedantic(fig15_16_deficit.run, rounds=1, iterations=1)
    record_result(result)
    data = result.data
    # A migration burst at every supply plunge (units 7, 12, 25).
    for start, count in data["bursts"].items():
        assert count >= 1, f"no burst at plunge unit {start}"
    # Decision stability: nothing moves while a plunge persists...
    assert data["migrations_during_persistence"] == 0
    # ...and nothing moves when the supply recovers (unidirectional).
    assert data["migrations_at_recovery"] == 0
    # Off-plunge (constraint-driven) activity stays small.
    assert data["off_plunge_migrations"] <= 4
