"""Regression guard for the live-service ingest path.

Mirrors ``test_bench_federation.py``: the recorded ``service`` section
of ``BENCH_tick.json`` (written by ``python -m repro.cli bench`` or
``... bench service``) pins the headline numbers -- >= 10k sustained
accepted events/sec with every tick inside the Delta_d = 1 s budget --
and a fresh quick measurement guards against order-of-magnitude
regressions with tolerances generous enough for shared CI runners.
The fresh run also re-checks the replay contract under real load:
its audit log must replay bit-exactly.
"""

import json
from pathlib import Path

import pytest

_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_tick.json"

#: The acceptance floor for the *recorded* run: the service must have
#: sustained at least this many accepted events/sec at Delta_d = 1 s.
_RECORDED_EVENTS_PER_SEC_FLOOR = 10_000.0

#: Floor for a fresh quick run on an arbitrary (possibly throttled CI)
#: machine -- well below the recorded headline, above any real collapse.
_FRESH_EVENTS_PER_SEC_FLOOR = 2_000.0

#: A fresh run may be this many times slower than the recording before
#: we call it a regression.
_SLOWDOWN_TOLERANCE = 10.0


@pytest.fixture(scope="module")
def baseline():
    if not _BASELINE.is_file():
        pytest.skip("no recorded baseline (run: python -m repro.cli bench)")
    payload = json.loads(_BASELINE.read_text())
    if "service" not in payload:
        pytest.skip("baseline predates the service suite (re-run bench)")
    return payload["service"]


@pytest.fixture(scope="module")
def fresh():
    from repro.benchmarks.harness import bench_service

    return bench_service(quick=True)


def test_recorded_run_sustains_10k_events_per_sec(baseline):
    assert baseline["accepted_per_sec"] >= _RECORDED_EVENTS_PER_SEC_FLOOR, (
        f"recorded service ingest sustained only "
        f"{baseline['accepted_per_sec']:.0f} accepted events/s "
        f"(floor {_RECORDED_EVENTS_PER_SEC_FLOOR:.0f}); re-run "
        f"'python -m repro.cli bench service' on a quiet machine"
    )


def test_recorded_run_ticked_inside_delta_d(baseline):
    assert baseline["realtime_ok"], (
        f"recorded live run overran the Delta_d budget: max tick work "
        f"{baseline['max_tick_ms']:.0f} ms of "
        f"{baseline['tick_budget_ms']:.0f} ms, "
        f"{baseline['overruns']} overrun(s)"
    )


def test_recorded_run_replayed_bit_exactly(baseline):
    assert baseline["replay_parity"], (
        "the recorded live run's audit log did not replay bit-exactly"
    )


def test_fresh_run_keeps_throughput_floor(fresh):
    assert fresh["accepted_per_sec"] >= _FRESH_EVENTS_PER_SEC_FLOOR, (
        f"fresh service ingest sustained only "
        f"{fresh['accepted_per_sec']:.0f} accepted events/s "
        f"(floor {_FRESH_EVENTS_PER_SEC_FLOOR:.0f})"
    )


def test_fresh_run_not_regressed_vs_baseline(baseline, fresh):
    floor = baseline["accepted_per_sec"] / _SLOWDOWN_TOLERANCE
    assert fresh["accepted_per_sec"] >= floor, (
        f"fresh ingest rate {fresh['accepted_per_sec']:.0f} events/s is "
        f"> {_SLOWDOWN_TOLERANCE}x below the recorded "
        f"{baseline['accepted_per_sec']:.0f} events/s"
    )


def test_fresh_run_replays_bit_exactly_and_stays_realtime(fresh):
    assert fresh["replay_parity"], (
        "a live run under benchmark load no longer replays bit-exactly"
    )
    assert fresh["overruns"] == 0 and fresh["realtime_ok"], (
        f"fresh live run overran Delta_d: max tick "
        f"{fresh['max_tick_ms']:.0f} ms, {fresh['overruns']} overrun(s)"
    )
