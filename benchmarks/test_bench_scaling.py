"""Bench: hierarchy scaling (Sec. V-A2's O(log n) decision story).

Runs full control loops on balanced trees from 9 to 243 servers and
checks that (a) per-server wall time stays roughly flat -- total work
O(n) with an O(log n) decision critical path -- and (b) the per-link
message bound is independent of fleet size.
"""

import time

import numpy as np

from repro.core import WillowConfig, WillowController
from repro.network import verify_message_bound
from repro.power import constant_supply
from repro.sim import RandomStreams
from repro.topology import build_balanced
from repro.workload import (
    SIMULATION_APPS,
    random_placement,
    scale_for_target_utilization,
)

SIZES = {9: [3, 3], 27: [3, 3, 3], 81: [3, 3, 3, 3], 243: [3, 3, 3, 3, 3]}
TICKS = 10


def run_size(branching, seed=5):
    tree = build_balanced(branching)
    n = len(tree.servers())
    config = WillowConfig()
    streams = RandomStreams(seed)
    placement = random_placement(
        [s.node_id for s in tree.servers()], SIMULATION_APPS, streams["placement"]
    )
    scale_for_target_utilization(placement, config.server_model.slope, 0.6)
    controller = WillowController(
        tree, config, constant_supply(n * 450.0), placement, seed=seed
    )
    start = time.perf_counter()
    collector = controller.run(TICKS)
    elapsed = time.perf_counter() - start
    return elapsed, collector


def test_bench_scaling_per_server_time_flat(benchmark):
    def sweep():
        results = {}
        for n, branching in SIZES.items():
            elapsed, collector = run_size(branching)
            results[n] = {
                "seconds": elapsed,
                "per_server_ms": elapsed / n * 1e3,
                "bound_ok": verify_message_bound(collector, bound=2),
            }
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["results"] = {str(k): v for k, v in results.items()}
    print()
    for n, stats in results.items():
        print(
            f"n={n:4d} total={stats['seconds'] * 1e3:7.1f} ms "
            f"per-server={stats['per_server_ms']:6.3f} ms "
            f"msg-bound={'ok' if stats['bound_ok'] else 'VIOLATED'}"
        )
    # Message bound independent of scale.
    assert all(stats["bound_ok"] for stats in results.values())
    # Per-server time does not blow up with fleet size: allow up to 4x
    # drift across a 27x size increase (quadratic behaviour would be
    # ~27x).
    per_server = [stats["per_server_ms"] for stats in results.values()]
    assert max(per_server) < 4.0 * min(per_server)
