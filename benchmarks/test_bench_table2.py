"""Bench: Table II -- application power profiles."""

import pytest

from repro.experiments import table2_app_profiles


def test_bench_table2_application_profiles(benchmark, record_result):
    result = benchmark.pedantic(table2_app_profiles.run, rounds=1, iterations=1)
    record_result(result)
    measured = result.data["measured"]
    # Paper: A1 adds 8 W, A2 10 W, A3 15 W.
    assert measured["A1"] == pytest.approx(8.0, abs=0.5)
    assert measured["A2"] == pytest.approx(10.0, abs=0.5)
    assert measured["A3"] == pytest.approx(15.0, abs=0.5)
