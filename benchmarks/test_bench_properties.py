"""Bench: Sec. V-A analytical properties, checked on live runs."""

from repro.experiments import properties


def test_bench_section5a_properties(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: properties.run(n_ticks=60), rounds=1, iterations=1
    )
    record_result(result)
    data = result.data
    # Property 3: at most 2 control messages per link per Delta_D.
    assert data["message_bound_ok"]
    assert data["worst_messages"] <= 2
    # Property 4 flavour: migrated demands have a positive residence
    # floor; decision stability is quantified, not assumed.
    assert data["min_residence"] > 0
    # Decision timing measured over 9 -> 81 servers completed.
    assert len(data["timings"]) == 3
    assert all(t > 0 for _n, t in data["timings"])
