"""Bench: Fig. 19 + Table III -- consolidation under energy plenty."""

import pytest

from repro.experiments import fig19_table3


def test_bench_fig19_table3_consolidation(benchmark, record_result):
    result = benchmark.pedantic(fig19_table3.run, rounds=1, iterations=1)
    record_result(result)
    data = result.data
    # Table III: server C (20 % utilization) is drained to 0 and stays
    # down for the rest of the run.
    assert data["c_final"] == pytest.approx(0.0, abs=1e-6)
    # A and B absorb C's workload.
    absorbed = (
        data["final"]["server-A"]
        + data["final"]["server-B"]
        - data["initial"]["server-A"]
        - data["initial"]["server-B"]
    )
    assert absorbed > 0.1
    # Paper arithmetic: ~580 W before, ~420 W after, ~27.5 % savings.
    assert data["baseline_power"] == pytest.approx(580.0, abs=30.0)
    assert 0.15 <= data["savings"] <= 0.35
