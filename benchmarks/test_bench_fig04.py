"""Bench: Fig. 4 -- thermal constant selection curves."""

import numpy as np

from repro.experiments import fig04_thermal


def test_bench_fig04_thermal_constants(benchmark, record_result):
    result = benchmark.pedantic(fig04_thermal.run, rounds=3, iterations=1)
    record_result(result)
    data = result.data
    # Paper checkpoints: ~450 W surplus for a cool idle node; ~0 for a
    # node at its 70 C limit in a 45 C ambient.
    assert data["cap_idle_cool"] == 450.0 or abs(data["cap_idle_cool"] - 450.0) < 1e-6
    assert data["cap_at_limit_hot"] < 0.06 * 450.0
    for curve in data["curves"].values():
        assert np.all(np.diff(curve) < 0)
