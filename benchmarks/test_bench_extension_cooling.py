"""Extension bench: cooling-aware (holistic) budgets vs cooling-blind.

On a hot day a cooling-blind controller budgets the full facility feed
to IT and the facility overdraws (IT + cooling > feed); the holistic
controller pre-subtracts the cooling share.  The bench quantifies the
overdraw avoided.
"""

import numpy as np

from repro.cooling import CoolingModel, effective_it_budget, facility_report
from repro.core import WillowConfig, WillowController
from repro.power import constant_supply
from repro.sim import RandomStreams
from repro.topology import build_paper_simulation
from repro.workload import (
    SIMULATION_APPS,
    random_placement,
    scale_for_target_utilization,
)

HOT_DAY = 35.0
FEED = 18 * 450.0  # facility feed in watts
TICKS = 40


def run_variant(cooling_aware: bool, seed: int = 14):
    cooling = CoolingModel()
    config = WillowConfig()
    tree = build_paper_simulation()
    streams = RandomStreams(seed)
    placement = random_placement(
        [s.node_id for s in tree.servers()], SIMULATION_APPS, streams["placement"]
    )
    scale_for_target_utilization(placement, config.server_model.slope, 0.7)
    it_budget = (
        effective_it_budget(FEED, cooling, HOT_DAY) if cooling_aware else FEED
    )
    controller = WillowController(
        tree, config, constant_supply(it_budget), placement, seed=seed
    )
    collector = controller.run(TICKS)
    report = facility_report(collector, cooling, HOT_DAY)
    # Facility draw per tick = IT + cooling.
    per_tick_draw = report.total_energy / TICKS
    return {
        "facility_draw": per_tick_draw,
        "overdraw": max(per_tick_draw - FEED, 0.0),
        "it_energy": report.it_energy,
        "pue": report.mean_pue,
    }


def test_bench_extension_cooling_awareness(benchmark):
    results = benchmark.pedantic(
        lambda: {
            "holistic": run_variant(True),
            "blind": run_variant(False),
        },
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["results"] = results
    print()
    for name, stats in results.items():
        print(
            f"{name:9s} facility={stats['facility_draw']:7.0f} W  "
            f"overdraw={stats['overdraw']:6.0f} W  PUE={stats['pue']:.2f}"
        )
    holistic, blind = results["holistic"], results["blind"]
    # The holistic controller keeps the facility within its feed...
    assert holistic["overdraw"] <= 1e-6
    # ...the blind one overdraws on a hot day at high utilization.
    assert blind["overdraw"] > 0.0
    # Both see the same physics (same PUE at the same outside temp).
    assert abs(holistic["pue"] - blind["pue"]) < 1e-9
