"""Bench: Eq. 9 power imbalance -- Willow vs a fleet that cannot migrate.

The paper's stated design goal: the migration scheme "should not leave
a few servers in the power deficient state while some servers have
excess power budgets."
"""

import numpy as np

from repro.experiments import imbalance


def test_bench_imbalance_reduction(benchmark, record_result):
    result = benchmark.pedantic(imbalance.run, rounds=1, iterations=1)
    record_result(result)
    data = result.data
    with_migrations = np.asarray(data["with"])
    without = np.asarray(data["without"])
    # Run-average imbalance shrinks when migrations are allowed.
    assert with_migrations.mean() < without.mean()
    # And over the settled post-plunge tail as well.
    assert data["tail_with"] < data["tail_without"]
