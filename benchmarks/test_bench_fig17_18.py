"""Bench: Figs. 17+18 -- testbed temperature behaviour."""

import numpy as np

from repro.experiments import fig17_18_temps


def test_bench_fig17_18_testbed_temperatures(benchmark, record_result):
    result = benchmark.pedantic(fig17_18_temps.run, rounds=1, iterations=1)
    record_result(result)
    data = result.data
    means = data["mean_temperature"]
    # Fig. 18: the loaded server runs hottest; ordering follows load.
    assert means["server-A"] >= means["server-B"]
    assert means["server-B"] >= means["server-C"] - 1.0
    # Thermal limit never violated anywhere.
    for series in data["series"].values():
        assert np.max(series) <= data["t_limit"] + 1e-6
    # Fig. 17: server A's temperature dips when the supply plunges
    # (its power is throttled / shed).
    a = data["a_per_unit"]
    assert np.mean(a[7:10]) < np.mean(a[4:7])
