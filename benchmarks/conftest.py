"""Shared benchmark helpers.

Every bench regenerates one paper table/figure: it times the full
experiment, prints the same rows the paper reports (visible with
``pytest benchmarks/ --benchmark-only -s``), attaches them to the
benchmark's ``extra_info``, and asserts the paper's qualitative shape.
"""

import pytest


@pytest.fixture
def record_result(benchmark):
    """Attach an ExperimentResult to the benchmark and print it."""

    def _record(result):
        benchmark.extra_info["experiment"] = result.name
        benchmark.extra_info["table"] = result.format()
        print()
        print(result.format())
        return result

    return _record


def clear_sweep_cache():
    """Force sweep-based figures to do real work under the timer."""
    from repro.experiments import cache
    from repro.experiments.paper_sweep import run_sweep

    run_sweep.cache_clear()
    # The disk layer must not serve a timed run either (it is off by
    # default, but a developer may have WILLOW_CACHE_DIR exported).
    cache.set_enabled(False)
