"""Ablation: FFDLR vs first-fit / FFD / BFD / worst-fit.

Checks the two reasons the paper gives for choosing FFDLR: speed
(O(n log n), "simple to implement with guaranteed bounds") and the
repack-into-smallest-bins behaviour that empties servers for
consolidation.
"""

import numpy as np
import pytest

from repro.binpack import (
    Bin,
    Item,
    best_fit_decreasing,
    ffdlr_pack,
    first_fit,
    first_fit_decreasing,
    ffd_bin_count,
    optimal_bin_count,
    worst_fit,
)

PACKERS = {
    "ffdlr": ffdlr_pack,
    "first_fit": first_fit,
    "ffd": first_fit_decreasing,
    "bfd": best_fit_decreasing,
    "worst_fit": worst_fit,
}


def random_instances(n_instances=60, seed=7):
    rng = np.random.default_rng(seed)
    instances = []
    for _ in range(n_instances):
        n_items = int(rng.integers(5, 25))
        n_bins = int(rng.integers(3, 12))
        sizes = rng.uniform(5.0, 120.0, size=n_items)
        capacities = rng.uniform(50.0, 300.0, size=n_bins)
        instances.append((sizes, capacities))
    return instances


def pack_all(packer, instances):
    stats = {"unpacked": 0.0, "bins_used": 0, "offered": 0.0}
    for sizes, capacities in instances:
        items = [Item(i, float(s)) for i, s in enumerate(sizes)]
        bins = [Bin(j, float(c)) for j, c in enumerate(capacities)]
        result = packer(items, bins)
        stats["unpacked"] += sum(item.size for item in result.unpacked)
        stats["bins_used"] += result.bins_used
        stats["offered"] += float(np.sum(sizes))
    return stats


def test_bench_ablation_packer_quality(benchmark):
    instances = random_instances()
    results = benchmark.pedantic(
        lambda: {name: pack_all(p, instances) for name, p in PACKERS.items()},
        rounds=1,
        iterations=1,
    )
    print()
    for name, stats in results.items():
        packed = 1.0 - stats["unpacked"] / stats["offered"]
        print(f"{name:10s} packed={packed:.3%} bins_used={stats['bins_used']}")
    benchmark.extra_info["results"] = results
    # FFDLR packs at least as much demand as first-fit (arrival order).
    assert results["ffdlr"]["unpacked"] <= results["first_fit"]["unpacked"] + 1e-6
    # And never strands more than the best baseline by over 2 % of offer.
    best = min(stats["unpacked"] for name, stats in results.items() if name != "ffdlr")
    assert results["ffdlr"]["unpacked"] <= best + 0.02 * results["ffdlr"]["offered"]


def test_bench_ffd_bound_on_random_instances(benchmark):
    rng = np.random.default_rng(21)
    instances = [rng.uniform(0.05, 1.0, size=int(rng.integers(3, 13))) for _ in range(40)]

    def check_all():
        worst_ratio = 0.0
        for sizes in instances:
            used = ffd_bin_count(sizes, 1.0)
            optimal = optimal_bin_count(sizes, 1.0)
            assert used <= 1.5 * optimal + 1
            worst_ratio = max(worst_ratio, used / optimal)
        return worst_ratio

    worst = benchmark.pedantic(check_all, rounds=1, iterations=1)
    benchmark.extra_info["worst_ffd_over_opt"] = worst
    assert worst <= 1.5 + 1  # loose numeric echo of the bound
    print(f"\nworst FFD/OPT ratio observed: {worst:.3f}")


def test_bench_ffdlr_speed_scaling(benchmark):
    """FFDLR on a large instance -- the O(n log n) speed claim."""
    rng = np.random.default_rng(3)
    sizes = rng.uniform(1.0, 50.0, size=2000)
    capacities = rng.uniform(100.0, 400.0, size=300)

    def pack_once():
        items = [Item(i, float(s)) for i, s in enumerate(sizes)]
        bins = [Bin(j, float(c)) for j, c in enumerate(capacities)]
        return ffdlr_pack(items, bins)

    result = benchmark(pack_once)
    result.validate()
    assert result.packed_size > 0
