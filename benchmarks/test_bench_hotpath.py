"""Regression guard for the vectorized hot path.

Compares a fresh quick measurement against the recorded baseline in
``BENCH_tick.json`` at the repo root (written by ``python -m repro.cli
bench``).  Tolerances are deliberately generous -- CI machines and
laptops differ by integer factors -- so only a genuine regression
(vectorized path slower than scalar, or an order-of-magnitude slowdown
against the recording) fails.  Skips when no baseline has been
recorded.
"""

import json
from pathlib import Path

import pytest

_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_tick.json"

#: A fresh run may be this many times slower than the recorded baseline
#: before we call it a regression (absorbs machine-to-machine spread).
_SLOWDOWN_TOLERANCE = 10.0


@pytest.fixture(scope="module")
def baseline():
    if not _BASELINE.is_file():
        pytest.skip("no recorded baseline (run: python -m repro.cli bench)")
    return json.loads(_BASELINE.read_text())


@pytest.fixture(scope="module")
def fresh():
    from repro.benchmarks.harness import bench_kernels, bench_tick

    return {
        "end_to_end": bench_tick(sizes=(64,), ticks=100, repeats=2),
        "kernels": bench_kernels(sizes=(64,), iters=100),
    }


def test_vectorized_tick_still_faster_than_scalar(fresh):
    for row in fresh["end_to_end"]:
        assert row["speedup"] > 1.0, (
            f"vectorized tick no longer beats scalar at "
            f"n={row['n_servers']}: {row['speedup']:.2f}x"
        )


def test_vectorized_tick_not_regressed_vs_baseline(baseline, fresh):
    recorded = {
        row["n_servers"]: row["vectorized_ms_per_tick"]
        for row in baseline["end_to_end"]
    }
    for row in fresh["end_to_end"]:
        n = row["n_servers"]
        if n not in recorded:
            continue
        assert row["vectorized_ms_per_tick"] <= recorded[n] * _SLOWDOWN_TOLERANCE, (
            f"vectorized tick at n={n} is "
            f"{row['vectorized_ms_per_tick']:.3f} ms vs recorded "
            f"{recorded[n]:.3f} ms (> {_SLOWDOWN_TOLERANCE}x slower)"
        )


def test_kernels_keep_headline_speedup(fresh):
    # Headline target: >= 5x on the combined per-tick kernel cost at
    # 64+ servers.  Guard at 3x so machine noise cannot flake the suite
    # while a real vectorization regression (a kernel falling back to
    # scalar speed) still fails.
    combined = [r for r in fresh["kernels"] if r["kernel"] == "combined"]
    assert combined, "harness stopped emitting the combined kernel row"
    for row in combined:
        assert row["speedup"] >= 3.0, (
            f"combined kernels at n={row['n_servers']} dropped to "
            f"{row['speedup']:.2f}x"
        )
    # The two kernels with order-of-magnitude margins must stay clearly
    # vectorized; the small ones (smoothing, budget) ride on `combined`.
    for row in fresh["kernels"]:
        if row["kernel"] in ("thermal_step", "demand_sampling"):
            assert row["speedup"] >= 3.0, (
                f"kernel {row['kernel']} at n={row['n_servers']} dropped "
                f"to {row['speedup']:.2f}x"
            )


def test_kernel_baseline_not_regressed(baseline, fresh):
    recorded = {
        (row["kernel"], row["n_servers"]): row["vectorized_us_per_iter"]
        for row in baseline.get("kernels", [])
    }
    for row in fresh["kernels"]:
        key = (row["kernel"], row["n_servers"])
        if key not in recorded:
            continue
        assert row["vectorized_us_per_iter"] <= recorded[key] * _SLOWDOWN_TOLERANCE, (
            f"kernel {key} is {row['vectorized_us_per_iter']:.1f} us vs "
            f"recorded {recorded[key]:.1f} us"
        )
