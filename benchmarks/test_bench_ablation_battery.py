"""Ablation: UPS sizing (the paper's "leaner design" trade-off).

Sec. I motivates Willow with "under-engineering uninterrupted power
supplies"; Sec. IV-C grounds the supply time constants in storage that
"integrates out" short deficits.  This bench sweeps the battery size
under a flapping supply and quantifies the QoS a leaner UPS costs --
the gap Willow then has to close by adaptation.
"""

import numpy as np

from repro.core import WillowConfig, WillowController
from repro.power import Battery, buffer_supply, step_supply
from repro.sim import RandomStreams
from repro.topology import build_paper_simulation
from repro.workload import (
    SIMULATION_APPS,
    random_placement,
    scale_for_target_utilization,
)

NOMINAL = 18 * 450.0
TICKS = 60


def flapping_supply():
    segments = [
        (float(4 * i), NOMINAL if i % 2 == 0 else 0.55 * NOMINAL)
        for i in range(15)
    ]
    return step_supply(segments)


def run_with_battery(capacity: float | None, seed: int = 31):
    raw = flapping_supply()
    if capacity is None:
        trace = raw
    else:
        battery = Battery(capacity=capacity, max_rate=NOMINAL, efficiency=0.95)
        trace = buffer_supply(raw, battery, duration=float(TICKS), horizon=12.0)
    tree = build_paper_simulation()
    config = WillowConfig()
    streams = RandomStreams(seed)
    placement = random_placement(
        [s.node_id for s in tree.servers()], SIMULATION_APPS, streams["placement"]
    )
    scale_for_target_utilization(placement, config.server_model.slope, 0.6)
    controller = WillowController(tree, config, trace, placement, seed=seed)
    collector = controller.run(TICKS)
    return {
        "dropped": collector.total_dropped_power(),
        "served": collector.total_energy(),
        "migrations": collector.migration_count(),
    }


def test_bench_ablation_battery_sizing(benchmark):
    capacities = {"none": None, "lean": 1_000.0, "full": 10_000.0}
    results = benchmark.pedantic(
        lambda: {name: run_with_battery(c) for name, c in capacities.items()},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["results"] = results
    print()
    for name, stats in results.items():
        print(
            f"UPS {name:5s} dropped={stats['dropped']:9.0f} "
            f"served={stats['served']:9.0f} migs={stats['migrations']}"
        )
    # More storage, less QoS loss -- monotone across the sweep.
    assert results["full"]["dropped"] < results["lean"]["dropped"]
    assert results["lean"]["dropped"] < results["none"]["dropped"]
    # And more demand actually served.
    assert results["full"]["served"] > results["none"]["served"]
