#!/usr/bin/env python
"""Runnable shim for the benchmark harness.

Equivalent to ``python -m repro.cli bench``; kept next to the pytest
benchmarks so ``python benchmarks/harness.py [--quick]`` works from a
checkout without installing the package.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cli import bench_main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(bench_main(sys.argv[1:]))
