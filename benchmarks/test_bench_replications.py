"""Bench: headline claims replicated across seeds.

Single-seed figures can be lucky; this bench re-runs the paper's two
headline comparisons over several seeds and asserts sign-consistency:

* Fig. 5's hot-zone suppression (hot < cold mean power), and
* the Willow-vs-independent QoS win under a hot zone.
"""

import numpy as np

from repro.analysis import compare, mean_ci, replicate
from repro.baselines import run_independent
from repro.core import WillowConfig, WillowController, run_willow
from repro.power import constant_supply
from repro.sim import RandomStreams
from repro.topology import build_paper_simulation
from repro.workload import (
    SIMULATION_APPS,
    random_placement,
    scale_for_target_utilization,
)

HOT = {f"server-{i}": 40.0 for i in range(15, 19)}
SEEDS = (1, 2, 3, 4, 5)


def hot_cold_run(seed):
    _, collector = run_willow(
        target_utilization=0.6, n_ticks=40, seed=seed, ambient_overrides=HOT
    )
    ids = collector.server_ids()
    return {
        "cold": float(
            np.mean([collector.mean_server(i, "power") for i in ids[:14]])
        ),
        "hot": float(
            np.mean([collector.mean_server(i, "power") for i in ids[14:]])
        ),
    }


def willow_drops(seed):
    tree = build_paper_simulation()
    config = WillowConfig()
    streams = RandomStreams(seed)
    placement = random_placement(
        [s.node_id for s in tree.servers()], SIMULATION_APPS, streams["placement"]
    )
    scale_for_target_utilization(placement, config.server_model.slope, 0.6)
    controller = WillowController(
        tree,
        config,
        constant_supply(18 * 450.0),
        placement,
        ambient_overrides=HOT,
        seed=seed,
    )
    collector = controller.run(40)
    return {"dropped": collector.total_dropped_power()}


def independent_drops(seed):
    tree = build_paper_simulation()
    config = WillowConfig()
    streams = RandomStreams(seed)
    placement = random_placement(
        [s.node_id for s in tree.servers()], SIMULATION_APPS, streams["placement"]
    )
    scale_for_target_utilization(placement, config.server_model.slope, 0.6)
    collector = run_independent(
        tree,
        config,
        constant_supply(18 * 450.0),
        placement,
        n_ticks=40,
        seed=seed,
        ambient_overrides=HOT,
    )
    return {"dropped": collector.total_dropped_power()}


def test_bench_replicated_headlines(benchmark):
    def run_all():
        zones = replicate(hot_cold_run, SEEDS)
        qos = compare(willow_drops, independent_drops, SEEDS, metric="dropped")
        return zones, qos

    zones, qos = benchmark.pedantic(run_all, rounds=1, iterations=1)
    cold_mean, cold_half = mean_ci(zones.metric("cold"))
    hot_mean, hot_half = mean_ci(zones.metric("hot"))
    benchmark.extra_info["cold"] = f"{cold_mean:.0f} +- {cold_half:.0f} W"
    benchmark.extra_info["hot"] = f"{hot_mean:.0f} +- {hot_half:.0f} W"
    print()
    print(f"cold zone: {cold_mean:6.0f} +- {cold_half:.0f} W")
    print(f"hot zone : {hot_mean:6.0f} +- {hot_half:.0f} W")
    print(
        f"Willow vs independent dropped power: mean diff "
        f"{qos.mean_difference:.0f} W*ticks, sign consistency "
        f"{qos.sign_consistency:.0%}"
    )
    # Fig. 5's headline holds for every seed.
    assert np.all(zones.metric("hot") < zones.metric("cold"))
    # And not merely by overlap: intervals are disjoint.
    assert hot_mean + hot_half < cold_mean - cold_half
    # Willow beats independent control on dropped demand on every seed.
    assert qos.a_wins_everywhere(smaller_is_better=True)
