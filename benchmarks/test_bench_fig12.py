"""Bench: Fig. 12 -- migration cost borne by level-1 switches."""

import numpy as np
from conftest import clear_sweep_cache

from repro.experiments import fig10_traffic, fig12_switch_cost


def test_bench_fig12_switch_migration_cost(benchmark, record_result):
    def run():
        clear_sweep_cache()
        return fig12_switch_cost.run(n_ticks=120, seed=11)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(result)
    costs = np.asarray(result.data["totals"])
    # "Corresponds to the trend in total number of migrations ... shown
    # in Figure 10": same sweep, strongly correlated series.
    traffic = np.asarray(fig10_traffic.run(n_ticks=120, seed=11).data["fractions"])
    assert np.corrcoef(traffic, costs)[0, 1] > 0.8
    # Interior peak, like Fig. 10.
    peak = int(np.argmax(costs))
    assert 0 < peak < len(costs) - 1
