"""Bench: Fig. 5 -- average server power vs utilization (hot/cold zones)."""

from conftest import clear_sweep_cache

from repro.experiments import fig05_power


def test_bench_fig05_power_vs_utilization(benchmark, record_result):
    def run():
        clear_sweep_cache()
        return fig05_power.run(n_ticks=120, seed=11)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(result)
    data = result.data
    cold, hot = data["cold"], data["hot"]
    # Hot zone consumes less at every moderate+ utilization.
    for u, c, h in zip(data["utilizations"], cold, hot):
        if u >= 0.3:
            assert h < c, f"hot zone not capped below cold at U={u}"
    # Power rises with utilization; hot saturates at its ~300 W cap.
    assert cold[-1] > 1.8 * cold[1]
    assert max(hot) < 310.0
