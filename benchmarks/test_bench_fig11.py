"""Bench: Fig. 11 -- power demand of level-1 switches."""

import numpy as np
from conftest import clear_sweep_cache

from repro.experiments import fig11_switch_power


def test_bench_fig11_switch_power(benchmark, record_result):
    def run():
        clear_sweep_cache()
        return fig11_switch_power.run(n_ticks=120, seed=11)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(result)
    data = result.data
    # "The average power demand is almost the same in all the switches"
    # -- local-first migration spreads traffic: modest spread at
    # moderate+ utilizations.
    for u, cv in zip(data["utilizations"], data["cv"]):
        if u >= 0.4:
            assert cv < 0.45, f"uneven switch power at U={u} (cv={cv:.2f})"
    # Switch power tracks served load upward.
    mean_power = [float(np.mean(row)) for row in data["per_switch"]]
    assert mean_power[-1] > mean_power[0]
