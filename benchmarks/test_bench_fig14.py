"""Bench: Fig. 14 -- experimental estimation of c1 and c2."""

import numpy as np
import pytest

from repro.experiments import fig14_calibration


def test_bench_fig14_calibration(benchmark, record_result):
    result = benchmark.pedantic(fig14_calibration.run, rounds=3, iterations=1)
    record_result(result)
    data = result.data
    # Least squares over the (synthetic) heating run recovers the
    # paper's measured constants c1=0.2, c2=0.008.
    assert data["fit_c1"] == pytest.approx(0.2, rel=0.05)
    assert data["fit_c2"] == pytest.approx(0.008, rel=0.25)
    # The figure's line: max accommodatable power is linear in the
    # temperature headroom and reaches the server's 232 W max.
    caps = np.asarray(data["caps"], dtype=float)
    assert np.allclose(np.diff(caps, n=2), 0.0, atol=1e-6)
    assert caps[-1] == pytest.approx(232.0)
