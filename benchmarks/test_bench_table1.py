"""Bench: Table I -- utilization vs power consumption."""

import numpy as np
import pytest

from repro.experiments import table1_power_model


def test_bench_table1_power_model(benchmark, record_result):
    result = benchmark.pedantic(table1_power_model.run, rounds=5, iterations=1)
    record_result(result)
    data = result.data
    powers = np.asarray(data["powers"])
    # Continuously increasing, linear (the paper's observation), and
    # consistent with every intact number in Sec. V-C.
    assert np.all(np.diff(powers) > 0)
    assert np.allclose(np.diff(powers, n=2), 0.0)
    p = dict(zip(data["utilizations"], data["powers"]))
    assert p[0.8] + p[0.4] + p[0.2] == pytest.approx(580.0)
    assert p[1.0] == pytest.approx(232.0)
