"""Ablation: local-first matching vs flat (global) matching.

Sec. IV-E prefers local migrations for their lower network impact.
This ablation runs identical workloads with the locality preference on
and off and compares the network footprint of the migrations.
"""

import numpy as np

from repro.core import WillowConfig, WillowController
from repro.network.paths import mean_migration_hops
from repro.power import constant_supply
from repro.sim import RandomStreams
from repro.topology import build_paper_simulation
from repro.workload import (
    SIMULATION_APPS,
    random_placement,
    scale_for_target_utilization,
)

HOT = {f"server-{i}": 40.0 for i in range(15, 19)}


def run_variant(local_first: bool, seed: int = 13):
    config = WillowConfig(local_first=local_first)
    tree = build_paper_simulation()
    streams = RandomStreams(seed)
    placement = random_placement(
        [s.node_id for s in tree.servers()], SIMULATION_APPS, streams["placement"]
    )
    scale_for_target_utilization(placement, config.server_model.slope, 0.6)
    controller = WillowController(
        tree,
        config,
        constant_supply(18 * 450.0),
        placement,
        ambient_overrides=HOT,
        seed=seed,
    )
    return controller.run(60)


def test_bench_ablation_locality(benchmark):
    def run_both():
        return run_variant(True), run_variant(False)

    local, flat = benchmark.pedantic(run_both, rounds=1, iterations=1)
    # Locality preference keeps migrations near their source.
    assert local.local_fraction() > flat.local_fraction()
    assert mean_migration_hops(local) < mean_migration_hops(flat)
    # Both variants keep serving (sanity).
    assert local.migration_count() > 0 and flat.migration_count() > 0
    benchmark.extra_info["local_fraction_local_first"] = local.local_fraction()
    benchmark.extra_info["local_fraction_flat"] = flat.local_fraction()
    benchmark.extra_info["mean_hops_local_first"] = mean_migration_hops(local)
    benchmark.extra_info["mean_hops_flat"] = mean_migration_hops(flat)
    print(
        f"\nlocal-first: {local.local_fraction():.2f} local, "
        f"{mean_migration_hops(local):.2f} hops | flat: "
        f"{flat.local_fraction():.2f} local, {mean_migration_hops(flat):.2f} hops"
    )
