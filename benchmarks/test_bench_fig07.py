"""Bench: Fig. 7 -- per-server consolidation power savings at U=40 %."""

import numpy as np
from conftest import clear_sweep_cache

from repro.experiments import fig07_consolidation


def test_bench_fig07_consolidation_savings(benchmark, record_result):
    def run():
        clear_sweep_cache()
        return fig07_consolidation.run(utilization=0.4, n_ticks=120, seed=11)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(result)
    data = result.data
    # Consolidation saves energy overall...
    assert sum(data["savings"]) > 0
    # ...with the maximum savings in the hot zone (paper: "maximum
    # power savings is achieved in the last four servers").
    assert data["hot_mean_saving"] > data["cold_mean_saving"]
    # Because the hot zone spends more time asleep.
    asleep = data["asleep_fraction"]
    assert np.mean(asleep[14:]) > np.mean(asleep[:14])
