"""Regression guard for tracing overhead.

The observability layer's cost contract (``docs/observability.md``):
with tracing disabled (the default), the per-tick cost is a handful of
``tracer.enabled`` attribute checks -- bounded here at <= 2% of a tick.

Wall-clock A/B runs cannot resolve a sub-percent delta on a noisy CI
runner, so the disabled bound uses the deterministic model from
:func:`repro.benchmarks.harness.bench_trace`: measured nanoseconds per
guard check times the per-tick record count of an enabled run (itself
an upper bound on guarded sites), as a fraction of the traced-off tick.
The enabled modes get generous wall-clock bounds like the hot-path
guard in ``test_bench_hotpath.py``.
"""

import json
from pathlib import Path

import pytest

_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_tick.json"

#: The cost contract for the default (tracing off) configuration.
_DISABLED_OVERHEAD_PCT = 2.0

#: Enabled tracing may be slow, just not catastrophic: the null sink
#: (frame building alone) within half a tick, the full JSONL sink
#: within one extra tick of work.
_NULL_SINK_OVERHEAD_PCT = 50.0
_JSONL_OVERHEAD_PCT = 100.0


@pytest.fixture(scope="module")
def fresh():
    from repro.benchmarks.harness import bench_trace

    rows = bench_trace(n_servers=64, ticks=60, repeats=2)
    return {row["mode"]: row for row in rows}


def test_disabled_tracing_within_two_percent(fresh):
    model = fresh["disabled_guard_model"]
    assert model["overhead_pct"] <= _DISABLED_OVERHEAD_PCT, (
        f"disabled tracing models to {model['overhead_pct']:.2f}% of a "
        f"tick ({model['guard_ns_per_site']:.0f} ns/site x "
        f"{model['sites_per_tick']:.0f} sites/tick); the guard structure "
        f"has regressed (unguarded record calls on the hot path?)"
    )


def test_guard_model_inputs_are_sane(fresh):
    model = fresh["disabled_guard_model"]
    # At 64 servers a tick emits at least one demand record per server;
    # if this collapses the model is no longer counting real sites.
    assert model["sites_per_tick"] >= 64
    assert 0.0 < model["guard_ns_per_site"] < 1000.0


def test_enabled_tracing_cost_bounded(fresh):
    assert fresh["null_sink"]["overhead_pct"] <= _NULL_SINK_OVERHEAD_PCT
    assert fresh["jsonl"]["overhead_pct"] <= _JSONL_OVERHEAD_PCT
    # The JSONL sink must actually have written frames.
    assert fresh["jsonl"]["bytes_per_tick"] > 0


def test_trace_baseline_not_regressed(fresh):
    if not _BASELINE.is_file():
        pytest.skip("no recorded baseline (run: python -m repro.cli bench)")
    baseline = json.loads(_BASELINE.read_text())
    recorded = {row["mode"]: row for row in baseline.get("trace", [])}
    if "disabled_guard_model" not in recorded:
        pytest.skip("recorded baseline predates the trace suite")
    # The recorded model must honour the same contract CI enforces.
    assert (
        recorded["disabled_guard_model"]["overhead_pct"]
        <= _DISABLED_OVERHEAD_PCT
    )
