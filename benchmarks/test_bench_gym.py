"""Regression guard for the gym env-step overhead.

The acceptance bar for :mod:`repro.gym` is that stepping the
federation through the env (observations, K-step forecasts, reward
cursors) costs at most 10% over ticking the raw coordinator on the
same scenario.  A fresh quick measurement enforces that bound
directly; the recorded ``gym`` section of ``BENCH_tick.json`` at the
repo root pins the full-sized run to the same bound and guards the
absolute step time against order-of-magnitude slowdowns.  Skips when
no baseline (or an old baseline without a ``gym`` section) has been
recorded.
"""

import json
from pathlib import Path

import pytest

_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_tick.json"

#: Hard acceptance bound: env step may cost at most this much over the
#: raw coordinator tick.  The recorded headline is ~0-9%.
_MAX_OVERHEAD_PCT = 10.0

#: A fresh run may be this many times slower than the recorded baseline
#: before we call it a regression (absorbs machine-to-machine spread).
_SLOWDOWN_TOLERANCE = 10.0


@pytest.fixture(scope="module")
def baseline():
    if not _BASELINE.is_file():
        pytest.skip("no recorded baseline (run: python -m repro.cli bench)")
    payload = json.loads(_BASELINE.read_text())
    if "gym" not in payload:
        pytest.skip("baseline predates the gym suite (run: bench gym)")
    return payload["gym"]


@pytest.fixture(scope="module")
def fresh():
    from repro.benchmarks.harness import bench_gym

    return bench_gym(quick=True)


def test_fresh_env_overhead_within_bound(fresh):
    assert fresh["steps"], "harness stopped emitting gym step rows"
    for row in fresh["steps"]:
        assert row["overhead_pct"] <= _MAX_OVERHEAD_PCT, (
            f"gym env step at {row['n_sites']} sites costs "
            f"{row['overhead_pct']:+.2f}% over the raw coordinator tick "
            f"(bound {_MAX_OVERHEAD_PCT:.0f}%)"
        )


def test_recorded_overhead_within_bound(baseline):
    assert baseline.get("steps"), "recorded gym section has no step rows"
    for row in baseline["steps"]:
        assert row["overhead_pct"] <= _MAX_OVERHEAD_PCT, (
            f"recorded gym overhead at {row['n_sites']} sites is "
            f"{row['overhead_pct']:+.2f}% (bound {_MAX_OVERHEAD_PCT:.0f}%; "
            f"re-run 'python -m repro.cli bench gym' after speeding up "
            f"the env, not to launder a regression)"
        )


def test_env_step_not_regressed_vs_baseline(baseline, fresh):
    recorded = {
        row["n_sites"]: row["env_ms_per_tick"] for row in baseline["steps"]
    }
    for row in fresh["steps"]:
        if row["n_sites"] not in recorded:
            continue
        limit = recorded[row["n_sites"]] * _SLOWDOWN_TOLERANCE
        assert row["env_ms_per_tick"] <= limit, (
            f"gym env tick at {row['n_sites']} sites is "
            f"{row['env_ms_per_tick']:.3f} ms vs recorded "
            f"{recorded[row['n_sites']]:.3f} ms "
            f"(> {_SLOWDOWN_TOLERANCE}x slower)"
        )
