"""Ablation: the power margin P_min (Sec. IV-E ping-pong avoidance).

Larger margins suppress migration churn (and bouncing), at the cost of
leaving more demand unmatched.  The bench sweeps P_min and checks the
trade-off the paper's design argues for.
"""

from repro.core import WillowConfig, WillowController
from repro.metrics import count_ping_pongs
from repro.power import constant_supply
from repro.sim import RandomStreams
from repro.topology import build_paper_simulation
from repro.workload import (
    SIMULATION_APPS,
    random_placement,
    scale_for_target_utilization,
)

HOT = {f"server-{i}": 40.0 for i in range(15, 19)}
MARGINS = (0.0, 10.0, 30.0, 60.0)


def run_variant(p_min: float, seed: int = 13):
    config = WillowConfig(p_min=p_min)
    tree = build_paper_simulation()
    streams = RandomStreams(seed)
    placement = random_placement(
        [s.node_id for s in tree.servers()], SIMULATION_APPS, streams["placement"]
    )
    scale_for_target_utilization(placement, config.server_model.slope, 0.6)
    controller = WillowController(
        tree,
        config,
        constant_supply(18 * 450.0),
        placement,
        ambient_overrides=HOT,
        seed=seed,
    )
    collector = controller.run(60)
    return {
        "migrations": collector.migration_count(),
        "ping_pongs": count_ping_pongs(controller.vms, window=10.0),
        "dropped": collector.total_dropped_power(),
    }


def test_bench_ablation_margin_sweep(benchmark):
    results = benchmark.pedantic(
        lambda: {m: run_variant(m) for m in MARGINS}, rounds=1, iterations=1
    )
    benchmark.extra_info["sweep"] = {str(k): v for k, v in results.items()}
    print()
    for margin, stats in results.items():
        print(f"P_min={margin:5.1f}  {stats}")
    # A generous margin damps churn: far fewer migrations than no margin.
    assert results[60.0]["migrations"] < results[0.0]["migrations"]
    # Bouncing never increases with margin.
    assert results[60.0]["ping_pongs"] <= results[0.0]["ping_pongs"]
    # The cost: more demand goes unmatched (throttled) at large margins.
    assert results[60.0]["dropped"] >= results[0.0]["dropped"]
