"""Bench: Fig. 10 -- migration traffic normalised to max network traffic."""

import numpy as np
from conftest import clear_sweep_cache

from repro.experiments import fig10_traffic


def test_bench_fig10_migration_traffic(benchmark, record_result):
    def run():
        clear_sweep_cache()
        return fig10_traffic.run(n_ticks=120, seed=11)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(result)
    fractions = np.asarray(result.data["fractions"])
    # Rises through mid utilizations, falls at the high end (no surplus
    # left to migrate into) -- an interior peak.
    peak = int(np.argmax(fractions))
    assert 0 < peak < len(fractions) - 1
    assert fractions[peak] > fractions[-1]
    assert fractions[peak] > fractions[0]
    # Overhead remains a small fraction of network capacity.
    assert fractions.max() < 0.25
