"""Bench: Fig. 9 -- demand-driven vs consolidation-driven migrations."""

import numpy as np
from conftest import clear_sweep_cache

from repro.experiments import fig09_migration_mix


def test_bench_fig09_migration_mix(benchmark, record_result):
    def run():
        clear_sweep_cache()
        return fig09_migration_mix.run(n_ticks=120, seed=11)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(result)
    data = result.data
    demand = np.asarray(data["demand"])
    consolidation = np.asarray(data["consolidation"])
    # Consolidation-driven dominates at low utilization...
    assert consolidation[0] > demand[0]
    # ...demand-driven dominates at high utilization (paper Fig. 9).
    assert demand[-2] > consolidation[-2]
    # Consolidation activity declines as utilization rises.
    assert consolidation[:3].mean() > consolidation[-3:].mean()
    # Crossover falls somewhere in the middle of the sweep.
    crossings = np.nonzero(np.diff(np.sign(demand - consolidation)))[0]
    assert len(crossings) >= 1
