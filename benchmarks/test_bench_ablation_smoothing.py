"""Ablation: the Eq. 4 smoothing weight alpha.

Without smoothing (alpha = 1) budgets chase per-tick Poisson noise and
the controller churns; the paper's "simple exponential smoothing is
often adequate" claim shows up as fewer migrations at moderate alpha.
"""

from repro.core import WillowConfig, WillowController
from repro.power import constant_supply
from repro.sim import RandomStreams
from repro.topology import build_paper_simulation
from repro.workload import (
    SIMULATION_APPS,
    random_placement,
    scale_for_target_utilization,
)

HOT = {f"server-{i}": 40.0 for i in range(15, 19)}
ALPHAS = (0.2, 0.5, 1.0)


def run_variant(alpha: float, seed: int = 13):
    config = WillowConfig(alpha=alpha)
    tree = build_paper_simulation()
    streams = RandomStreams(seed)
    placement = random_placement(
        [s.node_id for s in tree.servers()], SIMULATION_APPS, streams["placement"]
    )
    scale_for_target_utilization(placement, config.server_model.slope, 0.6)
    controller = WillowController(
        tree,
        config,
        constant_supply(18 * 450.0),
        placement,
        ambient_overrides=HOT,
        seed=seed,
    )
    collector = controller.run(60)
    return {
        "migrations": collector.migration_count(),
        "dropped": collector.total_dropped_power(),
    }


def test_bench_ablation_smoothing(benchmark):
    results = benchmark.pedantic(
        lambda: {a: run_variant(a) for a in ALPHAS}, rounds=1, iterations=1
    )
    benchmark.extra_info["sweep"] = {str(k): v for k, v in results.items()}
    print()
    for alpha, stats in results.items():
        print(f"alpha={alpha:.1f}  {stats}")
    # No smoothing churns more than the paper-style moderate smoothing.
    assert results[1.0]["migrations"] > results[0.5]["migrations"]
    # And loses more demand to budget noise.
    assert results[1.0]["dropped"] > results[0.5]["dropped"]
