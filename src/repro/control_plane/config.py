"""Tunables for the distributed control-plane emulation.

Three orthogonal knobs, each a frozen dataclass:

* :class:`LinkProfile` -- per-link transport conditions (latency,
  jitter, loss, duplication, extra reordering delay);
* :class:`RetryPolicy` -- per-message timeout with bounded retry and
  exponential backoff;
* :class:`StalenessPolicy` -- how long a PMU trusts its last budget
  directive and how it decays toward the thermally-safe floor
  (``P_limit`` from Eqs. 1-3) once the directive goes stale.

:class:`ControlPlaneConfig` bundles them with optional per-link
overrides.  The default configuration is a *perfect* transport: zero
latency, zero loss -- under it :class:`~repro.control_plane.controller.
DistributedWillowController` reproduces the scalar controller exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

__all__ = [
    "LinkProfile",
    "RetryPolicy",
    "StalenessPolicy",
    "ControlPlaneConfig",
]

PERFECT = None  # sentinel docs only; LinkProfile() *is* the perfect link


@dataclass(frozen=True)
class LinkProfile:
    """Transport conditions on one (child, parent) tree link.

    Latencies are measured in control ticks (``Delta_D``); a latency of
    zero delivers within the sending tick, exactly like the synchronous
    in-process controller.

    Attributes
    ----------
    latency_ticks:
        Base one-way delivery delay, in ticks.
    jitter_ticks:
        Uniform extra delay in ``{0, ..., jitter_ticks}`` drawn per
        transmission.  Jitter alone already produces reordering.
    drop_prob:
        Probability a transmission is lost in flight.
    dup_prob:
        Probability a delivered message is delivered a second time one
        tick later (the receiver deduplicates by sequence number).
    reorder_prob / reorder_extra_ticks:
        With probability ``reorder_prob`` a transmission is held back
        ``reorder_extra_ticks`` additional ticks, overtaking later
        messages on the same link.
    """

    latency_ticks: int = 0
    jitter_ticks: int = 0
    drop_prob: float = 0.0
    dup_prob: float = 0.0
    reorder_prob: float = 0.0
    reorder_extra_ticks: int = 1

    def __post_init__(self) -> None:
        if self.latency_ticks < 0:
            raise ValueError("latency_ticks must be >= 0")
        if self.jitter_ticks < 0:
            raise ValueError("jitter_ticks must be >= 0")
        for name in ("drop_prob", "dup_prob", "reorder_prob"):
            p = getattr(self, name)
            if not 0.0 <= p < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {p}")
        if self.reorder_extra_ticks < 0:
            raise ValueError("reorder_extra_ticks must be >= 0")

    @property
    def is_perfect(self) -> bool:
        """True when the link neither delays nor perturbs messages."""
        return (
            self.latency_ticks == 0
            and self.jitter_ticks == 0
            and self.drop_prob == 0.0
            and self.dup_prob == 0.0
            and self.reorder_prob == 0.0
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retransmission with exponential backoff.

    A reliable send arms a timer of ``timeout_ticks``; if no transport
    acknowledgement arrives in time the message is retransmitted, the
    timer doubling (``backoff``) each attempt, up to ``max_retries``
    retransmissions.  Retransmissions count as *sent* control messages
    (Property 3 is a bound on sends per link per ``Delta_D``; on a
    healthy network no retries fire, so the paper's bound of 2 holds).
    """

    timeout_ticks: int = 2
    max_retries: int = 3
    backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.timeout_ticks < 1:
            raise ValueError("timeout_ticks must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1.0")

    def timeout_for_attempt(self, attempt: int) -> int:
        """Timeout (ticks) armed after transmission ``attempt`` (0-based)."""
        return max(1, int(round(self.timeout_ticks * self.backoff**attempt)))


@dataclass(frozen=True)
class StalenessPolicy:
    """What a PMU does when its budget directive stops arriving.

    The PMU *holds* its last budget for ``ttl_ticks``; once the budget
    is older than the TTL it geometrically decays toward its
    thermally-safe floor -- ``floor_fraction`` of the node's hard cap
    ``min(P_limit, circuit)`` (Eqs. 1-3) -- hedging both thermal safety
    (any budget at or below ``P_limit`` cannot violate ``T_limit``) and
    the possibility that the unreachable supply has shrunk meanwhile.

    ``ttl_ticks=None`` resolves to ``3 * eta1`` ticks (three missed
    supply periods) at controller construction.
    """

    ttl_ticks: Optional[int] = None
    decay: float = 0.8
    floor_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.ttl_ticks is not None and self.ttl_ticks < 1:
            raise ValueError("ttl_ticks must be >= 1 (or None)")
        if not 0.0 <= self.decay < 1.0:
            raise ValueError(f"decay must be in [0, 1), got {self.decay}")
        if not 0.0 <= self.floor_fraction <= 1.0:
            raise ValueError("floor_fraction must be in [0, 1]")

    def resolve_ttl(self, eta1: int) -> int:
        """Effective TTL in ticks for a supply period of ``eta1`` ticks."""
        if self.ttl_ticks is not None:
            return self.ttl_ticks
        return 3 * eta1

    def decayed(self, budget: float, floor: float) -> float:
        """One tick of decay from ``budget`` toward ``floor`` (from above)."""
        if budget <= floor:
            return budget
        return floor + (budget - floor) * self.decay


@dataclass(frozen=True)
class ControlPlaneConfig:
    """Everything the distributed control plane needs beyond WillowConfig.

    ``default_link`` applies to every tree link unless ``link_overrides``
    maps that link id (= child node id) to its own profile.
    """

    default_link: LinkProfile = field(default_factory=LinkProfile)
    link_overrides: Mapping[int, LinkProfile] = field(default_factory=dict)
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    staleness: StalenessPolicy = field(default_factory=StalenessPolicy)
    #: Acks model transport-layer frames (cumulative/piggyback in a real
    #: deployment) and are not counted against the Property-3 bound;
    #: set False to disable reliability entirely (fire and forget).
    reliable: bool = True

    def link(self, link_id: int) -> LinkProfile:
        """Profile for one link (child node id)."""
        return self.link_overrides.get(link_id, self.default_link)

    @property
    def is_perfect(self) -> bool:
        """True when every link is perfect (the equivalence regime)."""
        return self.default_link.is_perfect and all(
            profile.is_perfect for profile in self.link_overrides.values()
        )
