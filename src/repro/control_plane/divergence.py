"""Divergence of a degraded run from the ideal synchronous controller.

A distributed run and its ideal twin (same seed, same topology, same
demand randomness -- see :func:`~repro.control_plane.controller.
run_distributed`) produce sample-aligned series; the difference is
entirely attributable to the control plane: latency, loss, staleness
decay, crashes, partitions.  These helpers quantify it.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.metrics.collector import MetricsCollector

__all__ = ["divergence_series", "divergence_summary"]

_COMPARED_ATTRS = ("budget", "power", "temperature")


def _aligned(ideal: MetricsCollector, actual: MetricsCollector, attr: str):
    """Per-sample series of ``attr`` from both runs, order-checked."""
    if len(ideal.server_samples) != len(actual.server_samples):
        raise ValueError(
            "runs are not comparable: "
            f"{len(ideal.server_samples)} vs {len(actual.server_samples)} "
            "server samples (different tick counts or topologies?)"
        )
    key = [(s.time, s.server_id) for s in ideal.server_samples]
    if key != [(s.time, s.server_id) for s in actual.server_samples]:
        raise ValueError("runs are not comparable: sample keys differ")
    a = np.array([getattr(s, attr) for s in ideal.server_samples])
    b = np.array([getattr(s, attr) for s in actual.server_samples])
    return a, b


def divergence_series(
    ideal: MetricsCollector, actual: MetricsCollector
) -> Dict[str, np.ndarray]:
    """Per-tick mean absolute delta of each compared server attribute.

    Returns ``{"times": ..., "budget": ..., "power": ..., "temperature":
    ...}`` where each non-time entry is the fleet-mean ``|ideal -
    actual|`` at every tick.
    """
    times = ideal.times()
    n_servers = len(ideal.server_ids())
    out: Dict[str, np.ndarray] = {"times": times}
    for attr in _COMPARED_ATTRS:
        a, b = _aligned(ideal, actual, attr)
        delta = np.abs(a - b).reshape(len(times), n_servers)
        out[attr] = delta.mean(axis=1)
    return out


def divergence_summary(
    ideal: MetricsCollector, actual: MetricsCollector
) -> Dict[str, float]:
    """Scalar divergence: mean and max absolute delta per attribute.

    Keys are ``<attr>_mean`` / ``<attr>_max`` for budget, power and
    temperature, plus ``migration_delta`` (absolute difference in
    migration counts) and ``dropped_power_delta`` (absolute difference
    in total unserved watts).  All zero iff the degraded run tracked the
    ideal controller exactly.
    """
    summary: Dict[str, float] = {}
    for attr in _COMPARED_ATTRS:
        a, b = _aligned(ideal, actual, attr)
        delta = np.abs(a - b)
        summary[f"{attr}_mean"] = float(delta.mean())
        summary[f"{attr}_max"] = float(delta.max())
    summary["migration_delta"] = float(
        abs(len(ideal.migrations) - len(actual.migrations))
    )
    summary["dropped_power_delta"] = float(
        abs(ideal.total_dropped_power() - actual.total_dropped_power())
    )
    return summary
