"""The distributed Willow controller.

:class:`DistributedWillowController` keeps the scalar controller's
decision logic -- the same demand smoothing, capped proportional budget
waterfill, migration matching, consolidation and serving code paths --
but every piece of *cross-node* control state (child demands and caps
at internal PMUs, budgets at every node) is sourced exclusively from
messages delivered by a :class:`~repro.control_plane.transport.
Transport`, with per-link latency/jitter/loss/duplication, bounded
retry with exponential backoff, budget staleness decay, and seeded
crash/partition fault injection.

With the default (perfect) transport and an empty fault schedule the
controller is a behavioural twin of :class:`~repro.core.controller.
WillowController`: zero-latency links deliver synchronously in the same
level order the in-process loop uses, so every budget, migration and
temperature series is reproduced exactly.  ``tests/test_control_plane.py``
enforces that contract the same way ``tests/test_vectorized_equivalence
.py`` does for the vectorized path.

Scope: the *budget/report control loop* is distributed.  Workload
management (migration matching, consolidation) still executes as the
paper's per-level algorithm over the runtime objects -- but those
runtimes now hold message-derived budgets, so degraded transport
conditions propagate into every downstream decision.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional

from repro.control_plane.agents import InternalAgent, LeafAgent, _AgentBase
from repro.control_plane.config import ControlPlaneConfig
from repro.control_plane.faults import FaultSchedule
from repro.control_plane.transport import LinkStats, Transport
from repro.core.config import WillowConfig
from repro.core.controller import WillowController
from repro.metrics.collector import MetricsCollector
from repro.power.supply import SupplyTrace, constant_supply
from repro.topology.tree import Node, Tree
from repro.workload.applications import SIMULATION_APPS

__all__ = ["DistributedWillowController", "run_distributed"]


class DistributedWillowController(WillowController):
    """Willow with the PMU hierarchy emulated as message-passing agents.

    Accepts everything :class:`WillowController` does, plus:

    Parameters
    ----------
    control_plane:
        Transport/retry/staleness configuration; default is a perfect
        transport (the equivalence regime).
    faults:
        Deterministic crash windows and link partitions; default none.
    """

    def __init__(
        self,
        tree: Tree,
        config: WillowConfig,
        supply: SupplyTrace,
        placement,
        *,
        control_plane: Optional[ControlPlaneConfig] = None,
        faults: Optional[FaultSchedule] = None,
        **kwargs,
    ):
        super().__init__(tree, config, supply, placement, **kwargs)
        self.control_plane = control_plane or ControlPlaneConfig()
        self.faults = faults or FaultSchedule()
        self.transport = Transport(
            self.env,
            self.control_plane,
            self.streams,
            self.collector,
            tick_length=config.delta_d,
            is_partitioned=self.faults.is_partitioned,
            is_receiver_down=self.faults.is_crashed,
        )

        ttl = self.control_plane.staleness.resolve_ttl(config.eta1)
        staleness = self.control_plane.staleness
        self.leaf_agents: Dict[int, LeafAgent] = {
            leaf.node_id: LeafAgent(
                leaf, self.servers[leaf.node_id], self.transport, staleness, ttl
            )
            for leaf in tree.servers()
        }
        self.internal_agents: Dict[int, InternalAgent] = {
            runtime.node.node_id: InternalAgent(
                runtime.node,
                runtime,
                self.transport,
                staleness,
                ttl,
                allocation_mode=config.allocation_mode,
                site_reserve=self._site_reserve,
            )
            for runtime in self.internals.values()
        }
        self.root_agent = self.internal_agents[tree.root.node_id]

        if self.tracer.enabled:
            for agent in self._agents():
                agent.tracer = self.tracer
                agent.circuit_limit = config.circuit_limit

        for node in tree:
            if node.is_root:
                continue
            link = node.node_id
            self.transport.register_link(link, node.node_id, node.parent.node_id)
            parent_agent = self.internal_agents[node.parent.node_id]
            self.transport.set_handler(link, True, parent_agent.on_report)
            child_agent = (
                self.leaf_agents[node.node_id]
                if node.is_leaf
                else self.internal_agents[node.node_id]
            )
            self.transport.set_handler(link, False, child_agent.on_directive)

    # ------------------------------------------------------------- phases
    def _site_reserve(self, node: Node) -> float:
        """Colocated switch-group draw reserved off a node's budget."""
        return sum(
            self._last_switch_power[s.switch_id]
            for s in self.fabric.at_site(node)
        )

    def _agents(self) -> Iterator[_AgentBase]:
        yield from self.leaf_agents.values()
        yield from self.internal_agents.values()

    def _apply_fault_transitions(self, tick: int) -> None:
        if self.faults.empty:
            return
        for agent in self._agents():
            down = self.faults.is_crashed(agent.node.node_id, tick)
            if down and not agent.crashed:
                agent.crash()
                if self.tracer.enabled:
                    self.tracer.record_event(
                        "cp_agent_crash", agent.node.node_id
                    )
            elif not down and agent.crashed:
                agent.restart()
                if self.tracer.enabled:
                    self.tracer.record_event(
                        "cp_agent_restart", agent.node.node_id
                    )

    def _aggregate_demands(self, now: float) -> None:
        """Upward phase: every live PMU reports once per ``Delta_D``.

        Replaces the scalar in-process aggregation.  Delayed messages
        from earlier ticks have already been delivered by the kernel
        (delivery events precede the tick event at the same timestamp),
        so each level folds the freshest *delivered* child state.
        """
        tick = self._tick_index
        self._apply_fault_transitions(tick)
        for leaf in self.tree.servers():
            self.leaf_agents[leaf.node_id].tick_report(tick)
        for level in range(1, self.tree.root.level + 1):
            for node in self.tree.nodes_at_level(level):
                self.internal_agents[node.node_id].tick_report(tick)
        for agent in self._agents():
            agent.tick_staleness()

    def _allocate_budgets(self, now: float) -> None:
        """Supply phase: the root divides; directives cascade by message."""
        self.root_budget = self.supply.at(now)
        self.root_agent.on_supply(self.root_budget, self._tick_index)
        if self.tracer.enabled:
            self.tracer.record_root(
                self.root_budget,
                self.root_agent._own_cap(),
                self.root_agent.runtime.budget,
            )

    # ------------------------------------------------------------ reports
    def transport_stats(self) -> LinkStats:
        """Transport counters summed over all links."""
        return self.transport.total_stats()

    def stale_discards(self) -> int:
        """Reordered/retransmitted frames agents refused to apply."""
        return sum(agent.stale_discards for agent in self._agents())

    def snapshot_state(self):
        """Not supported: in-flight transport frames, per-agent retry
        queues and staleness clocks are not captured by the base
        snapshot, and resuming without them would diverge silently."""
        from repro.checkpoint.errors import CheckpointError

        raise CheckpointError(
            "DistributedWillowController does not support checkpointing; "
            "run the scalar or vectorized controller for resumable runs"
        )


def run_distributed(
    *,
    tree: Optional[Tree] = None,
    config: Optional[WillowConfig] = None,
    supply: Optional[SupplyTrace] = None,
    control_plane: Optional[ControlPlaneConfig] = None,
    faults: Optional[FaultSchedule] = None,
    target_utilization: float = 0.4,
    n_ticks: int = 100,
    seed: int = 0,
    apps: tuple = SIMULATION_APPS,
    vms_per_server: int = 4,
    ambient_overrides: Optional[Mapping[str, float]] = None,
    tracer=None,
) -> tuple:
    """Build and run a distributed Willow simulation in one call.

    Mirrors :func:`repro.core.controller.run_willow` -- identical tree,
    placement and demand randomness for a given ``seed``, so the result
    is directly comparable (see :mod:`repro.control_plane.divergence`)
    to the ideal synchronous run.  Returns ``(controller, collector)``.
    """
    from repro.sim.rng import RandomStreams
    from repro.topology.builders import build_paper_simulation
    from repro.workload.generator import (
        random_placement,
        scale_for_target_utilization,
    )

    tree = tree or build_paper_simulation()
    config = config or WillowConfig()
    servers = tree.servers()
    if supply is None:
        supply = constant_supply(len(servers) * config.circuit_limit)

    streams = RandomStreams(seed)
    placement = random_placement(
        [s.node_id for s in servers],
        apps,
        streams["placement"],
        vms_per_server=vms_per_server,
    )
    scale_for_target_utilization(
        placement, config.server_model.slope, target_utilization
    )
    controller = DistributedWillowController(
        tree,
        config,
        supply,
        placement,
        control_plane=control_plane,
        faults=faults,
        ambient_overrides=ambient_overrides,
        seed=seed,
        tracer=tracer,
    )
    collector: MetricsCollector = controller.run(n_ticks)
    return controller, collector
