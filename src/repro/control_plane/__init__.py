"""Distributed control-plane emulation (beyond the paper).

The paper's Property 3 bounds control traffic to two messages per tree
link per ``Delta_D`` -- but the reproduction's scalar controller
computes the whole PMU hierarchy synchronously in-process, so the bound
(and the thermal-safety invariants) were only ever *asserted* under
ideal conditions.  This package exercises them under real transport
conditions: every PMU is an agent exchanging actual
:class:`~repro.control_plane.agents.DemandReport` /
:class:`~repro.control_plane.agents.BudgetDirective` messages over a
configurable lossy :class:`~repro.control_plane.transport.Transport`,
with bounded retry, budget-staleness decay toward the thermally-safe
floor, and deterministic crash/partition fault injection.

Entry points: :class:`DistributedWillowController` /
:func:`run_distributed` to run one; :func:`divergence_summary` to
compare against the ideal synchronous controller;
``python -m repro.cli degraded`` and ``examples/lossy_control_plane.py``
for the guided tour; the ``degraded`` experiment for the drop-rate x
latency sweep.
"""

from repro.control_plane.agents import (
    BudgetDirective,
    DemandReport,
    InternalAgent,
    LeafAgent,
)
from repro.control_plane.config import (
    ControlPlaneConfig,
    LinkProfile,
    RetryPolicy,
    StalenessPolicy,
)
from repro.control_plane.controller import (
    DistributedWillowController,
    run_distributed,
)
from repro.control_plane.divergence import divergence_series, divergence_summary
from repro.control_plane.faults import (
    CrashWindow,
    FaultSchedule,
    LinkPartition,
    random_fault_schedule,
)
from repro.control_plane.transport import LinkStats, Transport

__all__ = [
    "BudgetDirective",
    "ControlPlaneConfig",
    "CrashWindow",
    "DemandReport",
    "DistributedWillowController",
    "FaultSchedule",
    "InternalAgent",
    "LeafAgent",
    "LinkPartition",
    "LinkProfile",
    "LinkStats",
    "RetryPolicy",
    "StalenessPolicy",
    "Transport",
    "divergence_series",
    "divergence_summary",
    "random_fault_schedule",
    "run_distributed",
]
