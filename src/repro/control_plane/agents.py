"""PMU agents: the per-node endpoints of the distributed control plane.

Each tree node's power-management unit becomes an agent that sources
**all** cross-node state from delivered messages:

* a :class:`LeafAgent` wraps one :class:`~repro.core.state.ServerRuntime`;
  every tick it reports ``(smoothed demand, hard cap)`` upward and it
  enforces whatever budget directive last reached it;
* an :class:`InternalAgent` wraps one
  :class:`~repro.core.state.NodeRuntime`; it aggregates the *last
  delivered* child reports (stale under loss), reports the aggregate
  upward, and on receiving a budget directive divides it among its
  children -- the exact capped proportional waterfill of the scalar
  controller -- forwarding one directive per child link.

Robustness is local: each agent counts ticks since its budget was
refreshed and, past the staleness TTL, decays its budget toward the
thermally-safe floor (:class:`~repro.control_plane.config.
StalenessPolicy`).  A crashed agent freezes -- its last enforced budget
outlives the controller, like real power-cap hardware -- and restarts
empty, conservatively re-armed at the floor.

Message payloads carry the sending tick; agents discard directives and
reports older than the newest they have applied, so retransmissions and
reordered frames can never roll state backwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.control_plane.config import StalenessPolicy
from repro.control_plane.transport import Transport
from repro.core.state import NodeRuntime, ServerRuntime
from repro.power.budget import allocate_proportional
from repro.topology.tree import Node
from repro.trace.tracer import NULL_TRACER

__all__ = ["DemandReport", "BudgetDirective", "LeafAgent", "InternalAgent"]


@dataclass(frozen=True)
class DemandReport:
    """Upward payload: one subtree's smoothed demand and hard cap (W)."""

    node_id: int  # sender (the child endpoint of the link)
    demand: float  # smoothed wall-watt demand of the subtree
    cap: float  # aggregated min(P_limit, circuit) of the subtree
    tick: int  # control tick the report describes


@dataclass(frozen=True)
class BudgetDirective:
    """Downward payload: the budget granted to one child subtree (W)."""

    node_id: int  # addressee (the child endpoint of the link)
    budget: float
    tick: int  # control tick the allocation was computed at


class _AgentBase:
    """Crash state and budget-staleness bookkeeping shared by both kinds."""

    def __init__(
        self, node: Node, staleness: StalenessPolicy, ttl_ticks: int
    ):
        self.node = node
        self.staleness = staleness
        self.ttl_ticks = ttl_ticks
        self.crashed = False
        self.ticks_since_budget = 0
        self._last_directive_seq = -1
        #: reordered/retransmitted frames discarded as stale
        self.stale_discards = 0
        #: observability (set by the owning controller when tracing)
        self.tracer = NULL_TRACER
        self.circuit_limit: Optional[float] = None

    # Subclasses bind these to their runtime object.
    def _budget(self) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def _set_budget(self, budget: float) -> None:  # pragma: no cover
        raise NotImplementedError

    def _safe_cap(self) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def tick_staleness(self) -> None:
        """Advance the budget age; decay once it exceeds the TTL."""
        if self.crashed:
            return
        self.ticks_since_budget += 1
        if self.ticks_since_budget <= self.ttl_ticks:
            return
        floor = self.staleness.floor_fraction * self._safe_cap()
        decayed = self.staleness.decayed(self._budget(), floor)
        if decayed != self._budget():
            self._set_budget(decayed)
            if self.tracer.enabled:
                self.tracer.record_event(
                    "cp_budget_decay",
                    self.node.node_id,
                    f"stale {self.ticks_since_budget} ticks, "
                    f"budget -> {decayed:.1f} W",
                )

    def _accept_directive(self, directive: BudgetDirective, seq: int) -> bool:
        """Order-guarded application of a budget directive."""
        if self.crashed:
            return False
        if seq <= self._last_directive_seq:
            self.stale_discards += 1
            return False
        self._last_directive_seq = seq
        self._set_budget(directive.budget)
        self.ticks_since_budget = 0
        return True

    def crash(self) -> None:
        """PMU down: freeze; enforcement hardware holds the last budget."""
        self.crashed = True

    def restart(self) -> None:
        """PMU back up with no state: re-arm at the thermally-safe floor."""
        self.crashed = False
        self.ticks_since_budget = 0
        self._set_budget(self.staleness.floor_fraction * self._safe_cap())


class LeafAgent(_AgentBase):
    """The PMU of one physical server (a leaf of the hierarchy)."""

    def __init__(
        self,
        node: Node,
        server: ServerRuntime,
        transport: Transport,
        staleness: StalenessPolicy,
        ttl_ticks: int,
    ):
        super().__init__(node, staleness, ttl_ticks)
        self.server = server
        self.transport = transport

    def _budget(self) -> float:
        return self.server.budget

    def _set_budget(self, budget: float) -> None:
        self.server.set_budget(budget)

    def _safe_cap(self) -> float:
        return self.server.hard_cap()

    def tick_report(self, tick: int) -> None:
        """Send this tick's (smoothed demand, hard cap) to the parent."""
        if self.crashed:
            return
        self.transport.send(
            self.node.node_id,
            True,
            DemandReport(
                node_id=self.node.node_id,
                demand=self.server.smoothed_demand,
                cap=self.server.hard_cap(),
                tick=tick,
            ),
        )

    def on_directive(self, directive: BudgetDirective, seq: int) -> None:
        self._accept_directive(directive, seq)


class InternalAgent(_AgentBase):
    """The PMU of one internal hierarchy node (rack, row, datacenter)."""

    def __init__(
        self,
        node: Node,
        runtime: NodeRuntime,
        transport: Transport,
        staleness: StalenessPolicy,
        ttl_ticks: int,
        *,
        allocation_mode: str,
        site_reserve: Callable[[Node], float],
    ):
        super().__init__(node, staleness, ttl_ticks)
        self.runtime = runtime
        self.transport = transport
        self.allocation_mode = allocation_mode
        self.site_reserve = site_reserve
        #: last delivered per-child state, in ``node.children`` order
        self.child_demand: Dict[int, float] = {
            child.node_id: 0.0 for child in node.children
        }
        self.child_cap: Dict[int, float] = {
            child.node_id: 0.0 for child in node.children
        }
        self._last_report_seq: Dict[int, int] = {
            child.node_id: -1 for child in node.children
        }

    def _budget(self) -> float:
        return self.runtime.budget

    def _set_budget(self, budget: float) -> None:
        self.runtime.set_budget(budget)

    def _safe_cap(self) -> float:
        return self._own_cap()

    def _own_cap(self) -> float:
        """Aggregate hard cap, folded in children order like the scalar."""
        return sum(self.child_cap[c.node_id] for c in self.node.children)

    # ------------------------------------------------------------- upward
    def on_report(self, report: DemandReport, seq: int) -> None:
        if self.crashed:
            return
        if seq <= self._last_report_seq.get(report.node_id, -1):
            self.stale_discards += 1
            return
        self._last_report_seq[report.node_id] = seq
        self.child_demand[report.node_id] = report.demand
        self.child_cap[report.node_id] = report.cap

    def tick_report(self, tick: int) -> None:
        """Fold delivered child reports, smooth, and report upward."""
        if self.crashed:
            return
        total = 0.0
        for child in self.node.children:
            total += self.child_demand[child.node_id]
        self.runtime.observe_demand(total)
        if self.node.is_root:
            return
        self.transport.send(
            self.node.node_id,
            True,
            DemandReport(
                node_id=self.node.node_id,
                demand=self.runtime.smoothed_demand,
                cap=self._own_cap(),
                tick=tick,
            ),
        )

    # ----------------------------------------------------------- downward
    def on_supply(self, root_supply: float, tick: int) -> None:
        """Root entry point: absorb the facility supply and distribute."""
        if self.crashed:
            return
        self.runtime.set_budget(min(root_supply, self._own_cap()))
        self.ticks_since_budget = 0
        self._distribute(tick)

    def on_directive(self, directive: BudgetDirective, seq: int) -> None:
        if self._accept_directive(directive, seq):
            self._distribute(directive.tick)

    def _distribute(self, tick: int) -> None:
        """Divide this node's budget among children; one message each.

        Same arithmetic as ``WillowController._allocate_budgets``: the
        colocated switch group's draw comes off the top, the rest is a
        capped proportional waterfill over the *last delivered* child
        demands and caps.
        """
        reserve = self.site_reserve(self.node)
        budget = max(self.runtime.budget - reserve, 0.0)
        demands: List[float] = []
        child_caps: List[float] = []
        for child in self.node.children:
            demands.append(self.child_demand[child.node_id])
            child_caps.append(self.child_cap[child.node_id])
        if self.allocation_mode == "capacity":
            weights = list(child_caps)
        else:
            weights = demands
        allocations, _unused = allocate_proportional(budget, weights, child_caps)
        for child, allocation in zip(self.node.children, allocations):
            self.transport.send(
                child.node_id,
                False,
                BudgetDirective(
                    node_id=child.node_id, budget=float(allocation), tick=tick
                ),
            )
        if self.tracer.enabled:
            # Record the division as computed; ``source_tick`` marks
            # stale directives (applied ticks after they were cut).
            for child, allocation, weight, cap in zip(
                self.node.children, allocations, weights, child_caps
            ):
                self.tracer.record_allocation(
                    child.node_id,
                    self.node.node_id,
                    child.level,
                    allocation,
                    weight,
                    cap,
                    budget,
                    reserve,
                    leaf=child.is_leaf,
                    circuit_limit=(
                        self.circuit_limit if child.is_leaf else None
                    ),
                    source_tick=tick,
                )
