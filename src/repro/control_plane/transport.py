"""Message transport for the distributed PMU hierarchy.

Every (child, parent) tree edge becomes a bidirectional *link* --
identified, like :class:`repro.core.events.ControlMessage`, by the
child's node id.  Payloads (demand reports upward, budget directives
downward) travel through a :class:`Transport` that imposes per-link
latency, jitter, loss, duplication and reordering, drawn from seeded
:class:`~repro.sim.rng.RandomStreams` so every degraded run replays
exactly.  Deliveries are scheduled on the shared
:class:`~repro.sim.core.Environment` kernel; a zero-latency link
delivers synchronously, which is what makes the perfect-transport
configuration bit-identical to the in-process controller.

Reliability is a thin ARQ layer: each payload send arms a timeout; on
delivery the transport returns an acknowledgement frame over the same
link (subject to the same conditions); a sender whose timer expires
retransmits with exponential backoff up to the retry bound.  Payload
transmissions -- including retransmissions -- are recorded as
:class:`ControlMessage` in the collector, so Property 3 keeps counting
*sent* messages per link per ``Delta_D``; ack frames model
transport-level (piggybacked, in a real stack) signalling and are
tracked only in :class:`LinkStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.control_plane.config import ControlPlaneConfig
from repro.core.events import ControlMessage
from repro.metrics.collector import MetricsCollector
from repro.sim.core import Environment
from repro.sim.rng import RandomStreams

__all__ = ["LinkStats", "Transport"]

#: handler(payload, seq) -- seq increases with send order per direction.
Handler = Callable[[Any, int], None]


@dataclass
class LinkStats:
    """Per-link transport counters (payloads unless prefixed ``acks_``)."""

    sent: int = 0  # first transmissions
    retransmits: int = 0  # timeout-driven resends
    delivered: int = 0  # first-time deliveries handed to the agent
    duplicates_delivered: int = 0  # deduplicated arrivals (dup or re-send)
    dropped_loss: int = 0  # lost to random loss
    dropped_partition: int = 0  # lost to a link partition
    dropped_crash: int = 0  # receiver PMU was down
    expired: int = 0  # gave up after max retries
    acks_sent: int = 0
    acks_delivered: int = 0
    acks_dropped: int = 0

    def add(self, other: "LinkStats") -> None:
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class Transport:
    """Lossy, delayed, duplicating message fabric over the tree links.

    Parameters
    ----------
    env:
        The simulation kernel deliveries are scheduled on.
    config:
        Link profiles, retry policy, reliability switch.
    streams:
        Seeded stream family; the transport draws from
        ``transport/link-<id>`` streams only, so enabling it never
        perturbs demand or placement randomness.
    collector:
        Destination for :class:`ControlMessage` records (one per payload
        transmission, retransmissions included).
    tick_length:
        Seconds per control tick (``config.delta_d`` of the run).
    is_partitioned / is_receiver_down:
        Fault oracles ``(link, tick) -> bool`` and ``(node_id, tick) ->
        bool``; default to healthy.
    """

    def __init__(
        self,
        env: Environment,
        config: ControlPlaneConfig,
        streams: RandomStreams,
        collector: MetricsCollector,
        *,
        tick_length: float = 1.0,
        is_partitioned: Optional[Callable[[int, int], bool]] = None,
        is_receiver_down: Optional[Callable[[int, int], bool]] = None,
    ):
        if tick_length <= 0:
            raise ValueError("tick_length must be positive")
        self.env = env
        self.config = config
        self.streams = streams
        self.collector = collector
        self.tick_length = float(tick_length)
        self._is_partitioned = is_partitioned or (lambda link, tick: False)
        self._is_receiver_down = is_receiver_down or (lambda node, tick: False)

        self.stats: Dict[int, LinkStats] = {}
        #: link id -> (child node id, parent node id)
        self._endpoints: Dict[int, Tuple[int, int]] = {}
        self._handlers: Dict[Tuple[int, bool], Handler] = {}
        self._seq: Dict[Tuple[int, bool], int] = {}
        #: (link, upward, seq) -> (payload, attempt) awaiting an ack
        self._pending: Dict[Tuple[int, bool, int], Tuple[Any, int]] = {}
        self._delivered_seqs: Dict[Tuple[int, bool], Set[int]] = {}

    # ------------------------------------------------------------ wiring
    def register_link(self, link: int, child_id: int, parent_id: int) -> None:
        """Declare one tree edge; must precede sends on that link."""
        self._endpoints[link] = (child_id, parent_id)
        self.stats.setdefault(link, LinkStats())

    def set_handler(self, link: int, upward: bool, handler: Handler) -> None:
        """Attach the receiving agent's callback for one direction."""
        if link not in self._endpoints:
            raise ValueError(f"unknown link {link}; register_link first")
        self._handlers[(link, upward)] = handler

    # ------------------------------------------------------------- sending
    def send(self, link: int, upward: bool, payload: Any) -> int:
        """Transmit ``payload`` on ``link``; returns its sequence number."""
        if link not in self._endpoints:
            raise ValueError(f"unknown link {link}; register_link first")
        key = (link, upward)
        seq = self._seq.get(key, 0)
        self._seq[key] = seq + 1
        self._transmit(link, upward, seq, payload, attempt=0)
        return seq

    def _transmit(
        self, link: int, upward: bool, seq: int, payload: Any, attempt: int
    ) -> None:
        now = self.env.now
        stats = self.stats[link]
        if attempt == 0:
            stats.sent += 1
        else:
            stats.retransmits += 1
        self.collector.record_message(ControlMessage(now, link=link, upward=upward))

        if self.config.reliable:
            self._pending[(link, upward, seq)] = (payload, attempt)
            timeout = self.config.retry.timeout_for_attempt(attempt)
            self.env.call_at(
                now + timeout * self.tick_length,
                lambda: self._check_ack(link, upward, seq),
            )

        profile = self.config.link(link)
        rng = self.streams[f"transport/link-{link}"]
        if self._is_partitioned(link, self._tick()):
            stats.dropped_partition += 1
            return
        if profile.drop_prob and rng.random() < profile.drop_prob:
            stats.dropped_loss += 1
            return
        delay = profile.latency_ticks
        if profile.jitter_ticks:
            delay += int(rng.integers(0, profile.jitter_ticks + 1))
        if profile.reorder_prob and rng.random() < profile.reorder_prob:
            delay += profile.reorder_extra_ticks
        self._at(delay, lambda: self._deliver(link, upward, seq, payload))
        if profile.dup_prob and rng.random() < profile.dup_prob:
            self._at(delay + 1, lambda: self._deliver(link, upward, seq, payload))

    # ------------------------------------------------------------ delivery
    def _deliver(self, link: int, upward: bool, seq: int, payload: Any) -> None:
        stats = self.stats[link]
        receiver = self.receiver(link, upward)
        if self._is_receiver_down(receiver, self._tick()):
            stats.dropped_crash += 1
            return
        # Ack every arrival, duplicates included: the original ack may
        # be the frame that got lost.
        if self.config.reliable:
            self._send_ack(link, upward, seq)
        seen = self._delivered_seqs.setdefault((link, upward), set())
        if seq in seen:
            stats.duplicates_delivered += 1
            return
        seen.add(seq)
        stats.delivered += 1
        handler = self._handlers.get((link, upward))
        if handler is not None:
            handler(payload, seq)

    def _send_ack(self, link: int, upward: bool, seq: int) -> None:
        stats = self.stats[link]
        stats.acks_sent += 1
        profile = self.config.link(link)
        rng = self.streams[f"transport/link-{link}"]
        if self._is_partitioned(link, self._tick()):
            stats.acks_dropped += 1
            return
        if profile.drop_prob and rng.random() < profile.drop_prob:
            stats.acks_dropped += 1
            return
        delay = profile.latency_ticks
        if profile.jitter_ticks:
            delay += int(rng.integers(0, profile.jitter_ticks + 1))
        self._at(delay, lambda: self._ack_arrived(link, upward, seq))

    def _ack_arrived(self, link: int, upward: bool, seq: int) -> None:
        stats = self.stats[link]
        sender = self.receiver(link, not upward)
        if self._is_receiver_down(sender, self._tick()):
            stats.acks_dropped += 1
            return
        if self._pending.pop((link, upward, seq), None) is not None:
            stats.acks_delivered += 1

    def _check_ack(self, link: int, upward: bool, seq: int) -> None:
        entry = self._pending.get((link, upward, seq))
        if entry is None:
            return  # acked in time
        payload, attempt = entry
        stats = self.stats[link]
        sender = self.receiver(link, not upward)
        if self._is_receiver_down(sender, self._tick()):
            # A crashed PMU cannot run its retry timers.
            self._pending.pop((link, upward, seq))
            stats.expired += 1
            return
        if attempt >= self.config.retry.max_retries:
            self._pending.pop((link, upward, seq))
            stats.expired += 1
            return
        self._pending.pop((link, upward, seq))
        self._transmit(link, upward, seq, payload, attempt + 1)

    # ------------------------------------------------------------- helpers
    def receiver(self, link: int, upward: bool) -> int:
        """Node id that direction's payloads are addressed to."""
        child_id, parent_id = self._endpoints[link]
        return parent_id if upward else child_id

    def _tick(self) -> int:
        return int(round(self.env.now / self.tick_length))

    def _at(self, delay_ticks: int, callback: Callable[[], None]) -> None:
        if delay_ticks <= 0:
            callback()
        else:
            self.env.call_at(
                self.env.now + delay_ticks * self.tick_length, callback
            )

    def total_stats(self) -> LinkStats:
        """Counters summed over every link."""
        total = LinkStats()
        for stats in self.stats.values():
            total.add(stats)
        return total

    def in_flight(self) -> int:
        """Payloads sent but neither acked nor given up on."""
        return len(self._pending)
