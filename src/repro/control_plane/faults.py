"""Deterministic fault injection for the distributed control plane.

Two fault classes, both expressed as half-open tick intervals so a
schedule is reproducible from its literal contents:

* :class:`CrashWindow` -- a PMU (any tree node's controller) is down
  for ``[start_tick, end_tick)``: it neither sends nor processes
  messages, and the transport drops anything addressed to it.  The
  *physical* server keeps running at its last enforced budget (the
  power-cap hardware outlives its controller); on restart the PMU comes
  back empty and conservatively re-arms at its thermally-safe floor.
* :class:`LinkPartition` -- a tree link carries nothing (either
  direction) for ``[start_tick, end_tick)``.

:func:`random_fault_schedule` draws a schedule from a seed via the same
``numpy`` generator discipline the rest of the repo uses, so sweeps are
replayable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Tuple

import numpy as np

from repro.topology.tree import Tree

__all__ = [
    "CrashWindow",
    "LinkPartition",
    "FaultSchedule",
    "random_fault_schedule",
]


@dataclass(frozen=True)
class CrashWindow:
    """One PMU outage: crashed for ticks in ``[start_tick, end_tick)``."""

    node_id: int
    start_tick: int
    end_tick: int

    def __post_init__(self) -> None:
        if self.start_tick < 0:
            raise ValueError("start_tick must be >= 0")
        if self.end_tick <= self.start_tick:
            raise ValueError("end_tick must exceed start_tick")

    def covers(self, tick: int) -> bool:
        return self.start_tick <= tick < self.end_tick


@dataclass(frozen=True)
class LinkPartition:
    """One link outage: partitioned for ticks in ``[start_tick, end_tick)``.

    ``link`` is the child node id of the (child, parent) edge, matching
    the link naming of :class:`repro.core.events.ControlMessage`.
    """

    link: int
    start_tick: int
    end_tick: int

    def __post_init__(self) -> None:
        if self.start_tick < 0:
            raise ValueError("start_tick must be >= 0")
        if self.end_tick <= self.start_tick:
            raise ValueError("end_tick must exceed start_tick")

    def covers(self, tick: int) -> bool:
        return self.start_tick <= tick < self.end_tick


@dataclass(frozen=True)
class FaultSchedule:
    """A deterministic set of crash windows and link partitions."""

    crashes: Tuple[CrashWindow, ...] = ()
    partitions: Tuple[LinkPartition, ...] = ()

    def is_crashed(self, node_id: int, tick: int) -> bool:
        """Is ``node_id``'s PMU down at ``tick``?"""
        return any(
            c.node_id == node_id and c.covers(tick) for c in self.crashes
        )

    def is_partitioned(self, link: int, tick: int) -> bool:
        """Is the link above ``link``'s child node down at ``tick``?"""
        return any(p.link == link and p.covers(tick) for p in self.partitions)

    @property
    def empty(self) -> bool:
        return not self.crashes and not self.partitions

    def crashed_nodes(self) -> Tuple[int, ...]:
        """Distinct node ids with at least one crash window, sorted."""
        return tuple(sorted({c.node_id for c in self.crashes}))


def random_fault_schedule(
    tree: Tree,
    *,
    seed: int,
    horizon_ticks: int,
    n_crashes: int = 0,
    n_partitions: int = 0,
    min_duration: int = 4,
    max_duration: int = 12,
    include_root: bool = False,
) -> FaultSchedule:
    """Draw a reproducible fault schedule for one run.

    Crash victims are drawn among non-root nodes by default (crashing
    the root PMU stalls the entire supply loop; opt in with
    ``include_root``).  Partition victims are drawn among all links.
    Windows are uniform in ``[min_duration, max_duration]`` ticks and
    start early enough to finish before ``horizon_ticks`` when
    possible, so the run observes both the fault and the recovery.
    """
    if horizon_ticks < 1:
        raise ValueError("horizon_ticks must be >= 1")
    if not 1 <= min_duration <= max_duration:
        raise ValueError("need 1 <= min_duration <= max_duration")
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0xFA017]))
    nodes = [n.node_id for n in tree if include_root or not n.is_root]
    links = [n.node_id for n in tree if not n.is_root]

    def windows(count: int, pool) -> list:
        out = []
        for _ in range(count):
            victim = int(rng.choice(pool))
            duration = int(rng.integers(min_duration, max_duration + 1))
            latest = max(horizon_ticks - duration, 1)
            start = int(rng.integers(0, latest))
            out.append((victim, start, start + duration))
        return out

    crashes = tuple(
        CrashWindow(node_id, start, end)
        for node_id, start, end in windows(n_crashes, nodes)
    )
    partitions = tuple(
        LinkPartition(link, start, end)
        for link, start, end in windows(n_partitions, links)
    )
    return FaultSchedule(crashes=crashes, partitions=partitions)
