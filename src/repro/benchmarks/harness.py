"""Hot-path benchmark harness: end-to-end ticks, kernels, sweep scaling.

Three suites, each writing machine-readable JSON so CI and the
regression guard (``benchmarks/test_bench_hotpath.py``) can compare
runs:

``bench_tick``
    Full controller runs, scalar vs. vectorized, at several fleet
    sizes; reports ms/tick and the speedup ratio.  This is the honest
    end-to-end number: both paths share the planners, consolidation and
    metrics code, so the ratio is bounded by the non-vectorized
    remainder (Amdahl), not by the kernels.

``bench_kernels``
    The four vectorized kernels in isolation, each against the scalar
    loop it replaced: Eq. 4 smoothing, Eq. 2 thermal step, proportional
    budget division across a tree level, and Poisson demand sampling
    (per-draw vs. block-prefetched streams).  These are where the
    vectorization pays >= 5x at 64+ servers.

``bench_sweep_scaling``
    The paper's utilization sweep over a process pool at increasing
    worker counts; reports wall-clock and parallel efficiency.

``bench_trace``
    Tracing overhead: ms/tick with tracing off (the default), enabled
    into a null sink (frame-building cost alone), and enabled into a
    rotating JSONL file (full serialization cost).  Also emits a
    deterministic model row for the *disabled* cost -- the measured
    nanoseconds of one ``tracer.enabled`` guard check times the guarded
    sites actually hit per tick -- which is what the regression guard
    (``benchmarks/test_bench_trace.py``) bounds at <= 2% of a tick,
    immune to wall-clock noise on shared CI runners.

``bench_federation``
    Multi-site scaling: the per-site scalar coordinator loop vs. the
    batched federation (one shared :class:`~repro.core.fleet.
    FederationFleet` block, fused array tick across all sites) at
    512-2048 servers, plus a churny solar row (honest Amdahl: planner
    and FFDLR stay scalar) and batched-only frontier rows at 10k
    (realtime check against ``delta_d``) and 100k servers
    (feasibility).  Build and first-tick costs (demand-stream init +
    the 256-tick Poisson prefetch) are reported separately from the
    steady-state tick.

``bench_service``
    Live-mode ingest: a load generator drives the JSON-lines gateway
    over loopback TCP while the live runner ticks the embedded
    controller on the wall clock at the paper's Delta_d = 1 s.  Reports
    sustained accepted events/sec, p99 ingest (queue) latency, and the
    worst tick's work time against the Delta_d budget; the audit log is
    replayed afterwards and the bit-exact parity verdict is recorded.

Run via ``python -m repro.cli bench`` (or ``python benchmarks/harness.py``),
which writes ``BENCH_tick.json`` and ``BENCH_sweep.json``.
``python -m repro.cli bench service`` reruns just the service suite and
merges it into an existing ``BENCH_tick.json``.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Dict, List, Sequence

import numpy as np

__all__ = [
    "bench_tick",
    "bench_kernels",
    "bench_sweep_scaling",
    "bench_trace",
    "bench_federation",
    "bench_service",
    "bench_gym",
    "run_benchmarks",
    "run_service_benchmark",
    "run_gym_benchmark",
]

#: (label, branching) per fleet size; branching multiplies to n_servers.
FLEET_SHAPES: Dict[int, Sequence[int]] = {
    18: (2, 3, 3),
    64: (2, 4, 8),
    256: (4, 8, 8),
}

#: Per-site tree shapes for the federation suite.
FEDERATION_SITE_SHAPES: Dict[int, Sequence[int]] = {
    256: (4, 8, 8),
    1024: (4, 16, 16),
    4096: (16, 16, 16),
}


def _best_of(fn, repeats: int) -> float:
    """Best-of-N wall clock (seconds) -- robust against machine noise."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# -------------------------------------------------------------- end-to-end
def _run_once(
    n_servers: int, ticks: int, vectorized: bool, seed: int = 11, tracer=None
):
    from repro.core.config import WillowConfig
    from repro.core.controller import run_willow
    from repro.power.supply import constant_supply
    from repro.topology.builders import build_balanced

    config = WillowConfig()
    tree = build_balanced(FLEET_SHAPES[n_servers])
    supply = constant_supply(0.7 * n_servers * config.circuit_limit)
    run_willow(
        tree=tree,
        config=config,
        supply=supply,
        target_utilization=0.7,
        n_ticks=ticks,
        seed=seed,
        vectorized=vectorized,
        tracer=tracer,
    )


def bench_tick(
    sizes: Sequence[int] = (18, 64, 256),
    ticks: int = 300,
    repeats: int = 3,
) -> List[dict]:
    """Scalar vs. vectorized full-run ms/tick per fleet size."""
    rows = []
    for n in sizes:
        scalar = _best_of(lambda: _run_once(n, ticks, False), repeats)
        vector = _best_of(lambda: _run_once(n, ticks, True), repeats)
        rows.append(
            {
                "n_servers": int(n),
                "ticks": int(ticks),
                "scalar_ms_per_tick": scalar / ticks * 1e3,
                "vectorized_ms_per_tick": vector / ticks * 1e3,
                "speedup": scalar / vector,
            }
        )
    return rows


# ----------------------------------------------------------------- kernels
def _kernel_smoothing(n: int, iters: int) -> dict:
    from repro.power.smoothing import ExponentialSmoother, VectorSmoother

    rng = np.random.default_rng(0)
    observations = rng.uniform(50.0, 400.0, size=(iters, n))
    scalars = [ExponentialSmoother(0.5, initial=200.0) for _ in range(n)]
    vector = VectorSmoother(0.5, n)
    vector.update(np.full(n, 200.0))

    def scalar_pass():
        for row in observations:
            values = row.tolist()
            for smoother, obs in zip(scalars, values):
                smoother.update(obs)

    def vector_pass():
        for row in observations:
            vector.update(row)

    return _kernel_row("smoothing", n, iters, scalar_pass, vector_pass)


def _kernel_thermal(n: int, iters: int) -> dict:
    from repro.thermal.model import (
        ThermalParams,
        temperature_after,
        temperature_step_arrays,
    )

    params = ThermalParams()
    rng = np.random.default_rng(1)
    powers = rng.uniform(100.0, 420.0, size=(iters, n))
    decay = float(np.exp(-params.c2 * 1.0))

    def scalar_pass():
        temps = [30.0] * n
        for row in powers:
            values = row.tolist()
            temps = [
                temperature_after(params, t, p, 1.0)
                for t, p in zip(temps, values)
            ]

    def vector_pass():
        temps = np.full(n, 30.0)
        for row in powers:
            temps = temperature_step_arrays(
                temps,
                row,
                t_ambient=params.t_ambient,
                c1=params.c1,
                c2=params.c2,
                decay=decay,
            )

    return _kernel_row("thermal_step", n, iters, scalar_pass, vector_pass)


def _kernel_budget(n: int, iters: int) -> dict:
    from repro.power.budget import LevelIndex, allocate_level, allocate_proportional

    group_size = 8
    n_groups = max(n // group_size, 1)
    n_children = n_groups * group_size
    offsets = np.arange(n_groups) * group_size
    index = LevelIndex(offsets, n_children)
    rng = np.random.default_rng(2)
    weights = rng.uniform(0.0, 300.0, size=(iters, n_children))
    caps = np.full(n_children, 420.0)
    totals = rng.uniform(100.0, 2500.0, size=(iters, n_groups))

    def scalar_pass():
        for k in range(iters):
            for g, start in enumerate(offsets):
                allocate_proportional(
                    float(totals[k, g]),
                    weights[k, start : start + group_size],
                    caps[start : start + group_size],
                )

    def vector_pass():
        for k in range(iters):
            allocate_level(totals[k], weights[k], caps, index=index)

    return _kernel_row("budget_allocation", n, iters, scalar_pass, vector_pass)


def _kernel_sampling(n: int, iters: int) -> dict:
    from repro.sim import RandomStreams
    from repro.workload import (
        SIMULATION_APPS,
        DemandGenerator,
        random_placement,
    )

    def make(block_size):
        streams = RandomStreams(3)
        plan = random_placement(
            list(range(n)), SIMULATION_APPS, streams["placement"]
        )
        return DemandGenerator(plan, streams, block_size=block_size)

    unbatched = make(1)  # one stream.poisson call per VM per tick
    batched = make(256)

    def scalar_pass():
        for _ in range(iters):
            unbatched.sample_tick_array()

    def vector_pass():
        for _ in range(iters):
            batched.sample_tick_array()

    return _kernel_row("demand_sampling", n, iters, scalar_pass, vector_pass)


def _kernel_row(name, n, iters, scalar_pass, vector_pass, repeats=3) -> dict:
    scalar = _best_of(scalar_pass, repeats)
    vector = _best_of(vector_pass, repeats)
    return {
        "kernel": name,
        "n_servers": int(n),
        "iters": int(iters),
        "scalar_us_per_iter": scalar / iters * 1e6,
        "vectorized_us_per_iter": vector / iters * 1e6,
        "speedup": scalar / vector,
    }


def bench_kernels(
    sizes: Sequence[int] = (64, 256), iters: int = 400
) -> List[dict]:
    """Isolated kernel timings, scalar loop vs. array op, per size.

    Besides the four individual kernels, emits one ``combined`` row per
    size: the summed per-tick cost of all four, scalar vs. vectorized.
    That aggregate is the headline number -- it is what one tick of the
    hot path spends in these kernels, and it clears 5x at 64+ servers
    even where a single small kernel (e.g. 64-lane smoothing, where
    NumPy call overhead is comparable to the loop it replaces) does not.
    """
    rows = []
    for n in sizes:
        per_size = [
            _kernel_smoothing(n, iters),
            _kernel_thermal(n, iters),
            _kernel_budget(n, iters),
            _kernel_sampling(n, iters),
        ]
        rows.extend(per_size)
        scalar = sum(r["scalar_us_per_iter"] for r in per_size)
        vector = sum(r["vectorized_us_per_iter"] for r in per_size)
        rows.append(
            {
                "kernel": "combined",
                "n_servers": int(n),
                "iters": int(iters),
                "scalar_us_per_iter": scalar,
                "vectorized_us_per_iter": vector,
                "speedup": scalar / vector,
            }
        )
    return rows


# ----------------------------------------------------------- sweep scaling
def bench_sweep_scaling(
    worker_counts: Sequence[int] | None = None,
    n_ticks: int = 240,
) -> List[dict]:
    """Wall-clock of the 9-point paper sweep at several worker counts.

    Disables the disk cache and clears the in-process memo before every
    measurement, so each row times real simulation work.  Worker counts
    beyond the machine's core count are skipped -- on a single-core box
    only the serial row is recorded (process fan-out cannot help there,
    and timing it anyway would just document scheduler thrash).
    """
    import os

    from repro.experiments import cache

    cpus = os.cpu_count() or 1
    if worker_counts is None:
        worker_counts = (1, 2, 4, 8)
    worker_counts = [w for w in worker_counts if w <= cpus]
    from repro.experiments.common import PAPER_UTILIZATIONS
    from repro.experiments.paper_sweep import run_sweep
    from repro.experiments.parallel import run_sweep_parallel

    cache.set_enabled(False)
    rows = []
    try:
        run_sweep.cache_clear()
        t0 = time.perf_counter()
        run_sweep(PAPER_UTILIZATIONS, n_ticks=n_ticks)
        serial = time.perf_counter() - t0
        rows.append(
            {
                "workers": 1,
                "n_points": len(PAPER_UTILIZATIONS),
                "seconds": serial,
                "speedup": 1.0,
                "efficiency": 1.0,
            }
        )
        for workers in worker_counts:
            if workers <= 1:
                continue
            run_sweep.cache_clear()
            t0 = time.perf_counter()
            run_sweep_parallel(
                PAPER_UTILIZATIONS, n_ticks=n_ticks, workers=workers
            )
            elapsed = time.perf_counter() - t0
            rows.append(
                {
                    "workers": int(workers),
                    "n_points": len(PAPER_UTILIZATIONS),
                    "seconds": elapsed,
                    "speedup": serial / elapsed,
                    "efficiency": serial / elapsed / workers,
                }
            )
    finally:
        cache.set_enabled(None)
    return rows


# -------------------------------------------------------------- federation
def _build_bench_federation(
    n_sites: int,
    servers_per_site: int,
    ticks: int,
    vectorized: bool,
    *,
    workload: str = "steady",
    seed: int = 17,
):
    from repro.core.config import WillowConfig
    from repro.federation import SiteSpec, build_federation
    from repro.power.supply import constant_supply, renewable_supply
    from repro.topology.builders import build_balanced

    config = WillowConfig()
    branching = FEDERATION_SITE_SHAPES[servers_per_site]
    specs = []
    for i in range(n_sites):
        if workload == "steady":
            # Provisioned steady state: the fleet fits the supply, so
            # the tick is the smoothing/thermal/waterfall sweep the
            # batched path vectorizes end to end.
            supply = constant_supply(
                0.7 * servers_per_site * config.circuit_limit
            )
            utilization = 0.35
        else:
            # Anti-correlated solar humps: nightly deficits keep the
            # (shared, scalar) migration planner and FFDLR busy, so
            # this row shows the Amdahl-bounded speedup honestly.
            supply = renewable_supply(
                0.9 * servers_per_site * config.circuit_limit,
                base_fraction=0.3,
                day_length=96.0,
                cloud_noise=0.0,
                days=max(2, int(ticks / 96) + 1),
                phase=i / n_sites,
            )
            utilization = 0.55
        specs.append(
            SiteSpec(
                name=f"bench{i}",
                tree=build_balanced(branching),
                config=WillowConfig(),
                supply=supply,
                target_utilization=utilization,
                seed=seed + i,
                vectorized=vectorized,
            )
        )
    policy = "neutral" if workload == "steady" else "proportional"
    return build_federation(
        specs, n_ticks=ticks + 1, policy=policy, vectorized=vectorized
    )


def _time_federation(
    n_sites: int,
    servers_per_site: int,
    ticks: int,
    vectorized: bool,
    *,
    workload: str = "steady",
    repeats: int = 1,
) -> dict:
    """Build, warm one tick, then time ``ticks`` steady-state ticks.

    The first tick pays one-time costs (per-VM demand-stream init and
    the 256-tick Poisson block prefetch) that real runs amortise over
    the whole horizon, so it is reported separately from the
    steady-state ms/tick.
    """
    best = {"tick_s": float("inf")}
    for _ in range(repeats):
        t0 = time.perf_counter()
        coordinator = _build_bench_federation(
            n_sites, servers_per_site, ticks, vectorized, workload=workload
        )
        build_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        coordinator.run(1)
        first_tick_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        coordinator.run(ticks)
        tick_s = time.perf_counter() - t0
        if tick_s < best["tick_s"]:
            best = {
                "build_s": build_s,
                "first_tick_s": first_tick_s,
                "tick_s": tick_s,
            }
    return best


def bench_federation(quick: bool = False) -> dict:
    """Scalar vs. batched federation scaling plus batched-only frontier.

    Returns ``{"scaling": [...], "frontier": [...]}``.  Scaling rows
    compare the per-site scalar coordinator loop against the batched
    coordinator at identical seeds/workloads; frontier rows push the
    batched path to 10k servers (realtime check: tick wall vs. the
    ``delta_d`` budget) and 100k servers (feasibility).
    """
    from repro.core.config import WillowConfig

    delta_ms = WillowConfig().delta_d * 1e3
    if quick:
        scaling_points = [(2, 256), (4, 256)]
        churn_points = [(2, 256)]
        frontier_points = [("10k_realtime", 2, 1024, 3)]
        ticks, repeats = 24, 1
    else:
        scaling_points = [(2, 256), (4, 256), (8, 256)]
        churn_points = [(4, 256)]
        frontier_points = [
            ("10k_realtime", 10, 1024, 20),
            ("100k_feasible", 25, 4096, 3),
        ]
        ticks, repeats = 120, 2

    scaling = []
    for workload, points in (
        ("steady", scaling_points),
        ("solar_churn", churn_points),
    ):
        for n_sites, per_site in points:
            scalar = _time_federation(
                n_sites, per_site, ticks, False,
                workload=workload, repeats=repeats,
            )
            batched = _time_federation(
                n_sites, per_site, ticks, True,
                workload=workload, repeats=repeats,
            )
            scaling.append(
                {
                    "workload": workload,
                    "n_sites": int(n_sites),
                    "servers_per_site": int(per_site),
                    "n_servers": int(n_sites * per_site),
                    "ticks": int(ticks),
                    "scalar_ms_per_tick": scalar["tick_s"] / ticks * 1e3,
                    "batched_ms_per_tick": batched["tick_s"] / ticks * 1e3,
                    "speedup": scalar["tick_s"] / batched["tick_s"],
                    "batched_build_s": batched["build_s"],
                }
            )

    frontier = []
    for label, n_sites, per_site, n_ticks in frontier_points:
        timing = _time_federation(
            n_sites, per_site, n_ticks, True, workload="steady", repeats=1
        )
        ms_per_tick = timing["tick_s"] / n_ticks * 1e3
        frontier.append(
            {
                "label": label,
                "n_sites": int(n_sites),
                "servers_per_site": int(per_site),
                "n_servers": int(n_sites * per_site),
                "ticks": int(n_ticks),
                "build_s": timing["build_s"],
                "first_tick_s": timing["first_tick_s"],
                "ms_per_tick": ms_per_tick,
                "realtime_budget_ms": delta_ms,
                "realtime_ok": bool(ms_per_tick <= delta_ms),
            }
        )
    return {"scaling": scaling, "frontier": frontier}


# --------------------------------------------------------------------- gym
def bench_gym(quick: bool = False) -> dict:
    """Gym env-step overhead over the raw federation coordinator.

    Rolls the same seeded scenario twice: once as a plain
    ``proportional`` coordinator run, once stepped through
    :class:`~repro.gym.env.WillowFedEnv` in ``policy`` mode pinned to
    the proportional arm -- identical decisions and physics, so the
    difference is exactly the env's observation/reward plumbing
    (statuses, K-step forecasts, metric cursors).  Build and warm-up
    are untimed on both paths.  ``benchmarks/test_bench_gym.py`` guards
    the overhead at <= 10%.
    """
    from repro.federation.coordinator import build_federation
    from repro.gym.env import GymConfig, WillowFedEnv

    # The overhead is a ratio of two wall-clock timings in the ~0.1 s
    # range, so best-of-N with interleaved raw/env rollouts (noise hits
    # both paths alike) is what keeps the number stable on shared
    # runners.
    windows = 23 if quick else 46
    repeats = 5 if quick else 4
    site_counts = (2,) if quick else (2, 4)
    rows = []
    for n_sites in site_counts:
        config = GymConfig(
            n_sites=n_sites, windows=windows, action_mode="policy"
        )
        arm = config.policy_arms.index("proportional")
        best_raw = best_env = float("inf")
        for _ in range(repeats):
            env = WillowFedEnv(config)
            env.reset(seed=17)
            raw = build_federation(
                env.episode_specs(),
                n_ticks=env.n_ticks,
                policy="proportional",
                margin=config.margin,
            )
            raw.run(raw.eta1)  # warm-up parity with reset()
            t0 = time.perf_counter()
            raw.run(windows * raw.eta1)
            best_raw = min(best_raw, time.perf_counter() - t0)

            env = WillowFedEnv(config)
            env.reset(seed=17)
            t0 = time.perf_counter()
            truncated = False
            while not truncated:
                _obs, _r, _t, truncated, _info = env.step(arm)
            best_env = min(best_env, time.perf_counter() - t0)
        ticks = windows * 4
        rows.append(
            {
                "n_sites": int(n_sites),
                "windows": int(windows),
                "ticks": int(ticks),
                "raw_ms_per_tick": best_raw / ticks * 1e3,
                "env_ms_per_tick": best_env / ticks * 1e3,
                "env_ms_per_step": best_env / windows * 1e3,
                "overhead_pct": (best_env / best_raw - 1.0) * 100.0,
            }
        )
    return {"steps": rows}


# ----------------------------------------------------------------- service
def bench_service(quick: bool = False) -> dict:
    """Live-mode ingest throughput and tick budget at Delta_d = 1 s.

    Runs the real thing end to end on loopback: ``IngestGateway`` TCP
    server + ``LiveRunner`` wall-clock worker in one event loop (this
    is a 1-core-honest number -- ingest and control share the core,
    exactly as ``serve`` runs them), with the batching load generator
    offering demand samples as fast as the loop accepts them.  The
    audit log the run writes is then replayed and the parity verdict
    recorded, so the benchmark doubles as an end-to-end smoke of the
    replay contract under real load.
    """
    import asyncio
    import tempfile

    from repro.service import (
        AuditLog,
        IngestGateway,
        LiveRunner,
        LiveSimulation,
        ServiceSpec,
        generate_load,
        replay,
    )

    ticks = 3 if quick else 5
    tick_seconds = 1.0  # the paper's Delta_d, honestly
    queue_bound = 65536
    spec = ServiceSpec(seed=7, controller="scalar")

    with tempfile.TemporaryDirectory() as tmp:
        audit_path = Path(tmp) / "bench_audit.jsonl"

        async def run_live():
            sim = LiveSimulation(spec)
            gateway = IngestGateway(
                queue_bound=queue_bound, allow_faults=sim.allow_faults
            )
            runner = LiveRunner(
                sim,
                gateway,
                AuditLog(audit_path),
                tick_seconds=tick_seconds,
                max_ticks=ticks,
            )
            server = await gateway.start_server()
            port = server.sockets[0].getsockname()[1]
            vm_ids = sorted(sim.controller._vm_by_id)
            # Stop offering half a tick before the runner stops so the
            # last batch in flight is drained into the final tick
            # instead of accepted-but-never-applied.
            load_task = asyncio.ensure_future(
                generate_load(
                    "127.0.0.1",
                    port,
                    vm_ids,
                    duration_s=(ticks - 0.5) * tick_seconds,
                    batch_size=512,
                    seed=3,
                    source="bench",
                )
            )
            report = await runner.run()
            load = await load_task
            server.close()
            await server.wait_closed()
            return report, load

        report, load = asyncio.run(run_live())
        parity = replay(audit_path).parity

    return {
        "ticks": int(report.ticks),
        "tick_seconds": tick_seconds,
        "queue_bound": int(queue_bound),
        "offered": int(load.offered),
        "accepted": int(report.accepted),
        "rejected_full": int(report.rejected_full),
        "accepted_per_sec": load.accepted / max(load.wall_s, 1e-9),
        "offered_per_sec": load.offered_per_sec,
        "p99_ingest_ms": report.p99_ingest_ms(),
        "p99_batch_rtt_ms": load.p99_batch_rtt_ms(),
        "max_tick_ms": report.max_tick_ms,
        "overruns": int(report.overruns),
        "tick_budget_ms": tick_seconds * 1e3,
        "realtime_ok": bool(
            report.overruns == 0 and report.max_tick_ms <= tick_seconds * 1e3
        ),
        "replay_parity": bool(parity),
    }


# ----------------------------------------------------------------- tracing
def _guard_cost_ns(iters: int = 500_000) -> float:
    """Measured cost of one disabled ``tracer.enabled`` guard check.

    Includes the bare loop overhead, so this *over*-estimates the real
    per-site cost (an attribute load and a branch) -- which is the safe
    direction for the regression guard built on it.
    """
    from repro.trace.tracer import NULL_TRACER

    tracer = NULL_TRACER
    t0 = time.perf_counter()
    for _ in range(iters):
        if tracer.enabled:  # pragma: no cover - never true
            raise AssertionError("NULL_TRACER must stay disabled")
    return (time.perf_counter() - t0) / iters * 1e9


def _frame_record_count(frame: dict) -> int:
    """Entries in one tick frame: an upper bound on guarded call sites
    (loops like the per-server demand pass are guarded once but emit
    one record per server)."""
    count = 0
    for key, value in frame.items():
        if isinstance(value, list):
            count += len(value)
        elif key in ("root", "imbalance"):
            count += 1
    return count


def bench_trace(
    n_servers: int = 64,
    ticks: int = 200,
    repeats: int = 3,
    vectorized: bool = True,
) -> List[dict]:
    """Tracing cost per tick: off vs. null sink vs. JSONL file.

    Emits one row per mode plus a ``disabled_guard_model`` row: the
    measured nanoseconds of one ``tracer.enabled`` check times the
    per-tick record count of an enabled run (itself an upper bound on
    guarded sites), as a percentage of the traced-off tick.  That model
    is what CI bounds -- wall-clock deltas between two ~equal runs on a
    noisy runner cannot resolve a sub-percent overhead, the model can.
    """
    import tempfile

    from repro.trace.tracer import Tracer
    from repro.trace.writer import (
        JsonlTraceWriter,
        MemoryTraceWriter,
        NullTraceWriter,
    )

    off = _best_of(
        lambda: _run_once(n_servers, ticks, vectorized), repeats
    )
    null_sink = _best_of(
        lambda: _run_once(
            n_servers, ticks, vectorized, tracer=Tracer(NullTraceWriter())
        ),
        repeats,
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "bench.jsonl"

        def jsonl_run():
            tracer = Tracer(JsonlTraceWriter(path, max_bytes=None))
            _run_once(n_servers, ticks, vectorized, tracer=tracer)
            tracer.close()

        jsonl = _best_of(jsonl_run, repeats)
        trace_bytes = path.stat().st_size

    memory = MemoryTraceWriter()
    tracer = Tracer(memory)
    _run_once(n_servers, ticks, vectorized, tracer=tracer)
    tracer.flush()
    tick_frames = [f for f in memory.frames if f.get("type") == "tick"]
    sites_per_tick = sum(
        _frame_record_count(f) for f in tick_frames
    ) / max(len(tick_frames), 1)

    off_ms = off / ticks * 1e3
    guard_ns = _guard_cost_ns()
    rows = [
        {
            "mode": "off",
            "n_servers": int(n_servers),
            "ticks": int(ticks),
            "ms_per_tick": off_ms,
            "overhead_pct": 0.0,
        },
        {
            "mode": "null_sink",
            "n_servers": int(n_servers),
            "ticks": int(ticks),
            "ms_per_tick": null_sink / ticks * 1e3,
            "overhead_pct": (null_sink / off - 1.0) * 100.0,
        },
        {
            "mode": "jsonl",
            "n_servers": int(n_servers),
            "ticks": int(ticks),
            "ms_per_tick": jsonl / ticks * 1e3,
            "overhead_pct": (jsonl / off - 1.0) * 100.0,
            "bytes_per_tick": trace_bytes / ticks,
        },
        {
            "mode": "disabled_guard_model",
            "n_servers": int(n_servers),
            "ticks": int(ticks),
            "guard_ns_per_site": guard_ns,
            "sites_per_tick": sites_per_tick,
            "overhead_pct": guard_ns * sites_per_tick / (off_ms * 1e6) * 100.0,
        },
    ]
    return rows


# ------------------------------------------------------------------ driver
def run_benchmarks(
    out_dir: str | Path = ".",
    *,
    quick: bool = False,
    sizes: Sequence[int] | None = None,
) -> Dict[str, Path]:
    """Run every suite; write ``BENCH_tick.json`` and ``BENCH_sweep.json``.

    ``quick`` shrinks tick counts/iterations for smoke runs (used by
    ``make bench-smoke`` and CI) -- the JSON schema is identical.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    ticks = 100 if quick else 300
    iters = 100 if quick else 400
    sweep_ticks = 30 if quick else 240
    tick_sizes = tuple(sizes) if sizes else ((18, 64) if quick else (18, 64, 256))
    kernel_sizes = tuple(s for s in tick_sizes if s >= 64) or (64,)

    import os

    meta = {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        # BLAS/OpenMP pool sizes change array-op timings wildly between
        # machines; record them so two BENCH files are comparable.
        "threads": {
            var: os.environ.get(var)
            for var in (
                "OMP_NUM_THREADS",
                "OPENBLAS_NUM_THREADS",
                "MKL_NUM_THREADS",
            )
        },
        "quick": bool(quick),
    }

    tick_payload = {
        "meta": meta,
        "end_to_end": bench_tick(tick_sizes, ticks=ticks),
        "kernels": bench_kernels(kernel_sizes, iters=iters),
        "trace": bench_trace(
            n_servers=64,
            ticks=60 if quick else 200,
            repeats=2 if quick else 3,
        ),
        "federation": bench_federation(quick=quick),
        "service": bench_service(quick=quick),
        "gym": bench_gym(quick=quick),
    }
    tick_path = out_dir / "BENCH_tick.json"
    tick_path.write_text(json.dumps(tick_payload, indent=2) + "\n")

    sweep_payload = {
        "meta": meta,
        "scaling": bench_sweep_scaling(
            worker_counts=(1, 2) if quick else None,
            n_ticks=sweep_ticks,
        ),
    }
    sweep_path = out_dir / "BENCH_sweep.json"
    sweep_path.write_text(json.dumps(sweep_payload, indent=2) + "\n")

    return {"tick": tick_path, "sweep": sweep_path}


def run_service_benchmark(
    out_dir: str | Path = ".", *, quick: bool = False
) -> Path:
    """Run only the service suite; merge into ``BENCH_tick.json``.

    Keeps every other suite's recorded numbers when the file already
    exists (so ``bench service`` is cheap to iterate on); writes a
    service-only file otherwise.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    tick_path = out_dir / "BENCH_tick.json"
    payload: dict = {}
    if tick_path.is_file():
        payload = json.loads(tick_path.read_text())
    payload["service"] = bench_service(quick=quick)
    tick_path.write_text(json.dumps(payload, indent=2) + "\n")
    return tick_path


def run_gym_benchmark(
    out_dir: str | Path = ".", *, quick: bool = False
) -> Path:
    """Run only the gym suite; merge into ``BENCH_tick.json``.

    Same merge behaviour as :func:`run_service_benchmark`: every other
    suite's recorded numbers survive when the file already exists.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    tick_path = out_dir / "BENCH_tick.json"
    payload: dict = {}
    if tick_path.is_file():
        payload = json.loads(tick_path.read_text())
    payload["gym"] = bench_gym(quick=quick)
    tick_path.write_text(json.dumps(payload, indent=2) + "\n")
    return tick_path


def format_gym_report(gym: dict) -> str:
    """The gym suite's lines of the human-readable report."""
    lines = ["gym env step (policy mode) vs raw coordinator tick:"]
    for row in gym.get("steps", []):
        lines.append(
            f"  sites={row['n_sites']}  raw {row['raw_ms_per_tick']:7.3f}"
            f" ms/tick  env {row['env_ms_per_tick']:7.3f} ms/tick"
            f"  ({row['env_ms_per_step']:7.3f} ms/step)"
            f"  overhead {row['overhead_pct']:+6.2f}%"
        )
    return "\n".join(lines)


def format_service_report(service: dict) -> str:
    """The service suite's lines of the human-readable report."""
    verdict = "realtime" if service["realtime_ok"] else "NOT realtime"
    parity = "replay bit-exact" if service["replay_parity"] else "REPLAY MISMATCH"
    return "\n".join(
        [
            "service (live ingest at Delta_d = 1 s, one core):",
            f"  accepted {service['accepted']:7d} of {service['offered']} "
            f"offered over {service['ticks']} tick(s)"
            f"  ({service['rejected_full']} backpressured)",
            f"  sustained {service['accepted_per_sec']:9.0f} accepted "
            f"events/s   p99 queue latency {service['p99_ingest_ms']:7.1f} ms"
            f"   p99 batch rtt {service['p99_batch_rtt_ms']:6.1f} ms",
            f"  max tick work {service['max_tick_ms']:7.1f} ms of "
            f"{service['tick_budget_ms']:.0f} ms budget, "
            f"{service['overruns']} overrun(s) ({verdict}; {parity})",
        ]
    )


def format_report(paths: Dict[str, Path]) -> str:
    """Human-readable summary of freshly written benchmark JSON."""
    tick = json.loads(paths["tick"].read_text())
    sweep = json.loads(paths["sweep"].read_text())
    lines = ["end-to-end controller tick:"]
    for row in tick["end_to_end"]:
        lines.append(
            f"  n={row['n_servers']:4d}  scalar {row['scalar_ms_per_tick']:8.3f} ms"
            f"  vectorized {row['vectorized_ms_per_tick']:8.3f} ms"
            f"  speedup {row['speedup']:5.2f}x"
        )
    lines.append("kernels (scalar loop vs array op):")
    for row in tick["kernels"]:
        lines.append(
            f"  {row['kernel']:<18s} n={row['n_servers']:4d}"
            f"  scalar {row['scalar_us_per_iter']:9.1f} us"
            f"  vectorized {row['vectorized_us_per_iter']:9.1f} us"
            f"  speedup {row['speedup']:6.1f}x"
        )
    lines.append("tracing overhead per tick:")
    for row in tick.get("trace", []):
        if row["mode"] == "disabled_guard_model":
            lines.append(
                f"  disabled (model)    {row['guard_ns_per_site']:6.1f} ns/site"
                f" x {row['sites_per_tick']:6.1f} sites/tick"
                f"  overhead {row['overhead_pct']:6.3f}%"
            )
        else:
            extra = (
                f"  {row['bytes_per_tick'] / 1024:7.1f} KiB/tick"
                if "bytes_per_tick" in row
                else ""
            )
            lines.append(
                f"  {row['mode']:<18s}  {row['ms_per_tick']:8.3f} ms/tick"
                f"  overhead {row['overhead_pct']:6.2f}%{extra}"
            )
    federation = tick.get("federation", {})
    if federation.get("scaling"):
        lines.append("federation (scalar coordinator loop vs batched fleet):")
        for row in federation["scaling"]:
            lines.append(
                f"  {row['workload']:<12s} {row['n_sites']}x"
                f"{row['servers_per_site']}={row['n_servers']:6d}"
                f"  scalar {row['scalar_ms_per_tick']:8.2f} ms"
                f"  batched {row['batched_ms_per_tick']:8.2f} ms"
                f"  speedup {row['speedup']:5.2f}x"
            )
    if federation.get("frontier"):
        lines.append("federation frontier (batched only):")
        for row in federation["frontier"]:
            verdict = "realtime" if row["realtime_ok"] else "not realtime"
            lines.append(
                f"  {row['label']:<14s} {row['n_sites']}x"
                f"{row['servers_per_site']}={row['n_servers']:6d}"
                f"  {row['ms_per_tick']:9.1f} ms/tick"
                f" (budget {row['realtime_budget_ms']:.0f} ms, {verdict};"
                f" build {row['build_s']:.1f} s"
                f" + first tick {row['first_tick_s']:.1f} s)"
            )
    if tick.get("service"):
        lines.append(format_service_report(tick["service"]))
    if tick.get("gym"):
        lines.append(format_gym_report(tick["gym"]))
    lines.append("sweep scaling (9-point paper sweep):")
    for row in sweep["scaling"]:
        lines.append(
            f"  workers={row['workers']}  {row['seconds']:6.2f} s"
            f"  speedup {row['speedup']:5.2f}x"
            f"  efficiency {row['efficiency']:5.2f}"
        )
    return "\n".join(lines)
