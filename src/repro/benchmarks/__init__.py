"""Performance benchmark harness (see :mod:`repro.benchmarks.harness`)."""

from repro.benchmarks.harness import (
    bench_kernels,
    bench_sweep_scaling,
    bench_tick,
    run_benchmarks,
)

__all__ = [
    "bench_tick",
    "bench_kernels",
    "bench_sweep_scaling",
    "run_benchmarks",
]
