"""Workloads: applications, virtual machines, demand generation.

The paper evaluates transactional (query-driven) workloads hosted in
VMs.  The simulation places "a random mix of 4 different application
types that have a relative average power requirement of 1, 2, 5 and 9"
on each server, with Poisson-distributed power demand (Sec. V-B1).  The
testbed runs three CPU-bound applications A1/A2/A3 adding 8/10/15 W
(Table II).
"""

from repro.workload.applications import (
    AppType,
    SIMULATION_APPS,
    TESTBED_APPS,
)
from repro.workload.vm import VM, VMState
from repro.workload.generator import (
    BurstyDemandGenerator,
    DemandGenerator,
    DiurnalDemandGenerator,
    PlacementPlan,
    random_placement,
    scale_for_target_utilization,
)
from repro.workload.trace import DemandTrace, TraceDemandSource, replay_trace

__all__ = [
    "AppType",
    "BurstyDemandGenerator",
    "DemandGenerator",
    "DiurnalDemandGenerator",
    "DemandTrace",
    "PlacementPlan",
    "SIMULATION_APPS",
    "TraceDemandSource",
    "TESTBED_APPS",
    "VM",
    "VMState",
    "random_placement",
    "replay_trace",
    "scale_for_target_utilization",
]
