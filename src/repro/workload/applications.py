"""Application catalog.

An :class:`AppType` describes one hosted application class by its mean
power demand.  Demands are expressed directly in watts of bottleneck-
resource power (the paper's power-linear-in-utilization assumption
makes "power demand" and "load" interchangeable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["AppType", "SIMULATION_APPS", "TESTBED_APPS"]


@dataclass(frozen=True)
class AppType:
    """One application class.

    Attributes
    ----------
    name:
        Catalog label.
    mean_power:
        Mean dynamic power demand in watts (or relative units for the
        simulation catalog before scaling).
    priority:
        Lower value = higher priority.  Willow itself does not treat
        priorities specially (the paper defers low-priority shutdown to
        future work) but the drop policy sheds lowest priority first.
    """

    name: str
    mean_power: float
    priority: int = 0

    def __post_init__(self) -> None:
        if self.mean_power <= 0:
            raise ValueError(f"mean_power must be positive, got {self.mean_power}")

    def scaled(self, factor: float) -> "AppType":
        """A copy with ``mean_power`` multiplied by ``factor``."""
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        return AppType(self.name, self.mean_power * factor, self.priority)


#: Simulation catalog (Sec. V-B1): relative average power requirements
#: of 1, 2, 5 and 9.
SIMULATION_APPS: Tuple[AppType, ...] = (
    AppType("app-1", 1.0),
    AppType("app-2", 2.0),
    AppType("app-5", 5.0),
    AppType("app-9", 9.0),
)

#: Testbed catalog (Table II): CPU-bound web applications adding
#: 8, 10 and 15 W respectively.
TESTBED_APPS: Tuple[AppType, ...] = (
    AppType("A1", 8.0),
    AppType("A2", 10.0),
    AppType("A3", 15.0),
)
