"""Inter-VM communication (IPC) affinity.

The paper restricts its evaluation to workloads with "minimum or no
interaction between servers" and flags IPC-heavy workloads as future
work ("we would also like to analyze the performance of Willow under
more complex workloads where there is excessive IPC traffic among the
servers").  This module supplies that workload model:

* :class:`AffinityGraph` -- a weighted graph of VM pairs; the weight is
  the communication rate (traffic units per tick) between them.
* builders for the two canonical shapes: tightly-coupled *clusters*
  (e.g. a 3-tier app's VMs) and a *ring* (pipeline stages).

When a graph is passed to the controller (``ipc_graph=``), every tick
each edge whose endpoints sit on different servers contributes its rate
to the switches on the path between the hosts -- so migrations that
split a chatty pair show up as network cost, and consolidation that
reunites one shows up as savings.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.workload.vm import VM

__all__ = ["AffinityGraph", "clustered_affinity", "ring_affinity"]


class AffinityGraph:
    """Weighted, undirected VM communication graph."""

    def __init__(self):
        self._edges: Dict[Tuple[int, int], float] = {}

    @staticmethod
    def _key(a: int, b: int) -> Tuple[int, int]:
        return (a, b) if a < b else (b, a)

    def add_edge(self, vm_a: int, vm_b: int, rate: float) -> None:
        """Set the communication rate between two VMs."""
        if vm_a == vm_b:
            raise ValueError("a VM does not IPC with itself over the network")
        if rate < 0:
            raise ValueError(f"rate must be non-negative, got {rate}")
        if rate == 0:
            self._edges.pop(self._key(vm_a, vm_b), None)
        else:
            self._edges[self._key(vm_a, vm_b)] = float(rate)

    def rate(self, vm_a: int, vm_b: int) -> float:
        return self._edges.get(self._key(vm_a, vm_b), 0.0)

    def edges(self) -> Iterable[Tuple[int, int, float]]:
        """All ``(vm_a, vm_b, rate)`` triples, deterministic order."""
        for (a, b), rate in sorted(self._edges.items()):
            yield a, b, rate

    def __len__(self) -> int:
        return len(self._edges)

    def total_rate(self) -> float:
        return sum(self._edges.values())

    def neighbours(self, vm_id: int) -> List[Tuple[int, float]]:
        """Peers of one VM with their rates."""
        result = []
        for (a, b), rate in self._edges.items():
            if a == vm_id:
                result.append((b, rate))
            elif b == vm_id:
                result.append((a, rate))
        return sorted(result)

    # -- placement analysis --------------------------------------------------
    def remote_rate(self, vms: Sequence[VM]) -> float:
        """Total rate crossing server boundaries under the placement."""
        host_of = {vm.vm_id: vm.host_id for vm in vms}
        total = 0.0
        for a, b, rate in self.edges():
            if host_of.get(a) != host_of.get(b):
                total += rate
        return total

    def colocated_fraction(self, vms: Sequence[VM]) -> float:
        """Fraction of the total rate kept on-box by the placement."""
        total = self.total_rate()
        if total == 0:
            return 1.0
        return 1.0 - self.remote_rate(vms) / total


def clustered_affinity(
    vms: Sequence[VM],
    *,
    cluster_size: int,
    in_rate: float,
    out_rate: float = 0.0,
    rng: np.random.Generator | None = None,
) -> AffinityGraph:
    """Group VMs into communication clusters (3-tier-app style).

    Consecutive ``cluster_size`` VMs form a clique with pairwise
    ``in_rate``; each cluster additionally talks to the next cluster's
    first member at ``out_rate`` (a service-dependency chain).
    """
    if cluster_size < 2:
        raise ValueError(f"cluster_size must be >= 2, got {cluster_size}")
    graph = AffinityGraph()
    ids = [vm.vm_id for vm in vms]
    clusters = [
        ids[i : i + cluster_size] for i in range(0, len(ids), cluster_size)
    ]
    for index, cluster in enumerate(clusters):
        for i, a in enumerate(cluster):
            for b in cluster[i + 1 :]:
                graph.add_edge(a, b, in_rate)
        if out_rate > 0 and index + 1 < len(clusters):
            graph.add_edge(cluster[0], clusters[index + 1][0], out_rate)
    return graph


def ring_affinity(vms: Sequence[VM], rate: float) -> AffinityGraph:
    """A pipeline: each VM talks to the next, last wraps to first."""
    graph = AffinityGraph()
    ids = [vm.vm_id for vm in vms]
    if len(ids) < 2:
        return graph
    for a, b in zip(ids, ids[1:] + ids[:1]):
        if a != b:
            graph.add_edge(a, b, rate)
    return graph
