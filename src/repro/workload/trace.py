"""Deterministic demand traces.

For experiments that need exactly reproducible demand (the testbed runs
of Sec. V-C, regression tests, A/B controller comparisons) a
:class:`DemandTrace` holds a pre-computed ``(ticks, vms)`` demand matrix
that can be replayed instead of sampling live.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence

import numpy as np

from repro.workload.vm import VM

__all__ = ["DemandTrace", "replay_trace"]


@dataclass(frozen=True)
class DemandTrace:
    """A ``(n_ticks, n_vms)`` matrix of per-tick VM power demands (W)."""

    demands: np.ndarray  # shape (n_ticks, n_vms)

    def __post_init__(self) -> None:
        demands = np.asarray(self.demands, dtype=float)
        if demands.ndim != 2:
            raise ValueError("demands must be a 2-D (ticks, vms) array")
        if np.any(demands < 0):
            raise ValueError("demands must be non-negative")
        object.__setattr__(self, "demands", demands)

    @property
    def n_ticks(self) -> int:
        return self.demands.shape[0]

    @property
    def n_vms(self) -> int:
        return self.demands.shape[1]

    def tick(self, index: int) -> np.ndarray:
        """Demand vector (one entry per VM) at tick ``index``."""
        return self.demands[index]

    @staticmethod
    def constant(levels: Sequence[float], n_ticks: int) -> "DemandTrace":
        """Every VM holds a constant demand for the whole run."""
        if n_ticks < 1:
            raise ValueError("n_ticks must be >= 1")
        row = np.asarray(levels, dtype=float)
        return DemandTrace(np.tile(row, (n_ticks, 1)))

    @staticmethod
    def from_samples(samples: Sequence[Sequence[float]]) -> "DemandTrace":
        """Build from an explicit list of per-tick demand rows."""
        return DemandTrace(np.asarray(samples, dtype=float))

    @staticmethod
    def from_csv(path) -> "DemandTrace":
        """Load a trace from CSV: one row per tick, one column per VM.

        A single header row of non-numeric labels is tolerated (and
        ignored), so spreadsheets round-trip cleanly.
        """
        import csv as _csv
        from pathlib import Path

        rows = []
        with Path(path).open(newline="") as handle:
            for record in _csv.reader(handle):
                if not record:
                    continue
                try:
                    rows.append([float(cell) for cell in record])
                except ValueError:
                    if rows:
                        raise ValueError(
                            f"non-numeric row after data began: {record!r}"
                        )
                    continue  # header
        if not rows:
            raise ValueError(f"no demand rows found in {path}")
        return DemandTrace.from_samples(rows)

    def to_csv(self, path, header: Sequence[str] | None = None) -> None:
        """Write the trace as CSV (optionally with a header row)."""
        import csv as _csv
        from pathlib import Path

        with Path(path).open("w", newline="") as handle:
            writer = _csv.writer(handle)
            if header is not None:
                if len(header) != self.n_vms:
                    raise ValueError(
                        f"header has {len(header)} labels for "
                        f"{self.n_vms} VM columns"
                    )
                writer.writerow(header)
            writer.writerows(self.demands.tolist())


class TraceDemandSource:
    """Adapter exposing a :class:`DemandTrace` as a controller demand
    source (the :class:`~repro.core.controller.DemandSource` protocol).

    Ticks beyond the trace length repeat the final row, so short traces
    can drive arbitrarily long runs.
    """

    def __init__(self, trace: DemandTrace, vms: List[VM]):
        if len(vms) != trace.n_vms:
            raise ValueError(
                f"trace has {trace.n_vms} VM columns but {len(vms)} VMs given"
            )
        self.trace = trace
        self.vms = list(vms)
        self._tick = 0

    def sample_tick(self) -> Dict[int, float]:
        index = min(self._tick, self.trace.n_ticks - 1)
        row = self.trace.tick(index)
        self._tick += 1
        per_host: Dict[int, float] = {}
        for vm, demand in zip(self.vms, row):
            vm.current_demand = float(demand)
            per_host[vm.host_id] = per_host.get(vm.host_id, 0.0) + float(demand)
        return per_host


def replay_trace(
    trace: DemandTrace, vms: List[VM]
) -> Iterator[Dict[int, float]]:
    """Yield per-host aggregate demand for each tick of ``trace``.

    Updates ``vm.current_demand`` in place each tick, mirroring
    :meth:`repro.workload.generator.DemandGenerator.sample_tick`.
    VM order must match the trace's column order.
    """
    if len(vms) != trace.n_vms:
        raise ValueError(
            f"trace has {trace.n_vms} VM columns but {len(vms)} VMs given"
        )
    for tick_index in range(trace.n_ticks):
        row = trace.tick(tick_index)
        per_host: Dict[int, float] = {}
        for vm, demand in zip(vms, row):
            vm.current_demand = float(demand)
            per_host[vm.host_id] = per_host.get(vm.host_id, 0.0) + float(demand)
        yield per_host
