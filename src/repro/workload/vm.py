"""Virtual machines: the unit of migration.

"The applications are hosted by one or more virtual machines (VMs) and
the demand is migrated between nodes by migrating these virtual
machines ... migrations are done at the application level and hence the
demand is not split between multiple nodes" (Sec. IV-E).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.workload.applications import AppType

__all__ = ["VMState", "VM"]


class VMState(enum.Enum):
    """Lifecycle of a VM."""

    RUNNING = "running"
    MIGRATING = "migrating"
    DROPPED = "dropped"  # shed to stay within budget (QoS loss)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class VM:
    """One virtual machine hosting a single application.

    Attributes
    ----------
    vm_id:
        Unique id within a simulation run.
    app:
        The hosted :class:`AppType`.
    host_id:
        ``node_id`` of the server currently hosting the VM.
    current_demand:
        Power demand (W) sampled for the current tick.
    state:
        Lifecycle state.
    host_history:
        Chronological ``(time, host_id)`` records of every placement,
        used by the ping-pong/stability checks (paper Property 4).
    """

    vm_id: int
    app: AppType
    host_id: int
    current_demand: float = 0.0
    state: VMState = VMState.RUNNING
    host_history: List[tuple] = field(default_factory=list)
    last_migration_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.current_demand < 0:
            raise ValueError("current_demand must be non-negative")
        if not self.host_history:
            self.host_history.append((0.0, self.host_id))

    @property
    def mean_demand(self) -> float:
        """Long-run mean demand of the hosted application (W)."""
        return self.app.mean_power

    def place(self, host_id: int, time: float) -> None:
        """Record a migration to ``host_id`` at simulation ``time``."""
        if host_id == self.host_id:
            raise ValueError(f"VM {self.vm_id} is already on host {host_id}")
        self.host_id = host_id
        self.last_migration_time = time
        self.host_history.append((time, host_id))

    def residence_time(self, now: float) -> float:
        """Time since the VM last moved (or since t=0 if it never has)."""
        if self.last_migration_time is None:
            return now - self.host_history[0][0]
        return now - self.last_migration_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<VM {self.vm_id} app={self.app.name} host={self.host_id} "
            f"demand={self.current_demand:.1f}W {self.state}>"
        )
