"""Workload placement and stochastic demand generation (Sec. V-B1).

"On each server we placed a random mix of 4 different application types
that have a relative average power requirement of 1, 2, 5 and 9.  The
average power demand in a server is the sum of all the average power
requirements of the applications that are hosted in it.  The power
demand in each node was assumed to have a Poisson distribution."

Demands are sampled per-VM as Poisson draws in the catalog's *relative*
units, then scaled to watts by a placement-wide factor chosen so the
fleet's expected utilization hits a target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.sim.rng import RandomStreams
from repro.workload.applications import AppType
from repro.workload.vm import VM

__all__ = [
    "PlacementPlan",
    "random_placement",
    "scale_for_target_utilization",
    "DemandGenerator",
]


@dataclass
class PlacementPlan:
    """An initial placement of VMs onto servers.

    Attributes
    ----------
    vms:
        All VMs, ids dense from 0.
    scale:
        Watts per relative demand unit (see
        :func:`scale_for_target_utilization`).
    """

    vms: List[VM]
    scale: float = 1.0

    def by_host(self) -> Dict[int, List[VM]]:
        """VMs grouped by current host id."""
        grouped: Dict[int, List[VM]] = {}
        for vm in self.vms:
            grouped.setdefault(vm.host_id, []).append(vm)
        return grouped

    def mean_demand_per_host(self) -> Dict[int, float]:
        """Expected power demand (W) of each host under this placement."""
        result: Dict[int, float] = {}
        for vm in self.vms:
            result[vm.host_id] = (
                result.get(vm.host_id, 0.0) + vm.app.mean_power * self.scale
            )
        return result


def random_placement(
    server_ids: Sequence[int],
    apps: Sequence[AppType],
    rng: np.random.Generator,
    *,
    vms_per_server: int = 4,
) -> PlacementPlan:
    """Place a random mix of ``apps`` on each server.

    Each server receives ``vms_per_server`` VMs, each hosting an
    application type drawn uniformly from the catalog.
    """
    if not server_ids:
        raise ValueError("need at least one server")
    if not apps:
        raise ValueError("need at least one application type")
    if vms_per_server < 1:
        raise ValueError(f"vms_per_server must be >= 1, got {vms_per_server}")
    vms: List[VM] = []
    for host in server_ids:
        choices = rng.integers(0, len(apps), size=vms_per_server)
        for choice in choices:
            vms.append(VM(vm_id=len(vms), app=apps[int(choice)], host_id=host))
    return PlacementPlan(vms=vms)


def scale_for_target_utilization(
    plan: PlacementPlan,
    dynamic_capacity: float,
    target_utilization: float,
) -> PlacementPlan:
    """Set the plan's watts-per-unit scale to hit a mean utilization.

    ``dynamic_capacity`` is the per-server dynamic power range (the
    slope of the server power model); utilization here means the
    fraction of that range consumed by demand, matching the paper's
    power-follows-utilization testbed observation.
    """
    if not 0.0 < target_utilization <= 1.0:
        raise ValueError(
            f"target_utilization must be in (0, 1], got {target_utilization}"
        )
    if dynamic_capacity <= 0:
        raise ValueError("dynamic_capacity must be positive")
    hosts = plan.by_host()
    if not hosts:
        raise ValueError("placement has no VMs")
    total_relative = sum(vm.app.mean_power for vm in plan.vms)
    mean_per_server = total_relative / len(hosts)
    plan.scale = target_utilization * dynamic_capacity / mean_per_server
    return plan


class BurstyDemandGenerator:
    """Markov-modulated Poisson demand: calm/burst regimes per VM.

    The paper warns that "as the computing moves towards more real-time
    data mining driven answers to user queries, the demand side
    variations could become significantly more severe."  This generator
    models that: each VM flips between a *calm* state (demand around a
    fraction of its rating) and a *burst* state (a multiple of it),
    with geometric sojourn times, Poisson-sampling within the state.

    Long-run mean demand equals the rated mean when
    ``calm_level * p_calm + burst_level * p_burst == 1`` for the
    stationary probabilities implied by the flip rates; the constructor
    rescales the levels to enforce this so fleets stay comparable with
    the plain :class:`DemandGenerator`.
    """

    def __init__(
        self,
        plan: PlacementPlan,
        streams: RandomStreams,
        *,
        calm_level: float = 0.6,
        burst_level: float = 3.0,
        p_enter_burst: float = 0.05,
        p_exit_burst: float = 0.25,
    ):
        if calm_level <= 0 or burst_level <= calm_level:
            raise ValueError("need 0 < calm_level < burst_level")
        if not 0.0 < p_enter_burst < 1.0 or not 0.0 < p_exit_burst < 1.0:
            raise ValueError("flip probabilities must be in (0, 1)")
        self.plan = plan
        self.streams = streams
        # Stationary distribution of the two-state chain.
        p_burst = p_enter_burst / (p_enter_burst + p_exit_burst)
        p_calm = 1.0 - p_burst
        mean = calm_level * p_calm + burst_level * p_burst
        self.calm_level = calm_level / mean
        self.burst_level = burst_level / mean
        self.p_enter_burst = p_enter_burst
        self.p_exit_burst = p_exit_burst
        self._bursting: Dict[int, bool] = {vm.vm_id: False for vm in plan.vms}

    def sample_tick(self) -> Dict[int, float]:
        """Advance regimes and sample every VM's demand for one tick."""
        per_host: Dict[int, float] = {}
        for vm in self.plan.vms:
            stream = self.streams[f"bursty/vm-{vm.vm_id}"]
            if self._bursting[vm.vm_id]:
                if stream.random() < self.p_exit_burst:
                    self._bursting[vm.vm_id] = False
            else:
                if stream.random() < self.p_enter_burst:
                    self._bursting[vm.vm_id] = True
            level = (
                self.burst_level if self._bursting[vm.vm_id] else self.calm_level
            )
            demand = (
                float(stream.poisson(vm.app.mean_power * level)) * self.plan.scale
            )
            vm.current_demand = demand
            per_host[vm.host_id] = per_host.get(vm.host_id, 0.0) + demand
        return per_host

    def burst_fraction(self) -> float:
        """Fraction of VMs currently in the burst regime."""
        if not self._bursting:
            return 0.0
        return sum(self._bursting.values()) / len(self._bursting)

    def state_dict(self) -> Dict[str, object]:
        """Checkpoint: the per-VM regime map (streams are owned by the
        controller's :class:`RandomStreams` and snapshotted there)."""
        return {"bursting": dict(self._bursting)}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self._bursting = dict(state["bursting"])  # type: ignore[arg-type]


class DiurnalDemandGenerator:
    """Daily-rhythm demand: a sinusoidal day profile times Poisson noise.

    Real transactional fleets follow their users' day: demand peaks in
    business hours and troughs overnight.  Each VM's instantaneous mean
    is ``rated * profile(t)`` where

        profile(t) = base + (peak - base) * (1 + sin(2*pi*(t/day - 1/4))) / 2

    runs from ``base`` at midnight to ``peak`` mid-day; demand is a
    Poisson draw around that mean.  Combined with
    :func:`repro.power.supply.renewable_supply` this reproduces the
    renewable-data-center scenario end to end.
    """

    def __init__(
        self,
        plan: PlacementPlan,
        streams: RandomStreams,
        *,
        day_length: float = 96.0,
        base: float = 0.3,
        peak: float = 1.6,
        phase: float = 0.0,
    ):
        if day_length <= 0:
            raise ValueError(f"day_length must be positive, got {day_length}")
        if not 0.0 < base < peak:
            raise ValueError("need 0 < base < peak")
        self.plan = plan
        self.streams = streams
        self.day_length = day_length
        self.base = base
        self.peak = peak
        self.phase = phase
        self._tick = 0

    def profile(self, tick: float) -> float:
        """The day multiplier at a given tick."""
        import math

        wave = (
            1.0
            + math.sin(
                2.0 * math.pi * (tick / self.day_length + self.phase - 0.25)
            )
        ) / 2.0
        return self.base + (self.peak - self.base) * wave

    def sample_tick(self) -> Dict[int, float]:
        factor = self.profile(self._tick)
        self._tick += 1
        per_host: Dict[int, float] = {}
        for vm in self.plan.vms:
            stream = self.streams[f"diurnal/vm-{vm.vm_id}"]
            demand = (
                float(stream.poisson(vm.app.mean_power * factor))
                * self.plan.scale
            )
            vm.current_demand = demand
            per_host[vm.host_id] = per_host.get(vm.host_id, 0.0) + demand
        return per_host

    def state_dict(self) -> Dict[str, object]:
        """Checkpoint: position within the day profile."""
        return {"tick": self._tick}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self._tick = int(state["tick"])  # type: ignore[arg-type]


class DemandGenerator:
    """Per-tick Poisson demand sampling for a placement.

    Each VM draws ``Poisson(mean_relative)`` in catalog units and is
    scaled to watts.  Every VM has its own named random stream so that
    migrating a VM does not perturb any other VM's future demands
    (a prerequisite for clean A/B comparisons between controllers).

    Draws are *block-prefetched*: every ``block_size`` ticks each VM
    stream emits its next ``block_size`` Poisson values in one call, and
    ``sample_tick`` consumes one column of the buffer per tick.  Because
    ``Generator.poisson(lam, size=k)`` advances a stream exactly like
    ``k`` successive scalar draws, the per-(seed, VM) demand sequence is
    bit-identical to unbatched sampling while the per-tick cost drops to
    a single vector slice (see docs/performance.md for the contract).
    """

    def __init__(
        self,
        plan: PlacementPlan,
        streams: RandomStreams,
        *,
        block_size: int = 256,
    ):
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        self.plan = plan
        self.streams = streams
        self._block_size = int(block_size)
        self._buffer: np.ndarray | None = None  # (n_vms, block) raw draws
        self._cursor = 0

    def _refill(self) -> None:
        n = len(self.plan.vms)
        if self._buffer is None or self._buffer.shape[0] != n:
            self._buffer = np.empty((n, self._block_size), dtype=np.int64)
        for row, vm in enumerate(self.plan.vms):
            stream = self.streams[f"demand/vm-{vm.vm_id}"]
            self._buffer[row] = stream.poisson(
                vm.app.mean_power, size=self._block_size
            )
        self._cursor = 0

    def sample_tick_array(self, write_objects: bool = True) -> np.ndarray:
        """Sample one tick for all VMs; return demands (W) by plan order.

        Updates each ``vm.current_demand`` in place, exactly like
        :meth:`sample_tick`, but returns the flat demand vector (indexed
        like ``plan.vms``) for array-based consumers.  Callers that keep
        the truth in arrays (the batched federation tick) pass
        ``write_objects=False`` to skip the per-VM scatter and flush the
        objects themselves only when scalar code needs them.
        """
        if self._buffer is None or self._cursor >= self._block_size:
            self._refill()
        draws = self._buffer[:, self._cursor]
        self._cursor += 1
        demands = draws.astype(float) * self.plan.scale
        if write_objects:
            for vm, demand in zip(self.plan.vms, demands.tolist()):
                vm.current_demand = demand
        return demands

    def sample_tick(self) -> Dict[int, float]:
        """Sample every VM's demand for one tick.

        Updates each ``vm.current_demand`` in place and returns the
        aggregate demand per host id (W).
        """
        self.sample_tick_array()
        per_host: Dict[int, float] = {}
        for vm in self.plan.vms:
            per_host[vm.host_id] = (
                per_host.get(vm.host_id, 0.0) + vm.current_demand
            )
        return per_host

    def expected_host_demand(self) -> Dict[int, float]:
        """Expected (mean) per-host demand in watts."""
        return self.plan.mean_demand_per_host()

    def state_dict(self) -> Dict[str, object]:
        """Checkpoint: the prefetched Poisson block and the read cursor.

        The buffer must travel with the RNG states: the per-VM streams
        have already advanced past the whole block, so resuming without
        the unconsumed draws would skip up to ``block_size`` ticks of
        demand.
        """
        return {
            "buffer": None if self._buffer is None else self._buffer.copy(),
            "cursor": self._cursor,
            "block_size": self._block_size,
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        block_size = int(state["block_size"])  # type: ignore[arg-type]
        if block_size != self._block_size:
            raise ValueError(
                f"demand block_size mismatch: snapshot has {block_size}, "
                f"generator was built with {self._block_size}"
            )
        buffer = state["buffer"]
        self._buffer = None if buffer is None else np.array(buffer, dtype=np.int64)
        self._cursor = int(state["cursor"])  # type: ignore[arg-type]
