"""Thermal-oblivious Willow.

Identical control scheme but the thermal hard constraint (Eq. 3) is
disabled: only circuit ratings cap budgets.  Hot-zone servers then get
full budgets, run hot, and the temperature-violation count quantifies
exactly what the thermal caps buy ("the thermal constraints were never
violated in the simulations" -- Sec. VI, with caps on).
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Optional, Tuple

from repro.core.config import WillowConfig
from repro.core.controller import WillowController
from repro.metrics.collector import MetricsCollector
from repro.power.supply import SupplyTrace
from repro.topology.tree import Tree
from repro.workload.generator import PlacementPlan

__all__ = ["run_no_thermal"]


def run_no_thermal(
    tree: Tree,
    config: WillowConfig,
    supply: SupplyTrace,
    placement: PlacementPlan,
    *,
    n_ticks: int,
    seed: int = 0,
    ambient_overrides: Optional[Mapping[str, float]] = None,
) -> Tuple[MetricsCollector, int]:
    """Run Willow without thermal caps.

    Returns ``(collector, violation_count)`` where the count is the
    total number of server-ticks spent above ``T_limit``.
    """
    blind = dataclasses.replace(config, thermal_enabled=False)
    controller = WillowController(
        tree,
        blind,
        supply,
        placement,
        ambient_overrides=ambient_overrides,
        seed=seed,
    )
    collector = controller.run(n_ticks)
    violations = sum(s.thermal.violations for s in controller.servers.values())
    return collector, violations
