"""Comparator policies for Willow.

The paper's claims are comparative ("coordinated beats independent",
"thermal-aware placement avoids violations", "hierarchy scales");
these baselines make each claim measurable:

* :mod:`repro.baselines.independent` -- every server throttles to its
  static share of supply; no coordination, no migrations.
* :mod:`repro.baselines.centralized` -- one flat controller packs all
  VMs over all servers each round; optimal matching reach but O(n)
  messages through the root and no locality.
* :mod:`repro.baselines.no_thermal` -- Willow with the thermal hard
  constraint disabled; temperature violations quantify what the Eq. 3
  caps buy.
"""

from repro.baselines.independent import run_independent
from repro.baselines.centralized import build_flat_tree, run_centralized
from repro.baselines.no_thermal import run_no_thermal

__all__ = [
    "build_flat_tree",
    "run_centralized",
    "run_independent",
    "run_no_thermal",
]
