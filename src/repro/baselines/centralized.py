"""Fully centralized control.

One flat controller sees every server as a direct child of the root:
matching reaches everything in a single bin-packing instance (no
locality constraint) but every demand report and budget directive
crosses the root -- 2n messages per tick on the root's links versus
Willow's 2 per link.  Willow's Property 2 argues the hierarchical
solution is no worse; this baseline lets the benches check that while
exposing the message-count difference.
"""

from __future__ import annotations

from typing import List, Mapping, Optional

from repro.core.config import WillowConfig
from repro.core.controller import WillowController
from repro.metrics.collector import MetricsCollector
from repro.power.supply import SupplyTrace
from repro.topology.tree import NodeKind, Tree
from repro.workload.generator import PlacementPlan
from repro.workload.vm import VM

__all__ = ["build_flat_tree", "run_centralized"]


def build_flat_tree(n_servers: int) -> Tree:
    """A height-1 hierarchy: root with ``n_servers`` leaf children."""
    if n_servers < 1:
        raise ValueError(f"n_servers must be >= 1, got {n_servers}")
    tree = Tree(root_name="datacenter", root_level=1)
    for i in range(n_servers):
        tree.add_child(tree.root, f"server-{i + 1}", NodeKind.SERVER)
    tree.validate()
    return tree


def _translate_placement(
    placement: PlacementPlan, source: Tree, flat: Tree
) -> PlacementPlan:
    """Re-home a placement onto the flat tree, preserving server order."""
    source_ids = [s.node_id for s in source.servers()]
    flat_ids = [s.node_id for s in flat.servers()]
    if len(source_ids) != len(flat_ids):
        raise ValueError("flat tree server count mismatch")
    mapping = dict(zip(source_ids, flat_ids))
    vms: List[VM] = []
    for vm in placement.vms:
        vms.append(VM(vm_id=vm.vm_id, app=vm.app, host_id=mapping[vm.host_id]))
    return PlacementPlan(vms=vms, scale=placement.scale)


def run_centralized(
    tree: Tree,
    config: WillowConfig,
    supply: SupplyTrace,
    placement: PlacementPlan,
    *,
    n_ticks: int,
    seed: int = 0,
    ambient_overrides: Optional[Mapping[str, float]] = None,
) -> MetricsCollector:
    """Run the flat centralized controller on an equivalent data center.

    The hierarchy of ``tree`` is discarded; servers keep their order
    (so ambient overrides by server name still apply when the source
    tree uses ``server-N`` names).
    """
    flat = build_flat_tree(len(tree.servers()))
    flat_placement = _translate_placement(placement, tree, flat)
    controller = WillowController(
        flat,
        config,
        supply,
        flat_placement,
        ambient_overrides=ambient_overrides,
        seed=seed,
    )
    return controller.run(n_ticks)
