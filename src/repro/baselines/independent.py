"""Independent (uncoordinated) per-server control.

Each server receives a fixed equal share of the supply, throttles its
own demand to that share (and to its own thermal cap), and never
migrates anything.  This is the "independent controls can lead to
unstable or suboptimal control" strawman of Sec. III: deficits on hot
or busy servers are pure QoS loss even while siblings idle.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.core.config import WillowConfig
from repro.core.events import Drop
from repro.core.state import ServerRuntime
from repro.metrics.collector import MetricsCollector, ServerSample
from repro.power.supply import SupplyTrace
from repro.sim.rng import RandomStreams
from repro.topology.tree import Tree
from repro.workload.generator import DemandGenerator, PlacementPlan

__all__ = ["run_independent"]

_EPS = 1e-9


def run_independent(
    tree: Tree,
    config: WillowConfig,
    supply: SupplyTrace,
    placement: PlacementPlan,
    *,
    n_ticks: int,
    seed: int = 0,
    ambient_overrides: Optional[Mapping[str, float]] = None,
) -> MetricsCollector:
    """Run the uncoordinated baseline; returns collected metrics.

    Accepts the same inputs as
    :class:`~repro.core.controller.WillowController` so A/B runs can
    share placement, seed and supply.
    """
    if n_ticks < 1:
        raise ValueError(f"n_ticks must be >= 1, got {n_ticks}")
    collector = MetricsCollector()
    streams = RandomStreams(seed)
    generator = DemandGenerator(placement, streams)
    ambient_overrides = dict(ambient_overrides or {})

    servers = {}
    for leaf in tree.servers():
        params = config.thermal
        if leaf.name in ambient_overrides:
            params = params.with_ambient(ambient_overrides[leaf.name])
        servers[leaf.node_id] = ServerRuntime(leaf, config, params)
    for vm in placement.vms:
        servers[vm.host_id].vms[vm.vm_id] = vm

    n = len(servers)
    for tick in range(n_ticks):
        now = float(tick) * config.delta_d
        generator.sample_tick()
        share = supply.at(now) / n
        for server in servers.values():
            server.observe_demand()
            budget = min(share, server.hard_cap())
            server.set_budget(budget)
            available = max(budget - server.model.static_power, 0.0)
            active = server.vm_demand
            served = min(active, available)
            if active - served > _EPS:
                collector.record_drop(
                    Drop(now, server.node.node_id, None, active - served)
                )
            server.served_power = served
            wall = server.actual_power()
            temperature = server.update_temperature(wall, config.delta_d)
            collector.record_server(
                ServerSample(
                    time=now,
                    server_id=server.node.node_id,
                    power=wall,
                    temperature=temperature,
                    utilization=server.utilization,
                    demand=server.raw_demand,
                    budget=budget,
                    asleep=False,
                )
            )
    return collector
