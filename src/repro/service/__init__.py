"""Willow-as-a-service: online event-driven live mode.

The pieces, front to back (docs/service.md walks through them):

* :mod:`repro.service.events` -- the ingest event schema + validation;
* :mod:`repro.service.gateway` -- bounded queue, backpressure (429 +
  retry_after), per-source accounting, JSON-lines TCP protocol;
* :mod:`repro.service.simulation` -- the embedded deterministic
  controller both live mode and replay drive;
* :mod:`repro.service.runner` -- wall-clock ticks draining the queue,
  writing the audit log, graceful shutdown;
* :mod:`repro.service.audit` -- the replayable audit log format;
* :mod:`repro.service.replay` -- offline bit-exact re-execution;
* :mod:`repro.service.recover` -- crash recovery (checkpoint + tail);
* :mod:`repro.service.loadgen` -- the batching load-generator client.
"""

from repro.service.audit import AuditLog, AuditRecordError, read_audit
from repro.service.events import (
    EVENT_TYPES,
    FAULT_KINDS,
    EventValidationError,
    validate_event,
)
from repro.service.gateway import IngestGateway
from repro.service.loadgen import LoadGenerator, LoadResult, generate_load
from repro.service.recover import RecoveryResult, recover_simulation
from repro.service.replay import ReplayResult, replay
from repro.service.runner import LiveReport, LiveRunner
from repro.service.simulation import (
    ApplyResult,
    EventDrivenDemandSource,
    LiveSimulation,
    MutableSupply,
    ServiceSpec,
    decision_digest,
)

__all__ = [
    "EVENT_TYPES",
    "FAULT_KINDS",
    "EventValidationError",
    "validate_event",
    "IngestGateway",
    "AuditLog",
    "AuditRecordError",
    "read_audit",
    "ServiceSpec",
    "EventDrivenDemandSource",
    "MutableSupply",
    "ApplyResult",
    "LiveSimulation",
    "decision_digest",
    "LiveRunner",
    "LiveReport",
    "ReplayResult",
    "replay",
    "RecoveryResult",
    "recover_simulation",
    "LoadGenerator",
    "LoadResult",
    "generate_load",
]
