"""The embedded live controller: deterministic event application.

A :class:`LiveSimulation` wraps one Willow controller so that the only
inputs that can change its decisions are (a) the :class:`ServiceSpec`
it was built from and (b) the sequence of ``(tick, event)`` pairs fed
through :meth:`apply`.  Both live mode (:class:`repro.service.runner
.LiveRunner`) and offline replay (:func:`repro.service.replay.replay`)
drive *this* class, which is what makes a live run bit-exactly
replayable from its audit log: wall-clock time only decides *which
tick* an event lands on, and the audit log records that decision.

Determinism rules enforced here:

* demand is zero-order held -- :class:`EventDrivenDemandSource` never
  draws randomness; ``demand_sample`` events are the only demand input;
* the root supply is a :class:`MutableSupply` stepped by
  ``supply_update`` events at tick boundaries only;
* state-dependent event resolution (unknown vm_id, occupied vm_id,
  unknown host) degrades to a *counted no-op*, never an error, so live
  and replay take identical paths through identical states;
* auto-placement of arrivals picks the least-loaded awake server with
  the lowest node id -- a pure function of controller state.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from repro.core.config import WillowConfig
from repro.metrics.collector import MetricsCollector
from repro.service.events import OPEN_END_TICK, app_from_spec
from repro.workload.generator import (
    PlacementPlan,
    random_placement,
    scale_for_target_utilization,
)
from repro.workload.vm import VM

__all__ = [
    "ServiceSpec",
    "EventDrivenDemandSource",
    "MutableSupply",
    "ApplyResult",
    "LiveSimulation",
    "decision_digest",
]

_CONTROLLERS = ("scalar", "vectorized")


@dataclass(frozen=True)
class ServiceSpec:
    """Everything needed to rebuild a live run's initial conditions.

    Serialized into the audit log's meta record; ``from_meta`` must
    round-trip ``to_meta`` exactly (the replay contract hangs on it).
    """

    seed: int = 0
    controller: str = "scalar"  # "scalar" (fault-tolerant) | "vectorized"
    branching: Optional[tuple] = None  # None = the paper's 18-server tree
    utilization: float = 0.5
    vms_per_server: int = 4
    supply_factor: float = 1.0
    outside_temp: float = 35.0

    def __post_init__(self) -> None:
        if self.controller not in _CONTROLLERS:
            raise ValueError(
                f"controller must be one of {_CONTROLLERS}, "
                f"got {self.controller!r}"
            )
        if self.vms_per_server < 0:
            raise ValueError("vms_per_server must be >= 0")
        if self.vms_per_server and not 0.0 < self.utilization <= 1.0:
            raise ValueError("utilization must be in (0, 1]")
        if self.supply_factor <= 0:
            raise ValueError("supply_factor must be positive")

    def to_meta(self) -> Dict[str, Any]:
        payload = dataclasses.asdict(self)
        if payload["branching"] is not None:
            payload["branching"] = list(payload["branching"])
        return payload

    @classmethod
    def from_meta(cls, payload: Mapping[str, Any]) -> "ServiceSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        kwargs = {k: v for k, v in payload.items() if k in known}
        if kwargs.get("branching") is not None:
            kwargs["branching"] = tuple(int(b) for b in kwargs["branching"])
        return cls(**kwargs)


class EventDrivenDemandSource:
    """Zero-order-hold demand: only ``demand_sample`` events change it.

    The controller calls :meth:`sample_tick` once per tick; VM demands
    were already written at the tick boundary by
    :meth:`LiveSimulation.apply`, so there is nothing to draw -- which
    is exactly what keeps live runs replayable.
    """

    def sample_tick(self) -> Dict[int, float]:
        return {}

    # Checkpointing: a zero-order hold has no state of its own (VM
    # demands live on the VM objects, captured by the controller).
    def state_dict(self) -> Dict[str, Any]:
        return {}

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        pass


class MutableSupply:
    """A root supply stepped by ``supply_update`` events.

    Quacks like :class:`repro.power.supply.SupplyTrace` for the one
    method controllers use (``at``); mutation happens only at tick
    boundaries, so every allocation within a tick sees one value.
    """

    def __init__(self, initial_budget: float):
        if initial_budget < 0:
            raise ValueError("initial budget must be >= 0")
        self._budget = float(initial_budget)

    def at(self, time: float) -> float:
        return self._budget

    def set(self, budget: float) -> None:
        self._budget = float(budget)

    @property
    def current(self) -> float:
        return self._budget


@dataclass(frozen=True)
class ApplyResult:
    """What one event did: applied, or ignored with a reason slug."""

    applied: bool
    reason: str = ""
    detail: str = ""


class LiveSimulation:
    """One embedded controller plus the event-to-primitive mapping."""

    def __init__(self, spec: ServiceSpec):
        from repro.topology.builders import build_balanced, build_paper_simulation

        self.spec = spec
        self.config = WillowConfig()
        self.tree = (
            build_balanced(list(spec.branching))
            if spec.branching
            else build_paper_simulation()
        )
        servers = self.tree.servers()
        self.supply = MutableSupply(
            spec.supply_factor * len(servers) * self.config.circuit_limit
        )
        if spec.vms_per_server:
            from repro.sim.rng import RandomStreams
            from repro.workload.applications import SIMULATION_APPS

            streams = RandomStreams(spec.seed)
            placement = random_placement(
                [s.node_id for s in servers],
                SIMULATION_APPS,
                streams["placement"],
                vms_per_server=spec.vms_per_server,
            )
            scale_for_target_utilization(
                placement, self.config.server_model.slope, spec.utilization
            )
            # Live demand arrives in absolute watts; seed each VM's
            # zero-order hold at its scaled mean so the fleet starts at
            # the target utilization instead of idling at the floor.
            for vm in placement.vms:
                vm.current_demand = vm.app.mean_power * placement.scale
        else:
            placement = PlacementPlan(vms=[], scale=1.0)

        if spec.controller == "vectorized":
            from repro.core.vectorized import VectorizedWillowController

            self.controller = VectorizedWillowController(
                self.tree,
                self.config,
                self.supply,
                placement,
                demand_source=EventDrivenDemandSource(),
                seed=spec.seed,
            )
        else:
            from repro.plant_faults import (
                FaultTolerantWillowController,
                PlantFaultSchedule,
            )

            # The fault-tolerant controller with an empty schedule is
            # bit-exact with the plain scalar controller, and gives
            # live ``fault`` events a place to land.
            self.controller = FaultTolerantWillowController(
                self.tree,
                self.config,
                self.supply,
                placement,
                demand_source=EventDrivenDemandSource(),
                plant_faults=PlantFaultSchedule(),
                outside_temp=spec.outside_temp,
                seed=spec.seed,
            )
        self.placement = placement
        self._next_vm_id = 1 + max(
            (vm.vm_id for vm in placement.vms), default=-1
        )
        self.tick = 0
        self.applied: Dict[str, int] = {}
        self.ignored: Dict[str, int] = {}

    # ------------------------------------------------------------ accessors
    @property
    def collector(self) -> MetricsCollector:
        return self.controller.collector

    @property
    def allow_faults(self) -> bool:
        """Fault events need the scalar (fault-tolerant) controller."""
        return self.spec.controller == "scalar"

    @property
    def n_vms(self) -> int:
        return len(self.controller._vm_by_id)

    # -------------------------------------------------------------- events
    def apply(self, event: Mapping[str, Any]) -> ApplyResult:
        """Map one validated event onto the controller, deterministically.

        Must be called at a tick boundary (between :meth:`step` calls).
        Unknown references produce a counted no-op -- see the module
        docstring for why that is load-bearing for replayability.
        """
        etype = event["type"]
        try:
            handler = getattr(self, f"_apply_{etype}")
            result = handler(event)
        except Exception as error:  # defensive: keep live == replay
            result = ApplyResult(False, "internal_error", repr(error))
        key = etype if result.applied else f"{etype}:{result.reason}"
        bucket = self.applied if result.applied else self.ignored
        bucket[key] = bucket.get(key, 0) + 1
        return result

    def step(self) -> None:
        """Advance the embedded controller exactly one control tick."""
        controller = self.controller
        controller._tick()
        controller.env.advance(self.config.delta_d)
        self.tick += 1

    def finish(self) -> MetricsCollector:
        """Flush the tracer and hand back the metrics."""
        self.controller.tracer.flush()
        return self.collector

    # -------------------------------------------------------- checkpointing
    def snapshot_state(self) -> Dict[str, Any]:
        """Full live-run state at a tick boundary (between ``step`` calls).

        Call only between ticks -- the live worker snapshots right after
        ``step``/audit flush, so the checkpoint at tick C contains every
        event applied at ticks < C and nothing later.  Restoring onto a
        fresh ``LiveSimulation(spec)`` and replaying the audit tail
        (events with tick >= C) reproduces the uninterrupted run's
        ``decision_digest`` bit-exactly.
        """
        return {
            "spec": self.spec.to_meta(),
            "tick": self.tick,
            "applied": dict(self.applied),
            "ignored": dict(self.ignored),
            "next_vm_id": self._next_vm_id,
            "supply_budget": self.supply.current,
            "controller": self.controller.snapshot_state(),
        }

    def restore_state(self, state: Mapping[str, Any]) -> None:
        """Overlay a snapshot onto a freshly built twin of the same spec."""
        from repro.checkpoint.errors import CheckpointError

        if dict(state["spec"]) != self.spec.to_meta():
            raise CheckpointError(
                "checkpoint was taken under a different service spec: "
                f"{state['spec']!r} != {self.spec.to_meta()!r}"
            )
        self.controller.restore_state(state["controller"])
        self.supply.set(float(state["supply_budget"]))
        self.tick = int(state["tick"])
        self.applied = dict(state["applied"])
        self.ignored = dict(state["ignored"])
        self._next_vm_id = int(state["next_vm_id"])

    # ---------------------------------------------------------- resolution
    def _resolve_leaf(self, ref) -> Optional[int]:
        """A host/server reference to a leaf node id, or None."""
        if isinstance(ref, str):
            try:
                node = self.tree.by_name(ref)
            except KeyError:
                return None
            return node.node_id if node.is_leaf else None
        return ref if ref in self.controller.servers else None

    def _resolve_internal(self, ref) -> Optional[int]:
        """A subtree reference (trips/cooling zones), or None."""
        if isinstance(ref, str):
            try:
                node = self.tree.by_name(ref)
            except KeyError:
                return None
            return node.node_id
        if ref in self.controller.internals or ref in self.controller.servers:
            return ref
        return None

    def _auto_host(self) -> int:
        """Deterministic placement: least-loaded awake server, then id."""
        servers = self.controller.servers.values()
        awake = [s for s in servers if s.is_awake] or list(servers)
        best = min(awake, key=lambda s: (s.vm_demand, s.node.node_id))
        return best.node.node_id

    # ------------------------------------------------------------ handlers
    def _apply_vm_arrival(self, event) -> ApplyResult:
        controller = self.controller
        vm_id = event.get("vm_id")
        if vm_id is None:
            vm_id = self._next_vm_id
        elif vm_id in controller._vm_by_id:
            return ApplyResult(False, "vm_id_taken", f"vm {vm_id} exists")
        if "host" in event:
            host_id = self._resolve_leaf(event["host"])
            if host_id is None:
                return ApplyResult(
                    False, "unknown_host", f"host {event['host']!r}"
                )
        else:
            host_id = self._auto_host()
        vm = VM(
            vm_id=vm_id,
            app=app_from_spec(event.get("app")),
            host_id=host_id,
            current_demand=float(event.get("demand", 0.0)),
        )
        self.placement.vms.append(vm)
        controller._vm_by_id[vm_id] = vm
        controller.servers[host_id].vms[vm_id] = vm
        controller.vm_arrived(vm, host_id)
        self._next_vm_id = max(self._next_vm_id, vm_id + 1)
        return ApplyResult(True, detail=f"vm {vm_id} -> node {host_id}")

    def _apply_vm_departure(self, event) -> ApplyResult:
        controller = self.controller
        vm = controller._vm_by_id.pop(event["vm_id"], None)
        if vm is None:
            return ApplyResult(False, "unknown_vm", f"vm {event['vm_id']}")
        host = controller.servers.get(vm.host_id)
        if host is not None:
            host.vms.pop(vm.vm_id, None)
        try:
            self.placement.vms.remove(vm)
        except ValueError:
            pass
        controller.vm_departed(vm)
        return ApplyResult(True)

    def _apply_demand_sample(self, event) -> ApplyResult:
        vm = self.controller._vm_by_id.get(event["vm_id"])
        if vm is None:
            return ApplyResult(False, "unknown_vm", f"vm {event['vm_id']}")
        vm.current_demand = float(event["demand"])
        return ApplyResult(True)

    def _apply_supply_update(self, event) -> ApplyResult:
        self.supply.set(event["budget"])
        return ApplyResult(True)

    def _apply_fault(self, event) -> ApplyResult:
        if not self.allow_faults:
            return ApplyResult(False, "faults_unsupported")
        from repro.plant_faults.schedule import (
            CircuitTrip,
            CoolingDegradation,
            ServerCrash,
        )

        kind = event["kind"]
        schedule = self.controller.plant_faults
        tick = self.tick
        if kind == "server_crash":
            server_id = self._resolve_leaf(event["server"])
            if server_id is None:
                return ApplyResult(False, "unknown_server")
            if schedule.is_crashed(server_id, tick):
                return ApplyResult(False, "already_crashed")
            window = ServerCrash(
                server_id, tick, tick + event.get("ticks", OPEN_END_TICK)
            )
            schedule = dataclasses.replace(
                schedule, crashes=schedule.crashes + (window,)
            )
        elif kind == "server_restart":
            server_id = self._resolve_leaf(event["server"])
            if server_id is None:
                return ApplyResult(False, "unknown_server")
            truncated = tuple(
                dataclasses.replace(c, end_tick=tick)
                if c.server_id == server_id and c.covers(tick) and tick > c.start_tick
                else c
                for c in schedule.crashes
            )
            if truncated == schedule.crashes:
                return ApplyResult(False, "not_crashed")
            schedule = dataclasses.replace(schedule, crashes=truncated)
        elif kind == "circuit_trip":
            node_id = self._resolve_internal(event["node"])
            if node_id is None:
                return ApplyResult(False, "unknown_node")
            if node_id in schedule.tripped_roots(tick):
                return ApplyResult(False, "already_tripped")
            window = CircuitTrip(
                node_id, tick, tick + event.get("ticks", OPEN_END_TICK)
            )
            schedule = dataclasses.replace(
                schedule, trips=schedule.trips + (window,)
            )
        elif kind == "circuit_restore":
            node_id = self._resolve_internal(event["node"])
            if node_id is None:
                return ApplyResult(False, "unknown_node")
            truncated = tuple(
                dataclasses.replace(t, end_tick=tick)
                if t.node_id == node_id and t.covers(tick) and tick > t.start_tick
                else t
                for t in schedule.trips
            )
            if truncated == schedule.trips:
                return ApplyResult(False, "not_tripped")
            schedule = dataclasses.replace(schedule, trips=truncated)
        elif kind == "cooling_derate":
            zone_id = None
            if "zone" in event:
                zone_id = self._resolve_internal(event["zone"])
                if zone_id is None:
                    return ApplyResult(False, "unknown_zone")
            window = CoolingDegradation(
                start_tick=tick,
                end_tick=tick + event.get("ticks", OPEN_END_TICK),
                derate=event["derate"],
                zone_id=zone_id,
                ramp_ticks=event.get("ramp_ticks", 4),
            )
            schedule = dataclasses.replace(
                schedule, cooling=schedule.cooling + (window,)
            )
        else:  # cooling_restore
            zone_id = None
            if "zone" in event:
                zone_id = self._resolve_internal(event["zone"])
                if zone_id is None:
                    return ApplyResult(False, "unknown_zone")
            truncated = tuple(
                dataclasses.replace(c, end_tick=tick)
                if c.zone_id == zone_id
                and c.start_tick < tick < c.end_tick
                else c
                for c in schedule.cooling
            )
            if truncated == schedule.cooling:
                return ApplyResult(False, "not_degraded")
            schedule = dataclasses.replace(schedule, cooling=truncated)
        self.controller.plant_faults = schedule
        return ApplyResult(True)


def decision_digest(collector: MetricsCollector) -> str:
    """SHA-256 over every decision-bearing collector table.

    Two runs produce the same digest iff their controllers made
    bit-identical decisions: per-server power/temperature/budget
    samples, switch samples, migrations, drops, unmatched deficits,
    plant-fault edges and the Eq. 9 imbalance series.  ``repr`` of a
    float is exact, so this is a bit-exactness check, not a tolerance.
    """
    h = hashlib.sha256()

    def feed(tag: str, rows) -> None:
        h.update(tag.encode())
        for row in rows:
            h.update(repr(row).encode())
            h.update(b"\n")

    feed(
        "servers",
        (
            (s.time, s.server_id, s.power, s.temperature, s.utilization,
             s.demand, s.budget, s.asleep)
            for s in collector.server_samples
        ),
    )
    feed(
        "switches",
        (
            (s.time, s.switch_id, s.base_traffic, s.migration_traffic, s.power)
            for s in collector.switch_samples
        ),
    )
    feed(
        "migrations",
        (
            (m.time, m.vm_id, m.src_id, m.dst_id, m.demand, m.cause.value,
             m.local, m.hops, m.cost_power)
            for m in collector.migrations
        ),
    )
    feed(
        "drops",
        ((d.time, d.node_id, d.vm_id, d.power) for d in collector.drops),
    )
    feed(
        "unmatched",
        (
            (d.time, d.node_id, d.vm_id, d.power)
            for d in collector.unmatched_deficits
        ),
    )
    feed(
        "plant",
        (
            (e.time, e.kind, e.node_id, e.detail)
            for e in collector.plant_events
        ),
    )
    feed("imbalance", collector.imbalance)
    return h.hexdigest()
