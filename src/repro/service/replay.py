"""Offline, bit-exact replay of a live run's audit log.

``replay(path)`` rebuilds the run's initial conditions from the audit
meta record, then drives the *same* :class:`~repro.service.simulation
.LiveSimulation` the live worker drove -- applying each logged event at
the tick boundary it was originally applied at -- with no wall clock,
no sockets and no queue.  Because the embedded controller's decisions
are a pure function of (spec, event-to-tick assignment), the replay's
decision digest equals the live run's; :class:`ReplayResult.parity`
reports the comparison against the digest recorded in the ``end``
record when one exists (graceful shutdowns write it).

The per-event ``applied`` flags are cross-checked too: if a logged
event applied live but no-ops offline (or vice versa) the replay's
state diverged from the live run's, and ``apply_mismatches`` counts it
-- a zero there plus matching digests is the full replay contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.metrics.collector import MetricsCollector
from repro.service.audit import read_audit
from repro.service.simulation import LiveSimulation, ServiceSpec, decision_digest

__all__ = ["ReplayResult", "replay"]


@dataclass
class ReplayResult:
    """The rebuilt run plus the parity verdict."""

    sim: LiveSimulation
    collector: MetricsCollector
    ticks: int
    events_applied: int
    events_ignored: int
    apply_mismatches: int
    digest: str
    live_digest: Optional[str]  # None when the run died before `end`
    truncated_lines: int

    @property
    def parity(self) -> Optional[bool]:
        """True/False vs the recorded live digest; None if unrecorded."""
        if self.live_digest is None:
            return None
        return self.digest == self.live_digest and self.apply_mismatches == 0

    def format(self) -> str:
        lines = [
            f"replayed {self.ticks} tick(s): "
            f"{self.events_applied} event(s) applied, "
            f"{self.events_ignored} no-op(s)",
            f"decision digest: {self.digest}",
        ]
        if self.truncated_lines:
            lines.append(
                f"warning: skipped {self.truncated_lines} partial/garbled "
                f"audit line(s) (hard kill mid-write?)"
            )
        if self.apply_mismatches:
            lines.append(
                f"warning: {self.apply_mismatches} event(s) resolved "
                f"differently than live (state divergence)"
            )
        if self.live_digest is None:
            lines.append(
                "replay parity: UNVERIFIED (no end record -- the live run "
                "did not shut down gracefully)"
            )
        else:
            lines.append(
                "replay parity: OK (bit-exact with the live run)"
                if self.parity
                else f"replay parity: MISMATCH (live digest {self.live_digest})"
            )
        return "\n".join(lines)


def replay(path) -> ReplayResult:
    """Re-run an audit log through the offline tick path."""
    document = read_audit(path)
    spec = ServiceSpec.from_meta(document["meta"]["spec"])
    sim = LiveSimulation(spec)

    by_tick: Dict[int, List[dict]] = {}
    last_event_tick = -1
    for record in document["events"]:
        by_tick.setdefault(record["tick"], []).append(record)
        last_event_tick = max(last_event_tick, record["tick"])
    end = document["end"]
    n_ticks = end["ticks"] if end is not None else last_event_tick + 1
    n_ticks = max(n_ticks, last_event_tick + 1)

    applied = ignored = mismatches = 0
    for tick in range(n_ticks):
        for record in by_tick.get(tick, ()):
            result = sim.apply(record["event"])
            if result.applied:
                applied += 1
            else:
                ignored += 1
            if result.applied != record.get("applied", result.applied):
                mismatches += 1
        sim.step()

    collector = sim.finish()
    return ReplayResult(
        sim=sim,
        collector=collector,
        ticks=sim.tick,
        events_applied=applied,
        events_ignored=ignored,
        apply_mismatches=mismatches,
        digest=decision_digest(collector),
        live_digest=end.get("digest") if end is not None else None,
        truncated_lines=document["truncated_lines"],
    )
