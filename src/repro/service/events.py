"""Ingest event schema and validation (the live-mode wire format).

Live mode (docs/service.md) absorbs the outside world as a stream of
small JSON events.  Five types map onto the existing simulation
primitives:

``vm_arrival``
    A new VM enters the fleet (:class:`repro.workload.vm.VM`).  Fields:
    optional ``vm_id`` (auto-assigned when omitted), optional ``host``
    (server name or leaf node id; omitted = deterministic least-loaded
    placement), optional ``app`` (catalog name from
    :data:`~repro.workload.applications.SIMULATION_APPS` or an inline
    ``{"name", "mean_power", "priority"}`` object), optional ``demand``
    in watts (zero-order held until the next ``demand_sample``).
``vm_departure``
    The VM leaves; its demand disappears from its host.
``demand_sample``
    A fresh demand observation for one VM, in watts.  Demands are
    zero-order held between samples, so a quiet VM costs no events.
``supply_update``
    A new root power budget in watts (grid signal, renewable forecast
    revision), in force from the next tick on.
``fault``
    A physical-plant edge mapped onto :mod:`repro.plant_faults`
    windows: ``server_crash``/``server_restart``,
    ``circuit_trip``/``circuit_restore``,
    ``cooling_derate``/``cooling_restore``.  Only the scalar
    (fault-tolerant) live controller accepts these.

Validation is *stateless*: it checks shapes, ranges and catalog
membership, never simulation state (the queue decouples ingest time
from apply time, so state checks would race).  State-dependent
resolution -- does this vm_id exist, is that host a leaf -- happens at
the tick boundary inside :class:`repro.service.simulation
.LiveSimulation`, deterministically, with unknown references degrading
to counted no-ops rather than errors so live and replay always agree.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Tuple

from repro.workload.applications import SIMULATION_APPS, AppType

__all__ = [
    "EVENT_TYPES",
    "FAULT_KINDS",
    "EventValidationError",
    "validate_event",
    "app_from_spec",
]

#: Every ingestable event type.
EVENT_TYPES: Tuple[str, ...] = (
    "vm_arrival",
    "vm_departure",
    "demand_sample",
    "supply_update",
    "fault",
)

#: Physical-plant edges accepted as live ``fault`` events.
FAULT_KINDS: Tuple[str, ...] = (
    "server_crash",
    "server_restart",
    "circuit_trip",
    "circuit_restore",
    "cooling_derate",
    "cooling_restore",
)

#: Open-ended fault windows end here until a matching restore truncates
#: them (ticks; far beyond any realistic run length).
OPEN_END_TICK = 2**31

_APP_CATALOG = {app.name: app for app in SIMULATION_APPS}

_ALLOWED_KEYS = {
    "vm_arrival": {"type", "source", "vm_id", "host", "app", "demand"},
    "vm_departure": {"type", "source", "vm_id"},
    "demand_sample": {"type", "source", "vm_id", "demand"},
    "supply_update": {"type", "source", "budget"},
    "fault": {
        "type", "source", "kind", "server", "node", "zone",
        "ticks", "derate", "ramp_ticks",
    },
}


class EventValidationError(ValueError):
    """An ingest event failed schema validation (HTTP-400 analogue)."""


def _require_finite(value: Any, field: str, *, minimum: float = 0.0) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise EventValidationError(f"{field} must be a number, got {value!r}")
    value = float(value)
    if not math.isfinite(value):
        raise EventValidationError(f"{field} must be finite, got {value!r}")
    if value < minimum:
        raise EventValidationError(f"{field} must be >= {minimum}, got {value}")
    return value


def _require_int(value: Any, field: str, *, minimum: int = 0) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise EventValidationError(f"{field} must be an integer, got {value!r}")
    if value < minimum:
        raise EventValidationError(f"{field} must be >= {minimum}, got {value}")
    return value


def app_from_spec(spec: Any) -> AppType:
    """Resolve a validated ``app`` field to an :class:`AppType`."""
    if spec is None:
        return _APP_CATALOG["app-1"]
    if isinstance(spec, str):
        return _APP_CATALOG[spec]
    return AppType(
        name=str(spec["name"]),
        mean_power=float(spec.get("mean_power", 1.0)),
        priority=int(spec.get("priority", 0)),
    )


def _validate_app(spec: Any) -> Any:
    if isinstance(spec, str):
        if spec not in _APP_CATALOG:
            raise EventValidationError(
                f"unknown app {spec!r} (catalog: {sorted(_APP_CATALOG)})"
            )
        return spec
    if isinstance(spec, dict):
        unknown = set(spec) - {"name", "mean_power", "priority"}
        if unknown:
            raise EventValidationError(
                f"unknown app fields {sorted(unknown)}"
            )
        if "name" not in spec or not isinstance(spec["name"], str):
            raise EventValidationError("inline app needs a string 'name'")
        if "mean_power" in spec:
            mean = _require_finite(spec["mean_power"], "app.mean_power")
            if mean <= 0:
                raise EventValidationError("app.mean_power must be positive")
        if "priority" in spec:
            _require_int(spec["priority"], "app.priority", minimum=-(2**31))
        return dict(spec)
    raise EventValidationError(
        f"app must be a catalog name or object, got {type(spec).__name__}"
    )


def _validate_node_ref(value: Any, field: str) -> Any:
    """A tree node reference: a name (str) or a node id (int)."""
    if isinstance(value, str):
        if not value:
            raise EventValidationError(f"{field} must be non-empty")
        return value
    if isinstance(value, bool) or not isinstance(value, int):
        raise EventValidationError(
            f"{field} must be a node name or id, got {value!r}"
        )
    if value < 0:
        raise EventValidationError(f"{field} must be >= 0, got {value}")
    return value


def validate_event(
    obj: Any, *, allow_faults: bool = True
) -> Dict[str, Any]:
    """Validate one raw ingest object; return its normalized form.

    Raises :class:`EventValidationError` with a client-presentable
    message on any shape/range violation.  The normalized dict carries
    only known keys with defaults filled in, and is what the gateway
    enqueues and the audit log records.
    """
    if not isinstance(obj, dict):
        raise EventValidationError(
            f"event must be a JSON object, got {type(obj).__name__}"
        )
    etype = obj.get("type")
    if etype not in EVENT_TYPES:
        raise EventValidationError(
            f"unknown event type {etype!r} (one of {list(EVENT_TYPES)})"
        )
    unknown = set(obj) - _ALLOWED_KEYS[etype]
    if unknown:
        raise EventValidationError(
            f"unknown fields for {etype}: {sorted(unknown)}"
        )
    source = obj.get("source")
    if source is not None and (
        not isinstance(source, str) or not source or len(source) > 64
    ):
        raise EventValidationError(
            "source must be a non-empty string of <= 64 chars"
        )

    out: Dict[str, Any] = {"type": etype}
    if source is not None:
        out["source"] = source

    if etype == "vm_arrival":
        if "vm_id" in obj:
            out["vm_id"] = _require_int(obj["vm_id"], "vm_id")
        if "host" in obj and obj["host"] is not None:
            out["host"] = _validate_node_ref(obj["host"], "host")
        if "app" in obj and obj["app"] is not None:
            out["app"] = _validate_app(obj["app"])
        out["demand"] = _require_finite(obj.get("demand", 0.0), "demand")
    elif etype == "vm_departure":
        if "vm_id" not in obj:
            raise EventValidationError("vm_departure needs vm_id")
        out["vm_id"] = _require_int(obj["vm_id"], "vm_id")
    elif etype == "demand_sample":
        if "vm_id" not in obj:
            raise EventValidationError("demand_sample needs vm_id")
        if "demand" not in obj:
            raise EventValidationError("demand_sample needs demand")
        out["vm_id"] = _require_int(obj["vm_id"], "vm_id")
        out["demand"] = _require_finite(obj["demand"], "demand")
    elif etype == "supply_update":
        if "budget" not in obj:
            raise EventValidationError("supply_update needs budget")
        out["budget"] = _require_finite(obj["budget"], "budget")
    else:  # fault
        kind = obj.get("kind")
        if kind not in FAULT_KINDS:
            raise EventValidationError(
                f"unknown fault kind {kind!r} (one of {list(FAULT_KINDS)})"
            )
        if not allow_faults:
            raise EventValidationError(
                "fault events need the scalar (fault-tolerant) live "
                "controller; this service runs the vectorized one"
            )
        out["kind"] = kind
        if kind in ("server_crash", "server_restart"):
            if "server" not in obj:
                raise EventValidationError(f"{kind} needs server")
            out["server"] = _validate_node_ref(obj["server"], "server")
        elif kind in ("circuit_trip", "circuit_restore"):
            if "node" not in obj:
                raise EventValidationError(f"{kind} needs node")
            out["node"] = _validate_node_ref(obj["node"], "node")
        else:  # cooling_derate / cooling_restore
            if "zone" in obj and obj["zone"] is not None:
                out["zone"] = _validate_node_ref(obj["zone"], "zone")
            if kind == "cooling_derate":
                derate = _require_finite(obj.get("derate", 1.0), "derate")
                if not 0.0 < derate <= 1.0:
                    raise EventValidationError(
                        f"derate must be in (0, 1], got {derate}"
                    )
                out["derate"] = derate
                out["ramp_ticks"] = _require_int(
                    obj.get("ramp_ticks", 4), "ramp_ticks", minimum=1
                )
        if kind in ("server_crash", "circuit_trip", "cooling_derate"):
            if "ticks" in obj and obj["ticks"] is not None:
                out["ticks"] = _require_int(obj["ticks"], "ticks", minimum=1)
    return out
