"""Bounded ingest: validation, backpressure, per-source accounting.

The :class:`IngestGateway` is the only door into a live run.  Every
event -- whether it arrives over the JSON-lines TCP protocol or through
the in-process :meth:`~IngestGateway.submit` API -- is validated
(:mod:`repro.service.events`), stamped with a global sequence number,
and appended to a *bounded* pending queue.  The queue bound is the
backpressure contract: when the queue is full the gateway rejects with
a 429-style response carrying ``retry_after`` (seconds until the next
tick boundary, when the worker drains the whole queue), instead of
buffering unboundedly and falling behind the wall clock.

Wire protocol (one JSON object per line, one response line each)::

    -> {"type": "demand_sample", "vm_id": 3, "demand": 42.5}
    <- {"status": "accepted", "seq": 17}
    -> {"type": "demand_sample", "vm_id": 9999999, "demand": -1}
    <- {"status": "rejected", "code": 400, "error": "demand must be >= 0..."}
    -> [{"type": "supply_update", "budget": 900}, {...}]
    <- [{"status": "accepted", "seq": 18}, {...}]
    -> {"type": "stats"}
    <- {"status": "ok", "stats": {...}}

A JSON *array* is a batch: it is accepted or rejected per element and
answered with an array of the element responses (amortizing syscalls is
how load generators reach tens of thousands of events per second).
``{"type": "stats"}`` and ``{"type": "ping"}`` are control requests --
answered inline, never queued, never audited.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, NamedTuple, Optional

from repro.service.events import EventValidationError, validate_event

__all__ = ["AcceptedEvent", "IngestGateway"]

#: Control request types answered inline (never enqueued).
_CONTROL_TYPES = ("stats", "ping")


class AcceptedEvent(NamedTuple):
    """What the pending queue holds for each accepted event."""

    seq: int
    recv: float  # monotonic receive stamp (ingest-latency accounting)
    source: str
    event: Dict[str, Any]


class IngestGateway:
    """Validated, bounded, accounted ingest for one live run.

    Parameters
    ----------
    queue_bound:
        Maximum events pending between two tick boundaries.  The worker
        drains the whole queue each tick, so the bound is also the
        per-tick ingest ceiling.
    allow_faults:
        Whether ``fault`` events validate (scalar controller only).
    clock:
        Monotonic clock, injectable for tests.
    """

    def __init__(
        self,
        *,
        queue_bound: int = 8192,
        allow_faults: bool = True,
        clock=time.monotonic,
    ):
        if queue_bound < 1:
            raise ValueError(f"queue_bound must be >= 1, got {queue_bound}")
        self.queue_bound = queue_bound
        self.allow_faults = allow_faults
        self._clock = clock
        self._lock = threading.Lock()
        self._pending: Deque[AcceptedEvent] = deque()
        self._seq = 0
        self.accepted = 0
        self.rejected_full = 0
        self.rejected_invalid = 0
        #: source -> {"accepted", "rejected_full", "rejected_invalid",
        #: "first", "last"} (monotonic stamps bound the rate window).
        self.sources: Dict[str, Dict[str, float]] = {}
        #: The worker's next tick deadline (monotonic), for retry_after.
        self.next_tick_eta: Optional[float] = None
        #: Fallback retry hint when no worker has published a deadline.
        self.default_retry_after = 1.0

    # ------------------------------------------------------------- ingest
    def submit(self, obj: Any, source: str = "local") -> Dict[str, Any]:
        """Validate and enqueue one event; return the response object.

        Thread-safe; this is the in-process client API and the
        per-element worker for the TCP protocol.
        """
        now = self._clock()
        try:
            event = validate_event(obj, allow_faults=self.allow_faults)
        except EventValidationError as error:
            with self._lock:
                self.rejected_invalid += 1
            self._account(source, "rejected_invalid", now)
            return {"status": "rejected", "code": 400, "error": str(error)}
        source = event.get("source", source)
        with self._lock:
            if len(self._pending) >= self.queue_bound:
                self.rejected_full += 1
                seq = None
            else:
                self._seq += 1
                seq = self._seq
                self._pending.append(AcceptedEvent(seq, now, source, event))
                self.accepted += 1
        if seq is None:
            self._account(source, "rejected_full", now)
            return {
                "status": "rejected",
                "code": 429,
                "error": "ingest queue full",
                "retry_after": self.retry_after(now),
            }
        self._account(source, "accepted", now)
        return {"status": "accepted", "seq": seq}

    def drain(self) -> List[AcceptedEvent]:
        """Atomically take everything pending (the tick-boundary snapshot)."""
        with self._lock:
            snapshot = list(self._pending)
            self._pending.clear()
        return snapshot

    def pending_count(self) -> int:
        with self._lock:
            return len(self._pending)

    def retry_after(self, now: Optional[float] = None) -> float:
        """Seconds until the queue next drains (a 429's Retry-After)."""
        if self.next_tick_eta is None:
            return self.default_retry_after
        now = self._clock() if now is None else now
        return max(round(self.next_tick_eta - now, 6), 0.0)

    # --------------------------------------------------------- accounting
    def _account(self, source: str, outcome: str, now: float) -> None:
        with self._lock:
            row = self.sources.get(source)
            if row is None:
                row = self.sources[source] = {
                    "accepted": 0,
                    "rejected_full": 0,
                    "rejected_invalid": 0,
                    "first": now,
                    "last": now,
                }
            row[outcome] += 1
            row["last"] = now

    def stats(self) -> Dict[str, Any]:
        """A point-in-time snapshot (the ``stats`` control response)."""
        with self._lock:
            per_source = {}
            for name, row in self.sources.items():
                window = max(row["last"] - row["first"], 1e-9)
                per_source[name] = {
                    "accepted": int(row["accepted"]),
                    "rejected_full": int(row["rejected_full"]),
                    "rejected_invalid": int(row["rejected_invalid"]),
                    "accept_rate_per_sec": row["accepted"] / window,
                }
            return {
                "accepted": self.accepted,
                "rejected_full": self.rejected_full,
                "rejected_invalid": self.rejected_invalid,
                "pending": len(self._pending),
                "queue_bound": self.queue_bound,
                "sources": per_source,
            }

    # ------------------------------------------------------------ network
    def _respond(self, obj: Any, source: str) -> Any:
        """One parsed request object -> one response object."""
        if isinstance(obj, list):
            return [self._respond(item, source) for item in obj]
        if isinstance(obj, dict) and obj.get("type") in _CONTROL_TYPES:
            if obj["type"] == "ping":
                return {"status": "ok", "pong": True}
            return {"status": "ok", "stats": self.stats()}
        return self.submit(obj, source=source)

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One JSON-lines client connection (asyncio.start_server cb)."""
        peer = writer.get_extra_info("peername")
        source = f"{peer[0]}:{peer[1]}" if peer else "tcp"
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError as error:
                    response: Any = {
                        "status": "rejected",
                        "code": 400,
                        "error": f"bad JSON: {error}",
                    }
                    with self._lock:
                        self.rejected_invalid += 1
                    self._account(source, "rejected_invalid", self._clock())
                else:
                    response = self._respond(obj, source)
                writer.write(
                    json.dumps(response, separators=(",", ":")).encode()
                    + b"\n"
                )
                if writer.transport.get_write_buffer_size() > 256 * 1024:
                    await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def start_server(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> asyncio.AbstractServer:
        """Listen for JSON-lines clients; port 0 picks an ephemeral one."""
        return await asyncio.start_server(self.handle_connection, host, port)
