"""The live worker: wall-clock ticks over a bounded ingest queue.

The :class:`LiveRunner` is the queue/worker half of Willow-as-a-service
(the :class:`~repro.service.gateway.IngestGateway` is the API half).
Every ``tick_seconds`` of wall time it

1. snapshots the gateway's pending queue (one atomic swap -- events
   that arrive after the boundary wait for the next tick),
2. appends each snapshot event to the audit log with the tick it is
   about to be applied at,
3. applies the events to the embedded :class:`~repro.service
   .simulation.LiveSimulation` and advances it exactly one control
   tick, then flushes the audit batch.

Graceful shutdown (:meth:`request_stop`, wired to SIGINT/SIGTERM by
``python -m repro.cli serve``) drains whatever is still queued into one
final tick, writes the ``end`` record -- tick count, acceptance totals
and the run's decision digest -- and closes the log.  A second SIGINT
falls through to the default handler (hard kill); the audit log stays
parseable because records are complete lines flushed per tick.

Overrun policy: when a tick's work exceeds the budget the runner ticks
again immediately and re-anchors the deadline to *now* instead of
letting a backlog of overdue ticks pile up -- the controller's notion
of a tick stays "one Delta_d of real time", it just slips, and the
``overruns`` counter reports how often.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.service.audit import AuditLog
from repro.service.gateway import IngestGateway
from repro.service.simulation import LiveSimulation, decision_digest

__all__ = ["LiveReport", "LiveRunner"]


@dataclass
class LiveReport:
    """What one live run did (returned by :meth:`LiveRunner.run`)."""

    ticks: int = 0
    accepted: int = 0
    rejected_full: int = 0
    rejected_invalid: int = 0
    applied: Dict[str, int] = field(default_factory=dict)
    ignored: Dict[str, int] = field(default_factory=dict)
    overruns: int = 0
    tick_seconds: float = 1.0
    tick_wall_ms: List[float] = field(default_factory=list)
    #: gateway-receive -> applied latency per event, seconds
    ingest_latency_s: List[float] = field(default_factory=list)
    digest: str = ""
    stopped_early: bool = False

    @property
    def max_tick_ms(self) -> float:
        return max(self.tick_wall_ms, default=0.0)

    def p99_ingest_ms(self) -> float:
        if not self.ingest_latency_s:
            return 0.0
        ordered = sorted(self.ingest_latency_s)
        return ordered[int(0.99 * (len(ordered) - 1))] * 1000.0

    def format(self) -> str:
        lines = [
            f"live run: {self.ticks} tick(s) at {self.tick_seconds:g} s/tick, "
            f"{self.overruns} overrun(s), "
            f"max tick work {self.max_tick_ms:.1f} ms",
            f"ingest: {self.accepted} accepted, "
            f"{self.rejected_full} rejected (429 queue full), "
            f"{self.rejected_invalid} rejected (400 invalid), "
            f"p99 queue latency {self.p99_ingest_ms():.1f} ms",
        ]
        if self.applied:
            parts = ", ".join(
                f"{k}={v}" for k, v in sorted(self.applied.items())
            )
            lines.append(f"applied: {parts}")
        if self.ignored:
            parts = ", ".join(
                f"{k}={v}" for k, v in sorted(self.ignored.items())
            )
            lines.append(f"ignored (no-op): {parts}")
        lines.append(f"decision digest: {self.digest}")
        return "\n".join(lines)


class LiveRunner:
    """Drains the ingest queue into controller ticks on a wall clock.

    Parameters
    ----------
    sim, gateway, audit:
        The embedded simulation, its ingest door, and the audit log
        (the runner writes the meta record on start and owns closing).
    tick_seconds:
        Wall-clock tick period.  Defaults to the config's ``delta_d``
        read as seconds (the paper's Delta_d = 1 s); tests and smoke
        runs shrink it to run faster than real time.
    max_ticks:
        Stop after this many ticks (None = run until stopped).
    clock:
        Monotonic clock, injectable for tests.
    checkpoints:
        A :class:`~repro.checkpoint.CheckpointStore` to snapshot the
        simulation into at tick boundaries (after the audit flush, so
        a checkpoint at tick C holds exactly the events applied at
        ticks < C and crash recovery replays the tail from C).
    checkpoint_every:
        Checkpoint cadence in ticks; defaults to the config's ``eta2``
        (the consolidation cadence).
    write_meta:
        Write the audit meta record on start.  Crash recovery resumes
        an existing log in append mode and must not write a second
        meta (``read_audit`` keeps the first), so ``serve --recover``
        passes False.
    """

    def __init__(
        self,
        sim: LiveSimulation,
        gateway: IngestGateway,
        audit: AuditLog,
        *,
        tick_seconds: Optional[float] = None,
        max_ticks: Optional[int] = None,
        clock=time.monotonic,
        checkpoints=None,
        checkpoint_every: Optional[int] = None,
        write_meta: bool = True,
    ):
        if tick_seconds is not None and tick_seconds <= 0:
            raise ValueError("tick_seconds must be positive")
        if max_ticks is not None and max_ticks < 1:
            raise ValueError("max_ticks must be >= 1")
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.sim = sim
        self.gateway = gateway
        self.audit = audit
        self.tick_seconds = (
            float(tick_seconds)
            if tick_seconds is not None
            else float(sim.config.delta_d)
        )
        self.max_ticks = max_ticks
        self._clock = clock
        self.checkpoints = checkpoints
        self.checkpoint_every = (
            int(checkpoint_every)
            if checkpoint_every is not None
            else int(sim.config.eta2)
        )
        self.write_meta = write_meta
        self._stop = asyncio.Event()
        # A recovered simulation starts mid-run; max_ticks still means
        # total ticks, so the resumed count must be visible from tick 0.
        self.report = LiveReport(
            ticks=sim.tick, tick_seconds=self.tick_seconds
        )

    def request_stop(self) -> None:
        """Ask for a graceful shutdown at the next boundary (signal-safe)."""
        self._stop.set()

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    # ----------------------------------------------------------- tick work
    def _tick_once(self) -> None:
        """One boundary: snapshot -> audit -> apply -> step -> flush."""
        started = self._clock()
        sim = self.sim
        audit = self.audit
        report = self.report
        tick = sim.tick
        for entry in self.gateway.drain():
            result = sim.apply(entry.event)
            audit.write_event(
                tick,
                entry.seq,
                entry.source,
                entry.event,
                applied=result.applied,
                reason=result.reason,
            )
            report.ingest_latency_s.append(started - entry.recv)
        sim.step()
        audit.flush()
        if self.checkpoints is not None and sim.tick % self.checkpoint_every == 0:
            # After the flush: the events this checkpoint depends on are
            # already durable lines, so crash recovery can always replay
            # the tail from the checkpoint's tick.
            self.checkpoints.save(
                kind="service",
                tick=sim.tick,
                state=sim.snapshot_state(),
                meta={"spec": sim.spec.to_meta()},
            )
        report.tick_wall_ms.append((self._clock() - started) * 1000.0)
        report.ticks = sim.tick

    # ------------------------------------------------------------ main loop
    async def run(self) -> LiveReport:
        """Tick until ``max_ticks`` or :meth:`request_stop`; then drain."""
        gateway = self.gateway
        report = self.report
        if self.write_meta:
            self.audit.write_meta(
                self.sim.spec.to_meta(),
                tick_seconds=self.tick_seconds,
                queue_bound=gateway.queue_bound,
            )
        deadline = self._clock() + self.tick_seconds
        gateway.next_tick_eta = deadline
        while not self._stop.is_set() and (
            self.max_ticks is None or report.ticks < self.max_ticks
        ):
            remaining = deadline - self._clock()
            if remaining > 0:
                try:
                    await asyncio.wait_for(self._stop.wait(), timeout=remaining)
                    break  # stop requested while waiting for the boundary
                except asyncio.TimeoutError:
                    pass
            self._tick_once()
            deadline += self.tick_seconds
            now = self._clock()
            if deadline <= now:  # tick work overran the budget
                report.overruns += 1
                deadline = now + self.tick_seconds
            gateway.next_tick_eta = deadline
            await asyncio.sleep(0)  # let ingest handlers run every tick
        report.stopped_early = self._stop.is_set()
        if gateway.pending_count():
            # Graceful drain: in-flight events get one final tick.
            self._tick_once()
        collector = self.sim.finish()
        report.accepted = gateway.accepted
        report.rejected_full = gateway.rejected_full
        report.rejected_invalid = gateway.rejected_invalid
        report.applied = dict(self.sim.applied)
        report.ignored = dict(self.sim.ignored)
        report.digest = decision_digest(collector)
        self.audit.write_end(
            ticks=report.ticks,
            accepted=report.accepted,
            digest=report.digest,
            overruns=report.overruns,
        )
        self.audit.close()
        return report
