"""The replayable audit log: every accepted event, where it landed.

One JSONL file (rotated by the shared :class:`repro.trace.writer
.JsonlTraceWriter`, discovered back via :func:`repro.trace.writer
.trace_segments`) holding three record kinds:

``meta``  (first line)
    The :class:`~repro.service.simulation.ServiceSpec` plus run
    parameters -- everything replay needs to rebuild t=0.
``event``
    One accepted ingest event: the tick boundary it was applied at,
    its gateway sequence number, source, whether it actually applied
    (state-dependent no-ops record ``applied: false`` with the reason),
    and the normalized event body.
``end``   (last line, graceful shutdowns only)
    Tick count, acceptance totals and the live run's decision digest --
    what ``replay`` verifies itself against.

Writes are batched per tick and flushed at the tick boundary (fsync
optional), so every record on disk is a complete line; a hard kill can
at worst truncate the final line, which the reader tolerates.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional

from repro.trace.writer import JsonlTraceWriter, trace_segments

__all__ = ["AuditLog", "read_audit", "AuditRecordError"]

#: Audit format version (bump on incompatible record changes).
AUDIT_VERSION = 1


class AuditRecordError(ValueError):
    """An audit log is structurally unusable for replay."""


class AuditLog:
    """Append-side of the audit log (the live worker's writer)."""

    def __init__(
        self,
        path,
        *,
        max_bytes: Optional[int] = 32 * 1024 * 1024,
        fsync: bool = False,
        append: bool = False,
    ):
        self._writer = JsonlTraceWriter(
            path, max_bytes=max_bytes, fsync=fsync, append=append
        )
        self.path = Path(path)

    def write_meta(self, spec_meta: Mapping[str, Any], **extra: Any) -> None:
        record = {"kind": "meta", "version": AUDIT_VERSION, "spec": dict(spec_meta)}
        record.update(extra)
        self._writer.write_frame(record)
        self._writer.flush()

    def write_event(
        self,
        tick: int,
        seq: int,
        source: str,
        event: Mapping[str, Any],
        *,
        applied: bool,
        reason: str = "",
    ) -> None:
        record: Dict[str, Any] = {
            "kind": "event",
            "tick": tick,
            "seq": seq,
            "source": source,
            "applied": applied,
            "event": dict(event),
        }
        if reason:
            record["reason"] = reason
        self._writer.write_frame(record)

    def write_end(
        self, *, ticks: int, accepted: int, digest: str, **extra: Any
    ) -> None:
        record = {
            "kind": "end",
            "ticks": ticks,
            "accepted": accepted,
            "digest": digest,
        }
        record.update(extra)
        self._writer.write_frame(record)
        self._writer.flush()

    def flush(self) -> None:
        """Tick-boundary flush: complete lines reach the OS (or disk)."""
        self._writer.flush()

    def close(self) -> None:
        self._writer.close()


def _iter_lines(path: Path) -> Iterator[str]:
    with path.open() as handle:
        yield from handle


def read_audit(path) -> Dict[str, Any]:
    """Parse an audit log (all rotated segments, oldest first).

    Returns ``{"meta": ..., "events": [...], "end": ... or None,
    "truncated_lines": n}``.  Events are sorted by ``(tick, seq)``; a
    trailing partial line (hard kill mid-write) is skipped and counted,
    never fatal -- but a missing/invalid meta record is.
    """
    segments = trace_segments(path)
    meta: Optional[Dict[str, Any]] = None
    end: Optional[Dict[str, Any]] = None
    events: List[Dict[str, Any]] = []
    truncated = 0
    for segment in segments:
        for line in _iter_lines(segment):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                truncated += 1
                continue
            kind = record.get("kind")
            if kind == "meta":
                if meta is None:
                    meta = record
            elif kind == "event":
                events.append(record)
            elif kind == "end":
                end = record
    if meta is None:
        raise AuditRecordError(
            f"{path}: no meta record found; not an audit log?"
        )
    if meta.get("version") != AUDIT_VERSION:
        raise AuditRecordError(
            f"{path}: audit version {meta.get('version')!r} unsupported "
            f"(expected {AUDIT_VERSION})"
        )
    events.sort(key=lambda r: (r.get("tick", 0), r.get("seq", 0)))
    return {
        "meta": meta,
        "events": events,
        "end": end,
        "truncated_lines": truncated,
    }
