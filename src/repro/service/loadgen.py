"""Load generator: a batching JSON-lines client for the ingest gateway.

Used by ``python -m repro.cli serve --load`` (self-load for smoke runs),
``bench service`` (the sustained-throughput benchmark) and the service
tests.  It speaks the batch form of the wire protocol -- each request
line is a JSON *array* of events, answered by one array of per-element
responses -- because one syscall per event caps out far below the
10k events/sec the service is sized for.

The generated stream is deterministic for a given ``seed``: demand
samples cycling over the fleet's VM ids with a seeded random walk, plus
an occasional ``supply_update`` wiggle.  Determinism here is about
*reproducible benchmarks*; replay determinism never depends on it (the
audit log records whatever was accepted).
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["LoadResult", "LoadGenerator", "generate_load"]


@dataclass
class LoadResult:
    """What one load run offered and what the gateway did with it."""

    offered: int = 0
    accepted: int = 0
    rejected_full: int = 0
    rejected_invalid: int = 0
    wall_s: float = 0.0
    #: round-trip seconds per batch (send -> response parsed)
    batch_rtt_s: List[float] = field(default_factory=list)

    @property
    def accepted_per_sec(self) -> float:
        return self.accepted / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def offered_per_sec(self) -> float:
        return self.offered / self.wall_s if self.wall_s > 0 else 0.0

    def p99_batch_rtt_ms(self) -> float:
        if not self.batch_rtt_s:
            return 0.0
        ordered = sorted(self.batch_rtt_s)
        return ordered[int(0.99 * (len(ordered) - 1))] * 1000.0

    def merge(self, other: "LoadResult") -> None:
        self.offered += other.offered
        self.accepted += other.accepted
        self.rejected_full += other.rejected_full
        self.rejected_invalid += other.rejected_invalid
        self.wall_s = max(self.wall_s, other.wall_s)
        self.batch_rtt_s.extend(other.batch_rtt_s)


class LoadGenerator:
    """Deterministic event stream + batched TCP submission.

    Parameters
    ----------
    vm_ids:
        The VM ids to cycle demand samples over (normally the live
        fleet's initial placement, ``range(n_vms)``).
    mean_demand:
        Center of the random demand walk, watts.
    supply_every:
        Emit one ``supply_update`` per this many events (0 disables).
    batch_size:
        Events per request line.  Bigger batches amortize syscalls and
        JSON framing; 256 comfortably clears 10k events/sec on one core.
    seed, source:
        Stream seed and the ``source`` tag events carry for per-source
        accounting.
    """

    def __init__(
        self,
        vm_ids: Sequence[int],
        *,
        mean_demand: float = 50.0,
        supply_every: int = 500,
        batch_size: int = 256,
        seed: int = 0,
        source: str = "loadgen",
    ):
        if not vm_ids:
            raise ValueError("need at least one vm_id to generate load for")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.vm_ids = list(vm_ids)
        self.mean_demand = float(mean_demand)
        self.supply_every = supply_every
        self.batch_size = batch_size
        self.source = source
        self._rng = random.Random(seed)
        self._count = 0

    def next_event(self) -> Dict:
        """The next event in the deterministic stream."""
        self._count += 1
        if self.supply_every and self._count % self.supply_every == 0:
            factor = 0.8 + 0.4 * self._rng.random()
            budget = self.mean_demand * len(self.vm_ids) * factor
            return {
                "type": "supply_update",
                "budget": round(budget, 3),
                "source": self.source,
            }
        vm_id = self.vm_ids[self._count % len(self.vm_ids)]
        demand = self.mean_demand * (0.5 + self._rng.random())
        return {
            "type": "demand_sample",
            "vm_id": vm_id,
            "demand": round(demand, 3),
            "source": self.source,
        }

    def next_batch(self, size: Optional[int] = None) -> List[Dict]:
        return [self.next_event() for _ in range(size or self.batch_size)]

    async def run(
        self,
        host: str,
        port: int,
        *,
        total_events: Optional[int] = None,
        duration_s: Optional[float] = None,
        clock=time.monotonic,
    ) -> LoadResult:
        """Offer load over TCP until a count or time budget is spent.

        Sends one batch, awaits its response array, repeats -- so the
        connection is self-pacing: when the event loop is busy ticking
        the controller, batches naturally queue behind it.
        """
        if total_events is None and duration_s is None:
            raise ValueError("need total_events and/or duration_s")
        reader, writer = await asyncio.open_connection(host, port)
        result = LoadResult()
        started = clock()
        try:
            while True:
                if total_events is not None and result.offered >= total_events:
                    break
                if duration_s is not None and clock() - started >= duration_s:
                    break
                size = self.batch_size
                if total_events is not None:
                    size = min(size, total_events - result.offered)
                batch = self.next_batch(size)
                sent = clock()
                writer.write(
                    json.dumps(batch, separators=(",", ":")).encode() + b"\n"
                )
                await writer.drain()
                line = await reader.readline()
                if not line:
                    break  # server went away mid-run
                result.batch_rtt_s.append(clock() - sent)
                responses = json.loads(line)
                result.offered += len(batch)
                for response in responses:
                    status = response.get("status")
                    if status == "accepted":
                        result.accepted += 1
                    elif response.get("code") == 429:
                        result.rejected_full += 1
                    else:
                        result.rejected_invalid += 1
        finally:
            result.wall_s = clock() - started
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        return result


async def generate_load(
    host: str,
    port: int,
    vm_ids: Sequence[int],
    *,
    total_events: Optional[int] = None,
    duration_s: Optional[float] = None,
    connections: int = 1,
    batch_size: int = 256,
    seed: int = 0,
    source: str = "loadgen",
) -> LoadResult:
    """Run ``connections`` generators concurrently; return merged totals."""
    if connections < 1:
        raise ValueError("connections must be >= 1")
    per_conn = None
    if total_events is not None:
        per_conn = max(total_events // connections, 1)
    generators = [
        LoadGenerator(
            vm_ids,
            batch_size=batch_size,
            seed=seed + i,
            source=f"{source}-{i}" if connections > 1 else source,
        )
        for i in range(connections)
    ]
    results = await asyncio.gather(
        *(
            g.run(host, port, total_events=per_conn, duration_s=duration_s)
            for g in generators
        )
    )
    merged = results[0]
    for extra in results[1:]:
        merged.merge(extra)
    return merged
