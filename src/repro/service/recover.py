"""Crash recovery: latest valid checkpoint + audit-tail replay.

A live run writes two artifacts that together make it crash-safe: the
audit log (every accepted event, flushed as complete lines per tick)
and a directory of periodic checkpoints (full simulation snapshots,
hash-verified, written atomically).  After a hard kill,
:func:`recover_simulation` rebuilds the exact pre-crash state:

1. parse the audit log (tolerating a torn final line) and rebuild a
   fresh :class:`~repro.service.simulation.LiveSimulation` from its
   meta record;
2. scan the checkpoint directory newest-first and restore the latest
   checkpoint whose payload hash verifies -- torn or corrupt files are
   skipped, never trusted;
3. replay the audit tail: every logged event with tick >= the
   checkpoint's tick, applied at its original tick boundary.

Because a checkpoint at tick C is written *after* the tick-C-1 audit
flush, it contains exactly the events with record tick < C; the tail
replay supplies the rest, and the recovered simulation's state (and
therefore its ``decision_digest`` once the run completes) is
bit-identical to a run that never crashed.  With no usable checkpoint
the tail is the whole log -- recovery degrades to a full replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.checkpoint import CheckpointStore
from repro.service.audit import read_audit
from repro.service.simulation import LiveSimulation, ServiceSpec

__all__ = ["RecoveryResult", "recover_simulation"]


@dataclass
class RecoveryResult:
    """The rebuilt simulation plus how it was put back together."""

    sim: LiveSimulation
    spec: ServiceSpec
    restored_tick: int  #: checkpoint tick restored from (0 = none, full replay)
    checkpoint_path: Optional[str]  #: file restored from, or None
    replayed_ticks: int  #: ticks re-stepped after the checkpoint
    replayed_applied: int
    replayed_ignored: int
    apply_mismatches: int  #: events that resolved differently than logged
    skipped_checkpoints: List[Tuple[str, str]] = field(default_factory=list)
    truncated_lines: int = 0

    def format(self) -> str:
        lines = []
        if self.checkpoint_path is not None:
            lines.append(
                f"restored checkpoint at tick {self.restored_tick} "
                f"({self.checkpoint_path})"
            )
        else:
            lines.append(
                "no usable checkpoint; replaying the full audit log"
            )
        for path, reason in self.skipped_checkpoints:
            lines.append(f"skipped corrupt checkpoint {path}: {reason}")
        lines.append(
            f"replayed {self.replayed_ticks} tick(s) from the audit tail: "
            f"{self.replayed_applied} event(s) applied, "
            f"{self.replayed_ignored} no-op(s)"
        )
        if self.truncated_lines:
            lines.append(
                f"warning: skipped {self.truncated_lines} partial/garbled "
                f"audit line(s) (hard kill mid-write?)"
            )
        if self.apply_mismatches:
            lines.append(
                f"warning: {self.apply_mismatches} event(s) resolved "
                f"differently than logged (state divergence)"
            )
        lines.append(f"recovered state: tick {self.sim.tick}")
        return "\n".join(lines)


def recover_simulation(
    audit_path, checkpoint_dir=None
) -> RecoveryResult:
    """Rebuild the pre-crash state of a live run.

    Parameters
    ----------
    audit_path:
        The run's audit log (rotated segments are discovered).
    checkpoint_dir:
        The run's checkpoint directory; None (or an empty/corrupt
        directory) falls back to replaying the whole audit log.

    Raises whatever :func:`~repro.service.audit.read_audit` raises for
    a missing or structurally unusable audit log; checkpoint damage is
    never fatal, only slower.
    """
    document = read_audit(audit_path)
    spec = ServiceSpec.from_meta(document["meta"]["spec"])
    sim = LiveSimulation(spec)

    restored_tick = 0
    checkpoint_path: Optional[str] = None
    skipped: List[Tuple[str, str]] = []
    if checkpoint_dir is not None:
        store = CheckpointStore(checkpoint_dir)
        doc = store.latest_valid()
        if doc is not None:
            skipped = [
                (str(path), reason) for path, reason in doc.get("skipped", [])
            ]
            sim.restore_state(doc["state"])
            restored_tick = doc["tick"]
            checkpoint_path = str(doc["path"])

    by_tick: Dict[int, List[dict]] = {}
    last_event_tick = restored_tick - 1
    for record in document["events"]:
        if record["tick"] < restored_tick:
            continue  # already inside the checkpoint
        by_tick.setdefault(record["tick"], []).append(record)
        last_event_tick = max(last_event_tick, record["tick"])

    applied = ignored = mismatches = 0
    for tick in range(restored_tick, last_event_tick + 1):
        for record in by_tick.get(tick, ()):
            result = sim.apply(record["event"])
            if result.applied:
                applied += 1
            else:
                ignored += 1
            if result.applied != record.get("applied", result.applied):
                mismatches += 1
        sim.step()

    return RecoveryResult(
        sim=sim,
        spec=spec,
        restored_tick=restored_tick,
        checkpoint_path=checkpoint_path,
        replayed_ticks=sim.tick - restored_tick,
        replayed_applied=applied,
        replayed_ignored=ignored,
        apply_mismatches=mismatches,
        skipped_checkpoints=skipped,
        truncated_lines=document["truncated_lines"],
    )
