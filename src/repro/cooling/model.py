"""Chiller/economizer cooling model and facility-level accounting.

Every watt the IT load dissipates must be removed by the cooling
plant at a cost of ``1 / COP`` watts.  The coefficient of performance
is high when outside air can do the work (economizer mode) and
degrades linearly with the outside temperature once mechanical
chilling takes over -- the standard first-order model for data-center
cooling studies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.collector import MetricsCollector

__all__ = [
    "CoolingModel",
    "effective_it_budget",
    "FacilityReport",
    "facility_report",
]


@dataclass(frozen=True)
class CoolingModel:
    """Outside-temperature-dependent coefficient of performance.

    Attributes
    ----------
    economizer_cop:
        COP while outside air is cold enough for free cooling.
    economizer_limit:
        Outside temperature (deg C) up to which the economizer covers
        the load.
    chiller_cop_at_limit:
        COP of the mechanical chiller right at the economizer limit.
    cop_slope:
        COP lost per degree of outside temperature beyond the limit.
    min_cop:
        Floor below which the COP never falls.
    """

    economizer_cop: float = 8.0
    economizer_limit: float = 18.0
    chiller_cop_at_limit: float = 4.0
    cop_slope: float = 0.12
    min_cop: float = 1.5

    def __post_init__(self) -> None:
        if self.economizer_cop <= 0 or self.chiller_cop_at_limit <= 0:
            raise ValueError("COP values must be positive")
        if self.min_cop <= 0:
            raise ValueError("min_cop must be positive")
        if self.cop_slope < 0:
            raise ValueError("cop_slope must be non-negative")
        if self.chiller_cop_at_limit > self.economizer_cop:
            raise ValueError(
                "chiller COP cannot exceed the economizer COP at the limit"
            )

    def cop(self, outside_temp):
        """COP at the given outside temperature (scalar or array)."""
        t = np.asarray(outside_temp, dtype=float)
        mechanical = self.chiller_cop_at_limit - self.cop_slope * (
            t - self.economizer_limit
        )
        result = np.where(t <= self.economizer_limit, self.economizer_cop, mechanical)
        result = np.maximum(result, self.min_cop)
        return float(result) if result.ndim == 0 else result

    def cooling_power(self, it_power, outside_temp):
        """Watts the cooling plant draws to remove ``it_power``."""
        it = np.asarray(it_power, dtype=float)
        if np.any(it < 0):
            raise ValueError("it_power must be non-negative")
        result = it / self.cop(outside_temp)
        return float(result) if result.ndim == 0 else result

    def pue(self, outside_temp):
        """Power usage effectiveness (IT + cooling) / IT."""
        cop = self.cop(outside_temp)
        result = 1.0 + 1.0 / np.asarray(cop, dtype=float)
        return float(result) if result.ndim == 0 else result

    def setpoint_cop(
        self,
        setpoint: float,
        outside_temp: float,
        *,
        reference: float = 25.0,
    ):
        """COP with the supply-air setpoint as a controllable input.

        Raising the setpoint by one degree relieves the chiller by
        (approximately) one degree of outside temperature: warmer supply
        air means a smaller lift between the chilled-water loop and the
        room, the standard first-order setpoint model (and the reason
        ASHRAE keeps widening the recommended inlet envelope).
        ``reference`` is the setpoint the base :meth:`cop` curve was
        fitted at.
        """
        t = np.asarray(setpoint, dtype=float)
        return self.cop(outside_temp - (t - reference))

    def setpoint_cooling_power(
        self,
        it_power,
        setpoint: float,
        outside_temp: float,
        *,
        reference: float = 25.0,
    ):
        """Cooling-plant watts to remove ``it_power`` at a setpoint."""
        it = np.asarray(it_power, dtype=float)
        if np.any(it < 0):
            raise ValueError("it_power must be non-negative")
        result = it / self.setpoint_cop(
            setpoint, outside_temp, reference=reference
        )
        return float(result) if result.ndim == 0 else result

    def degraded_supply_temperature(
        self,
        base_ambient: float,
        outside_temp: float,
        derate: float,
        *,
        return_delta: float = 15.0,
    ) -> float:
        """Rack-inlet temperature under a partial CRAC failure.

        A healthy cooling plant supplies air at ``base_ambient``
        regardless of the weather.  When a CRAC unit derates by
        ``derate`` (0 = healthy, 1 = total failure), the uncooled
        fraction of the airflow is hot return air pulled toward the
        outside temperature, so the inlet mix rises linearly toward
        ``outside_temp + return_delta``::

            T_inlet = base + derate * (max(outside - base, 0) + return_delta)

        The result feeds :meth:`ServerRuntime.set_ambient` to shrink
        the affected zone's Eq. 3 thermal caps.
        """
        if not 0.0 <= derate <= 1.0:
            raise ValueError(f"derate must be in [0, 1], got {derate}")
        if return_delta < 0:
            raise ValueError("return_delta must be non-negative")
        excess = max(outside_temp - base_ambient, 0.0)
        return base_ambient + derate * (excess + return_delta)


def effective_it_budget(
    facility_supply: float, model: CoolingModel, outside_temp: float
) -> float:
    """Holistic budget division: IT watts a facility supply can carry.

    Solves ``P_it + P_it / COP <= supply``:

        P_it = supply * COP / (COP + 1)

    Feeding this to the Willow root instead of the raw supply makes the
    controller cooling-aware without any change to its mechanics.
    """
    if facility_supply < 0:
        raise ValueError("facility_supply must be non-negative")
    cop = model.cop(outside_temp)
    return facility_supply * cop / (cop + 1.0)


@dataclass(frozen=True)
class FacilityReport:
    """Facility-level energy accounting over one run."""

    it_energy: float  # W*ticks
    cooling_energy: float  # W*ticks
    mean_pue: float

    @property
    def total_energy(self) -> float:
        return self.it_energy + self.cooling_energy


def facility_report(
    collector: MetricsCollector,
    model: CoolingModel,
    outside_temp: float,
) -> FacilityReport:
    """PUE and energy split for a finished run at a fixed outside temp."""
    times = collector.times()
    if times.size == 0:
        raise ValueError("no server samples recorded")
    it_per_tick: dict = {}
    for sample in collector.server_samples:
        it_per_tick[sample.time] = it_per_tick.get(sample.time, 0.0) + sample.power
    it_energy = float(sum(it_per_tick.values()))
    cooling_energy = float(
        sum(model.cooling_power(p, outside_temp) for p in it_per_tick.values())
    )
    mean_pue = (
        (it_energy + cooling_energy) / it_energy if it_energy > 0 else float("nan")
    )
    return FacilityReport(
        it_energy=it_energy,
        cooling_energy=cooling_energy,
        mean_pue=mean_pue,
    )
