"""Cooling-infrastructure energy (paper Sec. VI future work).

"In order to do a holistic power control, Willow must consider the
energy consumed by cooling infrastructure as well in the adaptation."

* :class:`~repro.cooling.model.CoolingModel` -- a CRAC/chiller model
  with an outside-air economizer: cooling power = IT power / COP, with
  the coefficient of performance degrading as the outside temperature
  rises.
* :func:`~repro.cooling.model.effective_it_budget` -- holistic budget
  division: given a total facility supply, how much may the IT load
  draw so that IT + cooling stays within it.
* :func:`~repro.cooling.model.facility_report` -- post-hoc PUE and
  energy accounting over a finished run.
"""

from repro.cooling.model import (
    CoolingModel,
    FacilityReport,
    effective_it_budget,
    facility_report,
)

__all__ = [
    "CoolingModel",
    "FacilityReport",
    "effective_it_budget",
    "facility_report",
]
