"""Trace sinks: where finished tick frames go.

A :class:`Tracer` builds one frame (a plain dict) per control tick and
hands it to a writer.  Three sinks:

* :class:`NullTraceWriter` -- discards everything (the default sink;
  with it the tracer still builds frames, so benchmarks can separate
  frame-building cost from serialization cost);
* :class:`MemoryTraceWriter` -- keeps frames in a list (tests, quick
  interactive inspection);
* :class:`JsonlTraceWriter` -- one JSON object per line, with size-based
  rotation so multi-hour runs cannot fill a disk unbounded.

Rotation naming: the active segment is always ``path``; when it exceeds
``max_bytes`` it is renamed to ``path.1``, ``path.2``, ... in write
order and a fresh ``path`` is opened.  :func:`trace_segments` returns
every segment of a trace in chronological order, which is what
:class:`~repro.trace.query.TraceReader` reads.
"""

from __future__ import annotations

import json
import os
import re
import threading
from pathlib import Path
from typing import Any, Dict, List, Protocol

__all__ = [
    "TraceWriter",
    "NullTraceWriter",
    "MemoryTraceWriter",
    "JsonlTraceWriter",
    "trace_segments",
]


class TraceWriter(Protocol):
    """Anything that can absorb finished trace frames."""

    def write_frame(self, frame: Dict[str, Any]) -> None:  # pragma: no cover
        ...

    def close(self) -> None:  # pragma: no cover
        ...


class NullTraceWriter:
    """Discards frames; the no-op sink."""

    def write_frame(self, frame: Dict[str, Any]) -> None:
        pass

    def close(self) -> None:
        pass


class MemoryTraceWriter:
    """Accumulates frames in memory (tests and interactive use)."""

    def __init__(self) -> None:
        self.frames: List[Dict[str, Any]] = []
        self.closed = False

    def write_frame(self, frame: Dict[str, Any]) -> None:
        self.frames.append(frame)

    def close(self) -> None:
        self.closed = True


class JsonlTraceWriter:
    """Rotating JSON-lines sink.

    Safe under concurrent append: a lock serializes ``write_frame``,
    rotation, ``flush`` and ``close``, so frames written from a live
    worker and a signal/shutdown path can never interleave bytes within
    a line or race a segment rename (see docs/observability.md,
    "Durability and concurrency").

    Parameters
    ----------
    path:
        The active segment path.  Parent directories are created.
    max_bytes:
        Rotate once the active segment exceeds this size (checked after
        each frame, so a segment may overshoot by one frame).  ``None``
        disables rotation.
    fsync:
        When True, :meth:`flush` also ``os.fsync``\\ s the segment so
        every flushed frame survives a machine crash, and rotation
        fsyncs the finished segment before renaming it.  Costs a disk
        round-trip per flush; live audit logs enable it via
        ``serve --fsync``.
    append:
        When True, continue an existing (possibly rotated) trace
        instead of truncating it: a torn final line in the active
        segment (hard kill mid-write) is cut back to the last complete
        line, the byte counter resumes from the surviving size, and
        rotation numbering continues after the highest existing
        suffix.  Crash recovery (``serve --recover``) appends to the
        original audit log this way.
    """

    def __init__(
        self,
        path,
        *,
        max_bytes: int | None = 32 * 1024 * 1024,
        fsync: bool = False,
        append: bool = False,
    ):
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive or None")
        self.path = Path(path)
        self.max_bytes = max_bytes
        self.fsync = fsync
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        if append:
            self._written = self._truncate_torn_tail()
            self._handle = self.path.open("a")
            self._next_segment = 1 + max(
                (suffix for suffix, _ in self._rotated_segments()), default=0
            )
        else:
            self._handle = self.path.open("w")
            self._written = 0
            self._next_segment = 1

    def _rotated_segments(self) -> List[tuple]:
        """``(suffix, path)`` pairs for every rotated segment."""
        pattern = re.compile(re.escape(self.path.name) + r"\.(\d+)$")
        found = []
        if self.path.parent.is_dir():
            for candidate in self.path.parent.iterdir():
                match = pattern.fullmatch(candidate.name)
                if match:
                    found.append((int(match.group(1)), candidate))
        return found

    def _truncate_torn_tail(self) -> int:
        """Drop a partial final line left by a hard kill; return the size."""
        if not self.path.is_file():
            return 0
        with self.path.open("r+b") as handle:
            data = handle.read()
            if data and not data.endswith(b"\n"):
                keep = data.rfind(b"\n") + 1  # 0 when no complete line
                handle.truncate(keep)
                return keep
        return len(data)

    def write_frame(self, frame: Dict[str, Any]) -> None:
        line = json.dumps(frame, separators=(",", ":"))
        with self._lock:
            self._handle.write(line)
            self._handle.write("\n")
            self._written += len(line) + 1
            if self.max_bytes is not None and self._written > self.max_bytes:
                self._rotate()

    def _sync_locked(self) -> None:
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    def flush(self) -> None:
        """Push buffered frames to the OS (and disk, with ``fsync``)."""
        with self._lock:
            if not self._handle.closed:
                self._sync_locked()

    def _rotate(self) -> None:
        # Caller holds the lock.  The finished segment is synced before
        # the rename so a crash can never leave a renamed-but-empty
        # segment ahead of its data.
        self._sync_locked()
        self._handle.close()
        self.path.rename(
            self.path.with_name(f"{self.path.name}.{self._next_segment}")
        )
        self._next_segment += 1
        self._handle = self.path.open("w")
        self._written = 0

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._sync_locked()
                self._handle.close()


def trace_segments(path) -> List[Path]:
    """Every segment of a (possibly rotated) trace, oldest first.

    ``path.1`` is the oldest rotated segment, higher suffixes are newer,
    and the unsuffixed ``path`` (when present) holds the newest frames.
    """
    path = Path(path)
    pattern = re.compile(re.escape(path.name) + r"\.(\d+)$")
    rotated = []
    if path.parent.is_dir():
        for candidate in path.parent.iterdir():
            match = pattern.fullmatch(candidate.name)
            if match:
                rotated.append((int(match.group(1)), candidate))
    segments = [p for _, p in sorted(rotated)]
    if path.is_file():
        segments.append(path)
    if not segments:
        raise FileNotFoundError(f"no trace segments found for {path}")
    return segments
