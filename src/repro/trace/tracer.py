"""The tick tracer: structured causal telemetry for Willow runs.

Every controller owns a :class:`Tracer` (the shared no-op
:data:`NULL_TRACER` unless one is injected), and emits one *frame* per
control tick.  A frame is a span-like record of everything that shaped
this tick's decisions:

* ``demand`` -- per-server Eq. 4 smoothing (raw observation, smoothed
  value) plus the standing budget;
* ``root`` / ``alloc`` -- the supply-side waterfill: for every node the
  granted budget, the allocation weight, the hard cap, the parent's
  divisible budget, the colocated-switch reserve, and the **binding
  constraint** (:func:`classify_constraint`);
* ``migrations`` -- executed moves with their Eq. 5-9 inputs (source
  deficit, destination surplus after the power margin);
* ``unmatched`` / ``drops`` -- demand the matcher could not place and
  watts actually shed;
* ``events`` -- plant and control-plane fault edges;
* ``imbalance`` -- the level-0 Eq. 9 residual.

Cost contract: with tracing disabled every call site is guarded by a
single ``tracer.enabled`` attribute check, so the controllers' decision
paths are bit-exact and the per-tick overhead is a handful of attribute
reads (bounded by ``benchmarks/test_bench_trace.py``).  With tracing
enabled, frames are built from plain Python floats and flushed to the
writer at the start of the next tick.
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict, List, Optional

from repro.trace.writer import JsonlTraceWriter, NullTraceWriter, TraceWriter

__all__ = [
    "Tracer",
    "NULL_TRACER",
    "classify_constraint",
    "active_tracer",
    "tracing",
]

_EPS = 1e-9

#: Binding-constraint slugs emitted by :func:`classify_constraint`.
CONSTRAINTS = (
    "zero_cap",  # cap ~ 0: tripped circuit or failed/excluded server
    "thermal_cap",  # leaf pinned at the Eq. 2/3 thermal cap
    "circuit_rating",  # leaf pinned at the branch-circuit rating
    "aggregate_cap",  # internal node pinned at its children's summed cap
    "sibling_share",  # parent budget exhausted by the proportional split
    "demand_met",  # allocation covers the demand weight exactly
    "surplus_share",  # allocation exceeds demand (step-3 surplus spread)
)


def classify_constraint(
    allocation: float,
    weight: float,
    cap: float,
    *,
    leaf: bool,
    circuit_limit: Optional[float] = None,
    eps: float = _EPS,
) -> str:
    """Name the constraint that bound one node's allocation.

    The waterfill gives each child ``min(share, cap)``; working backward
    from the realised allocation, the binding constraint is the hard cap
    when the allocation sits on it, the sibling soft share when the
    child got less than its weight with cap headroom to spare, and
    "satisfied" (``demand_met`` / ``surplus_share``) otherwise.  At a
    bound leaf the hard cap is further split into the thermal cap vs.
    the circuit rating by comparing against ``circuit_limit``.
    """
    if cap <= eps:
        return "zero_cap"
    if allocation >= cap - eps:
        if not leaf:
            return "aggregate_cap"
        if circuit_limit is not None and cap >= circuit_limit - eps:
            return "circuit_rating"
        return "thermal_cap"
    if allocation > weight + eps:
        return "surplus_share"
    if allocation >= weight - eps:
        return "demand_met"
    return "sibling_share"


class Tracer:
    """Builds one frame per tick and hands finished frames to a writer.

    Parameters
    ----------
    writer:
        The sink; defaults to a fresh :class:`NullTraceWriter`.
    enabled:
        Master switch.  A disabled tracer never builds frames; the
        module-level :data:`NULL_TRACER` is the canonical disabled
        instance every controller defaults to.
    """

    __slots__ = ("writer", "enabled", "_frame", "_run", "_tick", "_now")

    def __init__(
        self, writer: Optional[TraceWriter] = None, *, enabled: bool = True
    ):
        self.writer: TraceWriter = writer or NullTraceWriter()
        self.enabled = enabled
        self._frame: Optional[Dict[str, Any]] = None
        self._run = -1
        self._tick = -1
        self._now = 0.0

    # ------------------------------------------------------------- lifecycle
    def write_meta(self, tree, config, *, controller: str = "") -> None:
        """Start a new run: emit the self-describing header frame.

        Called once per controller construction, so one trace file can
        hold several runs back to back (``run`` indexes them).
        """
        if not self.enabled:
            return
        self.flush()
        self._run += 1
        self._tick = -1
        nodes = [
            {
                "id": node.node_id,
                "name": node.name,
                "level": node.level,
                "parent": None if node.is_root else node.parent.node_id,
                "leaf": node.is_leaf,
            }
            for node in tree
        ]
        self.writer.write_frame(
            {
                "type": "meta",
                "run": self._run,
                "controller": controller,
                "nodes": nodes,
                "config": {
                    "eta1": config.eta1,
                    "eta2": config.eta2,
                    "alpha": config.alpha,
                    "delta_d": config.delta_d,
                    "circuit_limit": config.circuit_limit,
                    "allocation_mode": config.allocation_mode,
                    "thermal_mode": config.thermal_mode,
                },
            }
        )

    def write_federation_meta(self, site_names, policy: str) -> None:
        """Start a federation run: the coordinator's header frame.

        The grid-level coordinator has no PMU tree of its own; its
        header carries the member sites and the shifting policy instead
        of a node list, while staying a regular ``meta`` frame so
        :class:`~repro.trace.query.TraceReader` splits runs as usual.
        """
        if not self.enabled:
            return
        self.flush()
        self._run += 1
        self._tick = -1
        self.writer.write_frame(
            {
                "type": "meta",
                "run": self._run,
                "controller": "FederationCoordinator",
                "nodes": [],
                "federation": {
                    "sites": list(site_names),
                    "policy": policy,
                },
            }
        )

    def begin_tick(self, tick: int, now: float) -> None:
        """Flush the previous frame and open the frame for ``tick``."""
        self.flush()
        self._tick = tick
        self._now = now
        self._frame = {
            "type": "tick",
            "run": self._run,
            "tick": tick,
            "t": float(now),
        }

    def flush(self) -> None:
        """Write the open frame, if any (idempotent)."""
        if self._frame is not None:
            self.writer.write_frame(self._frame)
            self._frame = None

    def close(self) -> None:
        self.flush()
        self.writer.close()

    # ------------------------------------------------------------ recording
    def _section(self, name: str) -> List:
        frame = self._frame
        if frame is None:
            # Records outside any tick (e.g. transport deliveries after
            # the final tick) have no frame to land in; drop them.
            return []
        return frame.setdefault(name, [])

    def record_demand(
        self, server_id: int, raw: float, smoothed: float, budget: float
    ) -> None:
        """One server's Eq. 4 smoothing step and standing budget."""
        self._section("demand").append(
            [server_id, float(raw), float(smoothed), float(budget)]
        )

    def record_root(self, supply: float, cap: float, granted: float) -> None:
        """The supply-side entry point: facility supply vs root cap."""
        if self._frame is not None:
            self._frame["root"] = {
                "supply": float(supply),
                "cap": float(cap),
                "granted": float(granted),
            }

    def record_allocation(
        self,
        node_id: int,
        parent_id: int,
        level: int,
        allocation: float,
        weight: float,
        cap: float,
        parent_budget: float,
        reserve: float,
        *,
        leaf: bool,
        circuit_limit: Optional[float] = None,
        source_tick: Optional[int] = None,
    ) -> None:
        """One child's share of a parent's budget division.

        ``parent_budget`` is the divisible budget *after* the colocated
        switch ``reserve`` came off the top.  ``source_tick`` marks the
        control tick a distributed directive was computed at (it can
        trail the frame's tick under lossy transport).
        """
        record = {
            "node": node_id,
            "parent": parent_id,
            "level": level,
            "budget": float(allocation),
            "weight": float(weight),
            "cap": float(cap),
            "parent_budget": float(parent_budget),
            "reserve": float(reserve),
            "binding": classify_constraint(
                float(allocation),
                float(weight),
                float(cap),
                leaf=leaf,
                circuit_limit=circuit_limit,
            ),
        }
        if source_tick is not None and source_tick != self._tick:
            record["source_tick"] = source_tick
        self._section("alloc").append(record)

    def record_migration(
        self,
        vm_id: int,
        src_id: int,
        dst_id: int,
        demand: float,
        cause: str,
        local: bool,
        src_deficit: float,
        dst_surplus: float,
    ) -> None:
        """One executed move with its Eq. 5-9 decision inputs."""
        self._section("migrations").append(
            {
                "vm": vm_id,
                "src": src_id,
                "dst": dst_id,
                "demand": float(demand),
                "cause": cause,
                "local": bool(local),
                "src_deficit": float(src_deficit),
                "dst_surplus": float(dst_surplus),
            }
        )

    def record_unmatched(
        self, node_id: int, vm_id: Optional[int], watts: float
    ) -> None:
        """Deficit demand the matcher left in place (degraded service)."""
        self._section("unmatched").append([node_id, vm_id, float(watts)])

    def record_drop(
        self, node_id: int, vm_id: Optional[int], watts: float
    ) -> None:
        """Watts actually shed this tick (QoS loss)."""
        self._section("drops").append([node_id, vm_id, float(watts)])

    def record_event(self, kind: str, node_id: int, detail: str = "") -> None:
        """A plant or control-plane fault edge."""
        self._section("events").append(
            {"kind": kind, "node": node_id, "detail": detail}
        )

    def record_site_grant(
        self,
        site: str,
        supply: float,
        smoothed_demand: float,
        headroom: float,
        carbon: float,
        price: float,
    ) -> None:
        """One site's supply-period snapshot at a federation rebalance."""
        self._section("site_grants").append(
            {
                "site": site,
                "supply": float(supply),
                "smoothed_demand": float(smoothed_demand),
                "headroom": float(headroom),
                "carbon": float(carbon),
                "price": float(price),
            }
        )

    def record_federation_migration(
        self,
        vm_id: int,
        src_site: str,
        dst_site: str,
        src_node: int,
        dst_node: int,
        demand: float,
        src_deficit: float,
        dst_surplus: float,
        wan_cost_power: float,
    ) -> None:
        """One executed cross-site move with its Eq. 5-9 inputs."""
        self._section("fed_migrations").append(
            {
                "vm": vm_id,
                "src_site": src_site,
                "dst_site": dst_site,
                "src": src_node,
                "dst": dst_node,
                "demand": float(demand),
                "src_deficit": float(src_deficit),
                "dst_surplus": float(dst_surplus),
                "wan_cost": float(wan_cost_power),
            }
        )

    def record_planner(
        self,
        site: str,
        horizon: int,
        deficits,
        setpoint=None,
    ) -> None:
        """One site's receding-horizon plan at a predictive rebalance.

        ``deficits[k]`` is the planner's predicted deficit for supply
        period ``k`` ahead (``deficits[0]`` is the current one);
        ``setpoint`` is the standing cooling setpoint when cooling
        actuation is enabled.
        """
        record = {
            "site": site,
            "horizon": int(horizon),
            "deficits": [float(d) for d in deficits],
        }
        if setpoint is not None:
            record["setpoint"] = float(setpoint)
        self._section("planner").append(record)

    def record_env_step(
        self,
        step: int,
        action_mode: str,
        reward: float,
        vector,
    ) -> None:
        """One gym decision window (:mod:`repro.gym`).

        Lands in the frame the coordinator opened at this window's
        rebalance, so replay tooling sees the agent's reward next to
        the grants and migrations it caused.  ``vector`` is the raw
        per-window cost vector keyed by component name.
        """
        if self._frame is None:
            return
        self._frame["env_step"] = {
            "step": int(step),
            "action_mode": action_mode,
            "reward": float(reward),
            "costs": {name: float(v) for name, v in vector.items()},
        }

    def record_imbalance(self, watts: float) -> None:
        """The level-0 Eq. 9 power-imbalance residual."""
        if self._frame is not None:
            self._frame["imbalance"] = float(watts)


#: The canonical disabled tracer.  Shared by every controller that is
#: not explicitly given one; its guard attribute is the whole cost of
#: tracing when disabled.
NULL_TRACER = Tracer(NullTraceWriter(), enabled=False)

_ACTIVE: Tracer = NULL_TRACER


def active_tracer() -> Tracer:
    """The ambient tracer new controllers adopt (NULL unless inside
    a :func:`tracing` block)."""
    return _ACTIVE


@contextlib.contextmanager
def tracing(target, **writer_kwargs):
    """Install an ambient tracer for the duration of a ``with`` block.

    ``target`` is a path (a rotating :class:`JsonlTraceWriter` is
    created and closed on exit), a :class:`Tracer` (used as-is, left
    open), or a writer instance.  Controllers constructed inside the
    block and not given an explicit ``tracer`` pick it up -- this is how
    the experiment runner traces sweeps without threading a tracer
    through every figure module.
    """
    global _ACTIVE
    own = False
    if isinstance(target, Tracer):
        tracer = target
    elif hasattr(target, "write_frame"):
        tracer = Tracer(target)
    else:
        tracer = Tracer(JsonlTraceWriter(target, **writer_kwargs))
        own = True
    previous = _ACTIVE
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous
        if own:
            tracer.close()
        else:
            tracer.flush()
