"""Reading traces back: causal queries over recorded tick frames.

:class:`TraceReader` loads a (possibly rotated) JSONL trace, splits it
into runs at ``meta`` frames, and answers the questions the trace
exists for:

* :meth:`~TraceReader.budget_path` -- the chain of allocation records
  from the root grant down to one server at one tick, each with the
  constraint that bound it;
* :meth:`~TraceReader.constraint_histogram` -- how often each
  constraint bound, fleet-wide;
* :meth:`~TraceReader.explain` -- a human-readable account of one
  server at one tick ("why did server 12's budget drop at t=340?");
* :meth:`~TraceReader.events` -- plant / control-plane fault edges.

Budgets are only re-divided every ``eta1`` ticks (or when a fault edge
forces reallocation), so lookups walk backward to the latest allocation
at or before the queried tick -- which also makes the same code correct
for the distributed controller, where a node's standing budget can come
from a directive computed several ticks earlier.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.trace.writer import trace_segments

__all__ = ["TraceReader", "TraceRun"]


class TraceRun:
    """One controller run inside a trace: a meta frame + its tick frames."""

    def __init__(self, meta: Dict[str, Any]):
        self.meta = meta
        self.frames: List[Dict[str, Any]] = []

    @property
    def controller(self) -> str:
        return self.meta.get("controller", "")

    @property
    def nodes(self) -> Dict[int, Dict[str, Any]]:
        return {node["id"]: node for node in self.meta.get("nodes", [])}

    def leaf_ids(self) -> List[int]:
        return [n["id"] for n in self.meta.get("nodes", []) if n["leaf"]]


def _iter_frames(path) -> Iterator[Dict[str, Any]]:
    """Yield frames across all segments, skipping undecodable lines.

    A hard kill can tear the final line of *any* segment that was
    active when the process died -- after a crash-recovery restart in
    append mode the torn segment may sit in the middle of the rotation
    order, so every segment gets the same tolerance, counted via
    :attr:`TraceReader.skipped_lines` by the caller.
    """
    for segment in trace_segments(path):
        with segment.open() as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    yield None  # sentinel: caller counts it


class TraceReader:
    """Loads a trace file and answers causal queries about one run.

    Parameters
    ----------
    path:
        Trace path as given to :class:`~repro.trace.writer.JsonlTraceWriter`
        (rotated segments are found automatically).
    run:
        Which run to query when the file holds several; defaults to the
        last one, matching "the run I just recorded".

    Attributes
    ----------
    skipped_lines:
        Partial/garbled lines tolerated while reading (hard kills can
        tear the tail of any segment, not just the newest).
    """

    def __init__(self, path, *, run: int = -1):
        self.runs: List[TraceRun] = []
        self.skipped_lines = 0
        current: Optional[TraceRun] = None
        for frame in _iter_frames(path):
            if frame is None:
                self.skipped_lines += 1
            elif frame.get("type") == "meta":
                current = TraceRun(frame)
                self.runs.append(current)
            elif current is not None:
                current.frames.append(frame)
        if not self.runs:
            raise ValueError(f"{path}: no meta frame; not a Willow trace")
        self.run = self.runs[run]

    # ------------------------------------------------------------- plumbing
    @property
    def nodes(self) -> Dict[int, Dict[str, Any]]:
        return self.run.nodes

    def frame(self, tick: int) -> Optional[Dict[str, Any]]:
        for frame in self.run.frames:
            if frame["tick"] == tick:
                return frame
        return None

    def last_tick(self) -> int:
        if not self.run.frames:
            raise ValueError("trace run has no tick frames")
        return self.run.frames[-1]["tick"]

    def _latest_alloc(
        self, node_id: int, tick: int
    ) -> Optional[Tuple[int, Dict[str, Any]]]:
        """The newest allocation record for ``node_id`` at or before
        ``tick``, as ``(tick_recorded, record)``."""
        for frame in reversed(self.run.frames):
            if frame["tick"] > tick:
                continue
            for record in frame.get("alloc", ()):
                if record["node"] == node_id:
                    return frame["tick"], record
        return None

    def _latest_root(
        self, tick: int
    ) -> Optional[Tuple[int, Dict[str, Any]]]:
        for frame in reversed(self.run.frames):
            if frame["tick"] <= tick and "root" in frame:
                return frame["tick"], frame["root"]
        return None

    # -------------------------------------------------------------- queries
    def budget_path(self, server_id: int, tick: int) -> List[Dict[str, Any]]:
        """The budget's path from the root grant down to ``server_id``.

        Returns records ordered root -> leaf.  The first entry is the
        facility-level grant (binding ``facility_supply`` or
        ``aggregate_cap``); every following entry is the allocation one
        level down, annotated with ``at_tick`` -- the tick the standing
        budget was actually computed (== ``tick`` only when an
        allocation round landed on it).
        """
        nodes = self.nodes
        if server_id not in nodes:
            raise KeyError(f"unknown node id {server_id}")
        if not nodes[server_id]["leaf"]:
            raise ValueError(f"node {server_id} is not a server (leaf)")
        path: List[Dict[str, Any]] = []
        node_id: Optional[int] = server_id
        while node_id is not None and nodes[node_id]["parent"] is not None:
            found = self._latest_alloc(node_id, tick)
            if found is None:
                break
            at_tick, record = found
            path.append({"at_tick": at_tick, **record})
            node_id = record["parent"]
        root = self._latest_root(tick)
        if root is not None:
            at_tick, record = root
            binding = (
                "aggregate_cap"
                if record["cap"] <= record["supply"]
                else "facility_supply"
            )
            path.append(
                {
                    "at_tick": at_tick,
                    "node": node_id if node_id is not None else -1,
                    "parent": None,
                    "level": nodes.get(node_id, {}).get("level", 0),
                    "budget": record["granted"],
                    "weight": record["supply"],
                    "cap": record["cap"],
                    "parent_budget": record["supply"],
                    "reserve": 0.0,
                    "binding": binding,
                }
            )
        path.reverse()
        return path

    def constraint_histogram(
        self, *, level: Optional[int] = None
    ) -> Dict[str, int]:
        """How often each constraint bound, over every allocation record
        in the run (optionally restricted to one tree level)."""
        counts: Counter = Counter()
        for frame in self.run.frames:
            for record in frame.get("alloc", ()):
                if level is None or record["level"] == level:
                    counts[record["binding"]] += 1
        return dict(counts)

    def events(
        self, *, kind: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        """Fault edges across the run, each tagged with its tick/time."""
        out = []
        for frame in self.run.frames:
            for event in frame.get("events", ()):
                if kind is None or event["kind"] == kind:
                    out.append(
                        {"tick": frame["tick"], "t": frame["t"], **event}
                    )
        return out

    def explain(self, server_id: int, tick: int) -> str:
        """A per-node causal account of one server at one tick."""
        nodes = self.nodes
        frame = self.frame(tick)
        lines = [
            f"server {server_id} ({nodes[server_id]['name']}) at tick "
            f"{tick}" + (f" (t={frame['t']:g})" if frame else " (no frame)")
        ]
        if frame is not None:
            for entry in frame.get("demand", ()):
                if entry[0] == server_id:
                    lines.append(
                        f"  demand: raw={entry[1]:.2f} W, "
                        f"smoothed={entry[2]:.2f} W (Eq. 4), "
                        f"budget={entry[3]:.2f} W"
                    )
                    break
        path = self.budget_path(server_id, tick)
        if path:
            lines.append("  budget path (root -> server):")
        for record in path:
            name = nodes.get(record["node"], {}).get("name", "?")
            stale = (
                "" if record["at_tick"] == tick
                else f" [from tick {record['at_tick']}]"
            )
            src = record.get("source_tick")
            if src is not None:
                stale += f" [directive computed at tick {src}]"
            lines.append(
                f"    L{record['level']} {name} (node {record['node']}): "
                f"budget={record['budget']:.2f} W of "
                f"parent_budget={record['parent_budget']:.2f} W "
                f"(weight={record['weight']:.2f}, cap={record['cap']:.2f}, "
                f"reserve={record['reserve']:.2f}) "
                f"<- {record['binding']}{stale}"
            )
        if frame is not None:
            for entry in frame.get("unmatched", ()):
                if entry[0] == server_id:
                    lines.append(
                        f"  unmatched deficit: {entry[2]:.2f} W "
                        f"(vm {entry[1]}) left in place"
                    )
            for entry in frame.get("drops", ()):
                if entry[0] == server_id:
                    lines.append(
                        f"  dropped: {entry[2]:.2f} W (vm {entry[1]})"
                    )
            for move in frame.get("migrations", ()):
                if server_id in (move["src"], move["dst"]):
                    role = "out of" if move["src"] == server_id else "into"
                    lines.append(
                        f"  migration {role} this server: vm {move['vm']} "
                        f"({move['demand']:.2f} W, {move['cause']}, "
                        f"src_deficit={move['src_deficit']:.2f} W, "
                        f"dst_surplus={move['dst_surplus']:.2f} W)"
                    )
            for event in frame.get("events", ()):
                lines.append(
                    f"  event: {event['kind']} @ node {event['node']}"
                    + (f" ({event['detail']})" if event["detail"] else "")
                )
        return "\n".join(lines)
