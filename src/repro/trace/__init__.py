"""Structured tick-trace observability for Willow controllers.

See :mod:`repro.trace.tracer` for the frame schema and the cost
contract, :mod:`repro.trace.writer` for sinks and rotation, and
:mod:`repro.trace.query` for reading traces back.
"""

from repro.trace.tracer import (
    NULL_TRACER,
    Tracer,
    active_tracer,
    classify_constraint,
    tracing,
)
from repro.trace.query import TraceReader, TraceRun
from repro.trace.writer import (
    JsonlTraceWriter,
    MemoryTraceWriter,
    NullTraceWriter,
    TraceWriter,
    trace_segments,
)

__all__ = [
    "Tracer",
    "NULL_TRACER",
    "active_tracer",
    "classify_constraint",
    "tracing",
    "TraceReader",
    "TraceRun",
    "TraceWriter",
    "NullTraceWriter",
    "MemoryTraceWriter",
    "JsonlTraceWriter",
    "trace_segments",
]
