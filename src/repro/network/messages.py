"""Control-message accounting (paper Property 3).

"The number of communication messages on any network link between a
node at level l and a node at level l+1 in a period of Delta_Dl is at
most 2 -- one on either direction in the link."
"""

from __future__ import annotations

from typing import Dict

from repro.metrics.collector import MetricsCollector

__all__ = ["max_messages_per_link", "verify_message_bound"]


def max_messages_per_link(collector: MetricsCollector) -> Dict[int, int]:
    """Worst per-tick message count observed on each tree link.

    Links are identified by the child node's id (each non-root node has
    exactly one upward link).
    """
    return collector.messages_per_link_per_tick()


def verify_message_bound(collector: MetricsCollector, bound: int = 2) -> bool:
    """True iff no link ever carried more than ``bound`` messages/tick.

    The bound applies to *sent* control messages per link per tick --
    under a lossy transport (:mod:`repro.control_plane`) dropped and
    duplicated deliveries do not change the count, but retransmissions
    are genuine sends and do.

    Raises :class:`ValueError` if the collector recorded no messages at
    all: an ``all()`` over an empty dict would be vacuously true, and a
    run that never exchanged control traffic proves nothing about
    Property 3 (most likely the controller never ran, or messages were
    recorded into a different collector).
    """
    worst = max_messages_per_link(collector)
    if not worst:
        raise ValueError(
            "collector recorded no control messages; Property 3 cannot be "
            "verified on an empty run (did the controller run, and with "
            "this collector?)"
        )
    return all(count <= bound for count in worst.values())


def messages_per_direction(collector: MetricsCollector) -> Dict[str, int]:
    """Total upward (demand reports) vs downward (budget directives)."""
    up = sum(1 for m in collector.messages if m.upward)
    down = len(collector.messages) - up
    return {"upward": up, "downward": down}
