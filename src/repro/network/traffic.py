"""Traffic accounting over recorded switch samples.

"Figure 10 shows the proportion of migration traffic normalized with
respect to the maximum possible utilization of the network.  This
normalization is necessary if we need to have an absolute picture of
the migration overhead."
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.metrics.collector import MetricsCollector
from repro.power.switch import SwitchPowerModel

__all__ = [
    "migration_traffic_fraction",
    "switch_power_by_level",
    "switch_migration_cost",
]


def migration_traffic_fraction(
    collector: MetricsCollector,
    model: SwitchPowerModel,
    *,
    level: Optional[int] = 1,
) -> float:
    """Migration traffic as a fraction of maximum network capacity.

    Sums migration traffic over all samples at ``level`` (or all
    levels) and divides by the corresponding aggregate capacity, i.e.
    ``capacity * n_switch_samples`` -- the paper's "maximum possible
    utilization of the network" denominator.
    """
    samples = [
        s
        for s in collector.switch_samples
        if level is None or s.level == level
    ]
    if not samples:
        return 0.0
    migration = sum(s.migration_traffic for s in samples)
    max_possible = model.capacity * len(samples)
    return migration / max_possible


def switch_power_by_level(
    collector: MetricsCollector, level: int
) -> Dict[int, float]:
    """Run-average power (W) per switch at the given level (Fig. 11)."""
    result: Dict[int, list] = {}
    for s in collector.switch_samples:
        if s.level == level:
            result.setdefault(s.switch_id, []).append(s.power)
    return {sid: float(np.mean(vals)) for sid, vals in result.items()}


def switch_migration_cost(
    collector: MetricsCollector,
    model: SwitchPowerModel,
    level: int,
) -> Dict[int, float]:
    """Total migration-attributed switch energy per switch (Fig. 12).

    The dynamic power a switch spent on migration traffic, summed over
    the run (W * ticks).
    """
    result: Dict[int, float] = {}
    for s in collector.switch_samples:
        if s.level == level:
            cost = model.watts_per_unit_traffic * s.migration_traffic
            result[s.switch_id] = result.get(s.switch_id, 0.0) + cost
    return result
