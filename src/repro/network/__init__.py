"""Network impact analysis (paper Sec. V-B4/V-B5 and Property 3).

Willow's network story has three measurable pieces:

* migration traffic, normalised against the network's maximum possible
  utilization (Fig. 10);
* switch power, static + traffic-proportional, equalised across
  level-1 switches by the local-first migration policy (Fig. 11);
* migration cost attributed to switches (Fig. 12);
* the <= 2 control messages per tree link per ``Delta_D`` bound
  (Property 3).

All functions here are pure post-processing over a
:class:`~repro.metrics.collector.MetricsCollector`.
"""

from repro.network.traffic import (
    migration_traffic_fraction,
    switch_migration_cost,
    switch_power_by_level,
)
from repro.network.messages import (
    max_messages_per_link,
    verify_message_bound,
)
from repro.network.paths import migration_hop_histogram

__all__ = [
    "max_messages_per_link",
    "migration_hop_histogram",
    "migration_traffic_fraction",
    "switch_migration_cost",
    "switch_power_by_level",
    "verify_message_bound",
]
