"""Migration path statistics.

Local migrations (one hop through the shared parent switch) are
preferred to non-local ones (Sec. IV-E); the hop histogram quantifies
how well the locality preference worked.
"""

from __future__ import annotations

from typing import Dict

from repro.metrics.collector import MetricsCollector

__all__ = ["migration_hop_histogram", "mean_migration_hops"]


def migration_hop_histogram(collector: MetricsCollector) -> Dict[int, int]:
    """Count of migrations by number of switch sites traversed."""
    histogram: Dict[int, int] = {}
    for migration in collector.migrations:
        histogram[migration.hops] = histogram.get(migration.hops, 0) + 1
    return dict(sorted(histogram.items()))


def mean_migration_hops(collector: MetricsCollector) -> float:
    """Average switch sites per migration (NaN when none happened)."""
    if not collector.migrations:
        return float("nan")
    total = sum(m.hops for m in collector.migrations)
    return total / len(collector.migrations)
