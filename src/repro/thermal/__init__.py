"""First-order RC thermal model and calibration (paper Sec. III-A).

The paper limits the power a component may draw from its temperature
headroom:

    dT/dt = c1 * P(t) - c2 * (T(t) - Ta)                         (Eq. 1)

(the published equation writes ``+c2 (T - Ta)`` but its own closed-form
solution and all reported constants correspond to a *decay* towards the
ambient temperature ``Ta``, so the stable sign is used here).

* :mod:`repro.thermal.model` -- closed-form temperature evolution,
  per-window power caps (Eq. 3), and a step-wise integrator.
* :mod:`repro.thermal.calibration` -- least-squares estimation of
  ``(c1, c2)`` from power/temperature traces (Figs. 4 and 14).
"""

from repro.thermal.model import (
    ThermalParams,
    TemperatureIntegrator,
    power_cap,
    steady_state_temperature,
    temperature_after,
    time_to_limit,
    window_for_power_cap,
)
from repro.thermal.calibration import (
    CalibrationResult,
    fit_constants,
    generate_heating_trace,
    power_cap_curve,
)

__all__ = [
    "CalibrationResult",
    "TemperatureIntegrator",
    "ThermalParams",
    "fit_constants",
    "generate_heating_trace",
    "power_cap",
    "power_cap_curve",
    "steady_state_temperature",
    "temperature_after",
    "time_to_limit",
    "window_for_power_cap",
]
