"""Estimating the thermal constants (paper Figs. 4 and 14).

Two workflows are reproduced:

* **Simulation setup (Fig. 4)** -- sweep candidate ``(c1, c2)`` pairs and
  plot the power cap presented at different component temperatures; the
  paper picks ``c1=0.08, c2=0.05`` because a node idling at ``Ta=25``
  then presents a surplus close to the 450 W maximum device power while
  a node at 70 deg C in a 45 deg C ambient presents almost none.
  :func:`power_cap_curve` generates those series.

* **Testbed estimation (Fig. 14)** -- record (power, temperature) time
  series from a heating run and least-squares fit the discrete form of
  Eq. 1.  :func:`generate_heating_trace` synthesises the testbed traces
  (we have no Extech power analyzer; the substitution is documented in
  DESIGN.md) and :func:`fit_constants` recovers ``(c1, c2)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.thermal.model import ThermalParams, temperature_after

__all__ = [
    "CalibrationResult",
    "fit_constants",
    "generate_heating_trace",
    "power_cap_curve",
]


def power_cap_curve(
    params: ThermalParams,
    temperatures: Sequence[float],
    delta_s: float,
) -> np.ndarray:
    """Power cap (Eq. 3) at each current temperature -- one Fig. 4 series.

    Returns an array aligned with ``temperatures``.
    """
    from repro.thermal.model import power_cap

    return np.asarray(power_cap(params, np.asarray(temperatures, float), delta_s))


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of a least-squares fit of the thermal constants."""

    c1: float
    c2: float
    residual: float
    n_samples: int

    def as_params(self, t_ambient: float, t_limit: float) -> ThermalParams:
        """Package the fit as :class:`ThermalParams`."""
        return ThermalParams(
            c1=self.c1, c2=self.c2, t_ambient=t_ambient, t_limit=t_limit
        )


def generate_heating_trace(
    params: ThermalParams,
    powers: Sequence[float],
    dt: float,
    *,
    t0: float | None = None,
    noise_std: float = 0.0,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Synthesise a (power, temperature) trace for calibration runs.

    Each entry of ``powers`` is held for ``dt`` seconds; the returned
    temperature array has ``len(powers) + 1`` samples (including the
    initial temperature).  Optional Gaussian measurement noise models the
    ~2 Hz Extech power-analyzer sampling of the paper's testbed.
    """
    if dt <= 0:
        raise ValueError(f"dt must be positive, got {dt}")
    powers = np.asarray(powers, dtype=float)
    if powers.ndim != 1 or len(powers) == 0:
        raise ValueError("powers must be a non-empty 1-D sequence")
    if np.any(powers < 0):
        raise ValueError("powers must be non-negative")
    temps = np.empty(len(powers) + 1)
    temps[0] = params.t_ambient if t0 is None else float(t0)
    for i, p in enumerate(powers):
        temps[i + 1] = temperature_after(params, temps[i], p, dt)
    if noise_std > 0.0:
        if rng is None:
            rng = np.random.default_rng(0)
        temps = temps + rng.normal(0.0, noise_std, size=temps.shape)
    return powers, temps


def fit_constants(
    powers: Sequence[float],
    temperatures: Sequence[float],
    dt: float,
    t_ambient: float,
) -> CalibrationResult:
    """Least-squares estimate of ``(c1, c2)`` from a measured trace.

    Uses the forward-difference discretisation of Eq. 1:

        (T[k+1] - T[k]) / dt  ~=  c1 * P[k] - c2 * (T[k] - Ta)

    which is linear in ``(c1, c2)`` and solved with ``numpy.linalg.lstsq``.

    Parameters
    ----------
    powers:
        Power drawn during each interval, length ``n``.
    temperatures:
        Temperature samples, length ``n + 1``.
    dt:
        Interval length in seconds.
    t_ambient:
        Ambient temperature during the run.
    """
    powers = np.asarray(powers, dtype=float)
    temperatures = np.asarray(temperatures, dtype=float)
    if len(temperatures) != len(powers) + 1:
        raise ValueError(
            f"need len(temperatures) == len(powers)+1, got "
            f"{len(temperatures)} and {len(powers)}"
        )
    if len(powers) < 2:
        raise ValueError("need at least 2 intervals to fit two constants")
    if dt <= 0:
        raise ValueError(f"dt must be positive, got {dt}")

    dT = np.diff(temperatures) / dt
    design = np.column_stack([powers, -(temperatures[:-1] - t_ambient)])
    solution, residuals, _, _ = np.linalg.lstsq(design, dT, rcond=None)
    c1, c2 = float(solution[0]), float(solution[1])
    residual = float(residuals[0]) if residuals.size else 0.0
    return CalibrationResult(c1=c1, c2=c2, residual=residual, n_samples=len(powers))
