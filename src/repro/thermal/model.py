"""Closed-form thermal model (paper Eqs. 1-3).

With constant power ``P`` over an interval of length ``t`` the linear ODE

    dT/dt = c1 * P - c2 * (T - Ta)

has the exact solution

    T(t) = Ta + (T0 - Ta) * exp(-c2 t) + (c1 P / c2) * (1 - exp(-c2 t))

which Eq. 3 of the paper inverts: the largest constant power that keeps
the temperature at or below ``T_limit`` for the next adjustment window of
``delta_s`` seconds is

    P_limit = (T_limit - Ta - (T0 - Ta) e^{-c2 ds}) * c2
              / (c1 * (1 - e^{-c2 ds}))

All functions accept scalars or NumPy arrays and broadcast.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

__all__ = [
    "ThermalParams",
    "temperature_after",
    "temperature_step_arrays",
    "steady_state_temperature",
    "power_cap",
    "power_cap_arrays",
    "window_for_power_cap",
    "TemperatureIntegrator",
]


@dataclass(frozen=True)
class ThermalParams:
    """Thermal characteristics of one component.

    Attributes
    ----------
    c1:
        Heating coefficient, degrees per (watt * second).
    c2:
        Cooling rate towards ambient, 1/second.
    t_ambient:
        Ambient temperature ``Ta`` (deg C) right outside the component.
    t_limit:
        Maximum allowed component temperature (deg C).

    Defaults are the paper's simulation values (Sec. V-B2, Fig. 4):
    ``c1=0.08, c2=0.05, Ta=25, T_limit=70`` which put the thermal power
    cap of a cool idle node near the assumed 450 W maximum device power.
    """

    c1: float = 0.08
    c2: float = 0.05
    t_ambient: float = 25.0
    t_limit: float = 70.0

    def __post_init__(self) -> None:
        if self.c1 <= 0:
            raise ValueError(f"c1 must be positive, got {self.c1}")
        if self.c2 <= 0:
            raise ValueError(f"c2 must be positive, got {self.c2}")
        if self.t_limit <= self.t_ambient:
            raise ValueError(
                f"t_limit ({self.t_limit}) must exceed ambient ({self.t_ambient})"
            )

    def with_ambient(self, t_ambient: float) -> "ThermalParams":
        """A copy of these parameters at a different ambient temperature."""
        return replace(self, t_ambient=t_ambient)

    @property
    def headroom(self) -> float:
        """Temperature headroom ``T_limit - Ta`` (deg C)."""
        return self.t_limit - self.t_ambient


def temperature_after(params: ThermalParams, t0, power, dt):
    """Temperature after holding constant ``power`` for ``dt`` seconds.

    Exact solution of Eq. 1; broadcasts over array inputs.
    """
    t0 = np.asarray(t0, dtype=float)
    power = np.asarray(power, dtype=float)
    dt = np.asarray(dt, dtype=float)
    if np.any(dt < 0):
        raise ValueError("dt must be non-negative")
    decay = np.exp(-params.c2 * dt)
    heating = (params.c1 * power / params.c2) * (1.0 - decay)
    result = params.t_ambient + (t0 - params.t_ambient) * decay + heating
    return float(result) if result.ndim == 0 else result


def temperature_step_arrays(t0, power, *, t_ambient, c1, c2, decay):
    """Eq. 2 step for a whole fleet with heterogeneous parameters.

    ``t_ambient``, ``c1``, ``c2`` are per-component arrays (or scalars)
    and ``decay = exp(-c2 * dt)`` is precomputed once per fixed tick
    length.  The arithmetic is the exact expression
    :func:`temperature_after` evaluates, in the same operation order, so
    each lane is bit-identical to the scalar integrator.
    """
    heating = (c1 * power / c2) * (1.0 - decay)
    return t_ambient + (t0 - t_ambient) * decay + heating


def power_cap_arrays(t0, *, t_ambient, t_limit, c1, c2, decay):
    """Eq. 3 cap for a whole fleet with heterogeneous parameters.

    ``decay = exp(-c2 * delta_s)`` is precomputed for the (fixed)
    adjustment window.  Same operation order as :func:`power_cap`, so
    lanes match the scalar path bit for bit.
    """
    numerator = t_limit - t_ambient - (t0 - t_ambient) * decay
    cap = numerator * c2 / (c1 * (1.0 - decay))
    return np.maximum(cap, 0.0)


def steady_state_temperature(params: ThermalParams, power):
    """Limit temperature under constant ``power`` (t -> infinity)."""
    power = np.asarray(power, dtype=float)
    result = params.t_ambient + params.c1 * power / params.c2
    return float(result) if result.ndim == 0 else result


def power_cap(params: ThermalParams, t0, delta_s: float):
    """Max constant power keeping ``T <= t_limit`` through the window (Eq. 3).

    Parameters
    ----------
    t0:
        Current component temperature (deg C); scalar or array.
    delta_s:
        Length of the next adjustment window in seconds.

    Returns
    -------
    Power in watts, clipped below at 0 (a component already beyond its
    limit gets a zero budget and must shed all load to cool).
    """
    if delta_s <= 0:
        raise ValueError(f"delta_s must be positive, got {delta_s}")
    t0 = np.asarray(t0, dtype=float)
    decay = float(np.exp(-params.c2 * delta_s))
    numerator = params.t_limit - params.t_ambient - (t0 - params.t_ambient) * decay
    cap = numerator * params.c2 / (params.c1 * (1.0 - decay))
    cap = np.maximum(cap, 0.0)
    return float(cap) if cap.ndim == 0 else cap


def window_for_power_cap(params: ThermalParams, max_power: float) -> float:
    """Window length making the idle-at-ambient cap equal ``max_power``.

    The paper (Fig. 4) chooses constants so that a node sitting at the
    ambient temperature presents a thermal surplus approximately equal to
    the node's maximum power rating (450 W).  Given ``(c1, c2)`` this
    function solves Eq. 3 for the window length ``delta_s`` that realises
    exactly that equality:

        1 - e^{-c2 ds} = c2 (T_limit - Ta) / (c1 P_max)
    """
    if max_power <= 0:
        raise ValueError(f"max_power must be positive, got {max_power}")
    ratio = params.c2 * params.headroom / (params.c1 * max_power)
    if not 0.0 < ratio < 1.0:
        raise ValueError(
            "no finite window: c2*(T_limit-Ta)/(c1*max_power) = "
            f"{ratio:.4f} must lie in (0, 1)"
        )
    return float(-np.log(1.0 - ratio) / params.c2)


def time_to_limit(params: ThermalParams, t0, power):
    """How long a component can hold ``power`` before hitting ``t_limit``.

    Inverts Eq. 2 in time.  Returns ``inf`` when the steady-state
    temperature under ``power`` never reaches the limit, and ``0`` when
    the component is already at or beyond it.  Broadcasts over arrays.

    Useful for controllers that want *dynamic* adjustment windows: the
    window within which Eq. 3's cap guarantee stays meaningful.
    """
    t0 = np.asarray(t0, dtype=float)
    power = np.asarray(power, dtype=float)
    if np.any(power < 0):
        raise ValueError("power must be non-negative")
    steady = params.t_ambient + params.c1 * power / params.c2
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = (steady - params.t_limit) / (steady - t0)
        times = -np.log(ratio) / params.c2
    result = np.where(
        t0 >= params.t_limit,
        0.0,
        np.where(steady <= params.t_limit, np.inf, times),
    )
    return float(result) if result.ndim == 0 else result


class TemperatureIntegrator:
    """Step-wise exact integrator for one component's temperature.

    Holds the current temperature and advances it with
    :func:`temperature_after` given the (piecewise-constant) power drawn
    during each simulation tick.
    """

    def __init__(self, params: ThermalParams, t0: float | None = None):
        self.params = params
        self.temperature = float(params.t_ambient if t0 is None else t0)
        self.peak = self.temperature
        self.violations = 0

    def step(self, power: float, dt: float) -> float:
        """Advance ``dt`` seconds at constant ``power``; return new temp."""
        if power < 0:
            raise ValueError(f"power must be non-negative, got {power}")
        self.temperature = temperature_after(
            self.params, self.temperature, power, dt
        )
        if self.temperature > self.peak:
            self.peak = self.temperature
        # Tolerate float fuzz right at the limit.
        if self.temperature > self.params.t_limit + 1e-9:
            self.violations += 1
        return self.temperature

    def power_cap(self, delta_s: float) -> float:
        """Thermal power cap for the next window of ``delta_s`` seconds."""
        return power_cap(self.params, self.temperature, delta_s)

    def reset(self, t0: float | None = None) -> None:
        """Reset to ``t0`` (default: ambient) and clear statistics."""
        self.temperature = float(
            self.params.t_ambient if t0 is None else t0
        )
        self.peak = self.temperature
        self.violations = 0
