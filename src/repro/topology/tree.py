"""Generic hierarchy tree for the multi-level power-control model.

Levels follow the paper's convention (Fig. 1): the data-center PMU sits
at the highest level, racks below it, server/switch PMUs at level 1, and
individual servers (the leaves that actually host workload) at level 0.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Iterator, List, Optional

__all__ = ["NodeKind", "Node", "Tree"]


class NodeKind(enum.Enum):
    """Role a tree node plays in the data center."""

    DATACENTER = "datacenter"
    RACK = "rack"
    ENCLOSURE = "enclosure"
    SERVER = "server"
    SWITCH = "switch"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Node:
    """One vertex in the power-control hierarchy.

    Attributes
    ----------
    node_id:
        Unique integer id within its :class:`Tree`.
    name:
        Human-readable label (``"rack-0"``, ``"server-17"``...).
    kind:
        The node's :class:`NodeKind`.
    level:
        Hierarchy level; leaves are level 0, the root has the highest.
    parent / children:
        Tree links.  The root's parent is ``None``.
    """

    __slots__ = ("node_id", "name", "kind", "level", "parent", "children")

    def __init__(
        self,
        node_id: int,
        name: str,
        kind: NodeKind,
        level: int,
        parent: Optional["Node"] = None,
    ):
        self.node_id = node_id
        self.name = name
        self.kind = kind
        self.level = level
        self.parent = parent
        self.children: List[Node] = []
        if parent is not None:
            parent.children.append(self)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def is_root(self) -> bool:
        return self.parent is None

    def siblings(self) -> List["Node"]:
        """Other children of this node's parent."""
        if self.parent is None:
            return []
        return [c for c in self.parent.children if c is not self]

    def ancestors(self) -> Iterator["Node"]:
        """Parent, grandparent, ... up to and including the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def descendants(self) -> Iterator["Node"]:
        """All nodes strictly below this one, depth-first."""
        for child in self.children:
            yield child
            yield from child.descendants()

    def leaves(self) -> List["Node"]:
        """All leaf nodes in this node's subtree (itself if a leaf)."""
        if self.is_leaf:
            return [self]
        return [leaf for child in self.children for leaf in child.leaves()]

    def path_to_root(self) -> List["Node"]:
        """This node followed by its ancestors, ending at the root."""
        return [self, *self.ancestors()]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.name} ({self.kind}) level={self.level}>"


class Tree:
    """Container indexing a hierarchy of :class:`Node` objects."""

    def __init__(self, root_name: str = "datacenter", root_level: int = 1):
        if root_level < 1:
            raise ValueError("root must be at level >= 1 (leaves are level 0)")
        self._next_id = 0
        self.root = Node(
            self._take_id(), root_name, NodeKind.DATACENTER, root_level
        )
        self._by_id: Dict[int, Node] = {self.root.node_id: self.root}
        self._by_name: Dict[str, Node] = {self.root.name: self.root}
        # Query caches; the topology is immutable except through
        # add_child, which invalidates them.  The controller asks for
        # nodes_at_level/servers several times per tick, so these turn
        # repeated full-index scans into dict lookups.
        self._level_cache: Dict[int, List[Node]] = {}
        self._servers_cache: Optional[List[Node]] = None
        self._leaves_cache: Dict[int, List[Node]] = {}

    def _invalidate_caches(self) -> None:
        self._level_cache.clear()
        self._servers_cache = None
        self._leaves_cache.clear()

    def _take_id(self) -> int:
        node_id, self._next_id = self._next_id, self._next_id + 1
        return node_id

    def add_child(self, parent: Node, name: str, kind: NodeKind) -> Node:
        """Create a child one level below ``parent``."""
        if self._by_id.get(parent.node_id) is not parent:
            raise ValueError(f"parent {parent.name!r} is not in this tree")
        if name in self._by_name:
            raise ValueError(f"duplicate node name {name!r}")
        if parent.level == 0:
            raise ValueError(f"cannot add children below leaf-level node {parent.name!r}")
        node = Node(self._take_id(), name, kind, parent.level - 1, parent)
        self._by_id[node.node_id] = node
        self._by_name[name] = node
        self._invalidate_caches()
        return node

    # -- lookups -----------------------------------------------------------
    def node(self, node_id: int) -> Node:
        return self._by_id[node_id]

    def by_name(self, name: str) -> Node:
        return self._by_name[name]

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._by_id.values())

    def nodes_at_level(self, level: int) -> List[Node]:
        """All nodes at the given level, in creation order (cached)."""
        cached = self._level_cache.get(level)
        if cached is None:
            cached = [n for n in self._by_id.values() if n.level == level]
            self._level_cache[level] = cached
        return list(cached)

    def servers(self) -> List[Node]:
        """All server leaves, in creation order (cached)."""
        if self._servers_cache is None:
            self._servers_cache = [
                n
                for n in self._by_id.values()
                if n.kind is NodeKind.SERVER and n.is_leaf
            ]
        return list(self._servers_cache)

    def subtree_leaves(self, node: Node) -> List[Node]:
        """Cached equivalent of ``node.leaves()`` for nodes of this tree."""
        cached = self._leaves_cache.get(node.node_id)
        if cached is None:
            cached = node.leaves()
            self._leaves_cache[node.node_id] = cached
        return list(cached)

    @property
    def height(self) -> int:
        """Number of levels, counting leaves as level 0."""
        return self.root.level + 1

    def lca(self, a: Node, b: Node) -> Node:
        """Lowest common ancestor of two nodes."""
        ancestors_a = set(id(n) for n in a.path_to_root())
        for node in b.path_to_root():
            if id(node) in ancestors_a:
                return node
        raise ValueError("nodes do not share a root")  # pragma: no cover

    def validate(self) -> None:
        """Check structural invariants; raises ``ValueError`` on breakage."""
        seen = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            seen += 1
            for child in node.children:
                if child.parent is not node:
                    raise ValueError(f"broken parent link at {child.name!r}")
                if child.level != node.level - 1:
                    raise ValueError(
                        f"level mismatch: {child.name!r} is level {child.level} "
                        f"under level {node.level}"
                    )
                stack.append(child)
        if seen != len(self._by_id):
            raise ValueError("tree index out of sync with structure")

    def walk(self, visit: Callable[[Node], None]) -> None:
        """Depth-first pre-order traversal applying ``visit``."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            visit(node)
            stack.extend(reversed(node.children))
