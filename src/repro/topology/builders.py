"""Canonical topologies from the paper.

* :func:`build_paper_simulation` -- the Fig. 3 simulation configuration:
  a four-level power-control hierarchy with 18 server nodes.  The figure
  itself is not machine-readable in the available text; we use the
  documented facts (4 levels, 18 servers) with the balanced layout
  root -> 2 racks -> 3 enclosures each -> 3 servers each (2*3*3 = 18).
* :func:`build_testbed` -- the Sec. V-C experimental testbed: three ESX
  servers under a two-level switch/power hierarchy (two level-1 groups,
  one level-2 root).
* :func:`build_balanced` -- arbitrary balanced trees for scaling studies
  (the O(log n) decision-time property in Sec. V-A2).
"""

from __future__ import annotations

from typing import Sequence

from repro.topology.tree import NodeKind, Tree

__all__ = ["build_paper_simulation", "build_testbed", "build_balanced"]

#: Index (0-based) of the first hot-zone server in the Fig. 5-7 setup;
#: the paper places servers 15-18 (1-based) in the 40 deg C zone.
PAPER_HOT_ZONE_START = 14
PAPER_NUM_SERVERS = 18


def build_paper_simulation() -> Tree:
    """The Fig. 3 hierarchy: 4 levels, 18 servers.

    Level 3: data-center PMU (root).
    Level 2: 2 racks.
    Level 1: 3 enclosures per rack.
    Level 0: 3 servers per enclosure (18 total, named ``server-1`` ..
    ``server-18`` to match the paper's 1-based figures).
    """
    tree = Tree(root_name="datacenter", root_level=3)
    server_index = 1
    for r in range(2):
        rack = tree.add_child(tree.root, f"rack-{r}", NodeKind.RACK)
        for e in range(3):
            enclosure = tree.add_child(rack, f"rack-{r}/enclosure-{e}", NodeKind.ENCLOSURE)
            for _ in range(3):
                tree.add_child(enclosure, f"server-{server_index}", NodeKind.SERVER)
                server_index += 1
    tree.validate()
    assert len(tree.servers()) == PAPER_NUM_SERVERS
    return tree


def build_testbed() -> Tree:
    """The Sec. V-C testbed: 3 servers, two level-1 groups, one root.

    Figure 13 shows three Dell/ESX servers managed by a remote control
    plane simulating a two-level hierarchy: two switches at level 1 and
    one at level 2.  We attach servers A and B to the first level-1
    group and server C to the second.
    """
    tree = Tree(root_name="testbed", root_level=2)
    group0 = tree.add_child(tree.root, "group-0", NodeKind.ENCLOSURE)
    group1 = tree.add_child(tree.root, "group-1", NodeKind.ENCLOSURE)
    tree.add_child(group0, "server-A", NodeKind.SERVER)
    tree.add_child(group0, "server-B", NodeKind.SERVER)
    tree.add_child(group1, "server-C", NodeKind.SERVER)
    tree.validate()
    return tree


def build_balanced(branching: Sequence[int]) -> Tree:
    """A balanced tree with the given per-level branching factors.

    ``branching[0]`` is the number of children of the root; the last
    entry is the number of servers per lowest internal node.  The total
    number of servers is the product of all factors.

    Examples
    --------
    >>> tree = build_balanced([2, 3, 3])
    >>> len(tree.servers())
    18
    """
    branching = list(branching)
    if not branching:
        raise ValueError("need at least one branching factor")
    if any(b < 1 for b in branching):
        raise ValueError(f"branching factors must be >= 1, got {branching}")
    tree = Tree(root_name="datacenter", root_level=len(branching))
    frontier = [tree.root]
    kinds = _level_kinds(len(branching))
    for depth, fanout in enumerate(branching):
        new_frontier = []
        for parent in frontier:
            for i in range(fanout):
                name = f"{parent.name}/{kinds[depth].value}-{i}"
                if depth == len(branching) - 1:
                    name = f"server-{len(new_frontier) + 1}"
                child = tree.add_child(parent, name, kinds[depth])
                new_frontier.append(child)
        frontier = new_frontier
    tree.validate()
    return tree


def _level_kinds(depth: int) -> list[NodeKind]:
    """Node kinds for each depth below the root, leaves last."""
    inner = [NodeKind.RACK, NodeKind.ENCLOSURE]
    kinds = []
    for d in range(depth - 1):
        kinds.append(inner[min(d, len(inner) - 1)])
    kinds.append(NodeKind.SERVER)
    return kinds
