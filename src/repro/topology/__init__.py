"""Data-center topology: the hierarchical power-control tree (Figs. 1, 3)
and the mirrored switch fabric (Fig. 8).

* :mod:`repro.topology.tree` -- generic multi-level tree of
  :class:`~repro.topology.tree.Node` objects with level/sibling queries.
* :mod:`repro.topology.builders` -- the paper's simulation configuration
  (4 levels, 18 servers), the 3-server experimental testbed, and a
  generic builder for arbitrary branching.
* :mod:`repro.topology.switches` -- switch fabric mirroring the power
  hierarchy, path computation, and redundant-path load splitting.
"""

from repro.topology.tree import Node, NodeKind, Tree
from repro.topology.builders import (
    build_balanced,
    build_paper_simulation,
    build_testbed,
)
from repro.topology.switches import SwitchFabric

__all__ = [
    "Node",
    "NodeKind",
    "SwitchFabric",
    "Tree",
    "build_balanced",
    "build_paper_simulation",
    "build_testbed",
]
