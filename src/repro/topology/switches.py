"""Switch fabric mirroring the power-control hierarchy (paper Fig. 8).

The paper places one switch alongside each internal node of the power
hierarchy: level-1 switches sit with the servers, level-2 switches with
the racks, and so on.  A migration between two servers traverses the
switches on the tree path between them (up to the lowest common ancestor
and back down).  Optionally a level can use *redundant pairs* of
switches, in which case traffic is split evenly across the pair
("we assume that in the presence of redundant paths with two switches,
the load is balanced evenly between the switches").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.topology.tree import Node, Tree

__all__ = ["Switch", "SwitchFabric"]


@dataclass
class Switch:
    """One switch in the fabric.

    ``site`` is the power-hierarchy node the switch is attached to; its
    ``level`` equals the site's level.  ``redundant_group`` lists all
    switches (including this one) sharing the same site when redundancy
    is enabled.
    """

    switch_id: int
    name: str
    site: Node
    redundant_group: List["Switch"] = field(default_factory=list, repr=False)

    @property
    def level(self) -> int:
        return self.site.level

    @property
    def redundancy(self) -> int:
        """Number of switches sharing this site (>= 1)."""
        return max(1, len(self.redundant_group))


class SwitchFabric:
    """The set of switches serving a hierarchy, with path computation."""

    def __init__(self, tree: Tree, *, redundancy: int = 1):
        if redundancy < 1:
            raise ValueError(f"redundancy must be >= 1, got {redundancy}")
        self.tree = tree
        self.redundancy = redundancy
        self._switches: List[Switch] = []
        self._by_site: Dict[int, List[Switch]] = {}
        # The fabric (and the tree under it) is immutable after
        # construction, so paths between any two nodes never change:
        # memoise them per (src, dst) id pair.  Migrations and IPC
        # traffic ask for the same few paths every tick.
        self._path_cache: Dict[Tuple[int, int], List[Tuple[Switch, float]]] = {}
        self._hop_cache: Dict[Tuple[int, int], int] = {}
        next_id = 0
        for node in tree:
            if node.is_leaf:
                continue
            group: List[Switch] = []
            for r in range(redundancy):
                suffix = f"+{r}" if redundancy > 1 else ""
                switch = Switch(next_id, f"switch[{node.name}]{suffix}", node)
                next_id += 1
                group.append(switch)
                self._switches.append(switch)
            for switch in group:
                switch.redundant_group = group
            self._by_site[node.node_id] = group

    @property
    def switches(self) -> List[Switch]:
        """All switches, in deterministic creation order."""
        return list(self._switches)

    def at_level(self, level: int) -> List[Switch]:
        """All switches whose site is at ``level``."""
        return [s for s in self._switches if s.level == level]

    def at_site(self, node: Node) -> List[Switch]:
        """The (possibly redundant) switch group serving ``node``."""
        return list(self._by_site[node.node_id])

    def serving(self, server: Node) -> List[Switch]:
        """The level-1 switch group a server hangs off (its parent's)."""
        if server.parent is None:
            raise ValueError("root has no serving switch")
        return self.at_site(server.parent)

    def path(self, src: Node, dst: Node) -> List[Tuple[Switch, float]]:
        """Switches traversed by traffic from ``src`` to ``dst``.

        Returns ``(switch, share)`` pairs where ``share`` is the fraction
        of the flow crossing that switch (1/redundancy when a redundant
        pair splits the load).  The path climbs from ``src`` to the LCA
        and descends to ``dst``; each internal node on the path
        contributes its switch group once.
        """
        if src is dst:
            return []
        key = (src.node_id, dst.node_id)
        cached = self._path_cache.get(key)
        if cached is not None:
            return list(cached)
        lca = self.tree.lca(src, dst)
        sites: List[Node] = []
        node = src.parent
        while node is not None and node.level <= lca.level:
            sites.append(node)
            if node is lca:
                break
            node = node.parent
        down: List[Node] = []
        node = dst.parent
        while node is not None and node is not lca and node.level < lca.level:
            down.append(node)
            node = node.parent
        sites.extend(reversed(down))
        result: List[Tuple[Switch, float]] = []
        for site in sites:
            group = self._by_site[site.node_id]
            share = 1.0 / len(group)
            for switch in group:
                result.append((switch, share))
        self._path_cache[key] = result
        return list(result)

    def hop_count(self, src: Node, dst: Node) -> int:
        """Number of switch *sites* on the src->dst path."""
        key = (src.node_id, dst.node_id)
        cached = self._hop_cache.get(key)
        if cached is not None:
            return cached
        seen = set()
        for switch, _ in self.path(src, dst):
            seen.add(switch.site.node_id)
        self._hop_cache[key] = len(seen)
        return len(seen)
