"""The simulation environment: clock plus event loop.

The :class:`Environment` maintains a priority queue of ``(time, order,
event)`` entries.  ``order`` is a monotonically increasing counter so that
events scheduled for the same instant fire in FIFO order, which makes runs
fully deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process

__all__ = ["Environment", "SimulationError"]


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Environment:
    """Discrete-event simulation environment.

    Parameters
    ----------
    initial_time:
        Simulation clock value at the start of the run (default ``0.0``).

    Examples
    --------
    >>> env = Environment()
    >>> log = []
    >>> def proc(env):
    ...     yield env.timeout(2.0)
    ...     log.append(env.now)
    >>> _ = env.process(proc(env))
    >>> env.run()
    >>> log
    [2.0]
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, Event]] = []
        self._order = 0
        self._active_process: Optional[Process] = None

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new :class:`Process` running ``generator``."""
        return Process(self, generator)

    def all_of(self, events) -> AllOf:
        """Composite event firing when all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Composite event firing when any of ``events`` has fired."""
        return AnyOf(self, events)

    def call_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Run ``callback()`` at absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} which is before now={self._now}"
            )
        event = self.timeout(time - self._now)
        event.add_callback(lambda _event: callback())
        return event

    def call_every(
        self,
        interval: float,
        callback: Callable[[], None],
        *,
        start: Optional[float] = None,
    ) -> Process:
        """Run ``callback()`` every ``interval`` time units.

        The first call happens at ``start`` (default: one interval from
        now).  Returns the driving :class:`Process`, which can be
        interrupted to cancel the schedule.
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval}")
        first_delay = (start - self._now) if start is not None else interval
        if first_delay < 0:
            raise SimulationError("start time is in the past")

        def _ticker():
            yield self.timeout(first_delay)
            callback()
            while True:
                yield self.timeout(interval)
                callback()

        return self.process(_ticker())

    # -- scheduling (kernel internal) --------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        heapq.heappush(self._queue, (self._now + delay, self._order, event))
        self._order += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("no scheduled events")
        self._now, _, event = heapq.heappop(self._queue)
        callbacks, event.callbacks = event.callbacks, None
        assert callbacks is not None
        for callback in callbacks:
            callback(event)
        if event._ok is False and not getattr(event, "_defused", False):
            # An unhandled failure propagates out of the event loop.
            raise event._value

    def advance(self, dt: float) -> None:
        """Advance the clock by ``dt`` with nothing scheduled.

        Lock-step drivers (the federation coordinator) own the tick
        cadence themselves instead of scheduling timeout processes, so
        they need a way to move the clock that is equivalent to an
        empty ``timeout``.  Refuses to jump over scheduled events --
        that would silently reorder the simulation.
        """
        if dt < 0:
            raise SimulationError(f"negative advance {dt!r}")
        target = self._now + dt
        if self._queue and self._queue[0][0] <= target:
            raise SimulationError(
                f"cannot advance to {target}: an event is scheduled at "
                f"{self._queue[0][0]}"
            )
        self._now = target

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue empties or the clock reaches ``until``.

        When ``until`` is given, the clock is advanced exactly to
        ``until`` even if no event is scheduled at that instant.
        """
        if until is not None:
            if until < self._now:
                raise SimulationError(
                    f"until={until} is before current time {self._now}"
                )
            while self._queue and self._queue[0][0] <= until:
                self.step()
            self._now = max(self._now, float(until))
        else:
            while self._queue:
                self.step()
