"""Event primitives for the discrete-event kernel.

An :class:`Event` is a one-shot occurrence.  It starts *pending*, may be
*triggered* (scheduled to fire at a simulation time) and finally becomes
*processed* once its callbacks have run.  Events can succeed with a value
or fail with an exception; processes waiting on a failed event re-raise
the exception at their ``yield`` site.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.core import Environment

__all__ = ["Event", "Timeout", "Interrupt", "AllOf", "AnyOf", "ConditionValue"]

#: Sentinel for "no value yet"; distinguishes a pending event from one
#: that succeeded with ``None``.
_PENDING = object()


class Interrupt(Exception):
    """Raised inside a process that was interrupted by another process.

    The optional ``cause`` is available as ``exc.cause``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    Parameters
    ----------
    env:
        The owning environment.  The event is created pending; call
        :meth:`succeed` or :meth:`fail` to trigger it.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise RuntimeError("event is not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event succeeded (or failed) with."""
        if self._value is _PENDING:
            raise RuntimeError("event is not yet triggered")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value`` after ``delay``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event as failed; waiters re-raise ``exception``."""
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        if self.triggered:
            raise RuntimeError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env._schedule(self, delay)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event fires.

        If the event is already processed the callback runs immediately.
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed"
            if self.processed
            else ("triggered" if self.triggered else "pending")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after its creation."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay)


class ConditionValue(dict):
    """Mapping of event -> value for the events that fired in a condition."""


class _Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf` composite events."""

    def __init__(self, env: "Environment", events: Sequence[Event]):
        super().__init__(env)
        self._events = list(events)
        self._pending = 0
        for event in self._events:
            if event.env is not env:
                raise ValueError("all events must belong to the same environment")
        for event in self._events:
            if event.processed:
                self._on_fire(event)
            else:
                self._pending += 1
                event.add_callback(self._on_fire)
        self._check(initial=True)

    def _on_fire(self, event: Event) -> None:
        if event._ok is False and not self.triggered:
            self.fail(event._value)
            return
        if not event.processed:
            self._pending -= 1
        self._check(initial=False)

    def _collect(self) -> ConditionValue:
        result = ConditionValue()
        for event in self._events:
            if event.processed and event._ok:
                result[event] = event._value
        return result

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _check(self, initial: bool) -> None:
        if not self.triggered and self._satisfied():
            self.succeed(self._collect())


class AllOf(_Condition):
    """Fires once *all* the given events have fired.

    "Fired" means processed: a scheduled-but-pending Timeout does not
    count even though it is already *triggered*.
    """

    def _satisfied(self) -> bool:
        return all(event.processed and event._ok for event in self._events)


class AnyOf(_Condition):
    """Fires once *any* of the given events has fired."""

    def _satisfied(self) -> bool:
        return any(event.processed and event._ok for event in self._events)
