"""Reproducible named random streams.

Monte-Carlo simulations need *independent* random streams for logically
distinct noise sources (per-server demand, supply variation, placement,
...): otherwise changing how often one source draws perturbs every other
source.  :class:`RandomStreams` derives one :class:`numpy.random.Generator`
per name from a single root seed via ``numpy``'s ``SeedSequence.spawn``
mechanism, so streams are statistically independent and stable across
runs and across the order in which they are first requested.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

__all__ = ["RandomStreams"]

#: Domain-separation constant mixed into fork() derivations so a fork
#: can never collide with a named stream of the same root seed.
_FORK_DOMAIN = 0x666F726B  # "fork"


class RandomStreams:
    """A family of named, independent random generators.

    Parameters
    ----------
    seed:
        Root seed.  The same ``(seed, name)`` pair always yields a stream
        producing the same sequence.

    Examples
    --------
    >>> streams = RandomStreams(42)
    >>> a = streams["demand/server-0"].integers(0, 10, 3)
    >>> b = RandomStreams(42)["demand/server-0"].integers(0, 10, 3)
    >>> (a == b).all()
    np.True_
    """

    def __init__(self, seed: int = 0):
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = int(seed)
        self._generators: Dict[str, np.random.Generator] = {}

    def __getitem__(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for ``name``."""
        if name not in self._generators:
            # Derive a child seed from (root seed, name) so that stream
            # identity does not depend on creation order.
            digest = np.frombuffer(
                name.encode("utf-8") + b"\x00" * (4 - len(name) % 4 or 4),
                dtype=np.uint8,
            )
            entropy = [self.seed, *digest.tolist()]
            self._generators[name] = np.random.default_rng(
                np.random.SeedSequence(entropy)
            )
        return self._generators[name]

    def __contains__(self, name: str) -> bool:
        return name in self._generators

    def __len__(self) -> int:
        return len(self._generators)

    def fork(self, salt: int) -> "RandomStreams":
        """A new family with a seed derived from this one and ``salt``.

        Useful for replications: ``streams.fork(i)`` for replicate ``i``.

        The child seed is ``SeedSequence([root, _FORK_DOMAIN, salt])``
        collapsed to one 32-bit word — a documented, process-independent
        contract (unlike Python's ``hash``, which is neither specified
        nor stable for serialization purposes).
        """
        sequence = np.random.SeedSequence([self.seed, _FORK_DOMAIN, int(salt)])
        return RandomStreams(int(sequence.generate_state(1, dtype=np.uint32)[0]))

    def state_dict(self) -> Dict[str, Any]:
        """Serializable snapshot: root seed plus every realised stream.

        Only streams that have actually been requested are captured;
        restoring recreates them by name and overwrites their
        ``bit_generator.state``, so draws continue bit-exactly from the
        snapshot point.
        """
        return {
            "seed": self.seed,
            "streams": {
                name: gen.bit_generator.state
                for name, gen in self._generators.items()
            },
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`state_dict` snapshot in place.

        Generator objects are preserved (state is written through
        ``bit_generator.state``), so external references to a stream —
        e.g. a sensor bank holding ``streams["sensor-noise"]`` — observe
        the restored state without rebinding.
        """
        if int(state["seed"]) != self.seed:
            raise ValueError(
                f"stream snapshot was taken with seed {state['seed']}, "
                f"cannot restore into a family seeded with {self.seed}"
            )
        for name, generator_state in state["streams"].items():
            self[name].bit_generator.state = generator_state
