"""Shared-resource primitives for the DES kernel.

Standard discrete-event building blocks in the SimPy idiom:

* :class:`Resource` -- a counted semaphore; processes ``yield
  resource.request()``, hold a slot, and ``release`` it (or use the
  request as a context manager).
* :class:`Container` -- a continuous quantity (energy in a battery,
  watts in a budget) with ``put``/``get`` that block until satisfiable.
* :class:`Store` -- a FIFO of Python objects with blocking ``get``.

These are used by the queueing examples and available to downstream
users modelling, e.g., per-server admission queues or UPS batteries.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional

from repro.sim.core import Environment
from repro.sim.events import Event

__all__ = ["Resource", "Request", "Container", "Store"]


class Request(Event):
    """A pending claim on a :class:`Resource` slot."""

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        resource._grant_or_queue(self)

    def release(self) -> None:
        """Give the slot back (idempotent)."""
        self.resource._release(self)

    # Context-manager sugar: ``with resource.request() as req: yield req``
    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class Resource:
    """A counted semaphore with FIFO granting."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._holders: List[Request] = []
        self._waiting: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Slots currently held."""
        return len(self._holders)

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def request(self) -> Request:
        """Claim a slot; the returned event fires when granted."""
        return Request(self)

    def _grant_or_queue(self, request: Request) -> None:
        if len(self._holders) < self.capacity:
            self._holders.append(request)
            request.succeed(request)
        else:
            self._waiting.append(request)

    def _release(self, request: Request) -> None:
        if request in self._holders:
            self._holders.remove(request)
        elif request in self._waiting:
            self._waiting.remove(request)
            return
        else:
            return  # already released
        while self._waiting and len(self._holders) < self.capacity:
            nxt = self._waiting.popleft()
            self._holders.append(nxt)
            nxt.succeed(nxt)


class Container:
    """A continuous quantity with blocking put/get."""

    def __init__(
        self,
        env: Environment,
        capacity: float = float("inf"),
        initial: float = 0.0,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not 0.0 <= initial <= capacity:
            raise ValueError("initial level must lie in [0, capacity]")
        self.env = env
        self.capacity = capacity
        self.level = float(initial)
        self._getters: Deque[tuple] = deque()  # (amount, event)
        self._putters: Deque[tuple] = deque()

    def put(self, amount: float) -> Event:
        """Add ``amount``; fires once there is room."""
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        event = Event(self.env)
        self._putters.append((amount, event))
        self._settle()
        return event

    def get(self, amount: float) -> Event:
        """Remove ``amount``; fires once available."""
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        event = Event(self.env)
        self._getters.append((amount, event))
        self._settle()
        return event

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                amount, event = self._putters[0]
                if self.level + amount <= self.capacity + 1e-12:
                    self._putters.popleft()
                    self.level += amount
                    event.succeed(amount)
                    progressed = True
            if self._getters:
                amount, event = self._getters[0]
                if amount <= self.level + 1e-12:
                    self._getters.popleft()
                    self.level -= amount
                    event.succeed(amount)
                    progressed = True


class Store:
    """A FIFO of arbitrary items with blocking ``get``."""

    def __init__(self, env: Environment, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()

    def put(self, item: Any) -> Event:
        """Append ``item``; fires once there is room."""
        event = Event(self.env)
        self._putters.append((item, event))
        self._settle()
        return event

    def get(self) -> Event:
        """Pop the oldest item; fires once one exists."""
        event = Event(self.env)
        self._getters.append(event)
        self._settle()
        return event

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters and (
                self.capacity is None or len(self.items) < self.capacity
            ):
                item, event = self._putters.popleft()
                self.items.append(item)
                event.succeed(item)
                progressed = True
            if self._getters and self.items:
                event = self._getters.popleft()
                event.succeed(self.items.popleft())
                progressed = True
