"""Discrete-event simulation kernel.

This subpackage is the substrate that replaces the paper's MATLAB
simulation environment.  It provides a small but complete discrete-event
engine in the style of SimPy:

* :class:`~repro.sim.core.Environment` -- the event loop and simulation
  clock.
* :class:`~repro.sim.events.Event`, :class:`~repro.sim.events.Timeout`,
  :class:`~repro.sim.events.AllOf`, :class:`~repro.sim.events.AnyOf` --
  schedulable occurrences.
* :class:`~repro.sim.process.Process` -- generator-based coroutines that
  ``yield`` events to wait on them.
* :class:`~repro.sim.rng.RandomStreams` -- named, reproducible random
  substreams derived from a single root seed.

The kernel is deterministic: two runs with the same seed and the same
process structure produce identical event orderings (ties in time are
broken FIFO by insertion order).
"""

from repro.sim.core import Environment, SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Interrupt, Timeout
from repro.sim.process import Process
from repro.sim.resources import Container, Request, Resource, Store
from repro.sim.rng import RandomStreams

__all__ = [
    "AllOf",
    "Container",
    "Request",
    "Resource",
    "Store",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "RandomStreams",
    "SimulationError",
    "Timeout",
]
