"""Generator-based simulation processes.

A :class:`Process` drives a generator: every value the generator yields
must be an :class:`~repro.sim.events.Event`; the process suspends until
the event fires and is resumed with the event's value (or the event's
exception is thrown into it).  The process itself is an event that fires
with the generator's return value, so processes can wait on each other.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.sim.events import Event, Interrupt

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.core import Environment

__all__ = ["Process"]


class Process(Event):
    """A coroutine scheduled on an :class:`~repro.sim.core.Environment`.

    Do not instantiate directly; use :meth:`Environment.process`.
    """

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"process() requires a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._target: Event | None = None
        # Kick off the process immediately (at the current instant).
        init = Event(env)
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)
        env._schedule(init)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    @property
    def target(self) -> Event | None:
        """The event this process is currently waiting on."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point."""
        if not self.is_alive:
            raise RuntimeError("cannot interrupt a finished process")
        if self is self.env.active_process:
            raise RuntimeError("a process cannot interrupt itself")
        # Detach from whatever the process was waiting on, then resume it
        # with a failing event carrying the Interrupt.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - already detached
                pass
        wakeup = Event(self.env)
        wakeup._ok = False
        wakeup._value = Interrupt(cause)
        wakeup._defused = True
        wakeup.callbacks.append(self._resume)
        self.env._schedule(wakeup)

    # -- generator driving --------------------------------------------------
    def _resume(self, event: Event) -> None:
        self.env._active_process = self
        self._target = None

        # Drive the generator one step.  Invalid yields (non-events,
        # foreign events) are thrown back in; a process that catches
        # such an exception keeps running, so loop until a valid event
        # is yielded or the generator finishes.
        throw_in: BaseException | None = None
        if event._ok:
            send_value = event._value
        else:
            event._defused = True
            throw_in = event._value
        while True:
            try:
                if throw_in is not None:
                    next_event = self._generator.throw(throw_in)
                else:
                    next_event = self._generator.send(send_value)
            except StopIteration as stop:
                self.env._active_process = None
                self.succeed(stop.value)
                return
            except BaseException as error:
                self.env._active_process = None
                self.fail(error)
                return
            if not isinstance(next_event, Event):
                throw_in = TypeError(
                    f"process yielded a non-event: {next_event!r}"
                )
                continue
            if next_event.env is not self.env:
                throw_in = ValueError(
                    "yielded event belongs to a different environment"
                )
                continue
            break
        self.env._active_process = None
        if next_event.processed:
            # Already fired: resume at the current instant.
            relay = Event(self.env)
            relay._ok = next_event._ok
            relay._value = next_event._value
            if not next_event._ok:
                relay._defused = True
            relay.callbacks.append(self._resume)
            self.env._schedule(relay)
        else:
            self._target = next_event
            next_event.add_callback(self._resume)
