"""Decision-stability measurements (paper Sec. V-A, Property 4).

"A demand that has migrated from node n1 to node n2 remains in node n2
at least for time Delta_f" -- and the conclusion reports "no ping-pong
migrations were observed at least for a time Delta_f < 50 Delta_D".

A *ping-pong* is a VM returning to a host it left within a window; the
residence time of a VM on a host is the gap between consecutive moves.
Both are computed from the ``host_history`` each VM accumulates.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.workload.vm import VM

__all__ = ["residence_times", "min_residence_time", "count_ping_pongs"]


def residence_times(vm: VM, now: float) -> List[float]:
    """Time spent on each host the VM has occupied, including current.

    The final (still open) residence is measured up to ``now``.
    """
    history = vm.host_history
    times = []
    for (t0, _host), (t1, _next) in zip(history, history[1:]):
        times.append(t1 - t0)
    times.append(now - history[-1][0])
    return times


def min_residence_time(vms: Iterable[VM], now: float) -> float:
    """Smallest *completed* residence across all migrated VMs.

    This is the empirical Delta_f of Property 4: once a demand moves it
    stays put for at least this long.  Returns ``inf`` when no VM ever
    completed a residency (i.e. at most one move happened per VM).
    """
    best = float("inf")
    for vm in vms:
        history = vm.host_history
        # Every completed stay counts, including the initial placement.
        for (t0, _h0), (t1, _h1) in zip(history, history[1:]):
            best = min(best, t1 - t0)
    return best


def count_ping_pongs(vms: Iterable[VM], window: float) -> int:
    """Number of A->B->A bounces completed within ``window`` time units.

    A bounce is counted when a VM leaves host A, and returns to A with
    the round trip (departure to return) taking at most ``window``.
    """
    if window < 0:
        raise ValueError(f"window must be >= 0, got {window}")
    bounces = 0
    for vm in vms:
        history = vm.host_history
        for i in range(2, len(history)):
            t_return, host = history[i]
            t_depart, _previous_host = history[i - 1]
            _t_origin, origin_host = history[i - 2]
            if host == origin_host and (t_return - t_depart) <= window:
                bounces += 1
    return bounces
