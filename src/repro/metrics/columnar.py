"""Columnar, lazily-materialised metrics storage for batched ticks.

The fused federation tick produces per-tick *arrays* (wall power,
temperatures, utilization, ...), but :class:`~repro.metrics.collector.
MetricsCollector` stores per-sample dataclasses.  Building ~N dataclass
objects per tick is the single largest Python cost of the batched hot
path, and almost all of it is wasted: most runs only read the sample
lists once, at the end, if at all.

:class:`LazyList` keeps the collector contract -- it *is* a ``list``
and any read or mutation sees exactly the elements an eager append
loop would have produced, in the same order -- while letting the hot
path enqueue a *block* per tick: a zero-argument materialiser closing
over the tick's column arrays.  Blocks are expanded in FIFO order the
first time the list is observed, so the cost moves off the per-tick
path entirely and is only ever paid for lists someone actually reads.
"""

from __future__ import annotations

from typing import Callable, Iterable, List

__all__ = ["LazyList"]


class LazyList(list):
    """A ``list`` whose tail may still be queued as column blocks.

    ``push_block(fn)`` enqueues ``fn`` -- a callable returning an
    iterable of elements -- without running it.  Every observation of
    the list (iteration, ``len``, indexing, comparison, ``append``,
    ``sort``, ...) first drains the queue in order, so consumers can
    never tell the difference from an eagerly-built list.
    """

    def __init__(self, iterable: Iterable = ()):  # noqa: D107
        super().__init__(iterable)
        self._pending: List[Callable[[], Iterable]] = []

    # ------------------------------------------------------------- queue
    def push_block(self, materializer: Callable[[], Iterable]) -> None:
        """Enqueue a block; ``materializer()`` runs on first access."""
        self._pending.append(materializer)

    def _drain(self) -> None:
        pending = self._pending
        if pending:
            # Reset first: a materialiser that (indirectly) reads the
            # list must not re-enter the same queue.
            self._pending = []
            for block in pending:
                list.extend(self, block())

    # --------------------------------------------------------- observers
    def __len__(self):
        self._drain()
        return list.__len__(self)

    def __iter__(self):
        self._drain()
        return list.__iter__(self)

    def __reversed__(self):
        self._drain()
        return list.__reversed__(self)

    def __getitem__(self, index):
        self._drain()
        return list.__getitem__(self, index)

    def __contains__(self, item):
        self._drain()
        return list.__contains__(self, item)

    def __eq__(self, other):
        self._drain()
        if isinstance(other, LazyList):
            other._drain()
        return list.__eq__(self, other)

    def __ne__(self, other):
        return not self.__eq__(other)

    def __lt__(self, other):
        self._drain()
        if isinstance(other, LazyList):
            other._drain()
        return list.__lt__(self, other)

    def __le__(self, other):
        self._drain()
        if isinstance(other, LazyList):
            other._drain()
        return list.__le__(self, other)

    def __gt__(self, other):
        self._drain()
        if isinstance(other, LazyList):
            other._drain()
        return list.__gt__(self, other)

    def __ge__(self, other):
        self._drain()
        if isinstance(other, LazyList):
            other._drain()
        return list.__ge__(self, other)

    # Defining __eq__ resets __hash__ to None, which keeps LazyList
    # unhashable exactly like ``list``.

    def __repr__(self):
        self._drain()
        return list.__repr__(self)

    def __add__(self, other):
        self._drain()
        if isinstance(other, LazyList):
            other._drain()
        return list.__add__(self, other)

    def __mul__(self, value):
        self._drain()
        return list.__mul__(self, value)

    def __rmul__(self, value):
        self._drain()
        return list.__rmul__(self, value)

    def copy(self):
        self._drain()
        return list(self)

    def index(self, *args):
        self._drain()
        return list.index(self, *args)

    def count(self, item):
        self._drain()
        return list.count(self, item)

    # ---------------------------------------------------------- mutators
    def append(self, item):
        self._drain()
        list.append(self, item)

    def extend(self, iterable):
        self._drain()
        list.extend(self, iterable)

    def insert(self, index, item):
        self._drain()
        list.insert(self, index, item)

    def pop(self, *args):
        self._drain()
        return list.pop(self, *args)

    def remove(self, item):
        self._drain()
        list.remove(self, item)

    def clear(self):
        self._pending = []
        list.clear(self)

    def sort(self, **kw):
        self._drain()
        list.sort(self, **kw)

    def reverse(self):
        self._drain()
        list.reverse(self)

    def __setitem__(self, index, value):
        self._drain()
        list.__setitem__(self, index, value)

    def __delitem__(self, index):
        self._drain()
        list.__delitem__(self, index)

    def __iadd__(self, other):
        self._drain()
        if isinstance(other, LazyList):
            other._drain()
        list.extend(self, other)
        return self

    def __imul__(self, value):
        self._drain()
        result = list.__mul__(self, value)
        list.clear(self)
        list.extend(self, result)
        return self
