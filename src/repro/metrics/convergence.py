"""Convergence and complexity measurements (paper Sec. V-A1/V-A2).

* **delta-convergence**: an update at time t reaches every site by
  t + delta.  With one-way propagation through ``h`` levels and at most
  ``alpha_link`` seconds per level, ``delta = h * alpha_link``; the
  paper recommends ``Delta_D >= 10 * delta`` and concludes a value over
  500 ms is safe for realistic hierarchies.

* **decision-time scaling**: each level solves its bin-packing
  instances over at most ``b_l`` siblings, an O(b log b) constant, so a
  height-h tree decides in O(h) = O(log n).  We *measure* wall-clock
  planner time across balanced trees of growing size so the property is
  checked empirically rather than assumed.
"""

from __future__ import annotations

import time as _time
from typing import Callable, List, Sequence, Tuple

import numpy as np

__all__ = ["propagation_delay", "recommended_delta_d", "decision_time_scaling"]


def propagation_delay(height: int, per_level_latency: float) -> float:
    """Worst-case update propagation delay ``delta = h * alpha``.

    ``height`` counts the number of levels an update crosses (tree
    height minus one for leaf-to-root).
    """
    if height < 1:
        raise ValueError(f"height must be >= 1, got {height}")
    if per_level_latency < 0:
        raise ValueError("per_level_latency must be >= 0")
    return height * per_level_latency


def recommended_delta_d(
    height: int, per_level_latency: float, safety_factor: float = 10.0
) -> float:
    """The paper's conservative tick length: ``safety_factor * delta``."""
    if safety_factor <= 0:
        raise ValueError("safety_factor must be positive")
    return safety_factor * propagation_delay(height, per_level_latency)


def decision_time_scaling(
    sizes: Sequence[int],
    build_and_plan: Callable[[int], None],
    *,
    repeats: int = 3,
) -> List[Tuple[int, float]]:
    """Measure planner wall time across data-center sizes.

    ``build_and_plan(n)`` must construct a problem with ``n`` servers
    and run one full planning pass.  Returns ``(n, best_seconds)``
    pairs; the O(log n) check fits the growth rate downstream.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    results: List[Tuple[int, float]] = []
    for n in sizes:
        best = float("inf")
        for _ in range(repeats):
            start = _time.perf_counter()
            build_and_plan(int(n))
            best = min(best, _time.perf_counter() - start)
        results.append((int(n), best))
    return results


def fit_log_scaling(points: Sequence[Tuple[int, float]]) -> float:
    """Least-squares exponent of t ~ n^k; k near 0-1 is sub-linear-ish.

    A strict O(log n) claim shows up as an exponent well below 1 on the
    *per-decision* time once per-server constant work is removed; the
    benchmark reports the raw exponent for transparency.
    """
    points = [(n, t) for n, t in points if t > 0]
    if len(points) < 2:
        raise ValueError("need at least two positive timing points")
    ns = np.log([n for n, _ in points])
    ts = np.log([t for _, t in points])
    slope, _intercept = np.polyfit(ns, ts, 1)
    return float(slope)
