"""Per-site and global aggregation for federated runs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.metrics.summary import RunSummary, summarize_run

__all__ = ["FederationSummary", "summarize_federation"]


@dataclass(frozen=True)
class FederationSummary:
    """One-glance outcome of a federated run.

    ``sites`` maps each site name to its ordinary per-site
    :class:`~repro.metrics.summary.RunSummary`; the remaining fields
    aggregate the federation as a whole, including the coordinator's
    cross-site traffic.
    """

    sites: Dict[str, RunSummary]
    n_ticks: int
    total_fleet_power: float  # W, mean total across all sites
    peak_temperature: float  # deg C, worst site
    total_dropped_power: float  # W*ticks across all sites
    cross_migrations: int
    cross_watts: float  # demand watts shifted across sites
    #: Cross-site traffic per site: (vms_sent, vms_received).
    site_traffic: Dict[str, tuple]

    def format(self) -> str:
        lines = [
            f"sites={len(self.sites)} ticks={self.n_ticks}",
            f"fleet power (all sites) : {self.total_fleet_power:10.1f} W",
            f"peak temperature        : {self.peak_temperature:10.1f} C",
            f"dropped demand          : {self.total_dropped_power:10.1f} W*ticks",
            f"cross-site migrations   : {self.cross_migrations} "
            f"({self.cross_watts:.1f} W shifted)",
        ]
        for name in sorted(self.sites):
            summary = self.sites[name]
            sent, received = self.site_traffic.get(name, (0, 0))
            lines.append(
                f"  [{name}] dropped={summary.dropped_power:.1f} W*ticks "
                f"peak={summary.peak_temperature:.1f} C "
                f"sent={sent} recv={received}"
            )
        return "\n".join(lines)


def summarize_federation(coordinator) -> FederationSummary:
    """Aggregate a finished :class:`FederationCoordinator` run."""
    sites = {
        site.name: summarize_run(site.collector)
        for site in coordinator.sites
    }
    summaries = list(sites.values())
    return FederationSummary(
        sites=sites,
        n_ticks=max(s.n_ticks for s in summaries),
        total_fleet_power=float(
            sum(s.mean_fleet_power for s in summaries)
        ),
        peak_temperature=float(
            max(s.peak_temperature for s in summaries)
        ),
        total_dropped_power=float(
            sum(s.dropped_power for s in summaries)
        ),
        cross_migrations=len(coordinator.cross_migrations),
        cross_watts=coordinator.total_cross_watts(),
        site_traffic={
            site.name: (site.vms_sent, site.vms_received)
            for site in coordinator.sites
        },
    )
