"""Export recorded metrics to CSV / JSON for external analysis.

The collector's in-memory series are handy inside Python; downstream
users (plotting, spreadsheets, other languages) get flat files:

* :func:`export_csv` -- one CSV per record type into a directory;
* :func:`export_json` -- a single JSON document;
* :func:`load_json` -- round-trip loader (returns plain dicts/lists).
"""

from __future__ import annotations

import csv
import dataclasses
import json
from pathlib import Path
from typing import Any, Dict

from repro.metrics.collector import MetricsCollector

__all__ = ["export_csv", "export_json", "load_json"]


def _rows(records) -> list:
    return [dataclasses.asdict(r) for r in records]


def _normalise(record: Dict[str, Any]) -> Dict[str, Any]:
    out = {}
    for key, value in record.items():
        if hasattr(value, "value"):  # enums
            out[key] = value.value
        else:
            out[key] = value
    return out


def export_csv(collector: MetricsCollector, directory) -> Dict[str, Path]:
    """Write one CSV per record type; returns the written paths.

    Empty record types are skipped.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    tables = {
        "servers": _rows(collector.server_samples),
        "switches": _rows(collector.switch_samples),
        "migrations": _rows(collector.migrations),
        "drops": _rows(collector.drops),
        "messages": _rows(collector.messages),
    }
    written: Dict[str, Path] = {}
    for name, rows in tables.items():
        if not rows:
            continue
        rows = [_normalise(r) for r in rows]
        path = directory / f"{name}.csv"
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=list(rows[0]))
            writer.writeheader()
            writer.writerows(rows)
        written[name] = path
    if collector.imbalance:
        path = directory / "imbalance.csv"
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["time", "imbalance_watts"])
            writer.writerows(collector.imbalance)
        written["imbalance"] = path
    return written


def export_json(collector: MetricsCollector, path) -> Path:
    """Write the whole collector as one JSON document."""
    path = Path(path)
    document = {
        "servers": [_normalise(r) for r in _rows(collector.server_samples)],
        "switches": [_normalise(r) for r in _rows(collector.switch_samples)],
        "migrations": [_normalise(r) for r in _rows(collector.migrations)],
        "drops": [_normalise(r) for r in _rows(collector.drops)],
        "messages": [_normalise(r) for r in _rows(collector.messages)],
        "imbalance": [
            {"time": t, "imbalance_watts": w} for t, w in collector.imbalance
        ],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=1))
    return path


def load_json(path) -> Dict[str, Any]:
    """Load a document written by :func:`export_json`."""
    return json.loads(Path(path).read_text())
