"""Export recorded metrics to CSV / JSON for external analysis.

The collector's in-memory series are handy inside Python; downstream
users (plotting, spreadsheets, other languages) get flat files:

* :func:`export_csv` -- one CSV per record type into a directory;
* :func:`export_json` -- a single JSON document;
* :func:`load_json` -- round-trip loader (returns plain dicts/lists).

The table set is derived from :class:`MetricsCollector`'s dataclass
fields (:func:`record_tables`), not hand-listed: every list-valued
field exports, so adding a record series to the collector automatically
adds its table here.  (A hand-written table list once silently dropped
``unmatched_deficits`` and ``plant_events`` -- the whole fault
telemetry of a run; ``tests/test_metrics_export.py`` now asserts the
field-to-table coverage introspectively.)
"""

from __future__ import annotations

import csv
import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, List

from repro.metrics.collector import MetricsCollector

__all__ = ["export_csv", "export_json", "load_json", "record_tables"]

#: Collector field -> exported table name, where they differ (the
#: original export shipped the sample series under shorter names).
_TABLE_NAMES = {"server_samples": "servers", "switch_samples": "switches"}

#: Column names for series stored as plain tuples instead of dataclasses.
_TUPLE_COLUMNS = {"imbalance": ("time", "imbalance_watts")}


def record_tables(collector: MetricsCollector) -> Dict[str, list]:
    """Every record series of the collector, keyed by exported name.

    Introspects the dataclass: all list-valued fields are record series
    (non-list fields, like the forwarding tracer, are not).
    """
    tables: Dict[str, list] = {}
    for field in dataclasses.fields(type(collector)):
        value = getattr(collector, field.name)
        if not isinstance(value, list):
            continue
        tables[_TABLE_NAMES.get(field.name, field.name)] = value
    return tables


def _normalise(record: Dict[str, Any]) -> Dict[str, Any]:
    out = {}
    for key, value in record.items():
        if hasattr(value, "value"):  # enums
            out[key] = value.value
        else:
            out[key] = value
    return out


def _table_rows(name: str, records: list) -> List[Dict[str, Any]]:
    if name in _TUPLE_COLUMNS:
        columns = _TUPLE_COLUMNS[name]
        return [dict(zip(columns, record)) for record in records]
    return [_normalise(dataclasses.asdict(r)) for r in records]


def export_csv(collector: MetricsCollector, directory) -> Dict[str, Path]:
    """Write one CSV per record type; returns the written paths.

    Empty record types are skipped.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: Dict[str, Path] = {}
    for name, records in record_tables(collector).items():
        rows = _table_rows(name, records)
        if not rows:
            continue
        path = directory / f"{name}.csv"
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=list(rows[0]))
            writer.writeheader()
            writer.writerows(rows)
        written[name] = path
    return written


def export_json(collector: MetricsCollector, path) -> Path:
    """Write the whole collector as one JSON document."""
    path = Path(path)
    document = {
        name: _table_rows(name, records)
        for name, records in record_tables(collector).items()
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=1))
    return path


def load_json(path) -> Dict[str, Any]:
    """Load a document written by :func:`export_json`."""
    return json.loads(Path(path).read_text())
