"""Measurement: per-tick time series, stability checks, convergence.

* :mod:`repro.metrics.collector` -- the :class:`MetricsCollector` every
  controller writes into; exposes the series behind Figs. 5-12 and
  15-19.
* :mod:`repro.metrics.stability` -- ping-pong detection and the
  Property-4 residence-time check.
* :mod:`repro.metrics.convergence` -- delta-convergence estimation and
  the O(log n) decision-complexity measurement (Sec. V-A).
* :mod:`repro.metrics.summary` -- aggregation helpers shared by the
  experiment harness.
* :mod:`repro.metrics.federation` -- per-site + global aggregation for
  federated runs.
"""

from repro.metrics.collector import MetricsCollector, ServerSample, SwitchSample
from repro.metrics.federation import FederationSummary, summarize_federation
from repro.metrics.stability import (
    count_ping_pongs,
    min_residence_time,
    residence_times,
)
from repro.metrics.convergence import (
    decision_time_scaling,
    propagation_delay,
    recommended_delta_d,
)
from repro.metrics.summary import (
    RunSummary,
    mean_by_server,
    series_by_server,
    summarize_run,
)

__all__ = [
    "FederationSummary",
    "MetricsCollector",
    "RunSummary",
    "summarize_federation",
    "summarize_run",
    "ServerSample",
    "SwitchSample",
    "count_ping_pongs",
    "decision_time_scaling",
    "mean_by_server",
    "min_residence_time",
    "propagation_delay",
    "recommended_delta_d",
    "residence_times",
    "series_by_server",
]
