"""Aggregation helpers shared by experiments and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.core.events import MigrationCause
from repro.metrics.collector import MetricsCollector

__all__ = [
    "RunSummary",
    "mean_by_server",
    "mean_by_switch_level",
    "series_by_server",
    "summarize_run",
]


@dataclass(frozen=True)
class RunSummary:
    """One-glance outcome of a controller run."""

    n_servers: int
    n_ticks: int
    mean_fleet_power: float  # W, total across servers
    peak_temperature: float  # deg C
    demand_migrations: int
    consolidation_migrations: int
    local_migration_fraction: float
    dropped_power: float  # W*ticks
    asleep_fraction: float  # server-ticks asleep / total
    #: Deficits the matcher left in place (VM runs degraded on its
    #: host); distinct from `dropped_power`, the watts actually shed.
    unmatched_count: int = 0
    unmatched_watts: float = 0.0  # W*ticks
    #: Plant-fault transitions by kind (empty for an ideal plant).
    plant_events: Dict[str, int] = field(default_factory=dict)

    def format(self) -> str:
        lines = [
            f"servers={self.n_servers} ticks={self.n_ticks}",
            f"fleet power          : {self.mean_fleet_power:10.1f} W",
            f"peak temperature     : {self.peak_temperature:10.1f} C",
            f"migrations           : {self.demand_migrations} demand, "
            f"{self.consolidation_migrations} consolidation "
            f"({self.local_migration_fraction:.0%} local)",
            f"dropped demand       : {self.dropped_power:10.1f} W*ticks",
            f"unmatched deficits   : {self.unmatched_count} "
            f"({self.unmatched_watts:.1f} W*ticks degraded in place)",
            f"server-ticks asleep  : {self.asleep_fraction:10.1%}",
        ]
        if self.plant_events:
            counts = ", ".join(
                f"{kind}={count}"
                for kind, count in sorted(self.plant_events.items())
            )
            lines.append(f"plant events         : {counts}")
        return "\n".join(lines)


def summarize_run(collector: MetricsCollector) -> RunSummary:
    """Aggregate a finished run into a :class:`RunSummary`."""
    if not collector.server_samples:
        raise ValueError("no server samples recorded")
    times = collector.times()
    n_ticks = len(times)
    server_ids = collector.server_ids()
    mean_fleet_power = float(
        sum(collector.mean_server(i, "power") for i in server_ids)
    )
    peak_temperature = float(
        max(s.temperature for s in collector.server_samples)
    )
    local_fraction = collector.local_fraction()
    return RunSummary(
        n_servers=len(server_ids),
        n_ticks=n_ticks,
        mean_fleet_power=mean_fleet_power,
        peak_temperature=peak_temperature,
        demand_migrations=collector.migration_count(MigrationCause.DEMAND),
        consolidation_migrations=collector.migration_count(
            MigrationCause.CONSOLIDATION
        ),
        local_migration_fraction=(
            0.0 if np.isnan(local_fraction) else local_fraction
        ),
        dropped_power=collector.total_dropped_power(),
        asleep_fraction=float(
            np.mean([s.asleep for s in collector.server_samples])
        ),
        unmatched_count=len(collector.unmatched_deficits),
        unmatched_watts=collector.total_unmatched_power(),
        plant_events=collector.plant_event_counts(),
    )


def mean_by_server(
    collector: MetricsCollector, attribute: str
) -> Dict[int, float]:
    """Run-average of one server attribute, keyed by server id."""
    return {
        server_id: collector.mean_server(server_id, attribute)
        for server_id in collector.server_ids()
    }


def series_by_server(
    collector: MetricsCollector, attribute: str
) -> Dict[int, np.ndarray]:
    """Full time series of one attribute per server."""
    return {
        server_id: collector.server_series(server_id, attribute)
        for server_id in collector.server_ids()
    }


def mean_by_switch_level(
    collector: MetricsCollector, level: int, attribute: str
) -> Dict[int, float]:
    """Run-average of one switch attribute over switches at ``level``."""
    return {
        switch_id: collector.mean_switch(switch_id, attribute)
        for switch_id in collector.switch_ids(level=level)
    }


def fleet_mean(collector: MetricsCollector, attribute: str) -> float:
    """Average of a server attribute over all servers and ticks."""
    values: List[float] = [
        getattr(s, attribute) for s in collector.server_samples
    ]
    if not values:
        raise ValueError("no server samples recorded")
    return float(np.mean(values))
