"""Time-series collection for Willow runs.

The collector is deliberately dumb: controllers append samples and
events; analysis happens in :mod:`repro.metrics.summary` and the
experiment modules.  All series convert to NumPy arrays on demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.events import (
    ControlMessage,
    Drop,
    Migration,
    MigrationCause,
    PlantEvent,
)
from repro.trace.tracer import NULL_TRACER, Tracer

__all__ = ["ServerSample", "SwitchSample", "MetricsCollector"]


@dataclass(frozen=True, slots=True)
class ServerSample:
    """One server's physical state at one tick."""

    time: float
    server_id: int
    power: float  # wall watts drawn this tick
    temperature: float  # deg C at end of tick
    utilization: float  # fraction of dynamic range
    demand: float  # wall watts wanted this tick
    budget: float  # wall watts allocated
    asleep: bool


@dataclass(frozen=True, slots=True)
class SwitchSample:
    """One switch's state at one tick."""

    time: float
    switch_id: int
    level: int
    base_traffic: float  # served-demand units
    migration_traffic: float  # migration units
    power: float  # watts


@dataclass
class MetricsCollector:
    """Accumulates everything a Willow evaluation reports."""

    server_samples: List[ServerSample] = field(default_factory=list)
    switch_samples: List[SwitchSample] = field(default_factory=list)
    migrations: List[Migration] = field(default_factory=list)
    drops: List[Drop] = field(default_factory=list)
    #: Deficit demand the matcher could not place (the VM stays on its
    #: host and runs degraded; actual unserved watts appear in `drops`).
    unmatched_deficits: List[Drop] = field(default_factory=list)
    messages: List[ControlMessage] = field(default_factory=list)
    imbalance: List[tuple] = field(default_factory=list)  # (time, watts)
    #: Physical-plant fault transitions (crashes, sensor quarantines,
    #: circuit trips, cooling events and their recoveries).
    plant_events: List[PlantEvent] = field(default_factory=list)
    #: Forwarding sink for the observability layer: drops, unmatched
    #: deficits, plant events and the imbalance residual also land in
    #: the owning controller's open trace frame.  Not a record series
    #: (excluded from export/round-trip by not being a list field).
    tracer: Tracer = field(default=NULL_TRACER, repr=False, compare=False)

    # -- recording ---------------------------------------------------------
    def record_server(self, sample: ServerSample) -> None:
        self.server_samples.append(sample)

    def record_switch(self, sample: SwitchSample) -> None:
        self.switch_samples.append(sample)

    def record_migration(self, migration: Migration) -> None:
        self.migrations.append(migration)

    def record_drop(self, drop: Drop) -> None:
        self.drops.append(drop)
        if self.tracer.enabled:
            self.tracer.record_drop(drop.node_id, drop.vm_id, drop.power)

    def record_unmatched(self, drop: Drop) -> None:
        self.unmatched_deficits.append(drop)
        if self.tracer.enabled:
            self.tracer.record_unmatched(drop.node_id, drop.vm_id, drop.power)

    def record_message(self, message: ControlMessage) -> None:
        self.messages.append(message)

    def record_imbalance(self, time: float, watts: float) -> None:
        self.imbalance.append((time, watts))
        if self.tracer.enabled:
            self.tracer.record_imbalance(watts)

    def record_plant_event(self, event: PlantEvent) -> None:
        self.plant_events.append(event)
        if self.tracer.enabled:
            self.tracer.record_event(event.kind, event.node_id, event.detail)

    # -- plant faults --------------------------------------------------------
    def plant_event_counts(self) -> Dict[str, int]:
        """Number of plant-fault transitions per event kind."""
        counts: Dict[str, int] = {}
        for event in self.plant_events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def plant_events_for(self, node_id: int) -> List[PlantEvent]:
        """Time-ordered plant events touching one node."""
        return [e for e in self.plant_events if e.node_id == node_id]

    # -- server series -------------------------------------------------------
    def server_ids(self) -> List[int]:
        """Distinct server ids, sorted."""
        return sorted({s.server_id for s in self.server_samples})

    def server_series(self, server_id: int, attribute: str) -> np.ndarray:
        """Time-ordered values of ``attribute`` for one server."""
        return np.array(
            [
                getattr(s, attribute)
                for s in self.server_samples
                if s.server_id == server_id
            ]
        )

    def mean_server(self, server_id: int, attribute: str) -> float:
        """Run-average of ``attribute`` for one server."""
        series = self.server_series(server_id, attribute)
        if series.size == 0:
            raise ValueError(f"no samples for server {server_id}")
        return float(series.mean())

    def times(self) -> np.ndarray:
        """Distinct sample times, sorted."""
        return np.unique([s.time for s in self.server_samples])

    def total_energy(self) -> float:
        """Sum of server power over all samples (W * ticks)."""
        return float(sum(s.power for s in self.server_samples))

    # -- migrations ----------------------------------------------------------
    def migrations_by_cause(self, cause: MigrationCause) -> List[Migration]:
        return [m for m in self.migrations if m.cause is cause]

    def migration_count(self, cause: Optional[MigrationCause] = None) -> int:
        if cause is None:
            return len(self.migrations)
        return len(self.migrations_by_cause(cause))

    def migration_times(self) -> np.ndarray:
        return np.array([m.time for m in self.migrations])

    def migrations_per_tick(self, horizon: float) -> np.ndarray:
        """Histogram of migration counts per unit-time bucket."""
        counts = np.zeros(int(np.ceil(horizon)), dtype=int)
        for m in self.migrations:
            index = int(m.time)
            if 0 <= index < len(counts):
                counts[index] += 1
        return counts

    def local_fraction(self) -> float:
        """Fraction of migrations that stayed within the parent group."""
        if not self.migrations:
            return float("nan")
        return sum(1 for m in self.migrations if m.local) / len(self.migrations)

    # -- drops -----------------------------------------------------------------
    def total_dropped_power(self) -> float:
        return float(sum(d.power for d in self.drops))

    def total_unmatched_power(self) -> float:
        """Deficit watts left degrading in place (never placed elsewhere)."""
        return float(sum(d.power for d in self.unmatched_deficits))

    # -- switches ----------------------------------------------------------------
    def switch_ids(self, level: Optional[int] = None) -> List[int]:
        ids = {
            s.switch_id
            for s in self.switch_samples
            if level is None or s.level == level
        }
        return sorted(ids)

    def switch_series(self, switch_id: int, attribute: str) -> np.ndarray:
        return np.array(
            [
                getattr(s, attribute)
                for s in self.switch_samples
                if s.switch_id == switch_id
            ]
        )

    def mean_switch(self, switch_id: int, attribute: str) -> float:
        series = self.switch_series(switch_id, attribute)
        if series.size == 0:
            raise ValueError(f"no samples for switch {switch_id}")
        return float(series.mean())

    # -- messages -----------------------------------------------------------------
    def messages_per_link_per_tick(self) -> Dict[tuple, int]:
        """Max message count observed on any (link, tick) pair, per link."""
        counts: Dict[tuple, int] = {}
        for msg in self.messages:
            key = (msg.link, msg.time)
            counts[key] = counts.get(key, 0) + 1
        worst: Dict[tuple, int] = {}
        for (link, _time), count in counts.items():
            worst[link] = max(worst.get(link, 0), count)
        return worst
