"""Learned federation schedulers: CEM search, bandit, policy adapter.

Two deliberately small learners -- this is a systems repo, not an RL
library, and both are dependency-free and deterministic per seed:

* :class:`CEMAgent` -- cross-entropy method over the two-gain linear
  scheduler family :func:`~repro.gym.actions.linear_shift_matrix`.
  The search mean starts *at* proportional (``theta = [1, 0]``), the
  incumbent is always re-evaluated with each population, and the best
  parameters ever seen are kept -- so the trained agent can match but
  never lose to the proportional baseline on its training objective.
* :class:`BanditAgent` -- epsilon-greedy policy switching over the
  registry arms in the env's ``"policy"`` action mode: per-window
  selection among shipped policies, the lightest possible "learned"
  scheduler.

:class:`LearnedPolicy` closes the loop: it wraps a trained decision
function as a first-class federation policy -- callable with either the
plain ``(statuses, margin=...)`` signature or the planner's
forecast-aware keyword set -- and can register into
:data:`~repro.federation.policies.POLICIES`, after which the CLI, the
batched fleet coordinator, and the experiments harness can all run it
by name.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.federation.policies import (
    POLICIES,
    Transfer,
    register_policy,
    unregister_policy,
)
from repro.gym.actions import (
    linear_shift_matrix,
    matrix_to_transfers,
    project_shift_matrix,
)
from repro.sim.rng import RandomStreams

__all__ = ["CEMAgent", "BanditAgent", "LearnedPolicy", "linear_policy_fn"]


def linear_policy_fn(theta: Sequence[float]) -> Callable:
    """Freeze ``theta`` into a ``(statuses, forecasts, margin)`` fn."""
    frozen = tuple(float(t) for t in theta)

    def decide(statuses, forecasts, margin: float = 0.0) -> List[Transfer]:
        matrix = linear_shift_matrix(statuses, forecasts, frozen, margin)
        projected = project_shift_matrix(statuses, matrix, margin)
        return matrix_to_transfers(statuses, projected)

    decide.theta = frozen
    return decide


class CEMAgent:
    """Cross-entropy search over the linear scheduler gains.

    Maintains a Gaussian over ``theta = [g_react, g_pre]``; each
    iteration draws a population (the current mean is always member 0),
    rolls one episode per member, refits mean/std to the elite fraction,
    and tracks the best-ever member by ``(dropped demand, scalar
    return)``.  ``theta0`` defaults to proportional's gains, so the
    best-ever can only improve on the baseline.
    """

    def __init__(
        self,
        *,
        theta0: Sequence[float] = (1.0, 0.0),
        std0: Sequence[float] = (0.5, 0.5),
        population: int = 8,
        elite_frac: float = 0.375,
        min_std: float = 0.02,
        seed: int = 0,
        reset_seed: Optional[int] = None,
    ):
        if population < 2:
            raise ValueError(f"population must be >= 2, got {population}")
        self.mean = np.asarray(theta0, dtype=float).copy()
        self.std = np.asarray(std0, dtype=float).copy()
        self.population = int(population)
        self.n_elite = max(1, int(round(elite_frac * population)))
        self.min_std = float(min_std)
        self.streams = RandomStreams(seed)
        #: When set, every rollout resets the env to this seed's first
        #: episode -- train on one fixed scenario (the smoke setup)
        #: instead of a fresh episode per member.
        self.reset_seed = reset_seed
        self.best_theta = tuple(self.mean)
        self.best_score: Optional[tuple] = None
        self.history: List[dict] = []
        self._iteration = 0

    def act(self, env_info, theta: Optional[Sequence[float]] = None):
        """The shift matrix for one env observation (``matrix`` mode)."""
        gains = self.best_theta if theta is None else theta
        return linear_shift_matrix(
            env_info["statuses"],
            env_info["forecasts"],
            gains,
            env_info["margin"],
        )

    def rollout(self, env, theta: Sequence[float]) -> dict:
        """One episode under fixed gains; returns the episode totals."""
        _obs, info = env.reset(seed=self.reset_seed)
        total_reward = 0.0
        dropped = violations = 0.0
        truncated = False
        while not truncated:
            action = self.act(info, theta)
            _obs, reward, _term, truncated, info = env.step(action)
            total_reward += reward
            dropped += info["reward_vector"]["dropped"]
            violations += info["reward_vector"]["violations"]
        return {
            "theta": tuple(float(t) for t in theta),
            "return": total_reward,
            "dropped": dropped,
            "violations": violations,
        }

    def train(self, env, iterations: int = 3) -> dict:
        """Run CEM for ``iterations`` populations; returns the best."""
        for _ in range(iterations):
            rng = self.streams.fork(self._iteration)["cem/population"]
            self._iteration += 1
            population = [np.asarray(self.mean).copy()]
            for _ in range(self.population - 1):
                population.append(
                    self.mean + self.std * rng.standard_normal(len(self.mean))
                )
            scored = []
            for member in population:
                result = self.rollout(env, member)
                # Lexicographic: dropped demand first, scalar return as
                # the tie-breaker -- the smoke contract is on dropped.
                score = (result["dropped"], -result["return"])
                scored.append((score, member, result))
                if self.best_score is None or score < self.best_score:
                    self.best_score = score
                    self.best_theta = result["theta"]
            scored.sort(key=lambda item: item[0])
            elite = np.stack([member for _s, member, _r in scored[: self.n_elite]])
            self.mean = elite.mean(axis=0)
            self.std = np.maximum(elite.std(axis=0), self.min_std)
            self.history.append(
                {
                    "iteration": self._iteration,
                    "mean": tuple(self.mean),
                    "best": scored[0][2],
                }
            )
        return {"theta": self.best_theta, "score": self.best_score}

    def policy_fn(self) -> Callable:
        """The best-so-far gains as a frozen decision function."""
        return linear_policy_fn(self.best_theta)


class BanditAgent:
    """Epsilon-greedy policy switching (env ``"policy"`` action mode).

    Treats each registry arm as a bandit arm with the per-window scalar
    reward as payoff; incremental-mean value estimates, deterministic
    exploration stream, greedy ties broken by arm order.
    """

    def __init__(
        self,
        n_arms: int,
        *,
        epsilon: float = 0.1,
        seed: int = 0,
    ):
        if n_arms < 1:
            raise ValueError(f"n_arms must be >= 1, got {n_arms}")
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
        self.n_arms = int(n_arms)
        self.epsilon = float(epsilon)
        self.counts = np.zeros(self.n_arms, dtype=int)
        self.values = np.zeros(self.n_arms, dtype=float)
        self._rng = RandomStreams(seed)["bandit/explore"]

    def select(self) -> int:
        if self._rng.random() < self.epsilon:
            return int(self._rng.integers(self.n_arms))
        return int(np.argmax(self.values))

    def update(self, arm: int, reward: float) -> None:
        self.counts[arm] += 1
        self.values[arm] += (reward - self.values[arm]) / self.counts[arm]

    def train(self, env, episodes: int = 5) -> dict:
        """Roll episodes, updating per-window; returns value estimates."""
        for _ in range(episodes):
            _obs, _info = env.reset()
            truncated = False
            while not truncated:
                arm = self.select()
                _obs, reward, _term, truncated, _info = env.step(arm)
                self.update(arm, reward)
        return {
            "values": tuple(self.values),
            "counts": tuple(int(c) for c in self.counts),
            "best_arm": int(np.argmax(self.values)),
        }


class LearnedPolicy:
    """A trained decision function as a first-class federation policy.

    Wraps ``fn(statuses, forecasts, margin) -> [Transfer]`` so the
    coordinator can call it either myopically (``forecasts=None``) or
    through the predictive planner's forecast-aware keyword protocol.
    With ``forecast_aware=True``, run it via ``run_federation(policy=
    learned, horizon=K)`` and the planner feeds it the same
    ``site_forecasts`` the gym env observes -- the round-trip pinned by
    ``tests/test_gym.py``.

    Use as a context manager (or :meth:`register`/:meth:`unregister`)
    to make it addressable by name in
    :data:`~repro.federation.policies.POLICIES`.
    """

    def __init__(
        self,
        fn: Callable,
        *,
        name: str = "learned",
        forecast_aware: bool = True,
    ):
        self.fn = fn
        self.policy_name = name
        self.forecast_aware = bool(forecast_aware)

    def __call__(
        self,
        statuses,
        *,
        margin: float = 0.0,
        forecasts=None,
        **_planner_kwargs,
    ) -> List[Transfer]:
        return self.fn(statuses, forecasts, margin)

    def register(self) -> "LearnedPolicy":
        register_policy(self.policy_name, self, forecast_aware=self.forecast_aware)
        return self

    def unregister(self) -> None:
        if POLICIES.get(self.policy_name) is self:
            unregister_policy(self.policy_name)

    def __enter__(self) -> "LearnedPolicy":
        return self.register()

    def __exit__(self, *exc) -> None:
        self.unregister()
