"""Train and score learned schedulers against the shipped policies.

Everything here runs the *same* scenario two ways and checks they
agree: learned agents roll episodes inside :class:`WillowFedEnv`, while
the baselines run the identical site specs straight through
:func:`~repro.federation.coordinator.run_federation`.  Costs are
accounted identically on both paths (warm-up window excluded, the env's
reward components), so a table row is a like-for-like comparison and
the smoke contract -- trained CEM beats ``neutral`` and never loses to
``proportional`` on dropped demand, with zero thermal violations -- is
meaningful.

``make gym-smoke`` runs :func:`smoke`; the ``repro gym`` CLI subcommand
and ``experiments/fig_gym.py`` both drive :func:`compare`.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.gym.agents import BanditAgent, CEMAgent
from repro.gym.env import GymConfig, REWARD_COMPONENTS, WillowFedEnv

__all__ = [
    "episode_costs",
    "run_baseline",
    "rollout_episode",
    "train_cem",
    "train_bandit",
    "compare",
    "smoke",
]

#: Default scenario: 2 anti-phased solar sites, 23 decision windows
#: (96 ticks, one solar day), no battery -- small enough for CI, rich
#: enough that shifting beats isolation.
SMOKE_CONFIG = GymConfig(n_sites=2, windows=23, horizon=4)


def episode_costs(coordinator, *, warmup_ticks: int) -> Dict[str, float]:
    """The env's cost vector, recomputed over a finished coordinator.

    Mirrors ``WillowFedEnv`` reward accounting: drops and samples from
    the warm-up window (the first ``warmup_ticks`` ticks, which precede
    the first decision) are excluded, WAN energy is charged per
    cross-site migration at both ends.  Carbon uses each site's
    intensity at the sample's own tick (the env uses the window-start
    intensity; identical here because the scenario's carbon signal is
    constant).
    """
    delta_d = coordinator.delta_d
    cutoff = warmup_ticks * delta_d - 1e-9
    vector = dict.fromkeys(REWARD_COMPONENTS, 0.0)
    for site in coordinator.sites:
        t_limit = site.config.thermal.t_limit
        vector["dropped"] += (
            sum(d.power for d in site.collector.drops if d.time >= cutoff)
            * delta_d
        )
        for sample in site.collector.server_samples:
            if sample.time < cutoff:
                continue
            energy = sample.power * delta_d
            vector["energy"] += energy
            vector["carbon"] += energy * site.carbon_at(sample.time)
            if sample.temperature > t_limit + 1e-9:
                vector["violations"] += 1
    for migration in coordinator.cross_migrations:
        _, ticks = coordinator._wan_cost(coordinator.site(migration.dst_site))
        vector["wan_energy"] += (
            2.0 * migration.wan_cost_power * ticks * delta_d
        )
    return vector


def run_baseline(
    policy: str,
    env: WillowFedEnv,
    *,
    horizon: int = 0,
) -> Dict[str, float]:
    """Run a registry policy on the env's current episode scenario.

    Uses :meth:`WillowFedEnv.episode_specs` (fresh specs, same seed)
    and the env's exact margin/WAN/forecast configuration, so the
    resulting cost vector is directly comparable to an env rollout.
    """
    from repro.federation.coordinator import run_federation

    config = env.config
    coordinator = run_federation(
        env.episode_specs(),
        n_ticks=env.n_ticks,
        policy=policy,
        wan_cost_power=config.wan_cost_power,
        wan_cost_ticks=config.wan_cost_ticks,
        margin=config.margin,
        horizon=horizon,
        forecast=config.forecast,
        vectorized=config.vectorized,
    )
    costs = episode_costs(coordinator, warmup_ticks=coordinator.eta1)
    costs["return"] = config.weights.scalarize(
        {k: costs[k] for k in REWARD_COMPONENTS}
    )
    costs["moves"] = len(coordinator.cross_migrations)
    return costs


def rollout_episode(env: WillowFedEnv, act, *, seed=None) -> Dict[str, float]:
    """Roll one episode; ``act(obs, info) -> action``.  Returns totals."""
    obs, info = env.reset(seed=seed)
    totals = dict.fromkeys(REWARD_COMPONENTS, 0.0)
    totals["return"] = 0.0
    moves = 0
    truncated = False
    while not truncated:
        obs, reward, _term, truncated, info = env.step(act(obs, info))
        totals["return"] += reward
        for name in REWARD_COMPONENTS:
            totals[name] += info["reward_vector"][name]
        moves += len(info["transfers"])
    totals["moves"] = moves
    return totals


def train_cem(
    config: Optional[GymConfig] = None,
    *,
    scenario_seed: int = 0,
    agent_seed: int = 0,
    iterations: int = 2,
    population: int = 6,
) -> CEMAgent:
    """CEM on one fixed scenario; returns the trained agent."""
    config = config or SMOKE_CONFIG
    if config.action_mode != "matrix":
        raise ValueError("CEM trains in the 'matrix' action mode")
    env = WillowFedEnv(config)
    agent = CEMAgent(
        population=population, seed=agent_seed, reset_seed=scenario_seed
    )
    agent.train(env, iterations=iterations)
    return agent


def train_bandit(
    config: Optional[GymConfig] = None,
    *,
    scenario_seed: int = 0,
    agent_seed: int = 0,
    episodes: int = 4,
    epsilon: float = 0.2,
) -> BanditAgent:
    """Epsilon-greedy policy switching on the ``"policy"`` mode env."""
    base = config or SMOKE_CONFIG
    if base.action_mode != "policy":
        from dataclasses import replace

        base = replace(base, action_mode="policy")
    env = WillowFedEnv(base)
    agent = BanditAgent(
        len(base.policy_arms), epsilon=epsilon, seed=agent_seed
    )
    # Fixed scenario: seed once, then train across forked episodes of
    # the same root so value estimates do not chase scenario drift.
    env.reset(seed=scenario_seed)
    agent.train(env, episodes=episodes)
    agent.policy_arms = base.policy_arms
    return agent


def compare(
    config: Optional[GymConfig] = None,
    *,
    scenario_seed: int = 0,
    agent_seed: int = 0,
    iterations: int = 2,
    population: int = 6,
    bandit_episodes: int = 4,
    with_bandit: bool = True,
) -> Dict[str, Dict[str, float]]:
    """Baselines vs trained agents on one scenario; keyed cost rows."""
    config = config or SMOKE_CONFIG
    env = WillowFedEnv(config)
    env.reset(seed=scenario_seed)

    rows: Dict[str, Dict[str, float]] = {}
    for name in ("neutral", "proportional"):
        rows[name] = run_baseline(name, env)
    rows[f"predictive K={config.horizon}"] = run_baseline(
        "predictive", env, horizon=config.horizon
    )

    agent = train_cem(
        config,
        scenario_seed=scenario_seed,
        agent_seed=agent_seed,
        iterations=iterations,
        population=population,
    )
    rows["cem"] = rollout_episode(
        env, lambda _obs, info: agent.act(info), seed=scenario_seed
    )
    rows["cem"]["theta"] = agent.best_theta

    if with_bandit:
        bandit = train_bandit(
            config,
            scenario_seed=scenario_seed,
            agent_seed=agent_seed,
            episodes=bandit_episodes,
        )
        from dataclasses import replace

        arm = int(bandit.values.argmax())
        policy_env = WillowFedEnv(replace(config, action_mode="policy"))
        rows["bandit"] = rollout_episode(
            policy_env, lambda _obs, _info: arm, seed=scenario_seed
        )
        rows["bandit"]["arm"] = config.policy_arms[arm]
    return rows


def smoke() -> None:
    """CI contract for the learned schedulers (``make gym-smoke``).

    Asserts, on the fixed 2-site smoke scenario: the trained CEM agent
    strictly beats ``neutral`` and never loses to ``proportional`` on
    dropped demand, and no cell anywhere violates a thermal limit.
    Raises ``AssertionError`` on any regression; deterministic, so a
    pass is a pass everywhere.
    """
    rows = compare()
    cem = rows["cem"]
    neutral = rows["neutral"]
    proportional = rows["proportional"]
    assert cem["dropped"] < neutral["dropped"], (
        f"CEM dropped {cem['dropped']:.0f} >= neutral "
        f"{neutral['dropped']:.0f}"
    )
    assert cem["dropped"] <= proportional["dropped"] + 1e-6, (
        f"CEM dropped {cem['dropped']:.0f} > proportional "
        f"{proportional['dropped']:.0f}"
    )
    violations = sum(row["violations"] for row in rows.values())
    assert violations == 0, f"{violations} thermal violations"
    for name, row in rows.items():
        extra = ""
        if "theta" in row:
            extra = f"  theta=({row['theta'][0]:.2f}, {row['theta'][1]:.2f})"
        if "arm" in row:
            extra = f"  arm={row['arm']}"
        print(
            f"{name:>16}: dropped {row['dropped']:>9.0f}  "
            f"WAN {row['wan_energy']:>7.0f}  moves {row['moves']:>3}  "
            f"violations {row['violations']:.0f}{extra}"
        )
    print("gym smoke: OK (CEM beats neutral, matches-or-beats proportional)")
