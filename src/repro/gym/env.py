"""``WillowFedEnv``: the federation as a Gym-style decision process.

One environment step is one *supply period* -- ``eta1`` controller ticks
-- of the same anti-correlated-solar federation the experiments sweep
(:func:`repro.experiments.fig_federation.build_specs`).  At each step
the agent chooses the cross-site load shift for the coming period; the
coordinator then runs the period tick-for-tick exactly as it would
under a shipped policy, so everything learned here transfers verbatim
to :func:`~repro.federation.coordinator.run_federation` via
:class:`~repro.gym.agents.LearnedPolicy`.

API shape follows the Gym 0.26+/gymnasium convention without importing
either: ``reset(seed=...) -> (obs, info)``, ``step(action) -> (obs,
reward, terminated, truncated, info)``, plain-dataclass ``spec`` /
``observation_space`` / ``action_space`` (:mod:`repro.gym.spaces`).

Observations are a flat ``float64`` vector: per site ``[supply,
smoothed_demand, headroom, battery_charge, battery_rate,
thermal_margin]`` plus the ``K``-step supply forecast (read through the
coordinator's configured forecast model, so a noisy model degrades the
agent's information exactly as it degrades the MPC planner's), then one
global episode-progress feature.  The reward is the negated weighted
sum of five per-window costs -- dropped demand, total energy, carbon,
WAN migration energy, thermal violations -- with the raw vector always
available in ``info["reward_vector"]`` for multi-objective training.

Episodes are deterministic per seed (`RandomStreams.fork` per episode),
checkpointable mid-episode (:meth:`WillowFedEnv.snapshot_state`), and
traceable: pass a :class:`~repro.trace.Tracer` and every decision
window lands in the same frame stream the coordinator already writes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.federation.coordinator import build_federation
from repro.federation.forecasts import ForecastModel
from repro.federation.policies import POLICIES
from repro.gym.actions import matrix_to_transfers, project_shift_matrix
from repro.gym.spaces import BoxSpace, DiscreteSpace, EnvSpec
from repro.sim.rng import RandomStreams

__all__ = [
    "REWARD_COMPONENTS",
    "RewardWeights",
    "GymConfig",
    "WillowFedEnv",
]

#: Order of the cost vector in ``info["reward_vector"]``.
REWARD_COMPONENTS = (
    "dropped",
    "energy",
    "carbon",
    "wan_energy",
    "violations",
)


@dataclass(frozen=True)
class RewardWeights:
    """Scalarization weights over the per-window cost vector.

    Every component is a *cost* (non-negative, lower is better); the
    scalar reward is the negated weighted sum.  The defaults focus on
    the paper's headline trade-off: serve demand, keep WAN shifting
    honest, never overheat.
    """

    dropped: float = 1.0  # dropped demand energy (W*ticks)
    energy: float = 0.0  # total server energy (W*ticks)
    carbon: float = 0.0  # energy * carbon intensity at window start
    wan_energy: float = 0.05  # WAN migration energy, both ends (W*ticks)
    violations: float = 1000.0  # thermal-limit violation tick-count

    def scalarize(self, vector: Dict[str, float]) -> float:
        return -sum(
            getattr(self, name) * vector[name] for name in REWARD_COMPONENTS
        )


@dataclass(frozen=True)
class GymConfig:
    """Scenario and interface knobs for :class:`WillowFedEnv`."""

    #: Federation size; sites get evenly phased solar humps.
    n_sites: int = 2
    #: Decision windows per episode (one window = ``eta1`` ticks; one
    #: extra warm-up window precedes the first decision).
    windows: int = 23
    #: Forecast steps in the observation.
    horizon: int = 4
    #: ``"matrix"`` (continuous shift matrix) or ``"policy"``
    #: (discrete choice among ``policy_arms`` each window).
    action_mode: str = "matrix"
    #: Registry slugs selectable in ``"policy"`` mode.
    policy_arms: Tuple[str, ...] = (
        "neutral",
        "proportional",
        "greedy-greenest",
        "price-aware",
    )
    #: Donor margin; ``None`` = coordinator default (max ``p_min``).
    margin: Optional[float] = None
    wan_cost_power: Optional[float] = None
    wan_cost_ticks: Optional[int] = None
    #: Per-site UPS energy (W*ticks); 0 disables batteries.
    battery_capacity: float = 0.0
    target_utilization: float = 0.35
    #: Forecast model spec (see ``repro.federation.forecasts``).
    forecast: Union[str, ForecastModel, None] = "oracle"
    #: Run member sites on the batched array controller.
    vectorized: bool = False
    weights: RewardWeights = field(default_factory=RewardWeights)

    def __post_init__(self) -> None:
        if self.action_mode not in ("matrix", "policy"):
            raise ValueError(
                f"action_mode must be 'matrix' or 'policy', "
                f"got {self.action_mode!r}"
            )
        if self.windows < 1:
            raise ValueError(f"windows must be >= 1, got {self.windows}")
        if self.horizon < 0:
            raise ValueError(f"horizon must be >= 0, got {self.horizon}")
        if self.action_mode == "policy":
            unknown = [a for a in self.policy_arms if a not in POLICIES]
            if unknown:
                raise ValueError(
                    f"unknown policy arms {unknown}; "
                    f"choose from {sorted(POLICIES)}"
                )


class WillowFedEnv:
    """Multi-objective federation scheduling as a Gym-style env."""

    def __init__(
        self,
        config: Optional[GymConfig] = None,
        *,
        tracer=None,
    ):
        self.config = config or GymConfig()
        self._tracer = tracer
        n, k = self.config.n_sites, self.config.horizon
        self.observation_space = BoxSpace(
            low=-np.inf, high=np.inf, shape=(n * (6 + k) + 1,)
        )
        if self.config.action_mode == "matrix":
            self.action_space = BoxSpace(low=0.0, high=np.inf, shape=(n, n))
        else:
            self.action_space = DiscreteSpace(len(self.config.policy_arms))
        self.spec = EnvSpec(
            id="repro/WillowFed-v0",
            max_episode_steps=self.config.windows,
            kwargs={"action_mode": self.config.action_mode},
        )
        self._base: Optional[RandomStreams] = None
        self._episode_index = 0
        self._site_seed: Optional[int] = None
        self.coordinator = None
        self._margin = 0.0
        self._action = None
        self._step_count = 0
        self._done = True
        self._drop_cursor: List[int] = []
        self._sample_cursor: List[int] = []
        self._migration_cursor = 0
        self._transfer_cursor = 0
        self._peak_temps: List[float] = []

    # ----------------------------------------------------------- plumbing
    @property
    def eta1(self) -> int:
        return self.coordinator.eta1

    @property
    def n_ticks(self) -> int:
        """Total controller ticks per episode (warm-up included)."""
        if self.coordinator is not None:
            eta1 = self.coordinator.eta1
        else:
            from repro.core.config import WillowConfig

            eta1 = WillowConfig().eta1
        return (self.config.windows + 1) * eta1

    def episode_specs(self) -> list:
        """Fresh site specs for the *current* episode's seed.

        Builds new ``SiteSpec`` objects each call (batteries are
        mutable), so the same episode can be replayed through
        :func:`~repro.federation.coordinator.run_federation` -- the
        round-trip contract :class:`~repro.gym.agents.LearnedPolicy`
        relies on.
        """
        from repro.experiments.fig_federation import build_specs

        if self._site_seed is None:
            raise RuntimeError("reset() the environment first")
        return build_specs(
            self.config.n_sites,
            battery_capacity=self.config.battery_capacity,
            target_utilization=self.config.target_utilization,
            seed=self._site_seed,
        )

    def _hook_policy(self):
        def gym_hook(statuses, *, margin: float = 0.0, **_kwargs):
            return self._apply_action(statuses, margin)

        gym_hook.policy_name = "gym-env"
        gym_hook.forecast_aware = False
        return gym_hook

    def _build(self, site_seed: int):
        self._site_seed = int(site_seed)
        coordinator = build_federation(
            self.episode_specs(),
            n_ticks=self.n_ticks,
            policy=self._hook_policy(),
            wan_cost_power=self.config.wan_cost_power,
            wan_cost_ticks=self.config.wan_cost_ticks,
            margin=self.config.margin,
            forecast=self.config.forecast,
            vectorized=self.config.vectorized,
            tracer=self._tracer,
        )
        self.coordinator = coordinator
        self._margin = (
            self.config.margin
            if self.config.margin is not None
            else max(site.config.p_min for site in coordinator.sites)
        )
        n = self.config.n_sites
        self._drop_cursor = [0] * n
        self._sample_cursor = [0] * n
        self._migration_cursor = 0
        self._transfer_cursor = 0
        self._peak_temps = [0.0] * n
        return coordinator

    # ---------------------------------------------------------------- API
    def reset(self, *, seed: Optional[int] = None, options=None):
        """Start a new episode; returns ``(obs, info)``.

        ``reset(seed=s)`` restarts the episode sequence: the first
        episode after any ``reset(seed=s)`` is bit-identical to the
        first episode after any other ``reset(seed=s)``.  Subsequent
        seedless resets advance through independent episodes forked
        from the same root.
        """
        if seed is not None:
            self._base = RandomStreams(seed)
            self._episode_index = 0
        if self._base is None:
            self._base = RandomStreams(0)
        episode = self._base.fork(self._episode_index)
        self._episode_index += 1
        coordinator = self._build(episode.seed)
        self._action = None
        self._step_count = 0
        self._done = False
        # Warm-up window: no rebalance fires before tick eta1, so the
        # first observation sees primed smoothed demand.
        coordinator.run(coordinator.eta1)
        self._consume_window()
        return self._observe(), self._info()

    def step(self, action):
        """Run one supply period under ``action``.

        Returns the Gym 5-tuple ``(obs, reward, terminated, truncated,
        info)``.  Episodes never terminate early; the final step of the
        horizon sets ``truncated``.
        """
        if self.coordinator is None or self._done:
            raise RuntimeError(
                "episode is not running; call reset() first"
            )
        self._action = self._validate_action(action)
        window_start = self.coordinator._tick_index * self.coordinator.delta_d
        self.coordinator.run(self.coordinator.eta1)
        self._action = None
        vector = self._consume_window(window_start)
        reward = self.config.weights.scalarize(vector)
        self._step_count += 1
        truncated = self._step_count >= self.config.windows
        self._done = truncated
        obs = self._observe()
        info = self._info()
        info["reward_vector"] = vector
        info["transfers"] = self._new_transfers()
        tracer = self.coordinator.tracer
        if tracer.enabled:
            tracer.record_env_step(
                self._step_count,
                self.config.action_mode,
                reward,
                vector,
            )
        return obs, reward, False, truncated, info

    def close(self) -> None:
        if self.coordinator is not None:
            self.coordinator.tracer.flush()

    # ------------------------------------------------------------ actions
    def _validate_action(self, action):
        if self.config.action_mode == "policy":
            try:
                arm = int(action)
            except (TypeError, ValueError):
                raise ValueError(
                    f"policy-mode action must be an integer, got {action!r}"
                ) from None
            if not self.action_space.contains(arm):
                raise ValueError(
                    f"action {arm} out of range for "
                    f"{len(self.config.policy_arms)} policy arms"
                )
            return arm
        matrix = np.asarray(action, dtype=float)
        n = self.config.n_sites
        if matrix.shape != (n, n):
            raise ValueError(
                f"matrix-mode action must have shape ({n}, {n}), "
                f"got {matrix.shape}"
            )
        return matrix

    def _apply_action(self, statuses, margin: float):
        """The coordinator-side policy hook: lower the pending action."""
        if self._action is None:
            raise RuntimeError(
                "coordinator rebalanced outside step() -- this is a bug"
            )
        if self.config.action_mode == "policy":
            arm = self.config.policy_arms[self._action]
            return POLICIES[arm](statuses, margin=margin)
        projected = project_shift_matrix(statuses, self._action, margin)
        return matrix_to_transfers(statuses, projected)

    # ------------------------------------------------------- observations
    def _observe(self) -> np.ndarray:
        coordinator = self.coordinator
        now = coordinator._tick_index * coordinator.delta_d
        statuses = coordinator.statuses(now)
        forecasts = coordinator.site_forecasts(now, self.config.horizon)
        self._last_statuses = statuses
        self._last_forecasts = forecasts
        k = self.config.horizon
        out: List[float] = []
        for i, (status, forecast) in enumerate(zip(statuses, forecasts)):
            t_limit = coordinator.sites[i].config.thermal.t_limit
            out.extend(
                (
                    status.supply,
                    status.smoothed_demand,
                    status.headroom,
                    forecast.battery_charge,
                    forecast.battery_rate,
                    t_limit - self._peak_temps[i],
                )
            )
            future = forecast.supplies[1 : k + 1]
            out.extend(future)
            out.extend([future[-1] if future else status.supply] * (k - len(future)))
        out.append(self._step_count / self.config.windows)
        return np.asarray(out, dtype=np.float64)

    def _info(self) -> Dict:
        return {
            "episode": self._episode_index - 1,
            "window": self._step_count,
            "site_seed": self._site_seed,
            "margin": self._margin,
            "statuses": self._last_statuses,
            "forecasts": self._last_forecasts,
        }

    # ----------------------------------------------------------- rewards
    def _consume_window(self, window_start: Optional[float] = None) -> Dict:
        """Advance the metric cursors; cost vector for the new window."""
        coordinator = self.coordinator
        delta_d = coordinator.delta_d
        vector = dict.fromkeys(REWARD_COMPONENTS, 0.0)
        for i, site in enumerate(coordinator.sites):
            drops = site.collector.drops
            new_drops = drops[self._drop_cursor[i] :]
            self._drop_cursor[i] = len(drops)
            vector["dropped"] += sum(d.power for d in new_drops) * delta_d

            samples = site.collector.server_samples
            new_samples = samples[self._sample_cursor[i] :]
            self._sample_cursor[i] = len(samples)
            energy = sum(s.power for s in new_samples) * delta_d
            vector["energy"] += energy
            if window_start is not None:
                vector["carbon"] += energy * site.carbon_at(window_start)
            t_limit = site.config.thermal.t_limit
            vector["violations"] += sum(
                1 for s in new_samples if s.temperature > t_limit + 1e-9
            )
            if new_samples:
                self._peak_temps[i] = max(s.temperature for s in new_samples)

        migrations = coordinator.cross_migrations
        for migration in migrations[self._migration_cursor :]:
            _, ticks = coordinator._wan_cost(coordinator.site(migration.dst_site))
            vector["wan_energy"] += (
                2.0 * migration.wan_cost_power * ticks * delta_d
            )
        self._migration_cursor = len(migrations)
        return vector

    def _new_transfers(self) -> List:
        log = self.coordinator.transfer_log
        new = [t for _tick, batch in log[self._transfer_cursor :] for t in batch]
        self._transfer_cursor = len(log)
        return new

    # -------------------------------------------------------- checkpoint
    def snapshot_state(self) -> Dict:
        """Capture the env mid-episode (between steps).

        Includes the full coordinator snapshot, the metric cursors and
        the episode bookkeeping; restore onto a fresh env built with the
        same :class:`GymConfig`.  Like the coordinator's snapshot, the
        structure holds *live* references -- serialize it (one pickle
        payload, as :mod:`repro.checkpoint` does) before restoring into
        a second env that will run concurrently.  Raises
        :class:`~repro.checkpoint.errors.CheckpointError` on the
        batched coordinator, which does not support object snapshots.
        """
        if self.coordinator is None:
            raise RuntimeError("nothing to snapshot; call reset() first")
        return {
            "env": type(self).__name__,
            "base_seed": self._base.seed if self._base is not None else None,
            "episode_index": self._episode_index,
            "site_seed": self._site_seed,
            "step_count": self._step_count,
            "done": self._done,
            "drop_cursor": list(self._drop_cursor),
            "sample_cursor": list(self._sample_cursor),
            "migration_cursor": self._migration_cursor,
            "transfer_cursor": self._transfer_cursor,
            "peak_temps": list(self._peak_temps),
            "coordinator": self.coordinator.snapshot_state(),
        }

    def restore_state(self, state: Dict) -> None:
        """Overlay a snapshot onto this env (same ``GymConfig``)."""
        if state.get("env") != type(self).__name__:
            from repro.checkpoint.errors import CheckpointError

            raise CheckpointError(
                f"snapshot is for {state.get('env')!r}, "
                f"not {type(self).__name__!r}"
            )
        if state["base_seed"] is not None:
            self._base = RandomStreams(state["base_seed"])
        self._episode_index = int(state["episode_index"])
        coordinator = self._build(state["site_seed"])
        coordinator.restore_state(state["coordinator"])
        self._step_count = int(state["step_count"])
        self._done = bool(state["done"])
        self._drop_cursor = list(state["drop_cursor"])
        self._sample_cursor = list(state["sample_cursor"])
        self._migration_cursor = int(state["migration_cursor"])
        self._transfer_cursor = int(state["transfer_cursor"])
        self._peak_temps = list(state["peak_temps"])
        self._action = None
        # Prime the last-observation caches for info().
        self._observe()
