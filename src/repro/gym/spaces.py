"""Dependency-free Gym-style space and spec descriptors.

Plain dataclasses with the same field names and semantics as
``gymnasium.spaces.Box`` / ``Discrete`` and ``gymnasium.envs.
registration.EnvSpec``, so :class:`~repro.gym.env.WillowFedEnv` can be
wrapped for any Gym-compatible RL library in one line::

    import gymnasium
    wrapped = gymnasium.spaces.Box(
        low=env.observation_space.low, high=env.observation_space.high
    )

No ``gymnasium`` import happens anywhere in :mod:`repro.gym`; these
descriptors are the whole contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

__all__ = ["BoxSpace", "DiscreteSpace", "EnvSpec"]


@dataclass(frozen=True)
class BoxSpace:
    """A bounded (possibly unbounded-above) real-valued array space."""

    low: float
    high: float
    shape: Tuple[int, ...]
    dtype: str = "float64"

    def contains(self, x) -> bool:
        arr = np.asarray(x, dtype=float)
        if arr.shape != self.shape:
            return False
        return bool(
            np.all(arr >= self.low - 1e-12)
            and np.all(arr <= self.high + 1e-12)
        )

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """A uniform draw (unbounded edges sample from [0, 1))."""
        low = self.low if np.isfinite(self.low) else 0.0
        high = self.high if np.isfinite(self.high) else low + 1.0
        return rng.uniform(low, high, size=self.shape)


@dataclass(frozen=True)
class DiscreteSpace:
    """The integers ``{0, ..., n - 1}``."""

    n: int

    def contains(self, x) -> bool:
        try:
            value = int(x)
        except (TypeError, ValueError):
            return False
        return 0 <= value < self.n

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.n))


@dataclass(frozen=True)
class EnvSpec:
    """Registration-style metadata for an environment instance."""

    id: str
    max_episode_steps: Optional[int] = None
    reward_threshold: Optional[float] = None
    nondeterministic: bool = False
    kwargs: dict = field(default_factory=dict)
