"""repro.gym: the federation as a multi-objective policy environment.

A dependency-free Gym-style interface (``reset``/``step`` 5-tuple, no
``gymnasium`` import) over the geo-federation: one env step is one
supply period, actions are cross-site shift matrices (projected to
feasibility) or discrete policy picks, rewards are a five-component
cost vector (dropped demand, energy, carbon, WAN energy, thermal
violations) with configurable scalarization.  Small deterministic
learners -- CEM over a linear scheduler family, an epsilon-greedy
policy-switching bandit -- train in it, and :class:`LearnedPolicy`
registers what they learn back into the federation policy registry so
it runs everywhere a shipped policy does.  See ``docs/gym.md``.
"""

from repro.gym.actions import (
    linear_shift_matrix,
    matrix_to_transfers,
    project_shift_matrix,
)
from repro.gym.agents import (
    BanditAgent,
    CEMAgent,
    LearnedPolicy,
    linear_policy_fn,
)
from repro.gym.env import (
    GymConfig,
    REWARD_COMPONENTS,
    RewardWeights,
    WillowFedEnv,
)
from repro.gym.evaluate import (
    compare,
    episode_costs,
    rollout_episode,
    run_baseline,
    smoke,
    train_bandit,
    train_cem,
)
from repro.gym.spaces import BoxSpace, DiscreteSpace, EnvSpec

__all__ = [
    "WillowFedEnv",
    "GymConfig",
    "RewardWeights",
    "REWARD_COMPONENTS",
    "BoxSpace",
    "DiscreteSpace",
    "EnvSpec",
    "project_shift_matrix",
    "matrix_to_transfers",
    "linear_shift_matrix",
    "CEMAgent",
    "BanditAgent",
    "LearnedPolicy",
    "linear_policy_fn",
    "compare",
    "episode_costs",
    "rollout_episode",
    "run_baseline",
    "train_cem",
    "train_bandit",
    "smoke",
]
