"""Continuous shift-matrix actions and their feasibility projection.

The gym environment's ``matrix`` action mode lets an agent propose an
arbitrary non-negative ``(n_sites, n_sites)`` matrix -- entry ``[i, j]``
is the wattage site ``i`` would like to shed onto site ``j`` this supply
period.  Raw proposals are almost never feasible, so every action passes
through :func:`project_shift_matrix` before execution:

1. negatives are clamped to zero and the diagonal is cleared;
2. each *row* is scaled down so a site never sheds more than its own
   smoothed demand;
3. each *column* is scaled down so a site never receives more than its
   donatable headroom (current headroom minus the federation margin).

Row scaling only shrinks entries, so the later column pass cannot break
the row caps: the result is always jointly feasible.  The projection is
the identity on any matrix the ``proportional`` waterfall would emit,
which is what lets :func:`linear_shift_matrix` with gains ``[1, 0]``
reproduce the shipped baseline bit-for-bit (pinned by
``tests/test_gym.py``).

:func:`matrix_to_transfers` lowers a feasible matrix to the coordinator's
:class:`~repro.federation.policies.Transfer` list using the same emission
order as the shipped policies (worst-deficit sources first, destinations
by name), so identical matrices produce identical migration schedules.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.federation.policies import SiteStatus, Transfer

__all__ = [
    "EPS",
    "project_shift_matrix",
    "matrix_to_transfers",
    "linear_shift_matrix",
]

#: Feasibility slack, matching the policies module's internal epsilon.
EPS = 1e-9


def project_shift_matrix(
    statuses: Sequence[SiteStatus],
    matrix,
    margin: float = 0.0,
) -> np.ndarray:
    """Project a proposed shift matrix onto the feasible set.

    Returns a fresh ``float64`` array; raises ``ValueError`` on a shape
    mismatch.  Feasible means: non-negative, zero diagonal, row sums at
    most the source's smoothed demand, column sums at most the
    destination's donatable headroom ``max(headroom - margin, 0)``.
    """
    n = len(statuses)
    out = np.array(matrix, dtype=float, copy=True)
    if out.shape != (n, n):
        raise ValueError(
            f"shift matrix must have shape ({n}, {n}), got {out.shape}"
        )
    out[~np.isfinite(out)] = 0.0
    out[out < 0.0] = 0.0
    np.fill_diagonal(out, 0.0)
    for i, status in enumerate(statuses):
        cap = max(status.smoothed_demand, 0.0)
        total = float(out[i].sum())
        if total > cap:
            out[i] *= cap / total if total > 0.0 else 0.0
    for j, status in enumerate(statuses):
        cap = max(status.headroom - margin, 0.0)
        total = float(out[:, j].sum())
        if total > cap:
            out[:, j] *= cap / total if total > 0.0 else 0.0
    return out


def matrix_to_transfers(
    statuses: Sequence[SiteStatus],
    matrix: np.ndarray,
) -> List[Transfer]:
    """Lower a feasible shift matrix to an ordered ``Transfer`` list.

    Sources are emitted worst-deficit first (ties by name), destinations
    by name -- the shipped policies' order, so a matrix that mirrors the
    ``proportional`` waterfall lowers to its exact transfer list.  A
    shift out of a site with no current deficit is marked
    ``preemptive``, which makes the coordinator shed from the source's
    least-headroom servers rather than its (empty) over-budget set.
    """
    order = sorted(
        range(len(statuses)),
        key=lambda i: (-statuses[i].deficit, statuses[i].name),
    )
    by_name = sorted(range(len(statuses)), key=lambda j: statuses[j].name)
    transfers: List[Transfer] = []
    for i in order:
        preemptive = statuses[i].deficit <= EPS
        for j in by_name:
            watts = float(matrix[i, j])
            if i == j or watts <= EPS:
                continue
            transfers.append(
                Transfer(
                    src=statuses[i].name,
                    dst=statuses[j].name,
                    watts=watts,
                    preemptive=preemptive,
                )
            )
    return transfers


def _waterfall(
    want: float,
    donatable: dict,
    row: np.ndarray,
    index: dict,
) -> None:
    """Drain ``want`` watts from the donor pool pro rata into ``row``.

    The exact ``proportional`` arithmetic: shares are computed against
    the *current* pool (name-sorted), each donor capped at its remaining
    room, and the pool decremented in place for the next caller.
    """
    total = sum(donatable.values())
    if total <= EPS or want <= EPS:
        return
    want = min(want, total)
    shares = {name: room / total for name, room in sorted(donatable.items())}
    for name, share in shares.items():
        watts = min(want * share, donatable[name])
        if watts <= EPS:
            continue
        row[index[name]] += watts
        donatable[name] -= watts


def linear_shift_matrix(
    statuses: Sequence[SiteStatus],
    forecasts: Optional[Sequence],
    theta: Sequence[float],
    margin: float = 0.0,
) -> np.ndarray:
    """The two-gain linear scheduler family the CEM agent searches.

    ``theta = [g_react, g_pre]`` (negatives clamp to zero):

    * every deficit site requests ``g_react * deficit`` watts, drained
      from the donor pool by the ``proportional`` waterfall -- at
      ``g_react = 1`` this *is* proportional;
    * every currently-healthy site whose forecast shows a future supply
      shortfall pre-ships ``g_pre * max_future_deficit`` watts (worst
      predicted crunch first, never donating to itself).

    Returns an unprojected matrix; callers run it through
    :func:`project_shift_matrix` (a no-op for this family, but the
    environment projects *every* action uniformly).
    """
    n = len(statuses)
    matrix = np.zeros((n, n))
    index = {s.name: i for i, s in enumerate(statuses)}
    g_react = max(float(theta[0]), 0.0)
    g_pre = max(float(theta[1]), 0.0) if len(theta) > 1 else 0.0

    donatable = {
        s.name: s.headroom - margin
        for s in statuses
        if s.headroom - margin > EPS
    }
    deficits = sorted(
        (s for s in statuses if s.deficit > EPS),
        key=lambda s: (-s.deficit, s.name),
    )
    for needy in deficits:
        _waterfall(
            g_react * needy.deficit, donatable, matrix[index[needy.name]], index
        )

    if g_pre <= 0.0 or not forecasts:
        return matrix
    by_site = {f.name: f for f in forecasts}
    crunches = []
    for status in statuses:
        forecast = by_site.get(status.name)
        if status.deficit > EPS or forecast is None:
            continue
        future = max(
            (
                max(status.smoothed_demand - supply, 0.0)
                for supply in forecast.supplies[1:]
            ),
            default=0.0,
        )
        if future > EPS:
            crunches.append((future, status.name))
    for future, name in sorted(crunches, key=lambda c: (-c[0], c[1])):
        own = donatable.pop(name, None)
        _waterfall(g_pre * future, donatable, matrix[index[name]], index)
        if own is not None:
            donatable[name] = own
    return matrix
